"""Query-layer costs: index build, single-lookup latency, batch throughput.

Two entry points share the measurement code:

* pytest-benchmark functions (``bench_query_*``) picked up with the rest
  of the bench suite, and
* a standalone mode — ``python benchmarks/bench_query.py --out
  BENCH_query.json`` — recording the PR's acceptance numbers (warm-index
  single-lookup p50 < 1 ms, 10k batch < 1 s) as a JSON artifact.
  ``--smoke`` shrinks the latency sample for CI.
"""

import argparse
import json
import sys
from itertools import cycle, islice
from pathlib import Path
from time import perf_counter

from repro.query import QueryEngine, build_index, load_index, save_index
from repro.runtime import WorldCache
from repro.synth import ScenarioConfig

_SCALES = {
    "tiny": ScenarioConfig.tiny,
    "small": ScenarioConfig.small,
    "paper": ScenarioConfig.paper,
}

BATCH_SIZE = 10_000


def _queries(index, count):
    """``count`` (prefix, day) pairs cycling the indexed populations."""
    prefixes = list(islice(cycle(
        list(index.routes) + list(index.drop) + list(index.roa)
    ), count))
    days = cycle([index.window.start, index.window.end])
    return [(prefix, next(days)) for prefix in prefixes]


def _percentile(sorted_values, q):
    rank = min(len(sorted_values) - 1, round(q * (len(sorted_values) - 1)))
    return sorted_values[rank]


# ---------------------------------------------------------------------------
# pytest-benchmark entry points
# ---------------------------------------------------------------------------


def bench_query_index_build(benchmark, world):
    index = benchmark.pedantic(
        lambda: build_index(world), rounds=1, iterations=1
    )
    sizes = index.sizes()
    assert sizes["route_prefixes"] > 0
    assert sizes["drop_prefixes"] > 0


def bench_query_single_lookup(benchmark, world):
    engine = QueryEngine(build_index(world))
    queries = cycle(_queries(engine.index, 512))

    def one():
        prefix, day = next(queries)
        return engine.lookup(prefix, day)

    status = benchmark(one)
    assert status.total_peers == engine.index.total_peers


def bench_query_batch_10k(benchmark, world):
    engine = QueryEngine(build_index(world))
    queries = _queries(engine.index, BATCH_SIZE)
    results = benchmark.pedantic(
        lambda: engine.lookup_many(queries), rounds=1, iterations=1
    )
    assert len(results) == BATCH_SIZE


# ---------------------------------------------------------------------------
# standalone artifact mode
# ---------------------------------------------------------------------------


def run(scale: str, *, samples: int, out: Path | None) -> dict:
    world = WorldCache().fetch(_SCALES[scale]()).world

    started = perf_counter()
    index = build_index(world)
    build_seconds = perf_counter() - started

    # Persistence round trip: what a daemon restart pays instead of the
    # build above.
    import tempfile

    with tempfile.TemporaryDirectory() as staging:
        save_index(index, Path(staging))
        started = perf_counter()
        index = load_index(Path(staging), expected_key="")
        load_seconds = perf_counter() - started

    engine = QueryEngine(index)
    singles = _queries(index, samples)
    for prefix, day in singles[:200]:  # warm caches before timing
        engine.lookup(prefix, day)
    latencies = []
    for prefix, day in singles:
        started = perf_counter()
        engine.lookup(prefix, day)
        latencies.append(perf_counter() - started)
    latencies.sort()

    batch = _queries(index, BATCH_SIZE)
    started = perf_counter()
    results = engine.lookup_many(batch)
    batch_seconds = perf_counter() - started
    assert len(results) == BATCH_SIZE

    p50 = _percentile(latencies, 0.50)
    p99 = _percentile(latencies, 0.99)
    payload = {
        "scale": scale,
        "index": index.sizes(),
        "index_build_seconds": round(build_seconds, 4),
        "index_load_seconds": round(load_seconds, 4),
        "single_lookup_samples": samples,
        "single_lookup_p50_ms": round(p50 * 1e3, 4),
        "single_lookup_p99_ms": round(p99 * 1e3, 4),
        "batch_size": BATCH_SIZE,
        "batch_seconds": round(batch_seconds, 4),
        "batch_lookups_per_second": round(BATCH_SIZE / batch_seconds),
        "meets_targets": {
            "single_lookup_p50_under_1ms": p50 < 1e-3,
            "batch_10k_under_1s": batch_seconds < 1.0,
        },
    }
    if out is not None:
        out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return payload


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=sorted(_SCALES), default="tiny")
    parser.add_argument("--samples", type=int, default=5000,
                        help="single-lookup latency sample count")
    parser.add_argument("--smoke", action="store_true",
                        help="CI mode: small latency sample")
    parser.add_argument("--out", type=Path, default=None,
                        help="write the JSON artifact to FILE")
    parser.add_argument("--check", action="store_true",
                        help="exit 1 unless the latency targets are met")
    args = parser.parse_args(argv)
    payload = run(
        args.scale,
        samples=500 if args.smoke else args.samples,
        out=args.out,
    )
    print(json.dumps(payload, indent=2, sort_keys=True))
    if args.check and not all(payload["meets_targets"].values()):
        print("latency targets missed", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
