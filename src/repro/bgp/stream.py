"""A pybgpstream-like query interface over the route interval store.

The real study drives pybgpstream over RouteViews MRT archives.  This module
reproduces that access pattern: construct a :class:`BGPStream` with time and
prefix filters, then iterate :class:`~repro.bgp.messages.BgpElement` records
(type ``A`` at announcement onset, ``W`` the day after the route's last day,
per observing peer), ordered by day.

Analyses in :mod:`repro.analysis` mostly use the interval store directly for
efficiency; the stream API exists so downstream users can port pybgpstream
code onto the simulator, and the integration tests assert both views agree.
"""

from __future__ import annotations

from datetime import date, timedelta
from typing import Iterator, Literal

from ..net.prefix import IPv4Prefix
from .collector import PeerRegistry
from .messages import BgpElement, ElementType
from .ribs import RouteInterval, RouteIntervalStore

__all__ = ["BGPStream"]

MatchMode = Literal["exact", "more", "less", "any"]


class BGPStream:
    """Iterate BGP elements matching time / prefix / collector filters.

    Parameters mirror pybgpstream's common filters:

    ``from_day`` / ``until_day``
        Inclusive day window; elements outside it are suppressed.
    ``prefix`` / ``match``
        Optional prefix filter: ``exact`` (that prefix only), ``more``
        (that prefix and more-specifics), ``less`` (that prefix and
        less-specifics), or ``any`` (more and less specifics).
    ``collectors``
        Optional collector-name allowlist.
    """

    def __init__(
        self,
        store: RouteIntervalStore,
        registry: PeerRegistry,
        *,
        from_day: date,
        until_day: date,
        prefix: IPv4Prefix | None = None,
        match: MatchMode = "exact",
        collectors: set[str] | None = None,
    ) -> None:
        if until_day < from_day:
            raise ValueError("until_day before from_day")
        self._store = store
        self._registry = registry
        self._from = from_day
        self._until = until_day
        self._prefix = prefix
        self._match: MatchMode = match
        self._collectors = collectors

    # -- candidate selection ------------------------------------------------

    def _candidate_intervals(self) -> list[RouteInterval]:
        if self._prefix is None:
            candidates = list(self._store.all_intervals())
        elif self._match == "exact":
            candidates = self._store.intervals_exact(self._prefix)
        elif self._match == "more":
            candidates = self._store.intervals_covered(self._prefix)
        elif self._match == "less":
            candidates = self._store.intervals_covering(self._prefix)
        elif self._match == "any":
            covered = self._store.intervals_covered(self._prefix)
            covering = self._store.intervals_covering(self._prefix)
            seen: set[int] = set()
            candidates = []
            for interval in covered + covering:
                if id(interval) not in seen:
                    seen.add(id(interval))
                    candidates.append(interval)
        else:  # pragma: no cover - Literal narrows this away
            raise ValueError(f"bad match mode {self._match!r}")
        return [
            i
            for i in candidates
            if i.start <= self._until
            and (i.end is None or i.end >= self._from)
        ]

    def _peer_allowed(self, peer_id: int) -> bool:
        if self._collectors is None:
            return True
        return self._registry.peer(peer_id).collector in self._collectors

    # -- iteration -------------------------------------------------------------

    def __iter__(self) -> Iterator[BgpElement]:
        return self.elements()

    def elements(self) -> Iterator[BgpElement]:
        """Yield elements in day order (A before W on the same day)."""
        events: list[tuple[date, int, RouteInterval, int]] = []
        for interval in self._candidate_intervals():
            peer_ids = set(interval.observers)
            for partial in interval.partial_observers:
                peer_ids.add(partial.peer_id)
            for peer_id in peer_ids:
                if not self._peer_allowed(peer_id):
                    continue
                window = self._observation_window(interval, peer_id)
                if window is None:
                    continue
                obs_start, obs_end = window
                if self._from <= obs_start <= self._until:
                    events.append((obs_start, 0, interval, peer_id))
                if obs_end is not None:
                    withdrawal_day = obs_end + timedelta(days=1)
                    if self._from <= withdrawal_day <= self._until:
                        events.append((withdrawal_day, 1, interval, peer_id))
        events.sort(key=lambda e: (e[0], e[1], str(e[2].prefix), e[3]))
        for day, kind, interval, peer_id in events:
            peer = self._registry.peer(peer_id)
            if kind == 0:
                yield BgpElement(
                    elem_type=ElementType.ANNOUNCEMENT,
                    day=day,
                    collector=peer.collector,
                    peer_id=peer_id,
                    peer_asn=peer.asn,
                    prefix=interval.prefix,
                    path=interval.path,
                )
            else:
                yield BgpElement(
                    elem_type=ElementType.WITHDRAWAL,
                    day=day,
                    collector=peer.collector,
                    peer_id=peer_id,
                    peer_asn=peer.asn,
                    prefix=interval.prefix,
                )

    def rib_elements(self, day: date) -> Iterator[BgpElement]:
        """Yield RIB-dump (type ``R``) elements for one day's table."""
        if not self._from <= day <= self._until:
            raise ValueError(f"{day} outside stream window")
        for interval in self._candidate_intervals():
            for peer_id in sorted(interval.observers_on(day)):
                if not self._peer_allowed(peer_id):
                    continue
                peer = self._registry.peer(peer_id)
                yield BgpElement(
                    elem_type=ElementType.RIB,
                    day=day,
                    collector=peer.collector,
                    peer_id=peer_id,
                    peer_asn=peer.asn,
                    prefix=interval.prefix,
                    path=interval.path,
                )

    @staticmethod
    def _observation_window(
        interval: RouteInterval, peer_id: int
    ) -> tuple[date, date | None] | None:
        for partial in interval.partial_observers:
            if partial.peer_id == peer_id:
                end = partial.end
                if end is None:
                    end = interval.end
                return (partial.start, end)
        if peer_id in interval.observers:
            return (interval.start, interval.end)
        return None
