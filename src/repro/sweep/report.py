"""Comparative sweep reports: defense-effectiveness curves per family.

:func:`sweep_report` folds per-cell metrics into, for every attack
family, one curve per defense axis — at each swept rate, the mean
attack visibility (and its complement, the blocked fraction) across
the cells at that rate.  That's the paper's central question made
sweepable: how fast does each attacker behaviour get squeezed as
ROV/route-server/DROP deployment grows.  :func:`render_sweep_table`
is the human view of the same numbers.
"""

from __future__ import annotations

from collections import defaultdict

__all__ = ["render_sweep_table", "sweep_report"]

_AXES = ("rov", "drop", "route_server")


def _mean(values: list[float]) -> float:
    return round(sum(values) / len(values), 6) if values else 0.0


def _family_rollup(cell, family: str) -> dict | None:
    """The per-family block of one ok cell's metrics (or None)."""
    if cell.metrics is None:
        return None
    return cell.metrics.get("families", {}).get(family)


def _curves(cells: list, family: str) -> dict:
    """Per-axis effectiveness curves over one family's ok cells."""
    curves: dict[str, list[dict]] = {}
    for axis in _AXES:
        by_rate: dict[float, list[dict]] = defaultdict(list)
        for cell in cells:
            rollup = _family_rollup(cell, family)
            if rollup is not None:
                by_rate[cell.axes[axis]].append(rollup)
        points = []
        for rate in sorted(by_rate):
            rollups = by_rate[rate]
            points.append(
                {
                    "rate": rate,
                    "cells": len(rollups),
                    "visibility": _mean(
                        [r["visibility"] for r in rollups]
                    ),
                    "blocked": _mean([r["blocked"] for r in rollups]),
                    "post_listing_visibility": _mean(
                        [r["post_listing_visibility"] for r in rollups]
                    ),
                }
            )
        if len(points) > 1:  # an axis with one swept rate is not a curve
            curves[axis] = points
    return curves


def sweep_report(
    spec,
    cells: list,
    *,
    bases_built: int = 0,
    base_seconds: float = 0.0,
) -> dict:
    """The comparative report for one sweep (JSON-ready).

    ``cells`` are :class:`~repro.sweep.engine.CellResult`-shaped
    objects; failed cells are listed with their kinds but excluded
    from every aggregate.  ``bases_built`` / ``base_seconds`` describe
    the shared base-snapshot prefetch (how many distinct bases were
    actually built, and the wall-clock the prefetch phase took).
    """
    ok = [c for c in cells if c.status == "ok"]
    by_family: dict[str, list] = defaultdict(list)
    for cell in ok:
        by_family[cell.family].append(cell)

    families = {}
    for family, family_cells in sorted(by_family.items()):
        rollups = [
            r
            for r in (_family_rollup(c, family) for c in family_cells)
            if r is not None
        ]
        families[family] = {
            "cells": len(family_cells),
            "visibility": _mean([r["visibility"] for r in rollups]),
            "blocked": _mean([r["blocked"] for r in rollups]),
            "post_listing_visibility": _mean(
                [r["post_listing_visibility"] for r in rollups]
            ),
            "curves": _curves(family_cells, family),
        }

    return {
        "name": spec.name,
        "scale": spec.scale,
        "seed": spec.seed,
        "grid_size": spec.grid_size,
        "cells_run": len(cells),
        "cells_ok": len(ok),
        "cells_failed": len(cells) - len(ok),
        # All cells, not just ok ones: a cell that built a world and
        # then failed evaluation still built a world (keeps this count
        # in lockstep with SweepOutcome.worlds_built and the
        # sweep_worlds_built counter).
        "worlds_built": sum(
            1 for c in cells if c.cache_status in ("miss", "refresh")
        ),
        "bases_built": bases_built,
        "base_seconds": base_seconds,
        "families": families,
        "cells": [
            {
                "name": c.name,
                "family": c.family,
                "axes": c.axes,
                "status": c.status,
                "cache_status": c.cache_status,
                "kind": c.kind,
                "visibility": (
                    _family_rollup(c, c.family) or {}
                ).get("visibility"),
                "blocked": (
                    _family_rollup(c, c.family) or {}
                ).get("blocked"),
                "post_listing_visibility": (
                    _family_rollup(c, c.family) or {}
                ).get("post_listing_visibility"),
                "seconds": c.seconds,
            }
            for c in cells
        ],
        "failed_cells": [
            {"name": c.name, "kind": c.kind, "error": c.error}
            for c in cells
            if c.status != "ok"
        ],
        "spec": spec.canonical_dict(),
    }


def render_sweep_table(report: dict) -> str:
    """The report as an aligned text table (one row per cell)."""
    header = (
        "cell",
        "status",
        "cache",
        "visibility",
        "blocked",
        "post-listing",
        "seconds",
    )
    rows = [header]
    for cell in report["cells"]:
        def fmt(value):
            return "-" if value is None else f"{value:.4f}"

        rows.append(
            (
                cell["name"],
                cell["status"] if cell["status"] == "ok" else (
                    f"{cell['status']}({cell['kind']})"
                ),
                cell["cache_status"] or "-",
                fmt(cell["visibility"]),
                fmt(cell["blocked"]),
                fmt(cell["post_listing_visibility"]),
                f"{cell['seconds']:.2f}",
            )
        )
    widths = [max(len(r[i]) for r in rows) for i in range(len(header))]
    lines = []
    for index, row in enumerate(rows):
        lines.append(
            "  ".join(col.ljust(widths[i]) for i, col in enumerate(row))
        )
        if index == 0:
            lines.append("  ".join("-" * w for w in widths))
    summary = (
        f"{report['name']}: {report['cells_ok']}/{report['cells_run']} "
        f"cells ok, {report['worlds_built']} worlds built, "
        f"{report.get('bases_built', 0)} bases built "
        f"(grid {report['grid_size']}, scale {report['scale']}, "
        f"seed {report['seed']})"
    )
    return summary + "\n\n" + "\n".join(lines) + "\n"
