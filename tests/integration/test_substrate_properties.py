"""Property-based tests across the substrates (hypothesis).

These pin the invariants the analyses lean on: archive round-trips are
lossless, snapshot-diff reconstruction recovers lifetimes, the fast
status index agrees with the reference implementation, and RFC 6811
validation behaves monotonically under ROA addition.
"""

from datetime import date, timedelta

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bgp.messages import ASPath, paths_equal_ignoring_prepend
from repro.drop.droplist import DropArchive, DropEpisode
from repro.irr.rpsl import RouteObject, emit_objects, parse_objects
from repro.net.prefix import IPv4Prefix
from repro.net.timeline import DateWindow
from repro.rirstats.registry import ResourceRegistry
from repro.rpki.roa import Roa
from repro.rpki.validation import RouteValidity, validate_route

lengths = st.integers(min_value=8, max_value=28)
addresses = st.integers(min_value=1 << 24, max_value=(223 << 24) - 1)


@st.composite
def prefixes(draw):
    return IPv4Prefix.from_first_address(draw(addresses), draw(lengths))


@st.composite
def days(draw, start=date(2019, 6, 5), span=1000):
    return start + timedelta(days=draw(st.integers(0, span)))


asns = st.integers(min_value=1, max_value=400_000)


class TestRpslRoundTrip:
    @given(
        prefixes(),
        asns,
        st.text(
            alphabet="abcdefghijklmnopqrstuvwxyz-0123456789",
            min_size=1,
            max_size=20,
        ),
    )
    def test_route_object_survives_rpsl(self, prefix, origin, maintainer):
        route = RouteObject(
            prefix=prefix,
            origin=origin,
            maintainer=maintainer.upper(),
            org_id="ORG-X",
            descr="generated",
        )
        text = emit_objects([route.to_rpsl()])
        (parsed,) = list(parse_objects(text))
        assert RouteObject.from_rpsl(parsed) == route


class TestDropSnapshotReconstruction:
    @given(
        st.lists(
            st.tuples(prefixes(), days(), st.integers(31, 300)),
            min_size=1,
            max_size=15,
            unique_by=lambda t: t[0],
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_daily_snapshots_recover_episodes(self, specs):
        window = DateWindow(date(2019, 6, 5), date(2022, 12, 31))
        archive = DropArchive(window)
        for prefix, added, duration in specs:
            removed = added + timedelta(days=duration)
            if removed > window.end:
                removed = None
            archive.add(
                DropEpisode(prefix=prefix, added=added, removed=removed)
            )
        snapshots = [
            (day, {p: None for p in archive.listed_on(day)})
            for day in window
        ]
        rebuilt = DropArchive.from_snapshots(snapshots, window)

        def key(a):
            return sorted(
                (str(e.prefix), e.added, e.removed) for e in a.episodes()
            )

        assert key(rebuilt) == key(archive)


class TestStatusIndexEquivalence:
    @given(
        st.lists(
            st.tuples(prefixes(), days(), st.booleans()),
            min_size=1,
            max_size=20,
        ),
        prefixes(),
        days(),
    )
    @settings(max_examples=80, deadline=None)
    def test_index_matches_reference(self, allocs, probe, query_day):
        registry = ResourceRegistry()
        registry.delegate_to_rir("ARIN", "0.0.0.0/1")
        registry.delegate_to_rir("RIPE", "128.0.0.0/1")
        for prefix, start, ends in allocs:
            alloc = registry.allocate(
                prefix, "ARIN", start, holder=f"h{prefix.network}"
            )
            if ends:
                registry.add(alloc)  # duplicate lifetimes allowed
        reference = registry.status_of(probe, query_day)
        indexed = registry.status_index(query_day).status_of(probe)
        assert indexed.status == reference.status
        assert indexed.is_allocated == reference.is_allocated
        if reference.is_allocated:
            assert indexed.since == reference.since


class TestValidationProperties:
    @given(prefixes(), asns, st.lists(st.tuples(prefixes(), asns),
                                      max_size=8))
    def test_adding_matching_roa_never_downgrades(self, prefix, origin,
                                                  other_roas):
        roas = [Roa(p, a) for p, a in other_roas]
        before = validate_route(prefix, origin, roas)
        roas.append(Roa(prefix, origin))
        after = validate_route(prefix, origin, roas)
        assert after is RouteValidity.VALID
        if before is RouteValidity.VALID:
            assert after is RouteValidity.VALID

    @given(prefixes(), asns, asns)
    def test_covering_roa_never_leaves_not_found(self, prefix, origin,
                                                 roa_asn):
        roas = [Roa(prefix, roa_asn)]
        verdict = validate_route(prefix, origin, roas)
        assert verdict is not RouteValidity.NOT_FOUND

    @given(prefixes(), asns)
    def test_as0_always_invalid(self, prefix, origin):
        roas = [Roa(prefix, 0, max_length=32)]
        assert validate_route(prefix, origin, roas) is (
            RouteValidity.INVALID
        )


class TestAsPathProperties:
    @given(st.lists(asns, min_size=1, max_size=8), asns,
           st.integers(1, 4))
    def test_prepending_preserves_origin_and_equivalence(self, path_asns,
                                                         prepend_asn,
                                                         times):
        path = ASPath(tuple(path_asns))
        prepended = path.prepended(path.first_hop, times=times)
        assert prepended.origin == path.origin
        assert paths_equal_ignoring_prepend(path, prepended)
        assert prepended.length == path.length
