"""Unit tests for repro.net.asn."""

import pytest

from repro.net.asn import (
    AS0,
    AsnBlock,
    AsnError,
    is_documentation_asn,
    is_private_asn,
    is_public_asn,
    is_reserved_asn,
    parse_asn,
)


class TestParseAsn:
    def test_plain_int(self):
        assert parse_asn(64500) == 64500

    def test_as_prefix(self):
        assert parse_asn("AS64500") == 64500

    def test_lowercase(self):
        assert parse_asn("as64500") == 64500

    def test_bare_digits(self):
        assert parse_asn("64500") == 64500

    def test_whitespace(self):
        assert parse_asn("  AS174 ") == 174

    def test_garbage(self):
        with pytest.raises(AsnError):
            parse_asn("ASfoo")

    def test_negative(self):
        with pytest.raises(AsnError):
            parse_asn(-1)

    def test_too_large(self):
        with pytest.raises(AsnError):
            parse_asn(2**32)


class TestClassification:
    def test_as0_reserved_not_public(self):
        assert is_reserved_asn(AS0)
        assert not is_public_asn(AS0)

    def test_as_trans_reserved(self):
        assert is_reserved_asn(23456)

    def test_private_16bit(self):
        assert is_private_asn(64512)
        assert is_private_asn(65534)
        assert not is_private_asn(65535)

    def test_private_32bit(self):
        assert is_private_asn(4200000000)

    def test_documentation(self):
        assert is_documentation_asn(64496)
        assert is_documentation_asn(65536)
        assert not is_documentation_asn(64512)

    def test_ordinary_asn_public(self):
        for asn in (174, 3356, 50509, 263692):
            assert is_public_asn(asn)
            assert not is_reserved_asn(asn)

    def test_last_asn_reserved(self):
        assert is_reserved_asn(2**32 - 1)


class TestAsnBlock:
    def test_contains(self):
        block = AsnBlock(start=64500, count=10)
        assert 64500 in block
        assert 64509 in block
        assert 64510 not in block

    def test_end(self):
        assert AsnBlock(100, 5).end == 105

    def test_invalid_count(self):
        with pytest.raises(AsnError):
            AsnBlock(100, 0)
