"""Unit tests for the Appendix-A categorizer (Table 2 cases included)."""

import pytest

from repro.drop.categories import Category
from repro.drop.categorize import Categorizer
from repro.net.prefix import IPv4Prefix

PREFIX = IPv4Prefix.parse("192.0.2.0/24")


@pytest.fixture
def categorizer():
    return Categorizer()


def cats(result):
    return result.categories


class TestTable2Examples:
    """The exact example records from the paper's Table 2."""

    def test_sbl310721_spammer_hosting(self, categorizer):
        result = categorizer.classify_text(
            PREFIX, "AS204139 spammer hosting"
        )
        assert cats(result) == {Category.MALICIOUS_HOSTING}

    def test_sbl240976_hijack_with_hosting_email(self, categorizer):
        result = categorizer.classify_text(
            PREFIX, "hijacked IP range ... billing@ahostinginc.com"
        )
        assert cats(result) == {Category.HIJACKED}

    def test_sbl502548_snowshoe_stolen(self, categorizer):
        result = categorizer.classify_text(
            PREFIX,
            "Snowshoe IP block on Stolen AS62927 ... "
            "james.johnson@networxhosting.com",
        )
        assert cats(result) == {Category.SNOWSHOE, Category.HIJACKED}

    def test_sbl322513_rokso_snowshoe(self, categorizer):
        result = categorizer.classify_text(
            PREFIX,
            "Register Of Known Spam Operations ... snowshoe range",
        )
        assert cats(result) == {Category.KNOWN_SPAM, Category.SNOWSHOE}

    def test_sbl294939_rokso_hijack(self, categorizer):
        result = categorizer.classify_text(
            PREFIX,
            "Register Of Known Spam Operations ... "
            "illegal netblock hijacking operation",
        )
        assert cats(result) == {Category.KNOWN_SPAM, Category.HIJACKED}

    def test_sbl325529_manual_snowshoe(self):
        # No keyword matches; the manual override supplies the judgement.
        categorizer = Categorizer(
            manual_overrides={"SBL325529": [Category.SNOWSHOE]}
        )
        result = categorizer.classify_text(
            PREFIX,
            "Department of Defense ... Spamhaus believes that this IP "
            "address range is being used or is about to be used for the "
            "purpose of high volume spam emission.",
            sbl_id="SBL325529",
        )
        assert cats(result) == {Category.SNOWSHOE}
        assert result.manual


class TestKeywordRules:
    def test_unallocated(self, categorizer):
        result = categorizer.classify_text(PREFIX, "unallocated netblock")
        assert cats(result) == {Category.UNALLOCATED}

    def test_bogon(self, categorizer):
        result = categorizer.classify_text(PREFIX, "announced bogons")
        assert cats(result) == {Category.UNALLOCATED}

    def test_case_insensitive(self, categorizer):
        result = categorizer.classify_text(PREFIX, "HIJACKED range")
        assert cats(result) == {Category.HIJACKED}

    def test_hosting_without_malicious_context_ignored(self, categorizer):
        result = categorizer.classify_text(
            PREFIX, "web hosting company, friendly neighborhood ISP"
        )
        assert result.unlabeled

    def test_bulletproof_hosting(self, categorizer):
        result = categorizer.classify_text(
            PREFIX, "bulletproof hosting operation ignoring complaints"
        )
        assert Category.MALICIOUS_HOSTING in cats(result)

    def test_no_keywords_no_override_unlabeled(self, categorizer):
        result = categorizer.classify_text(
            PREFIX, "nothing of note here", sbl_id="SBL1"
        )
        assert result.unlabeled
        assert not result.manual

    def test_override_only_when_no_keywords(self):
        categorizer = Categorizer(
            manual_overrides={"SBL9": [Category.SNOWSHOE]}
        )
        result = categorizer.classify_text(
            PREFIX, "hijacked space", sbl_id="SBL9"
        )
        assert cats(result) == {Category.HIJACKED}
        assert not result.manual

    def test_classify_missing_is_nr(self, categorizer):
        result = categorizer.classify_missing(PREFIX)
        assert cats(result) == {Category.NO_RECORD}


class TestKeywordStatistics:
    def test_statistics_fractions(self, categorizer):
        results = [
            categorizer.classify_text(PREFIX, "hijacked"),
            categorizer.classify_text(PREFIX, "snowshoe"),
            categorizer.classify_text(PREFIX, "snowshoe on stolen AS1"),
            categorizer.classify_text(PREFIX, "no match at all"),
        ]
        stats = categorizer.keyword_statistics(results)
        assert stats["one"] == pytest.approx(0.5)
        assert stats["two_or_more"] == pytest.approx(0.25)
        assert stats["none"] == pytest.approx(0.25)

    def test_statistics_exclude_nr(self, categorizer):
        results = [
            categorizer.classify_text(PREFIX, "hijacked"),
            categorizer.classify_missing(PREFIX),
        ]
        stats = categorizer.keyword_statistics(results)
        assert stats["one"] == 1.0

    def test_statistics_empty(self, categorizer):
        stats = categorizer.keyword_statistics([])
        assert stats == {"one": 0.0, "two_or_more": 0.0, "none": 0.0}


class TestCategoryEnum:
    def test_from_label(self):
        assert Category.from_label("hj") is Category.HIJACKED

    def test_from_label_unknown(self):
        with pytest.raises(ValueError):
            Category.from_label("XX")

    def test_label_round_trip(self):
        for category in Category:
            assert Category.from_label(category.label) is category
