"""Table 1 / §4.2: RPKI uptake, through the lens of DROP.

Compares the RPKI signing rate of three populations of prefixes that had
no ROA at the relevant reference date:

* prefixes never on DROP (per-region base rates: overall 22.3%);
* DROP prefixes Spamhaus removed during the window (42.5%);
* DROP prefixes still listed at the end of the window (13.8%);

plus the §4.2 finding that 82.3% of removed-and-signed prefixes were
signed with an ASN different from the one originating them when listed.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import timedelta

from ..rirstats.rirs import ALL_RIRS
from ..synth.world import World
from .common import DropEntryView, load_entries

__all__ = ["RegionUptake", "Table1", "analyze_rpki_uptake"]


@dataclass(frozen=True, slots=True)
class RegionUptake:
    """One row of Table 1."""

    region: str
    never_signed: int
    never_total: int
    removed_signed: int
    removed_total: int
    present_signed: int
    present_total: int

    @property
    def never_rate(self) -> float:
        """Signing rate of prefixes never on DROP."""
        return self.never_signed / self.never_total if self.never_total else 0.0

    @property
    def removed_rate(self) -> float:
        """Signing rate of prefixes removed from DROP."""
        return (
            self.removed_signed / self.removed_total
            if self.removed_total
            else 0.0
        )

    @property
    def present_rate(self) -> float:
        """Signing rate of prefixes still on DROP."""
        return (
            self.present_signed / self.present_total
            if self.present_total
            else 0.0
        )


@dataclass(frozen=True, slots=True)
class Table1:
    """All rows plus the overall row and the §4.2 ASN-relation split."""

    rows: tuple[RegionUptake, ...]
    overall: RegionUptake
    #: Removed-and-signed prefixes by their signing-ASN relation to the
    #: origin at listing time.
    signed_different_asn: int
    signed_same_asn: int
    signed_no_origin: int

    def row(self, region: str) -> RegionUptake:
        """One region's row."""
        for row in self.rows:
            if row.region == region:
                return row
        raise KeyError(region)

    @property
    def different_asn_rate(self) -> float:
        """Share of removed-and-signed prefixes signed with another ASN."""
        total = (
            self.signed_different_asn
            + self.signed_same_asn
            + self.signed_no_origin
        )
        return self.signed_different_asn / total if total else 0.0

    @property
    def same_asn_rate(self) -> float:
        """Share signed with the ASN that originated them at listing."""
        total = (
            self.signed_different_asn
            + self.signed_same_asn
            + self.signed_no_origin
        )
        return self.signed_same_asn / total if total else 0.0


def analyze_rpki_uptake(
    world: World, entries: list[DropEntryView] | None = None
) -> Table1:
    """Compute Table 1 from the archives.

    The "never on DROP" population is every prefix announced during the
    window that never appeared on DROP, was allocated, and had no
    covering ROA at the window start.  DROP populations are the listed
    prefixes without a ROA at listing, excluding the AFRINIC incidents
    and prefixes unallocated at listing (no registry to sign with).
    """
    if entries is None:
        entries = load_entries(world)
    window = world.window
    drop_prefixes = {e.prefix for e in entries}

    never: dict[str, list[int]] = {r: [0, 0] for r in ALL_RIRS}
    status_index = world.resources.status_index(window.start)
    for prefix in world.bgp.prefixes():
        if prefix in drop_prefixes:
            continue
        if not world.bgp.is_announced(
            prefix, window.start, include_covering=False
        ) and not any(
            interval.start in window
            for interval in world.bgp.intervals_exact(prefix)
        ):
            continue
        if world.roas.has_roa(prefix, window.start):
            continue
        status = status_index.status_of(prefix)
        if not status.is_allocated or status.rir is None:
            continue
        never[status.rir][1] += 1
        first_signed = world.roas.first_signed(prefix)
        if first_signed is not None and first_signed in window:
            never[status.rir][0] += 1

    removed: dict[str, list[int]] = {r: [0, 0] for r in ALL_RIRS}
    present: dict[str, list[int]] = {r: [0, 0] for r in ALL_RIRS}
    different = same = no_origin = 0
    for entry in entries:
        if entry.incident or entry.unallocated or entry.region is None:
            continue
        if world.roas.has_roa(entry.prefix, entry.listed):
            continue
        bucket = removed if entry.removed else present
        bucket[entry.region][1] += 1
        first_signed = world.roas.first_signed(entry.prefix)
        signed = (
            first_signed is not None
            and entry.listed < first_signed <= window.end
        )
        if not signed:
            continue
        bucket[entry.region][0] += 1
        if entry.removed:
            origin_at_listing = _origin_at(world, entry)
            signer_asns = world.roas.signing_asns(
                entry.prefix, window.end
            ) | world.roas.signing_asns(entry.prefix, first_signed)
            signer_asns.discard(0)
            if origin_at_listing is None:
                no_origin += 1
            elif origin_at_listing in signer_asns:
                same += 1
            else:
                different += 1

    rows = tuple(
        RegionUptake(
            region=region,
            never_signed=never[region][0],
            never_total=never[region][1],
            removed_signed=removed[region][0],
            removed_total=removed[region][1],
            present_signed=present[region][0],
            present_total=present[region][1],
        )
        for region in ALL_RIRS
    )
    overall = RegionUptake(
        region="Overall",
        never_signed=sum(r.never_signed for r in rows),
        never_total=sum(r.never_total for r in rows),
        removed_signed=sum(r.removed_signed for r in rows),
        removed_total=sum(r.removed_total for r in rows),
        present_signed=sum(r.present_signed for r in rows),
        present_total=sum(r.present_total for r in rows),
    )
    return Table1(
        rows=rows,
        overall=overall,
        signed_different_asn=different,
        signed_same_asn=same,
        signed_no_origin=no_origin,
    )


def _origin_at(world: World, entry: DropEntryView) -> int | None:
    origins = world.bgp.origins_on(entry.prefix, entry.listed)
    if not origins:
        origins = world.bgp.origins_on(
            entry.prefix, entry.listed - timedelta(days=1)
        )
    return min(origins) if origins else None
