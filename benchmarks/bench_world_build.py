"""World generation and archive round-trip costs."""

from repro.synth import ScenarioConfig, build_world, load_world, save_world


def bench_build_tiny_world(benchmark):
    world = benchmark(build_world, ScenarioConfig.tiny())
    assert len(world.drop.unique_prefixes()) == 712


def bench_archive_round_trip(benchmark, world, entries, tmp_path_factory):
    target = tmp_path_factory.mktemp("archives")

    def run():
        # Weekly snapshots: the shortest DROP stay is ~30 days, so no
        # episode can fall between snapshots and vanish.
        directory = target / "world"
        save_world(world, directory, drop_step_days=7)
        return load_world(directory)

    loaded = benchmark.pedantic(run, rounds=1, iterations=1)
    assert len(loaded.drop.unique_prefixes()) == len(
        world.drop.unique_prefixes()
    )
