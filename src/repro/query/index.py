"""The point-in-time query index: immutable, read-optimized, persisted.

Batch analyses walk whole archives; the serving layer instead answers
"what was the status of this one prefix on date D?" in microseconds.  A
:class:`QueryIndex` is built once per world — four
:class:`~repro.net.radix.PrefixTrie` instances (DROP listings, IRR route
objects, ROAs, BGP route intervals), each entry annotated with its date
interval — and is immutable afterwards: lookups never mutate, so the
index is safe to share across server threads without locks.

The index persists as ``query-index.json`` *inside* the world's cache
entry directory, so it is content-addressed by construction: the entry
directory name is the world's config/generator hash, and a new generator
version lands in a new directory.  The header additionally pins the
index format version, the generator version, and the world key, so a
stale or foreign file never loads.  Loading follows the runtime cache's
corruption discipline: any failure (torn file, bad header, injected
fault at the ``query.index.load`` site) evicts the file and rebuilds
from the world — one rebuild, never an error, never silently wrong
answers.
"""

from __future__ import annotations

import json
import warnings
from dataclasses import dataclass
from datetime import date
from pathlib import Path

from ..errors import ReproError
from ..net.prefix import IPv4Prefix
from ..net.radix import PrefixTrie
from ..net.timeline import DateWindow
from ..rpki.roa import Roa
from ..runtime.faults import corrupt_file, fault_point
from ..obs import Instrumentation
from ..store.container import durable_write
from ..synth.builder import GENERATOR_VERSION
from ..synth.world import World

__all__ = [
    "INDEX_FILENAME",
    "INDEX_FORMAT",
    "DropEntry",
    "IndexLoadError",
    "IrrEntry",
    "QueryIndex",
    "RoaEntry",
    "RouteEntry",
    "build_index",
    "load_index",
    "load_or_build_index",
    "load_persisted_index",
    "save_index",
]

#: On-disk index layout version; bump to orphan every persisted index.
INDEX_FORMAT = 1

#: The index file's name inside a world cache entry (or archive dir).
INDEX_FILENAME = "query-index.json"


class IndexLoadError(ReproError, ValueError):
    """A persisted index that cannot be trusted (torn, stale, foreign)."""

    code = "query.index-stale"


def _active(start: date, end: date | None, day: date) -> bool:
    """Inclusive-start, exclusive-end interval membership (open = forever)."""
    return start <= day and (end is None or day < end)


@dataclass(frozen=True, slots=True)
class DropEntry:
    """One DROP listing episode of a prefix."""

    added: date
    removed: date | None  # first day no longer listed
    sbl_id: str | None

    def listed_on(self, day: date) -> bool:
        return _active(self.added, self.removed, day)


@dataclass(frozen=True, slots=True)
class IrrEntry:
    """One IRR route-object registration lifetime."""

    origin: int
    created: date
    deleted: date | None  # first day the object was gone

    def active_on(self, day: date) -> bool:
        return _active(self.created, self.deleted, day)


@dataclass(frozen=True, slots=True)
class RoaEntry:
    """One ROA lifetime (enough to re-run RFC 6811 validation)."""

    asn: int
    max_length: int | None
    trust_anchor: str
    created: date
    removed: date | None  # first day absent from the archive

    def active_on(self, day: date) -> bool:
        return _active(self.created, self.removed, day)

    def roa(self, prefix: IPv4Prefix) -> Roa:
        """The :class:`~repro.rpki.roa.Roa` payload this entry stores."""
        return Roa(
            prefix=prefix,
            asn=self.asn,
            max_length=self.max_length,
            trust_anchor=self.trust_anchor,
        )


@dataclass(frozen=True, slots=True)
class RouteEntry:
    """One BGP announcement episode, full-table observers interned.

    ``observers_ref`` indexes :attr:`QueryIndex.observer_sets` (route
    intervals overwhelmingly share observer sets, so interning keeps the
    persisted index compact).  ``partials`` carries the DROP-filtering
    peers' carve-outs as ``(peer_id, start, end-inclusive-or-None)``,
    mirroring :class:`~repro.bgp.ribs.PartialObservation`.
    """

    origin: int
    start: date
    end: date | None  # last observed day, inclusive; None = open
    observers_ref: int
    partials: tuple[tuple[int, date, date | None], ...] = ()

    def active_on(self, day: date) -> bool:
        return self.start <= day and (self.end is None or day <= self.end)

    def observers_on(
        self, day: date, sets: list[frozenset[int]]
    ) -> frozenset[int]:
        """Full-table peers with this route in their table on ``day``."""
        if not self.active_on(day):
            return frozenset()
        base = sets[self.observers_ref]
        if not self.partials:
            return base
        seen = set(base)
        for peer_id, start, end in self.partials:
            seen.discard(peer_id)
            if start <= day and (end is None or day <= end):
                seen.add(peer_id)
        return frozenset(seen)


class QueryIndex:
    """Four date-annotated prefix tries plus the run metadata header."""

    __slots__ = (
        "window",
        "total_peers",
        "key",
        "generator",
        "drop",
        "irr",
        "roa",
        "routes",
        "observer_sets",
    )

    def __init__(
        self,
        *,
        window: DateWindow,
        total_peers: int,
        key: str,
        generator: str = GENERATOR_VERSION,
    ) -> None:
        self.window = window
        self.total_peers = total_peers
        self.key = key
        self.generator = generator
        self.drop: PrefixTrie[list[DropEntry]] = PrefixTrie()
        self.irr: PrefixTrie[list[IrrEntry]] = PrefixTrie()
        self.roa: PrefixTrie[list[RoaEntry]] = PrefixTrie()
        self.routes: PrefixTrie[list[RouteEntry]] = PrefixTrie()
        self.observer_sets: list[frozenset[int]] = []

    def sizes(self) -> dict[str, int]:
        """Per-trie entry counts, for health and timing records."""
        return {
            "drop_prefixes": len(self.drop),
            "irr_prefixes": len(self.irr),
            "roa_prefixes": len(self.roa),
            "route_prefixes": len(self.routes),
            "observer_sets": len(self.observer_sets),
        }


# ---------------------------------------------------------------------------
# building
# ---------------------------------------------------------------------------


def build_index(
    world: World,
    *,
    key: str = "",
    instrumentation: Instrumentation | None = None,
) -> QueryIndex:
    """Build the read-optimized index from a world's archives."""
    instr = instrumentation or Instrumentation()
    with instr.stage("index-build", group="query"):
        full_table = world.peers.full_table_peer_ids()
        index = QueryIndex(
            window=world.window,
            total_peers=len(full_table),
            key=key,
        )
        for prefix in world.drop.unique_prefixes():
            index.drop.insert(
                prefix,
                [
                    DropEntry(e.added, e.removed, e.sbl_id)
                    for e in world.drop.episodes_for(prefix)
                ],
            )
        for record in world.irr.records():
            entry = IrrEntry(
                record.route.origin, record.created, record.deleted
            )
            _append(index.irr, record.route.prefix, entry)
        for record in world.roas.records():
            roa = record.roa
            entry = RoaEntry(
                roa.asn,
                roa.max_length,
                roa.trust_anchor,
                record.created,
                record.removed,
            )
            _append(index.roa, roa.prefix, entry)
        interned: dict[frozenset[int], int] = {}
        for interval in world.bgp.all_intervals():
            observers = frozenset(interval.observers) & full_table
            ref = interned.get(observers)
            if ref is None:
                ref = len(index.observer_sets)
                interned[observers] = ref
                index.observer_sets.append(observers)
            entry = RouteEntry(
                origin=interval.origin,
                start=interval.start,
                end=interval.end,
                observers_ref=ref,
                partials=tuple(
                    (p.peer_id, p.start, p.end)
                    for p in interval.partial_observers
                    if p.peer_id in full_table
                ),
            )
            _append(index.routes, interval.prefix, entry)
    instr.incr("query_index_builds")
    return index


def _append(trie: PrefixTrie, prefix: IPv4Prefix, entry) -> None:
    bucket = trie.get(prefix)
    if bucket is None:
        trie.insert(prefix, [entry])
    else:
        bucket.append(entry)


# ---------------------------------------------------------------------------
# persistence
# ---------------------------------------------------------------------------


def _iso(day: date | None) -> str | None:
    return None if day is None else day.isoformat()


def _day(text: str | None) -> date | None:
    return None if text is None else date.fromisoformat(text)


def save_index(
    index: QueryIndex,
    directory: Path,
    *,
    instrumentation: Instrumentation | None = None,
) -> Path | None:
    """Persist the index atomically as ``directory/query-index.json``.

    Write failures (read-only archive dir, disk full, injected fault at
    ``query.index.save``) degrade to an unpersisted index with a counter
    and a warning — the engine works either way, the next run just
    rebuilds.  Returns the written path, or None when degraded.
    """
    instr = instrumentation or Instrumentation()
    payload = {
        "format": INDEX_FORMAT,
        "generator": index.generator,
        "key": index.key,
        "window": [index.window.start.isoformat(),
                   index.window.end.isoformat()],
        "total_peers": index.total_peers,
        "observer_sets": [sorted(s) for s in index.observer_sets],
        "drop": [
            [str(prefix), [[_iso(e.added), _iso(e.removed), e.sbl_id]
                           for e in bucket]]
            for prefix, bucket in index.drop.items()
        ],
        "irr": [
            [str(prefix), [[e.origin, _iso(e.created), _iso(e.deleted)]
                           for e in bucket]]
            for prefix, bucket in index.irr.items()
        ],
        "roa": [
            [str(prefix),
             [[e.asn, e.max_length, e.trust_anchor, _iso(e.created),
               _iso(e.removed)] for e in bucket]]
            for prefix, bucket in index.roa.items()
        ],
        "routes": [
            [str(prefix),
             [[e.origin, _iso(e.start), _iso(e.end), e.observers_ref,
               [[pid, _iso(start), _iso(end)]
                for pid, start, end in e.partials]]
              for e in bucket]]
            for prefix, bucket in index.routes.items()
        ],
    }
    target = directory / INDEX_FILENAME
    try:
        with instr.stage("index-save", group="query"):
            fault_point("query.index.save", instrumentation=instr)
            # durable_write fsyncs the staging file before the rename
            # and the directory after it — the load-site comment about
            # torn files describes a crash mode that must stay
            # unreachable.
            durable_write(
                directory,
                INDEX_FILENAME,
                json.dumps(payload, separators=(",", ":")).encode("utf-8"),
            )
    except OSError as error:
        instr.incr("query_index_store_errors")
        message = f"query index store failed ({error}); continuing unpersisted"
        instr.warn(message)
        warnings.warn(message, RuntimeWarning, stacklevel=2)
        return None
    instr.incr("query_index_stores")
    # The binary columnar sibling: what the fast paths load.  Written
    # after the JSON artifact so a fault degrades to JSON-only, never
    # to binary-without-compat.
    from ..store.index import save_store_index

    save_store_index(index, directory, instrumentation=instr)
    return target


def load_index(
    directory: Path,
    *,
    expected_key: str,
    instrumentation: Instrumentation | None = None,
) -> QueryIndex:
    """Load a persisted index, verifying its header.

    Raises :class:`IndexLoadError` (or the underlying ``OSError`` /
    ``json.JSONDecodeError``) when the file is missing, torn, or was
    built by a different generator or for a different world — callers
    evict and rebuild (see :func:`load_or_build_index`).
    """
    instr = instrumentation or Instrumentation()
    path = directory / INDEX_FILENAME
    with instr.stage("index-load", group="query"):
        # A truncate fault at the load site models a torn file that
        # became visible anyway (crash between write and fsync).
        corrupt_file("query.index.load", path, instrumentation=instr)
        fault_point("query.index.load", instrumentation=instr)
        raw = json.loads(path.read_text())
        if raw.get("format") != INDEX_FORMAT:
            raise IndexLoadError(
                f"index format {raw.get('format')!r} != {INDEX_FORMAT}"
            )
        if raw.get("generator") != GENERATOR_VERSION:
            raise IndexLoadError(
                f"index generator {raw.get('generator')!r} != "
                f"{GENERATOR_VERSION!r}"
            )
        if expected_key and raw.get("key") != expected_key:
            raise IndexLoadError(
                f"index key {raw.get('key')!r} != {expected_key!r}"
            )
        start, end = raw["window"]
        index = QueryIndex(
            window=DateWindow(date.fromisoformat(start),
                              date.fromisoformat(end)),
            total_peers=raw["total_peers"],
            key=raw["key"],
            generator=raw["generator"],
        )
        index.observer_sets = [frozenset(s) for s in raw["observer_sets"]]
        for prefix_text, bucket in raw["drop"]:
            index.drop.insert(
                IPv4Prefix.parse(prefix_text),
                [DropEntry(_day(a), _day(r), sbl)  # type: ignore[arg-type]
                 for a, r, sbl in bucket],
            )
        for prefix_text, bucket in raw["irr"]:
            index.irr.insert(
                IPv4Prefix.parse(prefix_text),
                [IrrEntry(o, _day(c), _day(d))  # type: ignore[arg-type]
                 for o, c, d in bucket],
            )
        for prefix_text, bucket in raw["roa"]:
            index.roa.insert(
                IPv4Prefix.parse(prefix_text),
                [RoaEntry(asn, ml, ta, _day(c), _day(r))  # type: ignore[arg-type]
                 for asn, ml, ta, c, r in bucket],
            )
        for prefix_text, bucket in raw["routes"]:
            index.routes.insert(
                IPv4Prefix.parse(prefix_text),
                [
                    RouteEntry(
                        origin=o,
                        start=_day(s),  # type: ignore[arg-type]
                        end=_day(e),
                        observers_ref=ref,
                        partials=tuple(
                            (pid, _day(ps), _day(pe))  # type: ignore[misc]
                            for pid, ps, pe in partials
                        ),
                    )
                    for o, s, e, ref, partials in bucket
                ],
            )
    instr.incr("query_index_loads")
    return index


def load_persisted_index(
    directory: Path,
    *,
    expected_key: str,
    instrumentation: Instrumentation | None = None,
) -> QueryIndex | None:
    """Any trustworthy persisted index in ``directory``, or ``None``.

    Tries the binary columnar store first (mmap, lazy zero-copy views),
    then the JSON compatibility artifact.  Either artifact failing its
    header pins or checksums is evicted (``store_evictions`` /
    ``query_index_evictions``) before the next fallback; returns
    ``None`` when nothing trustworthy remains, and callers rebuild.
    """
    instr = instrumentation or Instrumentation()
    # Imported lazily: repro.store.index imports this module.
    from ..store.index import STORE_INDEX_FILENAME, load_store_index

    store_path = directory / STORE_INDEX_FILENAME
    if store_path.exists():
        try:
            return load_store_index(
                directory, expected_key=expected_key, instrumentation=instr
            )
        except Exception:
            store_path.unlink(missing_ok=True)
            instr.incr("store_evictions")
    if (directory / INDEX_FILENAME).exists():
        try:
            return load_index(
                directory, expected_key=expected_key, instrumentation=instr
            )
        except Exception:
            (directory / INDEX_FILENAME).unlink(missing_ok=True)
            instr.incr("query_index_evictions")
    return None


def load_or_build_index(
    world: World,
    directory: Path | None,
    *,
    key: str = "",
    instrumentation: Instrumentation | None = None,
) -> QueryIndex:
    """The index for ``world``: persisted if possible, else built.

    With a ``directory`` (the world's cache entry or archive dir), a
    valid persisted index — binary store first, JSON fallback — loads
    without touching the archives; a torn or stale one is evicted and
    transparently rebuilt and re-stored.  Without a directory the index
    is built in memory only.
    """
    instr = instrumentation or Instrumentation()
    if directory is not None:
        index = load_persisted_index(
            directory, expected_key=key, instrumentation=instr
        )
        if index is not None:
            return index
    index = build_index(world, key=key, instrumentation=instr)
    if directory is not None:
        save_index(index, directory, instrumentation=instr)
    return index
