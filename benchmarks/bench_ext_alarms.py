"""Extension bench: hijack-detection monitoring vs the blocklist."""

from repro.analysis import evaluate_alarms


def bench_ext_alarm_evaluation(benchmark, world, entries):
    result = benchmark(evaluate_alarms, world, entries)
    # Shape: monitoring detects everything it can baseline, months ahead
    # of the blocklist — but can baseline almost nothing (abandonment).
    assert result.enrollable_share < 0.1
    assert result.detected == len(result.monitored) > 0
    assert result.median_lead_days and result.median_lead_days > 100
