"""Figure 1 / Table 2: classification of DROP entries.

Reproduces the paper's §3.1 breakdown: per category, how many prefixes
appeared on DROP (split into "exclusive" — the only label — and
"additional" — carried alongside another label) and how much address
space those prefixes cover, plus the AFRINIC-incident share hatched into
the hijack bars, and the Appendix-A keyword statistics.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..drop.categories import FIGURE1_ORDER, Category
from ..drop.categorize import Categorizer
from ..net.prefix import slash8_equivalents
from ..synth.world import World
from .common import DropEntryView, load_entries

__all__ = ["CategoryBar", "ClassificationResult", "classify_drop"]


@dataclass(frozen=True, slots=True)
class CategoryBar:
    """One bar pair of Figure 1."""

    category: Category
    exclusive_prefixes: int
    additional_prefixes: int
    incident_prefixes: int
    addresses: int
    incident_addresses: int

    @property
    def total_prefixes(self) -> int:
        """All prefixes carrying this label."""
        return self.exclusive_prefixes + self.additional_prefixes

    @property
    def slash8(self) -> float:
        """Address space carrying this label, in /8 equivalents."""
        return slash8_equivalents(self.addresses)


@dataclass(frozen=True, slots=True)
class ClassificationResult:
    """Everything Figure 1 and Appendix A report."""

    bars: tuple[CategoryBar, ...]
    total_prefixes: int
    with_record: int
    total_addresses: int
    incident_prefixes: int
    incident_addresses: int
    keyword_stats: dict[str, float]
    overlap_prefixes: int

    def bar(self, category: Category) -> CategoryBar:
        """The bar for one category."""
        for bar in self.bars:
            if bar.category is category:
                return bar
        raise KeyError(category)

    @property
    def incident_space_share(self) -> float:
        """The incidents' share of all DROP address space (paper: 48.8%)."""
        if self.total_addresses == 0:
            return 0.0
        return self.incident_addresses / self.total_addresses

    def space_share(self, category: Category) -> float:
        """One category's share of DROP address space (SS: 8.5%)."""
        if self.total_addresses == 0:
            return 0.0
        return self.bar(category).addresses / self.total_addresses


def classify_drop(
    world: World, entries: list[DropEntryView] | None = None
) -> ClassificationResult:
    """Run the Figure 1 classification over a world."""
    if entries is None:
        entries = load_entries(world)
    bars = []
    for category in FIGURE1_ORDER:
        exclusive = additional = incidents = 0
        addresses = incident_addresses = 0
        for entry in entries:
            if category not in entry.categories:
                continue
            if len(entry.categories) == 1:
                exclusive += 1
            else:
                additional += 1
            addresses += entry.prefix.num_addresses
            if entry.incident:
                incidents += 1
                incident_addresses += entry.prefix.num_addresses
        bars.append(
            CategoryBar(
                category=category,
                exclusive_prefixes=exclusive,
                additional_prefixes=additional,
                incident_prefixes=incidents,
                addresses=addresses,
                incident_addresses=incident_addresses,
            )
        )
    categorizer = Categorizer(manual_overrides=world.manual_overrides)
    results = []
    for entry in entries:
        record = world.sbl.record_for_prefix(entry.prefix)
        if record is None:
            results.append(categorizer.classify_missing(entry.prefix))
        else:
            results.append(categorizer.classify_record(record))
    total_addresses = sum(e.prefix.num_addresses for e in entries)
    return ClassificationResult(
        bars=tuple(bars),
        total_prefixes=len(entries),
        with_record=sum(
            1 for e in entries if Category.NO_RECORD not in e.categories
        ),
        total_addresses=total_addresses,
        incident_prefixes=sum(1 for e in entries if e.incident),
        incident_addresses=sum(
            e.prefix.num_addresses for e in entries if e.incident
        ),
        keyword_stats=categorizer.keyword_statistics(results),
        overlap_prefixes=sum(
            1
            for e in entries
            if len(e.categories) > 1
            and Category.NO_RECORD not in e.categories
        ),
    )
