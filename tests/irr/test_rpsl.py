"""Unit tests for repro.irr.rpsl."""

import pytest

from repro.irr.rpsl import (
    Maintainer,
    Organisation,
    RouteObject,
    RpslError,
    RpslObject,
    emit_objects,
    parse_objects,
)
from repro.net.prefix import IPv4Prefix

SAMPLE = """\
% RADb flat file excerpt

route:      192.0.2.0/24
descr:      Example network
origin:     AS64500
org:        ORG-EX1
mnt-by:     MAINT-EX
source:     RADB

# a comment line
mntner:     MAINT-EX
org:        ORG-EX1
upd-to:     noc@example.net
source:     RADB

organisation: ORG-EX1
org-name:     Example Org
source:       RADB
"""


class TestParser:
    def test_parses_three_objects(self):
        objects = list(parse_objects(SAMPLE))
        assert [o.object_class for o in objects] == [
            "route", "mntner", "organisation"
        ]

    def test_attribute_access(self):
        route = next(parse_objects(SAMPLE))
        assert route.key == "192.0.2.0/24"
        assert route.first("origin") == "AS64500"
        assert route.first("missing") is None

    def test_continuation_lines(self):
        text = "route: 192.0.2.0/24\ndescr: line one\n+ line two\norigin: AS1\n"
        obj = next(parse_objects(text))
        assert obj.first("descr") == "line one line two"

    def test_whitespace_continuation(self):
        text = "route: 192.0.2.0/24\ndescr: line one\n    more text\norigin: AS1\n"
        obj = next(parse_objects(text))
        assert obj.first("descr") == "line one more text"

    def test_continuation_without_attribute_raises(self):
        with pytest.raises(RpslError):
            list(parse_objects("   dangling\n"))

    def test_non_attribute_line_raises(self):
        with pytest.raises(RpslError):
            list(parse_objects("route 192.0.2.0/24\n"))

    def test_all_multiple_values(self):
        text = "route: 1.0.0.0/24\norigin: AS1\nmember-of: RS-A\nmember-of: RS-B\n"
        obj = next(parse_objects(text))
        assert obj.all("member-of") == ["RS-A", "RS-B"]

    def test_empty_object_rejected(self):
        with pytest.raises(RpslError):
            RpslObject(())

    def test_emit_parse_round_trip(self):
        objects = list(parse_objects(SAMPLE))
        text = emit_objects(objects)
        reparsed = list(parse_objects(text))
        assert [o.attributes for o in reparsed] == [
            o.attributes for o in objects
        ]


class TestRouteObject:
    def test_from_rpsl(self):
        route = RouteObject.from_rpsl(next(parse_objects(SAMPLE)))
        assert route.prefix == IPv4Prefix.parse("192.0.2.0/24")
        assert route.origin == 64500
        assert route.maintainer == "MAINT-EX"
        assert route.org_id == "ORG-EX1"

    def test_to_rpsl_round_trip(self):
        route = RouteObject(
            prefix=IPv4Prefix.parse("192.0.2.0/24"),
            origin=64500,
            maintainer="MAINT-EX",
            org_id="ORG-EX1",
            descr="test",
        )
        assert RouteObject.from_rpsl(route.to_rpsl()) == route

    def test_wrong_class_rejected(self):
        obj = RpslObject((("mntner", "X"),))
        with pytest.raises(RpslError):
            RouteObject.from_rpsl(obj)

    def test_missing_origin_rejected(self):
        obj = RpslObject((("route", "192.0.2.0/24"),))
        with pytest.raises(RpslError):
            RouteObject.from_rpsl(obj)


class TestMaintainerOrganisation:
    def test_maintainer_round_trip(self):
        objects = list(parse_objects(SAMPLE))
        maintainer = Maintainer.from_rpsl(objects[1])
        assert maintainer.name == "MAINT-EX"
        assert maintainer.email == "noc@example.net"
        assert Maintainer.from_rpsl(maintainer.to_rpsl()) == maintainer

    def test_organisation_round_trip(self):
        objects = list(parse_objects(SAMPLE))
        org = Organisation.from_rpsl(objects[2])
        assert org.org_id == "ORG-EX1"
        assert org.name == "Example Org"
        assert Organisation.from_rpsl(org.to_rpsl()) == org

    def test_wrong_class_rejected(self):
        obj = RpslObject((("route", "192.0.2.0/24"),))
        with pytest.raises(RpslError):
            Maintainer.from_rpsl(obj)
        with pytest.raises(RpslError):
            Organisation.from_rpsl(obj)
