"""maxLength audit (the Gilad et al. extension the paper cites in §2.3).

A ROA whose ``maxLength`` exceeds its prefix length authorizes
more-specific announcements the holder may never make.  An attacker who
forges the holder's ASN as origin can announce such an unannounced
more-specific and win best-path on specificity while remaining
RPKI-valid — the forged-origin sub-prefix hijack.  Gilad et al. found
84% of maxLength-using ROAs vulnerable in 2017; this audit runs the same
check over the study's ROA archive on any day.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import date

from ..net.prefix import IPv4Prefix
from ..rpki.roa import Roa
from ..rpki.tal import TalSet
from ..synth.world import World

__all__ = ["MaxLengthAudit", "VulnerableRoa", "audit_maxlength"]


@dataclass(frozen=True, slots=True)
class VulnerableRoa:
    """One maxLength-using ROA with unannounced authorized space."""

    roa: Roa
    #: More-specifics the ROA authorizes at one level deeper than the
    #: longest announced cover — each is a ready-made hijack target.
    example_target: IPv4Prefix


@dataclass(frozen=True, slots=True)
class MaxLengthAudit:
    """The audit's aggregate view."""

    day: date
    total_roas: int
    using_maxlength: int
    vulnerable: tuple[VulnerableRoa, ...]

    @property
    def usage_rate(self) -> float:
        """Share of ROAs that use maxLength at all."""
        return (
            self.using_maxlength / self.total_roas if self.total_roas else 0.0
        )

    @property
    def vulnerable_rate(self) -> float:
        """Share of maxLength-using ROAs that are attackable.

        Gilad et al. measured 84% in June 2017.
        """
        if not self.using_maxlength:
            return 0.0
        return len(self.vulnerable) / self.using_maxlength


def audit_maxlength(
    world: World,
    day: date | None = None,
    tals: TalSet | None = None,
) -> MaxLengthAudit:
    """Audit every published ROA on ``day`` (default: window end).

    A maxLength-using ROA is *vulnerable* if some prefix it authorizes
    (at any length up to maxLength) is not exactly announced by the
    authorized ASN — an attacker can originate that prefix with the
    ROA's ASN forged and stay RPKI-valid while being more specific than
    the legitimate route.
    """
    if day is None:
        day = world.window.end
    tals = tals or TalSet.default()
    total = 0
    using = 0
    vulnerable: list[VulnerableRoa] = []
    for record in world.roas.records():
        if not record.active_on(day):
            continue
        if not tals.trusts(record.roa.trust_anchor):
            continue
        total += 1
        roa = record.roa
        if roa.is_as0 or not roa.uses_max_length:
            continue
        using += 1
        target = _unannounced_authorized_subprefix(world, roa, day)
        if target is not None:
            vulnerable.append(VulnerableRoa(roa=roa, example_target=target))
    return MaxLengthAudit(
        day=day,
        total_roas=total,
        using_maxlength=using,
        vulnerable=tuple(vulnerable),
    )


def _unannounced_authorized_subprefix(
    world: World, roa: Roa, day: date
) -> IPv4Prefix | None:
    """An authorized more-specific the owner does not announce, if any.

    Scans one level past the announced prefixes (checking every length to
    maxLength would be exponential; one level suffices to prove the
    vulnerability, exactly as an attacker needs only one target).
    """
    for length in range(roa.prefix.length + 1, roa.effective_max_length + 1):
        for candidate in roa.prefix.subnets(length):
            announced = any(
                interval.active_on(day) and interval.origin == roa.asn
                for interval in world.bgp.intervals_exact(candidate)
            )
            if not announced:
                return candidate
        # All subnets at this level announced; go one level deeper.
    return None
