"""Extension: would hijack-detection monitoring have beaten the DROP list?

Defense class 2 in the paper's taxonomy is route-hijack detection
(PHAS [26], ARTEMIS [47]).  This evaluation enrolls every hijack-labeled
DROP prefix that *could* be enrolled — one with enough legitimate BGP
history to baseline — into :class:`~repro.bgp.alarms.HijackMonitor` and
measures how many days before the Spamhaus listing an alarm would have
fired.

The punchline mirrors §6.2.1's abandonment observation: most DROP
hijacks target prefixes with *no* legitimate history at all (abandoned or
never-routed space), which a monitor cannot baseline — detection has the
same blind spot AS0 is designed to close.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import date, timedelta

from ..bgp.alarms import Alarm, HijackMonitor, ProtectedPrefix
from ..drop.categories import Category
from ..net.prefix import IPv4Prefix
from ..synth.world import World
from .common import DropEntryView, load_entries

__all__ = ["AlarmEvaluation", "MonitoredHijack", "evaluate_alarms"]


@dataclass(frozen=True, slots=True)
class MonitoredHijack:
    """One enrollable hijacked prefix and its detection outcome."""

    prefix: IPv4Prefix
    listed: date
    first_alarm: date | None
    alarm_kinds: tuple[str, ...]

    @property
    def detected(self) -> bool:
        """True if any alarm fired at all."""
        return self.first_alarm is not None

    @property
    def lead_days(self) -> int | None:
        """Days between first alarm and DROP listing (positive = earlier)."""
        if self.first_alarm is None:
            return None
        return (self.listed - self.first_alarm).days


@dataclass(frozen=True, slots=True)
class AlarmEvaluation:
    """Aggregate monitoring-vs-blocklisting comparison."""

    hijacked_total: int
    enrollable: int
    monitored: tuple[MonitoredHijack, ...]

    @property
    def enrollable_share(self) -> float:
        """Hijacked prefixes with baselinable history (the minority)."""
        return (
            self.enrollable / self.hijacked_total
            if self.hijacked_total
            else 0.0
        )

    @property
    def detected(self) -> int:
        """Enrolled prefixes for which an alarm fired."""
        return sum(1 for m in self.monitored if m.detected)

    @property
    def median_lead_days(self) -> float | None:
        """Median detection lead over the DROP listing."""
        leads = sorted(
            m.lead_days for m in self.monitored if m.lead_days is not None
        )
        if not leads:
            return None
        mid = len(leads) // 2
        if len(leads) % 2:
            return float(leads[mid])
        return (leads[mid - 1] + leads[mid]) / 2.0


def evaluate_alarms(
    world: World,
    entries: list[DropEntryView] | None = None,
    *,
    baseline_days: int = 730,
) -> AlarmEvaluation:
    """Enroll baselinable hijacked prefixes and replay the route stream.

    A prefix is *enrollable* if, at least ``baseline_days`` before its
    listing, some origin was announcing it — that origin (and its
    then-upstreams) become the monitor's legitimate configuration, with
    the remaining pre-listing year used for upstream learning.
    """
    if entries is None:
        entries = load_entries(world)
    hijacked = [
        e
        for e in entries
        if Category.HIJACKED in e.categories and not e.incident
    ]
    monitored: list[MonitoredHijack] = []
    enrollable = 0
    for entry in hijacked:
        horizon = entry.listed - timedelta(days=baseline_days)
        legit_origins = world.bgp.historic_origins(entry.prefix, horizon)
        if not legit_origins:
            continue
        enrollable += 1
        monitor = HijackMonitor(
            [ProtectedPrefix(entry.prefix, frozenset(legit_origins))],
            baseline_until=horizon,
        )
        alarms: list[Alarm] = [
            a for a in monitor.scan(world.bgp) if a.day <= entry.listed
        ]
        first = min((a.day for a in alarms), default=None)
        monitored.append(
            MonitoredHijack(
                prefix=entry.prefix,
                listed=entry.listed,
                first_alarm=first,
                alarm_kinds=tuple(
                    sorted({str(a.kind) for a in alarms})
                ),
            )
        )
    return AlarmEvaluation(
        hijacked_total=len(hijacked),
        enrollable=enrollable,
        monitored=tuple(monitored),
    )
