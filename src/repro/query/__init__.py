"""Query subsystem: point-in-time prefix lookups, batch API, daemons.

The serving layer on top of the runtime world cache:

* :mod:`repro.query.index` — the immutable, read-optimized, persisted
  :class:`QueryIndex` (date-annotated prefix tries, content-addressed
  alongside the world's cache entry);
* :mod:`repro.query.engine` — :class:`QueryEngine` with
  ``lookup(prefix, on=day)`` / ``lookup_many`` returning the unified
  :class:`PrefixStatus`;
* :mod:`repro.query.http` — :class:`ServerCore`, the
  transport-independent request handler both daemons share (one code
  path, byte-identical contract), plus the stable-coded request
  errors;
* :mod:`repro.query.server` — the threaded ``repro-drop serve`` daemon
  (stdlib ``http.server``);
* :mod:`repro.query.aserver` — the asyncio multi-worker tier
  (``serve --async --workers N``) with hot reload and graceful drain.
"""

from .aserver import AsyncQueryServer
from .engine import (
    BatchParseError,
    PrefixStatus,
    QueryEngine,
    parse_query_batch,
    parse_query_line,
)
from .http import (
    MAX_BATCH_BYTES,
    BadDayError,
    BadPrefixError,
    NotFoundError,
    ReloadError,
    RequestError,
    ServerCore,
)
from .index import (
    INDEX_FILENAME,
    INDEX_FORMAT,
    IndexLoadError,
    QueryIndex,
    build_index,
    load_index,
    load_persisted_index,
    load_or_build_index,
    save_index,
)
from .server import QueryServer

__all__ = [
    "AsyncQueryServer",
    "BadDayError",
    "BadPrefixError",
    "BatchParseError",
    "INDEX_FILENAME",
    "INDEX_FORMAT",
    "IndexLoadError",
    "MAX_BATCH_BYTES",
    "NotFoundError",
    "PrefixStatus",
    "QueryEngine",
    "QueryIndex",
    "QueryServer",
    "ReloadError",
    "RequestError",
    "ServerCore",
    "build_index",
    "load_index",
    "load_persisted_index",
    "load_or_build_index",
    "parse_query_batch",
    "parse_query_line",
    "save_index",
]
