"""Tests for the repro-drop command-line interface."""

import pytest

from repro.cli import EXIT_DEGRADED, build_parser, main
from repro.reporting import EXPERIMENTS


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_build_requires_out(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["build"])

    def test_report_defaults(self):
        args = build_parser().parse_args(["report", "--exp", "tab1"])
        assert args.scale == "tiny"
        assert args.exp == ["tab1"]
        assert not args.all

    def test_jobs_zero_accepted(self):
        args = build_parser().parse_args(["report", "--exp", "tab1",
                                          "--jobs", "0"])
        assert args.jobs == 0

    def test_jobs_negative_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["report", "--exp", "tab1",
                                       "--jobs", "-2"])
        assert excinfo.value.code == 2
        assert "must be >= 0" in capsys.readouterr().err

    def test_jobs_garbage_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["report", "--exp", "tab1",
                                       "--jobs", "many"])
        assert excinfo.value.code == 2
        assert "invalid" in capsys.readouterr().err


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out.splitlines()
        assert set(out) == set(EXPERIMENTS)

    def test_report_single_experiment(self, capsys):
        assert main(["report", "--exp", "tab2"]) == 0
        out = capsys.readouterr().out
        assert "Appendix A" in out
        assert "measured" in out

    def test_report_unknown_experiment(self, capsys):
        assert main(["report", "--exp", "nope"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_report_nothing_selected(self, capsys):
        assert main(["report"]) == 2
        assert "nothing to run" in capsys.readouterr().err

    def test_build_then_report_from_archives(self, tmp_path, capsys):
        out_dir = tmp_path / "archives"
        assert main(["build", "--out", str(out_dir), "--seed", "5"]) == 0
        built = capsys.readouterr().out
        assert "712 DROP prefixes" in built
        assert (out_dir / "sbl.jsonl").exists()
        assert main(
            ["report", "--archives", str(out_dir), "--exp", "fig2-peers"]
        ) == 0
        report = capsys.readouterr().out
        assert "peers filtering DROP" in report

    def test_markdown(self, capsys):
        assert main(["markdown"]) == 0
        out = capsys.readouterr().out
        assert "### fig1" in out
        assert "### ext-rov" in out
        assert "| metric | paper | measured |" in out


class TestDegradedRuns:
    def test_env_jobs_negative_is_a_usage_error(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_JOBS", "-2")
        with pytest.raises(SystemExit) as excinfo:
            main(["report", "--exp", "tab2"])
        assert excinfo.value.code == 2
        assert "jobs must be >= 0" in capsys.readouterr().err

    def test_corrupt_cache_entry_degrades_exit_status(
        self, tmp_path, capsys
    ):
        args = ["report", "--exp", "tab2", "--cache-dir", str(tmp_path)]
        assert main(args) == 0
        capsys.readouterr()
        (entry,) = (tmp_path / "worlds").iterdir()
        (entry / "config.json").write_text("{ torn")
        # The run self-heals (evict + rebuild) but reports degradation.
        assert main(args) == EXIT_DEGRADED
        captured = capsys.readouterr()
        assert "Appendix A" in captured.out  # full, correct report
        assert "degraded run:" in captured.err
        assert "world_cache_evictions=1" in captured.err
        # A healthy entry was re-stored: the next run is clean again.
        assert main(args) == 0
