"""Sweep engine tests: fan-out, resume, failure isolation, recovery.

Cells share the suite's session cache, so later tests (and the CLI
tests) resolve the same scenarios as hits — exactly the resume
semantics the engine promises.
"""

import pytest

from repro.obs import Instrumentation
from repro.runtime import faults
from repro.sweep import SweepSpec, run_sweep
import repro.sweep.engine as engine_mod

#: The standard 2-cell sweep the engine/CLI tests share via the cache.
SPEC = SweepSpec(
    name="engine-test",
    families=("prefix-hijack",),
    attack_count=1,
    rov_rates=(0.0, 0.6),
)


def _metric_rows(outcome):
    return [
        (c.name, c.status, c.metrics["families"] if c.metrics else None)
        for c in outcome.cells
    ]


class TestRunAndResume:
    def test_cold_run_builds_then_resume_builds_zero(self, tmp_path):
        root = tmp_path / "cache"
        cold_instr = Instrumentation()
        cold = run_sweep(SPEC, cache_root=root, instrumentation=cold_instr)
        assert [c.status for c in cold.cells] == ["ok", "ok"]
        assert cold.worlds_built == 2
        assert cold_instr.counters.get("sweep_worlds_built") == 2
        assert cold_instr.counters.get("scenario_cache_misses") == 2

        warm_instr = Instrumentation()
        warm = run_sweep(SPEC, cache_root=root, instrumentation=warm_instr)
        assert [c.cache_status for c in warm.cells] == ["hit", "hit"]
        assert warm.worlds_built == 0
        assert warm_instr.counters.get("sweep_worlds_built") is None
        assert warm_instr.counters.get("scenario_cache_hits") == 2
        assert _metric_rows(warm) == _metric_rows(cold)

    def test_parallel_run_matches_serial(self):
        serial = run_sweep(SPEC)
        parallel = run_sweep(SPEC, jobs=2)
        assert _metric_rows(parallel) == _metric_rows(serial)
        assert parallel.report["families"] == serial.report["families"]

    def test_report_carries_curves_and_spec(self):
        outcome = run_sweep(SPEC)
        report = outcome.report
        assert report["cells_ok"] == 2
        curve = report["families"]["prefix-hijack"]["curves"]["rov"]
        assert [point["rate"] for point in curve] == [0.0, 0.6]
        # ROV bites: higher deployment, lower attack visibility.
        assert curve[1]["visibility"] < curve[0]["visibility"]
        assert report["spec"] == SPEC.canonical_dict()


class TestBaseSnapshots:
    def test_cold_sweep_builds_one_base_and_warm_builds_none(
        self, tmp_path
    ):
        from repro.runtime import cache as cache_mod

        cache_mod._BASE_LRU.clear()
        root = tmp_path / "cache"
        cold_instr = Instrumentation()
        cold = run_sweep(SPEC, cache_root=root, instrumentation=cold_instr)
        assert [c.status for c in cold.cells] == ["ok", "ok"]
        # One distinct scale+seed in the grid: exactly one base built,
        # shared by every cell.
        assert cold.report["bases_built"] == 1
        assert cold.report["base_seconds"] > 0
        assert cold_instr.counters.get("sweep_bases_built") == 1
        assert cold_instr.counters.get("base_cache_misses") == 1

        warm_instr = Instrumentation()
        warm = run_sweep(SPEC, cache_root=root, instrumentation=warm_instr)
        assert [c.cache_status for c in warm.cells] == ["hit", "hit"]
        assert warm.report["bases_built"] == 0
        assert warm_instr.counters.get("sweep_bases_built") is None
        assert warm_instr.counters.get("sweep_fast_path_hits") == 2

    def test_warm_cells_never_load_a_world(self, tmp_path, monkeypatch):
        root = tmp_path / "cache"
        cold = run_sweep(SPEC, cache_root=root)
        assert [c.status for c in cold.cells] == ["ok", "ok"]

        def boom(directory):
            raise AssertionError(f"warm sweep loaded a world: {directory}")

        # jobs=1 runs cells serially in the parent, so the monkeypatch
        # reaches them; any attempt to load a world archive fails loud.
        monkeypatch.setattr("repro.runtime.cache.load_world", boom)
        warm = run_sweep(SPEC, cache_root=root)
        assert [c.status for c in warm.cells] == ["ok", "ok"]
        assert [c.cache_status for c in warm.cells] == ["hit", "hit"]
        assert _metric_rows(warm) == _metric_rows(cold)


class TestWorldsBuiltAccounting:
    def test_failed_cell_still_counts_its_built_world(
        self, tmp_path, monkeypatch
    ):
        # A cell can build its world and then die in evaluation; the
        # counter, the report, and the outcome property must agree that
        # the world was built (the property always counted it — the
        # counter used to skip non-ok cells).
        def explode(world, truth):
            raise RuntimeError("evaluation exploded")

        monkeypatch.setattr(engine_mod, "evaluate_scenario", explode)
        instr = Instrumentation()
        outcome = run_sweep(
            SPEC, cache_root=tmp_path / "cache", instrumentation=instr
        )
        assert [c.status for c in outcome.cells] == ["failed", "failed"]
        assert [c.cache_status for c in outcome.cells] == ["miss", "miss"]
        assert outcome.worlds_built == 2
        assert outcome.report["worlds_built"] == 2
        assert instr.counters.get("sweep_worlds_built") == 2


class TestFailureIsolation:
    def test_failed_cell_is_isolated_and_kinded(self):
        instr = Instrumentation()
        with faults.injected("io-error@sweep.cell:*"):
            outcome = run_sweep(SPEC, instrumentation=instr)
        statuses = [c.status for c in outcome.cells]
        assert statuses == ["failed", "ok"]
        (failed,) = outcome.failed
        assert failed.kind == "InjectedIOError"
        assert "sweep.cell" in failed.error
        assert instr.counters.get("sweep_cells_failed") == 1
        assert instr.counters.get("sweep_cells_ok") == 1
        assert outcome.report["failed_cells"] == [
            {
                "name": failed.name,
                "kind": failed.kind,
                "error": failed.error,
            }
        ]

    def test_failed_cells_stay_out_of_aggregates(self):
        with faults.injected("io-error@sweep.cell:*"):
            outcome = run_sweep(SPEC)
        family = outcome.report["families"]["prefix-hijack"]
        assert family["cells"] == 1

    def test_plan_fault_fails_the_whole_sweep(self):
        with faults.injected("io-error@sweep.plan"):
            with pytest.raises(OSError):
                run_sweep(SPEC)

    def test_collect_fault_fails_the_whole_sweep(self):
        with faults.injected("io-error@sweep.collect"):
            with pytest.raises(OSError):
                run_sweep(SPEC)


class TestWorkerLossRecovery:
    def test_crashed_workers_fall_back_to_serial_in_parent(
        self, monkeypatch
    ):
        # Both workers die at their first cell; the pool breaks and the
        # parent recomputes every cell serially (crash faults never
        # fire in the parent), so results are complete.
        monkeypatch.setenv("REPRO_FAULTS", "crash@sweep.cell:**2")
        outcome = run_sweep(SPEC, jobs=2)
        assert [c.status for c in outcome.cells] == ["ok", "ok"]
