"""Unit tests for the shared analysis plumbing (entry views, incidents)."""

from datetime import date


from repro.analysis.common import DropEntryView, detect_incidents
from repro.drop.categories import Category
from repro.net.prefix import IPv4Prefix


def entry(cidr, listed=date(2020, 1, 1), region="AFRINIC",
          categories=(Category.HIJACKED,)):
    return DropEntryView(
        prefix=IPv4Prefix.parse(cidr),
        listed=listed,
        removed_on=None,
        sbl_id=None,
        categories=frozenset(categories),
        manual_classification=False,
        mentioned_asns=(),
        region=region,
        allocated_at_listing=True,
    )


class TestDetectIncidents:
    def test_cluster_of_large_same_day_prefixes(self):
        cluster = [entry(f"102.{i}.0.0/16") for i in range(12)]
        found = detect_incidents(cluster)
        assert found == {e.prefix for e in cluster}

    def test_small_cluster_not_flagged(self):
        cluster = [entry(f"102.{i}.0.0/16") for i in range(5)]
        assert detect_incidents(cluster) == set()

    def test_many_tiny_prefixes_not_flagged(self):
        # 12 prefixes but trivial space: below the /14 threshold.
        cluster = [entry(f"102.0.{i}.0/24") for i in range(12)]
        assert detect_incidents(cluster) == set()

    def test_different_days_not_clustered(self):
        spread = [
            entry(f"102.{i}.0.0/16", listed=date(2020, 1, 1 + i))
            for i in range(12)
        ]
        assert detect_incidents(spread) == set()

    def test_different_regions_not_clustered(self):
        mixed = [
            entry(f"102.{i}.0.0/16",
                  region="AFRINIC" if i % 2 else "ARIN")
            for i in range(12)
        ]
        assert detect_incidents(mixed) == set()

    def test_two_separate_clusters_both_found(self):
        a = [entry(f"102.{i}.0.0/16", listed=date(2019, 7, 15))
             for i in range(11)]
        b = [entry(f"105.{i}.0.0/16", listed=date(2021, 3, 10))
             for i in range(11)]
        found = detect_incidents(a + b)
        assert len(found) == 22


class TestDropEntryView:
    def test_removed_property(self):
        listed = entry("102.0.0.0/16")
        assert not listed.removed
        gone = DropEntryView(
            prefix=IPv4Prefix.parse("102.0.0.0/16"),
            listed=date(2020, 1, 1),
            removed_on=date(2020, 6, 1),
            sbl_id="SBL1",
            categories=frozenset({Category.SNOWSHOE}),
            manual_classification=False,
            mentioned_asns=(),
            region="APNIC",
            allocated_at_listing=True,
        )
        assert gone.removed

    def test_unallocated_property(self):
        ua = DropEntryView(
            prefix=IPv4Prefix.parse("102.0.0.0/16"),
            listed=date(2020, 1, 1),
            removed_on=None,
            sbl_id=None,
            categories=frozenset({Category.UNALLOCATED}),
            manual_classification=False,
            mentioned_asns=(),
            region="AFRINIC",
            allocated_at_listing=False,
        )
        assert ua.unallocated
        assert ua.has_category(Category.UNALLOCATED)
        assert not ua.has_category(Category.HIJACKED)
