"""Text renderings of the paper's figure data: CDFs, series, timelines.

Benchmarks and examples print these so a reproduction run shows the same
*shapes* the paper plots, without any plotting dependency.
"""

from __future__ import annotations

from datetime import date
from typing import Sequence

__all__ = ["ascii_cdf", "ascii_series", "ascii_timeline", "cdf_points"]


def cdf_points(values: Sequence[float]) -> list[tuple[float, float]]:
    """(value, cumulative fraction) pairs of an empirical CDF."""
    ordered = sorted(values)
    n = len(ordered)
    return [(v, (i + 1) / n) for i, v in enumerate(ordered)]


def ascii_cdf(
    values: Sequence[float],
    *,
    width: int = 60,
    height: int = 12,
    label: str = "",
) -> str:
    """Render an empirical CDF as an ASCII plot.

    The x axis spans [min, max] of the data; y spans [0, 1].
    """
    if not values:
        return f"{label}: (no data)"
    points = cdf_points(values)
    lo, hi = points[0][0], points[-1][0]
    span = hi - lo or 1.0
    grid = [[" "] * width for _ in range(height)]
    for value, fraction in points:
        x = min(width - 1, int((value - lo) / span * (width - 1)))
        y = min(height - 1, int(fraction * (height - 1)))
        grid[height - 1 - y][x] = "*"
    lines = [f"{label}" if label else "CDF"]
    for row_index, row in enumerate(grid):
        fraction = 1.0 - row_index / (height - 1)
        lines.append(f"{fraction:4.2f} |" + "".join(row))
    lines.append("     +" + "-" * width)
    lines.append(f"      {lo:<.3g}{' ' * max(1, width - 12)}{hi:>.3g}")
    return "\n".join(lines)


def ascii_series(
    series: Sequence[tuple[date, float]],
    *,
    width: int = 60,
    height: int = 12,
    label: str = "",
) -> str:
    """Render a (day, value) series as an ASCII line plot."""
    if not series:
        return f"{label}: (no data)"
    days = [d for d, _ in series]
    values = [v for _, v in series]
    lo, hi = min(values), max(values)
    span = hi - lo or 1.0
    t0, t1 = days[0], days[-1]
    tspan = (t1 - t0).days or 1
    grid = [[" "] * width for _ in range(height)]
    for day, value in series:
        x = min(width - 1, int((day - t0).days / tspan * (width - 1)))
        y = min(height - 1, int((value - lo) / span * (height - 1)))
        grid[height - 1 - y][x] = "*"
    lines = [label or "series"]
    for row_index, row in enumerate(grid):
        value = hi - (hi - lo) * row_index / (height - 1)
        lines.append(f"{value:8.1f} |" + "".join(row))
    lines.append("         +" + "-" * width)
    lines.append(
        f"          {t0.isoformat()}"
        + " " * max(1, width - 22)
        + t1.isoformat()
    )
    return "\n".join(lines)


def ascii_timeline(
    events: Sequence[tuple[date, str]],
    *,
    markers: Sequence[tuple[date, str]] = (),
) -> str:
    """Render dated events (and vertical markers) as a text timeline."""
    lines = []
    merged = [(day, text, False) for day, text in events]
    merged += [(day, text, True) for day, text in markers]
    for day, text, is_marker in sorted(merged, key=lambda e: e[0]):
        prefix = "==" if is_marker else "  "
        lines.append(f"{prefix} {day.isoformat()}  {text}")
    return "\n".join(lines)
