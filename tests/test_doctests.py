"""Run the doctest examples embedded in public docstrings."""

import doctest

import pytest

import repro.drop.sbl
import repro.net.prefix
import repro.rirstats.rirs

_MODULES = [
    repro.net.prefix,
    repro.drop.sbl,
    repro.rirstats.rirs,
]


@pytest.mark.parametrize(
    "module", _MODULES, ids=[m.__name__ for m in _MODULES]
)
def test_module_doctests(module):
    failures, tried = doctest.testmod(module)
    assert tried > 0, f"{module.__name__} has no doctests"
    assert failures == 0
