"""Autonomous System Number utilities.

ASNs are plain ``int`` throughout the library; this module centralizes the
special values and classification rules the paper relies on:

* ``AS0`` — the RPKI convention meaning "this prefix must not be routed"
  (RFC 6483 §4; the paper's §2.3.1 and §6.2 revolve around AS0 ROAs);
* reserved / private / documentation ranges, used both to validate
  synthetic world generation and to flag bogus origins in BGP data.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "AS0",
    "AS_TRANS",
    "MAX_ASN",
    "AsnError",
    "is_documentation_asn",
    "is_private_asn",
    "is_public_asn",
    "is_reserved_asn",
    "parse_asn",
]

AS0 = 0
AS_TRANS = 23456
MAX_ASN = 2**32 - 1

# (start, end) inclusive reserved ranges, per IANA special-purpose registry.
_PRIVATE_RANGES = ((64512, 65534), (4200000000, 4294967294))
_DOCUMENTATION_RANGES = ((64496, 64511), (65536, 65551))
_RESERVED_SINGLETONS = (0, 23456, 65535, 4294967295)


class AsnError(ValueError):
    """Raised for malformed or out-of-range AS numbers."""


def parse_asn(text: str | int) -> int:
    """Parse an ASN from ``"AS64500"``, ``"64500"``, or an int.

    Also accepts the RPSL-style lowercase ``"as64500"``.
    """
    if isinstance(text, int):
        value = text
    else:
        cleaned = text.strip()
        if cleaned.upper().startswith("AS"):
            cleaned = cleaned[2:]
        try:
            value = int(cleaned)
        except ValueError:
            raise AsnError(f"not an AS number: {text!r}") from None
    if not 0 <= value <= MAX_ASN:
        raise AsnError(f"AS number out of range: {value}")
    return value


def is_private_asn(asn: int) -> bool:
    """True for ASNs reserved for private use (RFC 6996)."""
    return any(lo <= asn <= hi for lo, hi in _PRIVATE_RANGES)


def is_documentation_asn(asn: int) -> bool:
    """True for ASNs reserved for documentation (RFC 5398)."""
    return any(lo <= asn <= hi for lo, hi in _DOCUMENTATION_RANGES)


def is_reserved_asn(asn: int) -> bool:
    """True for any ASN that must not appear as a real origin."""
    return (
        asn in _RESERVED_SINGLETONS
        or is_private_asn(asn)
        or is_documentation_asn(asn)
    )


def is_public_asn(asn: int) -> bool:
    """True for ASNs assignable to real networks."""
    return 0 < asn <= MAX_ASN and not is_reserved_asn(asn)


@dataclass(frozen=True, slots=True)
class AsnBlock:
    """A contiguous block of ASNs, as delegated in RIR stats files."""

    start: int
    count: int

    def __post_init__(self) -> None:
        if self.count <= 0 or not 0 <= self.start <= MAX_ASN:
            raise AsnError(f"bad ASN block ({self.start}, {self.count})")

    @property
    def end(self) -> int:
        """One past the last ASN in the block."""
        return self.start + self.count

    def __contains__(self, asn: int) -> bool:
        return self.start <= asn < self.end
