"""Incremental ingest: daily deltas applied in place, never a rebuild.

The batch pipeline builds a world and walks it; this package is the
streaming counterpart.  One day of new input — a DROP snapshot, a slice
of ROA archive, a day of BGP updates — becomes a
:class:`~repro.ingest.delta.DeltaBatch`, and
:func:`~repro.ingest.apply.apply_delta` advances the query index and
analysis substrate copy-on-write, pinned by golden tests to land on
exactly the state a cold rebuild of that day would produce
(:mod:`repro.ingest.asof`).  On top sit the watch surface's events
(:mod:`repro.ingest.events`), the durable delta journal
(:mod:`repro.store.journal`), and the :class:`~repro.ingest.service
.Ingestor` that the daemons drive.
"""

from __future__ import annotations

from .apply import IngestError, apply_delta
from .asof import build_index_as_of, compute_roa_status_as_of
from .delta import DeltaBatch, DeltaSource, RouteStart, compute_delta
from .events import EventLog, WatchEvent, WebhookPusher, evaluate_events
from .service import AdvanceResult, Ingestor

__all__ = [
    "AdvanceResult",
    "DeltaBatch",
    "DeltaSource",
    "EventLog",
    "IngestError",
    "Ingestor",
    "RouteStart",
    "WatchEvent",
    "WebhookPusher",
    "apply_delta",
    "build_index_as_of",
    "compute_delta",
    "compute_roa_status_as_of",
    "evaluate_events",
]
