"""Fault-injection tests: every injected fault drives a verified recovery.

Each fault class the harness can arm — IO error, truncated write, worker
crash, rename race, slow stage — is driven through its injection point
and asserted to (a) recover to a correct result and (b) bump its
instrumentation counter, so no error path in the runtime layer is
exercised only by luck.
"""

import time

import pytest

from repro.runtime import (
    FaultInjector,
    FaultSpec,
    FaultSpecError,
    Instrumentation,
    WorldCache,
    injected,
    run_experiments,
)
from repro.runtime import faults as faults_mod
from repro.synth import ScenarioConfig

SUBSET = ["fig1", "tab1", "fig5"]


@pytest.fixture(scope="module")
def config():
    return ScenarioConfig.tiny()


@pytest.fixture(scope="module")
def cache(tmp_path_factory):
    return WorldCache(tmp_path_factory.mktemp("faults-cache"))


@pytest.fixture(scope="module")
def stored(cache, config):
    """A healthy cache entry on disk, plus the world it holds."""
    return cache.fetch(config)


@pytest.fixture(scope="module")
def baseline(stored):
    """Serial, fault-free reports — the byte-identity reference."""
    return run_experiments(stored.world, SUBSET, jobs=1).reports


class TestSpecParsing:
    def test_plain_spec_defaults(self):
        spec = FaultSpec.parse("io-error@cache.save")
        assert (spec.kind, spec.site) == ("io-error", "cache.save")
        assert spec.times == 1 and spec.probability == 1.0

    def test_suffixes(self):
        spec = FaultSpec.parse("slow@experiment.run:*+0.25")
        assert spec.kind == "slow"
        assert spec.site == "experiment.run:*"
        assert spec.delay == 0.25
        spec = FaultSpec.parse("truncate@cache.store*3")
        assert spec.times == 3
        spec = FaultSpec.parse("io-error@cache.*~0.5*10")
        assert spec.site == "cache.*"
        assert spec.probability == 0.5 and spec.times == 10

    def test_site_with_trailing_digits_is_not_a_suffix(self):
        spec = FaultSpec.parse("crash@worker.run:fig1")
        assert spec.site == "worker.run:fig1" and spec.times == 1

    def test_multi_spec_string(self):
        injector = FaultInjector.parse(
            "io-error@cache.save, crash@worker.run:fig1*2"
        )
        assert [(s.kind, s.times) for s in injector.specs] == [
            ("io-error", 1),
            ("crash", 2),
        ]

    @pytest.mark.parametrize(
        "bad",
        [
            "explode@cache.save",  # unknown kind
            "io-error",  # no site
            "@cache.save",  # no kind
            "io-error@cache.save*0",  # zero repeats
            "io-error@cache.save~1.5",  # probability out of range
            "io-error@cache.save*x1",  # unparsable number
        ],
    )
    def test_bad_specs_rejected(self, bad):
        with pytest.raises(FaultSpecError):
            FaultSpec.parse(bad)

    def test_from_env(self, monkeypatch):
        assert FaultInjector.from_env() is None
        monkeypatch.setenv("REPRO_FAULTS", "io-error@nowhere")
        monkeypatch.setenv("REPRO_FAULT_SEED", "7")
        injector = FaultInjector.from_env()
        assert injector is not None and injector.seed == 7


class TestInjectorMechanics:
    def test_fires_exactly_n_times(self):
        injector = FaultInjector.parse("io-error@site.a*2")
        fired = [
            injector.trigger("site.a", allow_crash=False) is not None
            for _ in range(4)
        ]
        assert fired == [True, True, False, False]
        assert injector.fired == [("io-error", "site.a")] * 2

    def test_site_globbing(self):
        injector = FaultInjector.parse("io-error@cache.**5")
        assert injector.trigger("cache.save", allow_crash=False)
        assert injector.trigger("cache.rename", allow_crash=False)
        assert injector.trigger("worker.run:fig1", allow_crash=False) is None

    def test_crash_not_consumed_outside_workers(self):
        injector = FaultInjector.parse("crash@site.a")
        assert injector.trigger("site.a", allow_crash=False) is None
        assert injector.specs[0].remaining == 1  # still armed for workers

    def test_probability_is_seed_deterministic(self):
        def pattern(seed):
            injector = FaultInjector.parse("io-error@x~0.5*64", seed=seed)
            return [
                injector.trigger("x", allow_crash=False) is not None
                for _ in range(64)
            ]

        assert pattern(3) == pattern(3)
        assert any(pattern(3)) and not all(pattern(3))
        assert pattern(0) != pattern(1) or pattern(0) != pattern(2)

    def test_probability_extremes(self):
        never = FaultInjector.parse("io-error@x~0.0")
        assert never.trigger("x", allow_crash=False) is None
        always = FaultInjector.parse("io-error@x~1.0")
        assert always.trigger("x", allow_crash=False) is not None

    def test_env_activation_tracks_changes(self, monkeypatch):
        assert faults_mod.active() is None
        monkeypatch.setenv("REPRO_FAULTS", "io-error@env.site")
        injector = faults_mod.active()
        assert injector is not None
        assert faults_mod.active() is injector  # stable while unchanged
        monkeypatch.delenv("REPRO_FAULTS")
        assert faults_mod.active() is None

    def test_injected_context_manager_restores(self):
        assert faults_mod.active() is None
        with injected("io-error@x") as injector:
            assert faults_mod.active() is injector
        assert faults_mod.active() is None


class TestCacheFaults:
    def test_io_error_during_save_degrades_loudly(
        self, cache, config, stored
    ):
        instr = Instrumentation()
        with injected("io-error@cache.save"):
            with pytest.warns(RuntimeWarning, match="cache store failed"):
                outcome = cache.fetch(
                    config, instrumentation=instr, refresh=True
                )
        assert outcome.status == "refresh"
        assert instr.counters["world_cache_store_errors"] == 1
        assert instr.counters["fault_io-error"] == 1
        assert any("continuing uncached" in w for w in instr.warnings)
        # The world is still whole and usable.
        assert len(outcome.world.drop.unique_prefixes()) == 712
        # No lock or staging debris survives the failed store.
        debris = [
            p
            for p in outcome.directory.parent.iterdir()
            if p.name.startswith(".") or p.suffix == ".lock"
        ]
        assert debris == []

    def test_truncated_write_is_evicted_on_next_fetch(
        self, cache, config, baseline
    ):
        instr = Instrumentation()
        with injected("truncate@cache.store"):
            cache.fetch(config, instrumentation=instr, refresh=True)
        assert instr.counters["fault_truncate"] == 1

        recovery = Instrumentation()
        outcome = cache.fetch(config, instrumentation=recovery)
        assert outcome.status == "miss"
        assert recovery.counters["world_cache_evictions"] == 1
        # The rebuilt world reports byte-identically.
        reports = run_experiments(outcome.world, SUBSET, jobs=1).reports
        assert reports == tuple(baseline)
        # And the entry is healthy again.
        assert cache.fetch(config).status == "hit"

    def test_rename_race_is_benign(self, cache, config):
        instr = Instrumentation()
        with injected("rename-race@cache.rename"):
            outcome = cache.fetch(config, instrumentation=instr, refresh=True)
        assert instr.counters["world_cache_rename_races"] == 1
        assert instr.counters["fault_rename-race"] == 1
        assert instr.counters.get("world_cache_store_errors") is None
        staging = [
            p
            for p in outcome.directory.parent.iterdir()
            if p.name.startswith(".")
        ]
        assert staging == []

    def test_io_error_during_load_evicts_and_rebuilds(self, cache, config):
        assert cache.fetch(config).status in ("hit", "miss")  # entry exists
        instr = Instrumentation()
        with injected("io-error@cache.load") as injector:
            outcome = cache.fetch(config, instrumentation=instr)
        assert injector.fired == [("io-error", "cache.load")]
        assert outcome.status == "miss"
        assert instr.counters["world_cache_evictions"] == 1
        assert instr.counters["world_cache_misses"] == 1
        assert cache.fetch(config).status == "hit"


class TestCacheLock:
    def test_fresh_lock_skips_store(self, cache, config, stored):
        lock = stored.directory.parent / f"{stored.directory.name}.lock"
        lock.write_text("{}")
        try:
            instr = Instrumentation()
            outcome = cache.fetch(config, instrumentation=instr, refresh=True)
            assert outcome.status == "refresh"
            assert instr.counters["world_cache_lock_contention"] == 1
            assert instr.counters["world_cache_store_skipped"] == 1
            assert lock.exists()  # another writer's lock is not ours to drop
        finally:
            lock.unlink(missing_ok=True)

    def test_stale_lock_is_taken_over(
        self, cache, config, stored, monkeypatch
    ):
        import os

        lock = stored.directory.parent / f"{stored.directory.name}.lock"
        lock.write_text("{}")
        stale = time.time() - 3600
        os.utime(lock, (stale, stale))
        monkeypatch.setenv("REPRO_CACHE_LOCK_TIMEOUT", "60")
        instr = Instrumentation()
        outcome = cache.fetch(config, instrumentation=instr, refresh=True)
        assert outcome.status == "refresh"
        assert instr.counters["world_cache_lock_takeovers"] == 1
        assert "world_cache_store_skipped" not in instr.counters
        assert not lock.exists()  # released after a successful store
        assert any("stale cache lock" in w for w in instr.warnings)


class TestWorkerFaults:
    def test_crash_recovers_via_serial_fallback(
        self, stored, baseline, monkeypatch
    ):
        monkeypatch.setenv("REPRO_FAULTS", "crash@worker.run:fig1")
        instr = Instrumentation()
        outcome = run_experiments(
            stored.world,
            SUBSET,
            jobs=2,
            directory=stored.directory,
            instrumentation=instr,
        )
        assert outcome.ok
        assert outcome.reports == tuple(baseline)  # byte-identical
        assert instr.counters["worker_lost_experiments"] >= 1
        assert instr.counters["serial_fallback_runs"] >= 1
        assert "fig1" in instr.info["worker_lost"]
        assert any("worker process died" in w for w in instr.warnings)

    def test_crash_without_fallback_reports_worker_lost(
        self, stored, monkeypatch
    ):
        monkeypatch.setenv("REPRO_FAULTS", "crash@worker.run:fig1")
        instr = Instrumentation()
        outcome = run_experiments(
            stored.world,
            SUBSET,
            jobs=2,
            directory=stored.directory,
            instrumentation=instr,
            serial_fallback=False,
        )
        assert not outcome.ok
        lost = [f for f in outcome.failures if f.kind == "worker-lost"]
        assert "fig1" in [f.exp_id for f in lost]
        assert all(
            "worker process died" in f.error for f in lost
        )

    def test_crash_is_inert_in_serial_runs(self, stored, baseline):
        # The crash kind only fires in worker processes; a serial run —
        # like the runner's in-parent fallback — must pass through.
        with injected("crash@worker.run:fig1") as injector:
            outcome = run_experiments(stored.world, SUBSET, jobs=1)
        assert outcome.ok
        assert outcome.reports == tuple(baseline)
        assert injector.fired == []

    def test_slow_fault_shows_up_in_timings(self, stored):
        instr = Instrumentation()
        with injected("slow@experiment.run:fig1+0.2"):
            outcome = run_experiments(
                stored.world, ["fig1"], jobs=1, instrumentation=instr
            )
        assert outcome.ok
        assert instr.counters["fault_slow"] == 1
        (stage,) = instr.group("experiment")
        assert stage.seconds >= 0.2

    def test_io_error_in_experiment_is_isolated(self, stored):
        instr = Instrumentation()
        with injected("io-error@experiment.run:fig1"):
            outcome = run_experiments(
                stored.world, SUBSET, jobs=1, instrumentation=instr
            )
        assert [f.exp_id for f in outcome.failures] == ["fig1"]
        assert outcome.failures[0].kind == "raised"
        assert "InjectedIOError" in outcome.failures[0].error
        assert [r.exp_id for r in outcome.reports] == ["tab1", "fig5"]
        assert instr.counters["fault_io-error"] == 1
