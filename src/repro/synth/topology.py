"""AS-level topology for realistic announcement paths.

The analyses the paper runs over AS paths only need origins and the
occasional transit fingerprint, but a reproduction that emits flat
two-hop paths everywhere looks nothing like a RouteViews table.  This
module grows a small provider hierarchy — a clique of tier-1 transit
networks, a layer of regional providers multihomed to the tier-1s, and
edge networks attached to the regionals — and derives *valley-free*
paths from any edge network up through its providers to the core, which
is where the collectors' full-table peers sit.

The graph lives in ``networkx`` (with customer→provider edges) so that
downstream users can run their own graph analytics over the same world.
"""

from __future__ import annotations

import numpy as np
import networkx as nx

from ..bgp.messages import ASPath

__all__ = ["AsTopology"]

#: Relationship labels on edges (drawn customer → provider).
CUSTOMER_PROVIDER = "c2p"
PEER_PEER = "p2p"


class AsTopology:
    """A provider hierarchy with valley-free path derivation.

    ``rng=None`` builds a draw-less topology (see :meth:`core_view`):
    every method that consumes randomness must then be given an explicit
    generator, which is how the sharded world build keeps its per-shard
    RNG streams independent of the builder's own topology stream.
    """

    def __init__(self, rng: np.random.Generator | None) -> None:
        self._rng = rng
        self.graph = nx.DiGraph()
        self.tier1: list[int] = []
        self.regional: list[int] = []

    @classmethod
    def generate(
        cls,
        rng: np.random.Generator,
        *,
        tier1_count: int = 10,
        regional_count: int = 60,
    ) -> "AsTopology":
        """Grow the transit core: a tier-1 clique plus regionals."""
        topology = cls(rng)
        topology.tier1 = [100 + i for i in range(tier1_count)]
        for asn in topology.tier1:
            topology.graph.add_node(asn, tier=1)
        for a in topology.tier1:
            for b in topology.tier1:
                if a < b:
                    topology.graph.add_edge(a, b, rel=PEER_PEER)
        topology.regional = [1000 + i for i in range(regional_count)]
        for asn in topology.regional:
            topology.graph.add_node(asn, tier=2)
            providers = rng.choice(
                np.array(topology.tier1),
                size=min(len(topology.tier1), 2 + int(rng.integers(0, 2))),
                replace=False,
            )
            for provider in providers:
                topology.graph.add_edge(asn, int(provider), rel=CUSTOMER_PROVIDER)
        return topology

    def core_view(self) -> "AsTopology":
        """A copy of just the transit core (tier-1s and regionals).

        Edge networks attached so far are excluded, so the view is small
        to pickle and identical for every shard of a build regardless of
        execution order.  The view carries no RNG: draws against it must
        pass an explicit generator.
        """
        view = AsTopology(None)
        view.tier1 = list(self.tier1)
        view.regional = list(self.regional)
        core = set(view.tier1) | set(view.regional)
        view.graph = self.graph.subgraph(core).copy()
        return view

    # -- growth -----------------------------------------------------------

    def draw_edge_providers(
        self, rng: np.random.Generator | None = None
    ) -> tuple[int, ...]:
        """Draw 1–2 regional providers for a new edge network.

        Pure draw: the graph is not touched, so shard workers can draw
        against a shared :meth:`core_view` and hand the result back for
        :meth:`adopt_edge_network` in the parent.
        """
        rng = self._rng if rng is None else rng
        count = 1 + int(rng.integers(0, 2))
        providers = rng.choice(
            np.array(self.regional), size=count, replace=False
        )
        return tuple(int(p) for p in providers)

    def adopt_edge_network(
        self, asn: int, providers: tuple[int, ...]
    ) -> None:
        """Attach ``asn`` under pre-drawn ``providers`` (no RNG use)."""
        if self.graph.has_node(asn):
            raise ValueError(f"AS{asn} already in the topology")
        self.graph.add_node(asn, tier=3)
        for provider in providers:
            self.graph.add_edge(asn, int(provider), rel=CUSTOMER_PROVIDER)

    def attach_edge_network(self, asn: int) -> tuple[int, ...]:
        """Attach an edge network under 1–2 regional providers."""
        providers = self.draw_edge_providers()
        self.adopt_edge_network(asn, providers)
        return providers

    def __contains__(self, asn: int) -> bool:
        return self.graph.has_node(asn)

    def providers_of(self, asn: int) -> list[int]:
        """The providers an AS buys transit from."""
        return [
            provider
            for _, provider, data in self.graph.out_edges(asn, data=True)
            if data["rel"] == CUSTOMER_PROVIDER
        ]

    # -- paths ---------------------------------------------------------------

    def path_from_core(self, origin: int) -> ASPath:
        """A valley-free path from a tier-1 vantage down to ``origin``.

        The path climbs the origin's provider chain to a tier-1 and
        prepends one random tier-1 peer when the collector-side vantage
        differs — exactly the shape of a full-table RouteViews path.
        Unknown origins get a synthetic (tier1, regional, origin) path so
        callers never need to special-case.
        """
        if origin not in self:
            regional = int(
                self.regional[int(self._rng.integers(len(self.regional)))]
            )
            tier1 = self.providers_of(regional)[0]
            return ASPath.of(tier1, regional, origin)
        chain: list[int] = [origin]
        current = origin
        while self.graph.nodes[current]["tier"] > 1:
            providers = self.providers_of(current)
            current = providers[int(self._rng.integers(len(providers)))]
            chain.append(current)
        # Vantage: either the reached tier-1 itself or one of its peers.
        if self._rng.random() < 0.5:
            peers = [t for t in self.tier1 if t != current]
            vantage = peers[int(self._rng.integers(len(peers)))]
            chain.append(vantage)
        return ASPath(tuple(reversed(chain)))

    def path_via_providers(
        self,
        origin: int,
        providers: tuple[int, ...],
        rng: np.random.Generator | None = None,
    ) -> ASPath:
        """A valley-free path for an origin not (yet) in the graph.

        ``providers`` is the origin's drawn provider set (see
        :meth:`draw_edge_providers`); the climb above them follows the
        same draw sequence as :meth:`path_from_core` does for an
        attached edge network, so parent and shard builds agree.
        """
        rng = self._rng if rng is None else rng
        chain: list[int] = [origin]
        current = int(providers[int(rng.integers(len(providers)))])
        chain.append(current)
        while self.graph.nodes[current]["tier"] > 1:
            ups = self.providers_of(current)
            current = ups[int(rng.integers(len(ups)))]
            chain.append(current)
        if rng.random() < 0.5:
            peers = [t for t in self.tier1 if t != current]
            chain.append(peers[int(rng.integers(len(peers)))])
        return ASPath(tuple(reversed(chain)))

    def is_valley_free(self, path: ASPath) -> bool:
        """Check the Gao-Rexford valley-free property of a path.

        Walking collector-side → origin, a path may descend
        provider→customer at any point, but once it has descended it may
        never climb customer→provider again, and at most one peer link is
        allowed at the top.
        """
        descending = False
        peered = False
        hops = list(path)
        for left, right in zip(hops, hops[1:]):
            if left == right:
                continue  # prepending
            if not self.graph.has_node(left) or not self.graph.has_node(
                right
            ):
                return False
            if self.graph.has_edge(right, left) and (
                self.graph[right][left]["rel"] == CUSTOMER_PROVIDER
            ):
                descending = True  # provider -> customer step
            elif self.graph.has_edge(left, right) and (
                self.graph[left][right]["rel"] == CUSTOMER_PROVIDER
            ):
                if descending:
                    return False  # climbed after descending: a valley
            elif (
                self.graph.has_edge(left, right)
                and self.graph[left][right]["rel"] == PEER_PEER
            ) or (
                self.graph.has_edge(right, left)
                and self.graph[right][left]["rel"] == PEER_PEER
            ):
                if descending or peered:
                    return False
                peered = True
            else:
                return False  # no relationship at all
        return True
