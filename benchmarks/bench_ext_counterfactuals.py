"""Extension benches: the §6–§7 policy counterfactuals and maxLength audit."""

from repro.analysis import (
    as0_counterfactual,
    audit_maxlength,
    rov_counterfactual,
)
from repro.rpki.validation import RouteValidity


def bench_ext_rov_counterfactual(benchmark, world, entries):
    result = benchmark(rov_counterfactual, world, entries)
    # Shape: ROV as deployed stops essentially nothing (unsigned
    # targets); universal signing stops almost everything except the
    # forged-origin residue.
    assert result.stopped_as_deployed < 0.02
    assert result.stopped_if_all_signed > 0.9
    assert result.forged_origin_escapes >= 1
    assert result.as_deployed[RouteValidity.NOT_FOUND] > (
        result.as_deployed[RouteValidity.VALID]
    )


def bench_ext_as0_counterfactual(benchmark, world, entries):
    result = benchmark(as0_counterfactual, world, entries)
    # Shape: published AS0 coverage is partial; universal RIR AS0 covers
    # every unallocated hijack; three operators fix ~70% of the
    # unrouted-signed surface.
    assert result.tals_trusted_share < result.universal_share == 1.0
    assert 0.6 < result.operator_ladder[2] < 0.8


def bench_ext_maxlength_audit(benchmark, world, entries):
    result = benchmark(audit_maxlength, world)
    # Shape: a minority of ROAs use maxLength; the overwhelming majority
    # of those are forged-origin sub-prefix hijackable (Gilad et al. 84%).
    assert 0 < result.usage_rate < 0.3
    assert result.vulnerable_rate > 0.7


def bench_ext_serial_hijackers(benchmark, world, entries):
    from repro.analysis import profile_origins

    result = benchmark(profile_origins, world, entries)
    # Shape: a small candidate set with near-total blocklist overlap,
    # disjoint from the high-volume legitimate origins.
    assert 0 < len(result.candidates) < 0.05 * len(result.profiles)
    assert all(c.drop_share > 0.4 for c in result.candidates)


def bench_ext_survival(benchmark, world, entries):
    from repro.analysis import analyze_survival
    from repro.drop.categories import Category

    result = benchmark(analyze_survival, world, entries)
    # Shape: hijacked routes die fastest; hosting routes barely die.
    hijacked = result.curve(Category.HIJACKED)
    hosting = result.curve(Category.MALICIOUS_HOSTING)
    assert hijacked.at(30) < 0.5 < hosting.at(30)
    assert 0.1 < 1 - result.overall.at(30) < 0.3
