"""Figures 6 and 7: unallocated address space and RIR AS0 policy.

Figure 6 is the timeline of unallocated prefixes appearing on DROP,
annotated with each RIR's AS0 policy milestones — the point being that
listings continued after APNIC's and LACNIC's policies went live, because
the AS0 TALs are not used for filtering.  Figure 7 is the free-pool size
per RIR over time, showing the listing clusters are uncorrelated with
pool size.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import date

from ..net.prefix import IPv4Prefix
from ..net.timeline import month_starts
from ..rirstats.rirs import ALL_RIRS
from ..rpki.as0 import AS0_POLICY_EVENTS, As0PolicyEvent
from ..synth.world import World
from .common import DropEntryView, load_entries

__all__ = [
    "UnallocatedListing",
    "UnallocatedResult",
    "analyze_unallocated",
]


@dataclass(frozen=True, slots=True)
class UnallocatedListing:
    """One unallocated prefix's appearance on DROP (a Figure 6 marker)."""

    prefix: IPv4Prefix
    listed: date
    region: str | None
    after_region_as0: bool


@dataclass(frozen=True, slots=True)
class UnallocatedResult:
    """Figure 6 markers + policy events, and the Figure 7 pool series."""

    listings: tuple[UnallocatedListing, ...]
    policy_events: tuple[As0PolicyEvent, ...]
    #: RIR → [(sample day, free-pool addresses)].
    free_pools: dict[str, list[tuple[date, int]]]

    @property
    def total(self) -> int:
        """Unallocated prefixes that appeared on DROP (paper: 40)."""
        return len(self.listings)

    def count_for(self, region: str) -> int:
        """Listings whose space belongs to one RIR (LACNIC: 19, ...)."""
        return sum(1 for l in self.listings if l.region == region)

    @property
    def after_policy_count(self) -> int:
        """Listings after the managing RIR's AS0 policy went live."""
        return sum(1 for l in self.listings if l.after_region_as0)

    def pool_at(self, region: str, day: date) -> int:
        """Free-pool size (addresses) at the sample nearest ``day``."""
        series = self.free_pools[region]
        return min(series, key=lambda s: abs((s[0] - day).days))[1]


def analyze_unallocated(
    world: World,
    entries: list[DropEntryView] | None = None,
    sample_days: list[date] | None = None,
) -> UnallocatedResult:
    """Run the Figures 6–7 analysis."""
    if entries is None:
        entries = load_entries(world)
    if sample_days is None:
        sample_days = list(
            month_starts(world.window.start, world.window.end)
        )
        sample_days.append(world.window.end)
    policy_start = {
        event.rir: event.implemented for event in AS0_POLICY_EVENTS
    }
    listings = []
    for entry in entries:
        if not entry.unallocated:
            continue
        implemented = (
            policy_start.get(entry.region) if entry.region else None
        )
        listings.append(
            UnallocatedListing(
                prefix=entry.prefix,
                listed=entry.listed,
                region=entry.region,
                after_region_as0=(
                    implemented is not None and entry.listed >= implemented
                ),
            )
        )
    listings.sort(key=lambda l: l.listed)
    free_pools = {
        rir: [
            (day, world.resources.free_pool(rir, day).num_addresses)
            for day in sample_days
        ]
        for rir in ALL_RIRS
    }
    return UnallocatedResult(
        listings=tuple(listings),
        policy_events=AS0_POLICY_EVENTS,
        free_pools=free_pools,
    )
