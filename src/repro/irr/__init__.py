"""IRR substrate: RPSL objects and the journaled RADb-like database."""

from .radb import IrrDatabase, RouteObjectRecord
from .rpsl import (
    Maintainer,
    Organisation,
    RouteObject,
    RpslError,
    RpslObject,
    emit_objects,
    parse_objects,
)

__all__ = [
    "IrrDatabase",
    "Maintainer",
    "Organisation",
    "RouteObject",
    "RouteObjectRecord",
    "RpslError",
    "RpslObject",
    "emit_objects",
    "parse_objects",
]
