"""The DROP list: listing episodes, daily snapshots, and the Firehol archive.

The paper uses daily snapshots of Spamhaus DROP compiled by Firehol.  Two
equivalent views are provided:

``DropEpisode`` / ``DropArchive``
    The event view: each prefix has one or more listing episodes
    (added day, optional removed day, SBL id).  All analyses operate on
    this view.

Snapshot text files
    The raw view: one Firehol-style text file per day.  ``snapshot_text``
    emits the format and ``DropArchive.from_snapshots`` reconstructs
    episodes by diffing consecutive snapshots, exactly as the study did.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import date, timedelta
from pathlib import Path
from typing import Iterable, Iterator

from ..net.prefix import IPv4Prefix
from ..net.prefixset import PrefixSet
from ..net.timeline import DateWindow

__all__ = [
    "DropArchive",
    "DropEpisode",
    "parse_snapshot_text",
    "snapshot_text",
]


@dataclass(frozen=True, slots=True)
class DropEpisode:
    """One stay of a prefix on the DROP list."""

    prefix: IPv4Prefix
    added: date
    removed: date | None = None  # first day no longer listed
    sbl_id: str | None = None

    def __post_init__(self) -> None:
        if self.removed is not None and self.removed <= self.added:
            raise ValueError(
                f"{self.prefix}: removal {self.removed} not after "
                f"addition {self.added}"
            )

    def listed_on(self, day: date) -> bool:
        """True if the prefix was on DROP on ``day``."""
        return self.added <= day and (
            self.removed is None or day < self.removed
        )

    @property
    def was_removed(self) -> bool:
        """True if Spamhaus removed the prefix during the data window."""
        return self.removed is not None


class DropArchive:
    """All DROP listing episodes over the study window."""

    def __init__(self, window: DateWindow) -> None:
        self.window = window
        self._episodes: list[DropEpisode] = []
        self._by_prefix: dict[IPv4Prefix, list[DropEpisode]] = {}

    def add(self, episode: DropEpisode) -> None:
        """Record one listing episode."""
        self._episodes.append(episode)
        self._by_prefix.setdefault(episode.prefix, []).append(episode)

    def extend(self, episodes: Iterable[DropEpisode]) -> None:
        """Record many listing episodes."""
        for episode in episodes:
            self.add(episode)

    def fork(self) -> "DropArchive":
        """A copy-on-write fork sharing the immutable episodes."""
        forked = DropArchive(self.window)
        forked._episodes = list(self._episodes)
        forked._by_prefix = {
            prefix: list(episodes)
            for prefix, episodes in self._by_prefix.items()
        }
        return forked

    # -- event queries -----------------------------------------------------

    def episodes(self) -> Iterator[DropEpisode]:
        """All episodes, in insertion order."""
        yield from self._episodes

    def episodes_for(self, prefix: IPv4Prefix) -> list[DropEpisode]:
        """Episodes for one prefix, ordered by addition date."""
        return sorted(self._by_prefix.get(prefix, []), key=lambda e: e.added)

    def unique_prefixes(self) -> list[IPv4Prefix]:
        """Distinct prefixes that ever appeared, in address order."""
        return sorted(self._by_prefix)

    def first_episode(self, prefix: IPv4Prefix) -> DropEpisode | None:
        """The first listing episode for a prefix, if any."""
        episodes = self.episodes_for(prefix)
        return episodes[0] if episodes else None

    def additions_in(self, window: DateWindow) -> list[DropEpisode]:
        """Episodes whose addition date falls inside ``window``."""
        return sorted(
            (e for e in self._episodes if e.added in window),
            key=lambda e: (e.added, e.prefix),
        )

    def removals_in(self, window: DateWindow) -> list[DropEpisode]:
        """Episodes whose removal date falls inside ``window``."""
        return sorted(
            (
                e
                for e in self._episodes
                if e.removed is not None and e.removed in window
            ),
            key=lambda e: (e.removed, e.prefix),
        )

    def address_space(self) -> PrefixSet:
        """The union of all address space that ever appeared on DROP."""
        covered = PrefixSet()
        for prefix in self._by_prefix:
            covered.add(prefix)
        return covered

    # -- snapshot queries --------------------------------------------------

    def listed_on(self, day: date) -> list[IPv4Prefix]:
        """The DROP list contents on one day, in address order."""
        return sorted(
            {
                e.prefix
                for e in self._episodes
                if e.listed_on(day)
            }
        )

    def is_listed(self, prefix: IPv4Prefix, day: date) -> bool:
        """True if ``prefix`` (exactly) was listed on ``day``."""
        return any(e.listed_on(day) for e in self._by_prefix.get(prefix, []))

    # -- snapshot (de)serialization -----------------------------------------

    def write_snapshots(
        self, directory: Path, *, step_days: int = 1
    ) -> int:
        """Write one Firehol-style snapshot file per ``step_days`` days.

        Returns the number of files written.  Filenames are
        ``drop_YYYY-MM-DD.netset``.
        """
        directory.mkdir(parents=True, exist_ok=True)
        count = 0
        day = self.window.start
        while day <= self.window.end:
            path = directory / f"drop_{day.isoformat()}.netset"
            sbl_ids = self._sbl_ids_on(day)
            path.write_text(snapshot_text(day, self.listed_on(day), sbl_ids))
            count += 1
            day += timedelta(days=step_days)
        return count

    def _sbl_ids_on(self, day: date) -> dict[IPv4Prefix, str | None]:
        ids: dict[IPv4Prefix, str | None] = {}
        for episode in self._episodes:
            if episode.listed_on(day):
                ids[episode.prefix] = episode.sbl_id
        return ids

    @classmethod
    def from_snapshots(
        cls, snapshots: Iterable[tuple[date, dict[IPv4Prefix, str | None]]],
        window: DateWindow,
    ) -> "DropArchive":
        """Reconstruct episodes by diffing day-ordered snapshots.

        A prefix present in snapshot N but not N-1 was added on N's date; a
        prefix present in N-1 but not N was removed on N's date.  Prefixes
        present in the first snapshot are treated as added on that day
        (the left-censoring the paper's window imposes).
        """
        archive = cls(window)
        open_since: dict[IPv4Prefix, tuple[date, str | None]] = {}
        for day, contents in sorted(snapshots, key=lambda s: s[0]):
            for prefix, sbl_id in contents.items():
                if prefix not in open_since:
                    open_since[prefix] = (day, sbl_id)
            for prefix in list(open_since):
                if prefix not in contents:
                    added, sbl_id = open_since.pop(prefix)
                    archive.add(
                        DropEpisode(
                            prefix=prefix,
                            added=added,
                            removed=day,
                            sbl_id=sbl_id,
                        )
                    )
        for prefix, (added, sbl_id) in sorted(
            open_since.items(), key=lambda item: (item[1][0], item[0])
        ):
            archive.add(
                DropEpisode(prefix=prefix, added=added, removed=None,
                            sbl_id=sbl_id)
            )
        return archive

    @classmethod
    def read_snapshots(
        cls, directory: Path, window: DateWindow
    ) -> "DropArchive":
        """Read a directory written by :meth:`write_snapshots`.

        A missing directory or one holding no snapshots raises instead
        of yielding a silently empty archive — a torn cache entry or a
        bad path must surface as a load failure, not as zero listings.
        """
        if not directory.is_dir():
            raise FileNotFoundError(
                f"DROP snapshot directory not found: {directory}"
            )
        snapshots = []
        for path in sorted(directory.glob("drop_*.netset")):
            day_text = path.stem.removeprefix("drop_")
            snapshots.append(
                (date.fromisoformat(day_text),
                 parse_snapshot_text(path.read_text()))
            )
        if not snapshots:
            raise FileNotFoundError(
                f"no DROP snapshots (drop_*.netset) in {directory}"
            )
        return cls.from_snapshots(snapshots, window)

    def __len__(self) -> int:
        return len(self._episodes)


def snapshot_text(
    day: date,
    prefixes: Iterable[IPv4Prefix],
    sbl_ids: dict[IPv4Prefix, str | None] | None = None,
) -> str:
    """One day's DROP list in the Firehol/Spamhaus text format."""
    lines = [
        "; Spamhaus DROP List (simulated archive)",
        f"; Last-Modified: {day.isoformat()}",
    ]
    sbl_ids = sbl_ids or {}
    for prefix in sorted(set(prefixes)):
        sbl = sbl_ids.get(prefix)
        lines.append(f"{prefix} ; {sbl}" if sbl else str(prefix))
    return "\n".join(lines) + "\n"


def parse_snapshot_text(text: str) -> dict[IPv4Prefix, str | None]:
    """Parse :func:`snapshot_text` output into prefix → SBL id."""
    contents: dict[IPv4Prefix, str | None] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith(";"):
            continue
        prefix_text, _, sbl = line.partition(";")
        prefix = IPv4Prefix.parse(prefix_text.strip())
        contents[prefix] = sbl.strip() or None
    return contents
