"""``repro.store``: the binary columnar world store.

A compact little-endian on-disk format (stdlib ``struct``/``array``
only) for the artifacts that dominate load time at paper scale — the
:class:`~repro.query.index.QueryIndex` event tables and the
:class:`~repro.analysis.roa_status.RoaStatusResult` substrate — plus the
in-memory merge payloads of the sharded world build.

The container layer (:mod:`repro.store.container`) is dependency-free;
the codecs (:mod:`repro.store.index`, :mod:`repro.store.substrate`,
:mod:`repro.store.shards`) import their subject modules, so import them
directly rather than through this package to keep the import graph
acyclic (``repro.query.index`` itself uses ``repro.store.container``).
"""

from .container import (
    STORE_FORMAT,
    StoreError,
    StoreReader,
    build_store,
    durable_write,
    fsync_directory,
)

__all__ = [
    "STORE_FORMAT",
    "StoreError",
    "StoreReader",
    "build_store",
    "durable_write",
    "fsync_directory",
]
