"""Unit tests for repro.drop.droplist and repro.drop.sbl."""

from datetime import date

import pytest

from repro.drop.droplist import (
    DropArchive,
    DropEpisode,
    parse_snapshot_text,
    snapshot_text,
)
from repro.drop.sbl import SblDatabase, SblRecord, extract_asns
from repro.net.prefix import IPv4Prefix
from repro.net.timeline import DateWindow

P1 = IPv4Prefix.parse("192.0.2.0/24")
P2 = IPv4Prefix.parse("198.51.100.0/24")
P3 = IPv4Prefix.parse("203.0.113.0/24")
WINDOW = DateWindow(date(2020, 1, 1), date(2020, 12, 31))


def archive():
    a = DropArchive(WINDOW)
    a.add(DropEpisode(P1, date(2020, 2, 1), date(2020, 5, 1), "SBL100"))
    a.add(DropEpisode(P1, date(2020, 9, 1), None, "SBL101"))
    a.add(DropEpisode(P2, date(2020, 3, 15), None, "SBL102"))
    a.add(DropEpisode(P3, date(2020, 6, 1), date(2020, 7, 1), None))
    return a


class TestDropEpisode:
    def test_listed_on_bounds(self):
        e = DropEpisode(P1, date(2020, 2, 1), date(2020, 5, 1))
        assert e.listed_on(date(2020, 2, 1))
        assert e.listed_on(date(2020, 4, 30))
        assert not e.listed_on(date(2020, 5, 1))  # removal day = off list
        assert not e.listed_on(date(2020, 1, 31))

    def test_open_episode(self):
        e = DropEpisode(P1, date(2020, 2, 1))
        assert e.listed_on(date(2025, 1, 1))
        assert not e.was_removed

    def test_removal_must_follow_addition(self):
        with pytest.raises(ValueError):
            DropEpisode(P1, date(2020, 2, 1), date(2020, 2, 1))


class TestDropArchive:
    def test_unique_prefixes(self):
        assert archive().unique_prefixes() == sorted([P1, P2, P3])

    def test_episodes_for_sorted(self):
        episodes = archive().episodes_for(P1)
        assert [e.added for e in episodes] == [date(2020, 2, 1),
                                               date(2020, 9, 1)]

    def test_first_episode(self):
        assert archive().first_episode(P1).sbl_id == "SBL100"
        assert archive().first_episode(IPv4Prefix.parse("10.0.0.0/8")) is None

    def test_additions_in(self):
        added = archive().additions_in(
            DateWindow(date(2020, 3, 1), date(2020, 6, 30))
        )
        assert [e.prefix for e in added] == [P2, P3]

    def test_removals_in(self):
        removed = archive().removals_in(WINDOW)
        assert {e.prefix for e in removed} == {P1, P3}

    def test_listed_on(self):
        assert archive().listed_on(date(2020, 4, 1)) == sorted([P1, P2])

    def test_is_listed(self):
        a = archive()
        assert a.is_listed(P1, date(2020, 3, 1))
        assert not a.is_listed(P1, date(2020, 6, 1))  # between episodes
        assert a.is_listed(P1, date(2020, 10, 1))

    def test_address_space(self):
        assert archive().address_space().num_addresses == 3 * 256

    def test_len(self):
        assert len(archive()) == 4


class TestSnapshotFormat:
    def test_text_round_trip(self):
        text = snapshot_text(
            date(2020, 4, 1), [P1, P2], {P1: "SBL100", P2: None}
        )
        parsed = parse_snapshot_text(text)
        assert parsed == {P1: "SBL100", P2: None}

    def test_comments_ignored(self):
        parsed = parse_snapshot_text("; header\n; more\n192.0.2.0/24\n")
        assert parsed == {P1: None}

    def test_write_read_round_trip(self, tmp_path):
        original = archive()
        original.write_snapshots(tmp_path / "drop")
        loaded = DropArchive.read_snapshots(tmp_path / "drop", WINDOW)
        # Same episode structure (dates and SBL ids).
        def key(a):
            return sorted(
                (str(e.prefix), e.added, e.removed, e.sbl_id)
                for e in a.episodes()
            )
        assert key(loaded) == key(original)

    def test_weekly_snapshots_coarsen_dates(self, tmp_path):
        original = archive()
        original.write_snapshots(tmp_path / "drop", step_days=7)
        loaded = DropArchive.read_snapshots(tmp_path / "drop", WINDOW)
        # Episodes survive, but addition dates may shift to snapshot days.
        assert set(p for p in loaded.unique_prefixes()) == {P1, P2, P3}


class TestSblDatabase:
    def record(self, sbl_id="SBL100", removed=None):
        return SblRecord(
            sbl_id=sbl_id,
            prefix=P1,
            text="hijacked range on AS50509 and AS34665",
            created=date(2020, 1, 1),
            removed=removed,
        )

    def test_extract_asns(self):
        assert extract_asns("AS50509 via AS34665 then AS50509 again") == (
            50509, 34665,
        )

    def test_extract_asns_none(self):
        assert extract_asns("no asns here") == ()

    def test_mentioned_asns(self):
        assert self.record().mentioned_asns == (50509, 34665)

    def test_bad_id_rejected(self):
        with pytest.raises(ValueError):
            SblRecord(sbl_id="XXX1", prefix=P1, text="",
                      created=date(2020, 1, 1))

    def test_duplicate_id_rejected(self):
        db = SblDatabase()
        db.add(self.record())
        with pytest.raises(ValueError):
            db.add(self.record())

    def test_record_for_prefix(self):
        db = SblDatabase()
        db.add(self.record())
        assert db.record_for_prefix(P1).sbl_id == "SBL100"
        assert db.record_for_prefix(P2) is None

    def test_record_availability_window(self):
        db = SblDatabase()
        db.add(self.record(removed=date(2020, 6, 1)))
        assert db.record_for_prefix(P1, on=date(2020, 3, 1)) is not None
        assert db.record_for_prefix(P1, on=date(2020, 6, 1)) is None

    def test_dump_load_round_trip(self, tmp_path):
        db = SblDatabase()
        db.add(self.record())
        db.add(self.record(sbl_id="SBL200", removed=date(2020, 6, 1)))
        path = tmp_path / "sbl.jsonl"
        assert db.dump(path) == 2
        loaded = SblDatabase.load(path)
        assert len(loaded) == 2
        assert loaded.get("SBL200").removed == date(2020, 6, 1)
        assert "SBL100" in loaded
