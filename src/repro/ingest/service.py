"""The ingest service: daily advances, atomically published.

An :class:`Ingestor` owns the live incremental state — the as-of query
index, the substrate it advances, the event log subscribers read, and
the delta journal that makes restarts cheap — and exposes one verb:
:meth:`Ingestor.advance` steps the state forward one day at a time
(compute the day's :class:`~repro.ingest.delta.DeltaBatch`, evaluate
watch events against the pre-delta state, apply copy-on-write, journal,
publish).  Publication is a callback (:attr:`Ingestor.on_engine`) the
serving tier wires to ``ServerCore.set_engine`` — the same atomic
``_State`` swap the hot-reload path uses, so in-flight requests always
finish on a coherent snapshot and a failed advance leaves the previous
day serving.

The source of deltas here is the world's own archives (the synthetic
stand-in for tomorrow's DROP snapshot / ROA archive / BGP feed
downloads): the ingestor deliberately *forgets* everything after its
as-of day and re-learns it one day at a time, which is what lets the
golden tests pin incremental == rebuilt-from-scratch on real data
volumes without a wire protocol for feeds.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from datetime import date, timedelta
from pathlib import Path
from typing import Callable

from ..analysis.substrate import AnalysisSubstrate
from ..obs import Instrumentation
from ..query.engine import QueryEngine
from ..rpki.tal import TalSet
from ..store.journal import DeltaJournal
from ..synth.world import World
from .apply import IngestError, apply_delta
from .asof import build_index_as_of, compute_roa_status_as_of
from .delta import DeltaBatch, DeltaSource
from .events import EventLog, WatchEvent, WebhookPusher, evaluate_events

__all__ = ["AdvanceResult", "Ingestor"]


@dataclass(frozen=True, slots=True)
class AdvanceResult:
    """What one applied day looked like (the ``/v1/ingest`` payload)."""

    day: date
    applied: int  # delta events applied to the index
    events: int  # watch events published
    replayed: bool = False  # True when restored from the journal

    def to_dict(self) -> dict:
        return {
            "day": self.day.isoformat(),
            "applied": self.applied,
            "events": self.events,
            "replayed": self.replayed,
        }


class Ingestor:
    """Owns and advances one world's incremental serving state."""

    def __init__(
        self,
        world: World,
        *,
        key: str = "",
        start_day: date | None = None,
        state_dir: Path | None = None,
        tals: TalSet | None = None,
        instrumentation: Instrumentation | None = None,
        webhook_url: str | None = None,
    ) -> None:
        self.world = world
        self.key = key
        self.instrumentation = instrumentation or Instrumentation()
        self.tals = tals or TalSet.default()
        self.events = EventLog()
        self.webhook = (
            WebhookPusher(webhook_url, instrumentation=self.instrumentation)
            if webhook_url
            else None
        )
        #: Called with the fresh :class:`QueryEngine` after every
        #: successful advance; the serving tier points this at
        #: ``ServerCore.set_engine``.
        self.on_engine: Callable[[QueryEngine], None] | None = None
        self._lock = threading.Lock()
        self.base_day = start_day or world.window.start
        self.as_of = self.base_day
        self.days_applied = 0

        instr = self.instrumentation
        self.index = build_index_as_of(
            world, self.base_day, key=key, instrumentation=instr
        )
        # One whole-world scan, paid here with the base build, so every
        # later advance is a dict lookup instead of a full-archive walk.
        self._deltas = DeltaSource(world)
        # The substrate is memory-only (directory=None): incremental
        # state is partial knowledge and must never overwrite the
        # full-knowledge artifacts in the world's cache entry.
        self.substrate = AnalysisSubstrate(
            world, key=key, instrumentation=instr
        )
        self.substrate._index = self.index
        self.substrate._roa_status = compute_roa_status_as_of(
            world, self.base_day
        )
        self.engine = QueryEngine(
            self.index, tals=self.tals, instrumentation=instr
        )

        self.journal: DeltaJournal | None = None
        if state_dir is not None:
            state_dir = Path(state_dir)
            state_dir.mkdir(parents=True, exist_ok=True)
            self._recover(state_dir)
            if self.journal is None:
                self.journal = DeltaJournal(
                    state_dir,
                    key=key,
                    base_day=self.base_day,
                    instrumentation=instr,
                )

    # -- recovery ------------------------------------------------------------

    def _recover(self, state_dir: Path) -> None:
        """Replay a matching journal; a torn one is evicted, not trusted.

        A journal for a different world key or base day is ignored (a
        fresh journal overwrites it on the next append) — only an
        exactly-matching record may shortcut the rebuild.
        """
        journal = DeltaJournal.load_or_evict(
            state_dir,
            expected_key=self.key,
            instrumentation=self.instrumentation,
        )
        if journal is None or journal.base_day != self.base_day:
            return
        for raw in journal.batches:
            batch = DeltaBatch.from_dict(raw)
            self._step(batch, journal=None, replayed=True)
        self.journal = journal

    # -- advancing -----------------------------------------------------------

    def advance(self, *, to_day: date | None = None) -> list[AdvanceResult]:
        """Apply the next day's delta (or every day up to ``to_day``).

        Days are strictly sequential — the identity rule only holds for
        gap-free application.  Raises :class:`IngestError` when already
        at the window end (nothing left to ingest) or when ``to_day``
        lies outside the remaining window.
        """
        with self._lock:
            end = self.world.window.end
            target = to_day or min(self.as_of + timedelta(days=1), end)
            if self.as_of >= end:
                raise IngestError(
                    f"nothing left to ingest: as-of {self.as_of} is the "
                    f"window end"
                )
            if not self.as_of < target <= end:
                raise IngestError(
                    f"ingest target {target} outside ({self.as_of}, {end}]"
                )
            results = []
            while self.as_of < target:
                day = self.as_of + timedelta(days=1)
                batch = self._deltas.batch(day)
                results.append(self._step(batch, journal=self.journal))
            return results

    def _step(
        self,
        batch: DeltaBatch,
        *,
        journal: DeltaJournal | None,
        replayed: bool = False,
    ) -> AdvanceResult:
        """Apply one batch and publish; previous state survives failure."""
        instr = self.instrumentation
        events = evaluate_events(self.index, batch, tals=self.tals)
        try:
            fresh = apply_delta(
                self.index, self.substrate, batch, instrumentation=instr
            )
        except Exception:
            instr.incr("ingest_apply_failures")
            raise
        if journal is not None:
            journal.append(batch.to_dict())
        engine = QueryEngine(fresh, tals=self.tals, instrumentation=instr)
        self.index = fresh
        self.engine = engine
        self.as_of = batch.day
        self.days_applied += 1
        if self.on_engine is not None:
            self.on_engine(engine)
        published = self.events.publish(events)
        if self.webhook is not None and not replayed:
            self.webhook.push(published)
        instr.incr("ingest_events_published", len(published))
        return AdvanceResult(
            day=batch.day,
            applied=len(batch),
            events=len(published),
            replayed=replayed,
        )

    # -- introspection -------------------------------------------------------

    def status(self) -> dict:
        """The ``ingest`` block of ``/v1/status``."""
        return {
            "as_of": self.as_of.isoformat(),
            "base_day": self.base_day.isoformat(),
            "days_applied": self.days_applied,
            "last_seq": self.events.last_seq,
            "window_end": self.world.window.end.isoformat(),
        }

    def wait_events(
        self, since: int, timeout: float
    ) -> list[WatchEvent]:
        """Long-poll helper for the watch endpoint."""
        if timeout <= 0:
            return self.events.since(since)
        return self.events.wait_since(since, timeout)
