"""Route Origin Authorizations (ROAs).

A ROA asserts that an ASN may originate a prefix (and, via ``maxLength``,
more-specifics up to that length).  ``asn`` may be :data:`~repro.net.asn.AS0`
— the "do not route" assertion central to the paper's §6.  Our ROA carries a
``trust_anchor`` naming the TAL that published it, because the RIR AS0 TALs
are deliberately *not* configured in validators by default (§2.3.1) and the
analyses must distinguish them.

We model validated ROA payloads, not the X.509/CMS encoding: the paper's
pipeline consumes RIPE's archive of already-validated ROAs, so cryptography
is below the reproduction's waterline (see DESIGN.md §6).
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import date

from ..net.asn import AS0
from ..net.prefix import IPV4_BITS, IPv4Prefix

__all__ = ["Roa", "RoaRecord"]


@dataclass(frozen=True, slots=True)
class Roa:
    """One validated ROA payload."""

    prefix: IPv4Prefix
    asn: int
    max_length: int | None = None
    trust_anchor: str = "RIPE"

    def __post_init__(self) -> None:
        if self.max_length is not None and not (
            self.prefix.length <= self.max_length <= IPV4_BITS
        ):
            raise ValueError(
                f"maxLength {self.max_length} invalid for {self.prefix}"
            )
        if self.asn < 0:
            raise ValueError(f"negative ASN {self.asn}")

    @property
    def effective_max_length(self) -> int:
        """maxLength, defaulting to the prefix length when absent."""
        return (
            self.prefix.length if self.max_length is None else self.max_length
        )

    @property
    def is_as0(self) -> bool:
        """True for a "do not route" assertion."""
        return self.asn == AS0

    @property
    def uses_max_length(self) -> bool:
        """True if the ROA authorizes more-specifics beyond its prefix."""
        return self.effective_max_length > self.prefix.length

    def covers(self, prefix: IPv4Prefix) -> bool:
        """True if this ROA's prefix contains ``prefix``."""
        return self.prefix.contains(prefix)

    def authorizes(self, prefix: IPv4Prefix, origin: int) -> bool:
        """RFC 6811 match: covering prefix, length ≤ maxLength, same ASN.

        An AS0 ROA never authorizes anything (AS0 cannot appear as a real
        origin), which is exactly what makes it a "do not route" lock.
        """
        if self.is_as0:
            return False
        return (
            self.covers(prefix)
            and prefix.length <= self.effective_max_length
            and origin == self.asn
        )

    def forged_subprefix_vulnerable(self) -> bool:
        """True if the maxLength attribute exposes the Gilad et al. [15]
        forged-origin sub-prefix hijack: the ROA authorizes more-specifics
        the owner may not announce, which an attacker can announce with
        the owner's ASN forged as origin."""
        return not self.is_as0 and self.uses_max_length

    def __str__(self) -> str:
        return (
            f"ROA({self.prefix}, AS{self.asn}, "
            f"maxLen={self.effective_max_length}, {self.trust_anchor})"
        )


@dataclass(frozen=True, slots=True)
class RoaRecord:
    """A ROA plus its lifetime in the daily archive."""

    roa: Roa
    created: date
    removed: date | None = None  # first day absent from the archive

    def __post_init__(self) -> None:
        if self.removed is not None and self.removed <= self.created:
            raise ValueError(
                f"ROA for {self.roa.prefix} removed {self.removed} "
                f"not after created {self.created}"
            )

    def active_on(self, day: date) -> bool:
        """True if the ROA was published on ``day``."""
        return self.created <= day and (
            self.removed is None or day < self.removed
        )
