"""Unit tests for repro.net.timeline."""

from datetime import date

import pytest

from repro.net.timeline import (
    STUDY_END,
    STUDY_START,
    STUDY_WINDOW,
    DailySeries,
    DateWindow,
    StepFunction,
    date_range,
    month_starts,
    parse_date,
)


class TestParseDate:
    def test_iso(self):
        assert parse_date("2020-02-29") == date(2020, 2, 29)

    def test_compact_rir_stats_form(self):
        assert parse_date("20200229") == date(2020, 2, 29)

    def test_whitespace(self):
        assert parse_date(" 2019-06-05\n") == STUDY_START

    def test_single_digit_month_and_day(self):
        assert parse_date("2020-2-9") == date(2020, 2, 9)

    @pytest.mark.parametrize("text", [
        "2021-02-30",   # February has no 30th
        "2021-13-01",   # month out of range
        "2021-00-10",   # zero month
        "2021-04-31",   # April has no 31st
        "20210230",     # impossible date, compact form
    ])
    def test_rejects_impossible_calendar_dates(self, text):
        with pytest.raises(ValueError, match=repr(text)):
            parse_date(text)

    @pytest.mark.parametrize("text", [
        "2022-01-01x",      # trailing garbage
        "20220101x",
        "2022-01-01 12:00", # timestamps are not dates
        "2022-01",          # truncated
        "202201",
        "01-01-2022",       # wrong field order
        "not-a-date",
        "",
    ])
    def test_rejects_malformed_text(self, text):
        with pytest.raises(ValueError, match="invalid date"):
            parse_date(text)


class TestDateRange:
    def test_inclusive(self):
        days = list(date_range(date(2020, 1, 1), date(2020, 1, 3)))
        assert days == [date(2020, 1, 1), date(2020, 1, 2), date(2020, 1, 3)]

    def test_step(self):
        days = list(date_range(date(2020, 1, 1), date(2020, 1, 10), 7))
        assert days == [date(2020, 1, 1), date(2020, 1, 8)]

    def test_month_starts(self):
        months = list(month_starts(date(2019, 11, 15), date(2020, 2, 1)))
        assert months == [date(2019, 12, 1), date(2020, 1, 1),
                          date(2020, 2, 1)]

    def test_month_starts_from_first(self):
        months = list(month_starts(date(2020, 1, 1), date(2020, 2, 1)))
        assert months[0] == date(2020, 1, 1)


class TestDateWindow:
    def test_study_window_days(self):
        # June 5 2019 .. March 30 2022 inclusive.
        assert STUDY_WINDOW.days == (STUDY_END - STUDY_START).days + 1

    def test_contains(self):
        assert date(2020, 6, 1) in STUDY_WINDOW
        assert date(2019, 6, 4) not in STUDY_WINDOW

    def test_clamp(self):
        assert STUDY_WINDOW.clamp(date(2010, 1, 1)) == STUDY_START
        assert STUDY_WINDOW.clamp(date(2030, 1, 1)) == STUDY_END

    def test_invalid(self):
        with pytest.raises(ValueError):
            DateWindow(date(2020, 1, 2), date(2020, 1, 1))

    def test_overlaps(self):
        a = DateWindow(date(2020, 1, 1), date(2020, 1, 10))
        b = DateWindow(date(2020, 1, 10), date(2020, 1, 20))
        c = DateWindow(date(2020, 2, 1), date(2020, 2, 2))
        assert a.overlaps(b)
        assert not a.overlaps(c)

    def test_shifted(self):
        w = DateWindow(date(2020, 1, 1), date(2020, 1, 10)).shifted(-1)
        assert w.start == date(2019, 12, 31)

    def test_iter(self):
        w = DateWindow(date(2020, 1, 1), date(2020, 1, 3))
        assert len(list(w)) == 3


class TestStepFunction:
    def test_default_before_first_breakpoint(self):
        f = StepFunction("unallocated")
        f.set(date(2020, 1, 1), "allocated")
        assert f.value_at(date(2019, 1, 1)) == "unallocated"

    def test_value_at_and_after_breakpoint(self):
        f = StepFunction(0)
        f.set(date(2020, 1, 1), 1)
        f.set(date(2020, 6, 1), 2)
        assert f.value_at(date(2020, 1, 1)) == 1
        assert f.value_at(date(2020, 5, 31)) == 1
        assert f.value_at(date(2020, 6, 1)) == 2
        assert f.value_at(date(2021, 1, 1)) == 2

    def test_out_of_order_insertion(self):
        f = StepFunction(0)
        f.set(date(2020, 6, 1), 2)
        f.set(date(2020, 1, 1), 1)
        assert f.value_at(date(2020, 3, 1)) == 1

    def test_same_day_overwrite(self):
        f = StepFunction(0)
        f.set(date(2020, 1, 1), 1)
        f.set(date(2020, 1, 1), 5)
        assert f.value_at(date(2020, 1, 1)) == 5
        assert len(f) == 1

    def test_first_day_with(self):
        f = StepFunction("none")
        f.set(date(2020, 1, 1), "roa")
        f.set(date(2021, 1, 1), "as0")
        assert f.first_day_with(lambda v: v == "as0") == date(2021, 1, 1)
        assert f.first_day_with(lambda v: v == "zzz") is None

    def test_breakpoints_sorted(self):
        f = StepFunction(0)
        f.set(date(2021, 1, 1), 2)
        f.set(date(2020, 1, 1), 1)
        assert [d for d, _ in f.breakpoints()] == [date(2020, 1, 1),
                                                   date(2021, 1, 1)]


class TestDailySeries:
    def window(self):
        return DateWindow(date(2020, 1, 1), date(2020, 1, 10))

    def test_get_set(self):
        s = DailySeries(self.window())
        s[date(2020, 1, 5)] = 3.5
        assert s[date(2020, 1, 5)] == 3.5
        assert s[date(2020, 1, 4)] == 0.0

    def test_out_of_window(self):
        s = DailySeries(self.window())
        with pytest.raises(KeyError):
            s[date(2021, 1, 1)]

    def test_increment(self):
        s = DailySeries(self.window())
        s.increment(date(2020, 1, 2))
        s.increment(date(2020, 1, 2), 2.0)
        assert s[date(2020, 1, 2)] == 3.0

    def test_add_interval_clamps(self):
        s = DailySeries(self.window())
        s.add_interval(date(2019, 12, 1), date(2020, 1, 2))
        assert s[date(2020, 1, 1)] == 1.0
        assert s[date(2020, 1, 2)] == 1.0
        assert s[date(2020, 1, 3)] == 0.0

    def test_add_interval_fully_outside(self):
        s = DailySeries(self.window())
        s.add_interval(date(2019, 1, 1), date(2019, 2, 1))
        assert all(v == 0.0 for v in s.values())

    def test_items_aligned(self):
        s = DailySeries(self.window())
        days = [d for d, _ in s.items()]
        assert days[0] == date(2020, 1, 1)
        assert days[-1] == date(2020, 1, 10)
        assert len(days) == 10

    def test_sample(self):
        s = DailySeries(self.window())
        s[date(2020, 1, 3)] = 7.0
        assert s.sample([date(2020, 1, 3)]) == [(date(2020, 1, 3), 7.0)]
