"""The committed API contract matches the live daemons — both of them.

Three rings of defense:

* the committed ``docs/api-contract.json`` must be byte-identical to
  what :func:`repro.query.contract.render` produces, so the file can
  never drift from the code;
* the mini validator itself is pinned (types, enums, required keys,
  closed objects, the JSON bool-is-not-integer rule);
* live responses from the threaded *and* asyncio daemons — success
  bodies, every error family, the watch and ingest surfaces — are
  replayed through the schemas.
"""

import json
from pathlib import Path

import pytest

from repro.ingest import Ingestor
from repro.query.contract import (
    CONTRACT,
    ERROR_CODES,
    ERROR_ENVELOPE,
    INGEST_STATUS,
    render,
    validate,
)
from repro.query.contract import (
    INGEST_DATA,
    RELOAD_DATA,
    STATUS_DATA,
    WATCH_DATA,
    _enveloped,
)
from repro.query.http import API_VERSION

from .conftest import fetch
from .test_watch import serving

REPO = Path(__file__).resolve().parents[2]


class TestContractFile:
    def test_committed_file_matches_render(self):
        committed = (REPO / "docs" / "api-contract.json").read_text()
        assert committed == render(), (
            "docs/api-contract.json drifted from repro.query.contract; "
            "regenerate it with: python -c \"from repro.query.contract "
            'import render; print(render(), end=\'\')"'
        )

    def test_contract_is_json_round_trippable(self):
        assert json.loads(render()) == json.loads(render())

    def test_api_version_pinned(self):
        assert CONTRACT["api_version"] == API_VERSION

    def test_every_endpoint_names_its_mount_condition(self):
        for ep in CONTRACT["endpoints"]:
            assert ep["method"] in ("GET", "POST")
            assert ep["path"].startswith(("/v1/", "/healthz", "/metrics"))
            assert ep["summary"]
            assert ep["mounted"]

    def test_error_code_registry_covers_raisers(self):
        # Every code the serving layer can put on the wire is declared.
        from repro.ingest import IngestError
        from repro.query.engine import BatchParseError
        from repro.query.http import (
            BadDayError,
            BadPrefixError,
            NotFoundError,
            ReloadError,
            RequestError,
        )

        raised = {
            cls.code
            for cls in (
                RequestError,
                BadPrefixError,
                BadDayError,
                NotFoundError,
                ReloadError,
                BatchParseError,
                IngestError,
            )
        }
        raised.add("query.internal")  # synthesized in the 500 handler
        assert raised == set(ERROR_CODES)


class TestValidator:
    def test_accepts_matching_object(self):
        schema = {
            "type": "object",
            "required": ["a"],
            "additionalProperties": False,
            "properties": {"a": {"type": "integer"}},
        }
        assert validate({"a": 1}, schema) == []

    @pytest.mark.parametrize(
        ("instance", "fragment"),
        [
            ({}, "missing required key 'a'"),
            ({"a": "x"}, "expected type integer"),
            ({"a": 1, "b": 2}, "unexpected key 'b'"),
            ({"a": True}, "expected type integer"),  # bool is not JSON int
            ([], "expected type object"),
        ],
    )
    def test_rejects_mismatches(self, instance, fragment):
        schema = {
            "type": "object",
            "required": ["a"],
            "additionalProperties": False,
            "properties": {"a": {"type": "integer"}},
        }
        errors = validate(instance, schema)
        assert any(fragment in e for e in errors), errors

    def test_type_lists_enums_consts_items(self):
        assert validate(None, {"type": ["string", "null"]}) == []
        assert validate(3, {"type": ["string", "null"]}) != []
        assert validate("moas", {"enum": ["moas", None]}) == []
        assert validate("path", {"enum": ["moas", None]}) != []
        assert validate(1, {"const": 1}) == []
        assert validate(2, {"const": 1}) != []
        items = {"type": "array", "items": {"type": "integer"}}
        assert validate([1, 2], items) == []
        assert validate([1, "x"], items) != []

    def test_error_paths_are_navigable(self):
        schema = {
            "type": "object",
            "properties": {
                "xs": {"type": "array", "items": {"type": "string"}}
            },
        }
        errors = validate({"xs": [1]}, schema)
        assert errors == ["$.xs[0]: expected type string, got int"]


@pytest.fixture(params=["threaded", "async"])
def live(request, world, stored):
    """A running incremental-mode daemon of each transport."""
    ingestor = Ingestor(world, key=stored.key)
    with serving(request.param, ingestor.engine, ingestor) as address:
        yield address, ingestor


def _assert_valid(reply, schema):
    payload = json.loads(reply.body)
    errors = validate(payload, schema)
    assert errors == [], errors
    return payload


class TestLiveConformance:
    def test_status_success(self, live, index):
        address, _ = live
        prefix = next(iter(index.drop))
        reply = fetch(address, "GET", f"/v1/status?prefix={prefix}")
        assert reply.status == 200
        _assert_valid(reply, _enveloped(STATUS_DATA))

    @pytest.mark.parametrize(
        ("target", "status"),
        [
            ("/v1/status", 400),
            ("/v1/status?prefix=999.0.0.0/8", 400),
            ("/v1/status?prefix=10.0.0.0/8&on=2021-02-30", 400),
            ("/v1/nope", 404),
        ],
    )
    def test_errors_ride_the_error_envelope(self, live, target, status):
        address, _ = live
        reply = fetch(address, "GET", target)
        assert reply.status == status
        _assert_valid(reply, ERROR_ENVELOPE)

    def test_batch_success_and_parse_error(self, live, index):
        address, _ = live
        prefixes = list(index.drop)[:3]
        body = json.dumps({"queries": [str(p) for p in prefixes]}).encode()
        reply = fetch(address, "POST", "/v1/batch", body)
        assert reply.status == 200
        payload = _assert_valid(
            reply,
            _enveloped(
                {
                    "type": "object",
                    "required": ["results"],
                    "additionalProperties": False,
                    "properties": {
                        "results": {"type": "array", "items": STATUS_DATA}
                    },
                }
            ),
        )
        assert len(payload["data"]["results"]) == len(prefixes)
        bad = fetch(
            address, "POST", "/v1/batch", b'{"queries": ["nope", 7]}'
        )
        assert bad.status == 400
        payload = _assert_valid(bad, ERROR_ENVELOPE)
        assert payload["error"]["code"] == "query.batch-parse"

    def test_ingest_success_and_conflict(self, live, world):
        address, _ = live
        reply = fetch(address, "POST", "/v1/ingest", b"")
        assert reply.status == 200
        _assert_valid(reply, _enveloped(INGEST_DATA))
        beyond = {"day": "2199-01-01"}
        conflict = fetch(
            address, "POST", "/v1/ingest", json.dumps(beyond).encode()
        )
        assert conflict.status == 409
        payload = _assert_valid(conflict, ERROR_ENVELOPE)
        assert payload["error"]["code"] == "ingest.failed"

    def test_watch_json_mode(self, live):
        address, _ = live
        # Advance until the log holds real events, then validate them.
        for _ in range(30):
            data = json.loads(
                fetch(address, "POST", "/v1/ingest", b"").body
            )["data"]
            if data["ingest"]["last_seq"]:
                break
        reply = fetch(address, "GET", "/v1/watch")
        assert reply.status == 200
        payload = _assert_valid(reply, _enveloped(WATCH_DATA))
        assert payload["data"]["events"]

    def test_healthz_ingest_block(self, live):
        address, _ = live
        body = json.loads(fetch(address, "GET", "/healthz").body)
        errors = validate(body["ingest"], INGEST_STATUS)
        assert errors == [], errors

    def test_reload_answer(self, engine, index):
        from repro.query import AsyncQueryServer
        from repro.query.engine import QueryEngine

        srv = AsyncQueryServer(
            engine,
            "127.0.0.1",
            0,
            workers=1,
            reload_factory=lambda: QueryEngine(index),
        )
        srv.start()
        import threading

        thread = threading.Thread(
            target=srv.serve_until_shutdown, daemon=True
        )
        thread.start()
        try:
            reply = fetch(
                srv.server_address, "POST", "/v1/admin/reload", b""
            )
            assert reply.status == 200
            _assert_valid(reply, _enveloped(RELOAD_DATA))
        finally:
            srv.drain()
            thread.join(timeout=20)
        assert not thread.is_alive()
