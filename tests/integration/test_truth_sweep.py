"""Truth-consistency sweep: measurements vs. generator intent, 5 seeds.

Builds ``ScenarioConfig.tiny()`` under five different seeds and
cross-checks every analysis-visible quantity against the
:class:`~repro.synth.world.GroundTruth` invariants.  The analyses only
ever see archive-shaped data, so agreement here means the measurement
pipeline recovers what the generator put in — for any RNG stream, not
just the default seed.
"""

import pytest

from repro.analysis import analyze_rpki_effectiveness, load_entries
from repro.bgp.visibility import withdrawn_within
from repro.drop.categories import Category
from repro.synth import ScenarioConfig, build_world

SEEDS = (3, 7, 42, 1234, 987654)


@pytest.fixture(scope="module", params=SEEDS, ids=lambda s: f"seed{s}")
def measured(request):
    world = build_world(ScenarioConfig.tiny(seed=request.param))
    return world, load_entries(world), world.truth


class TestEntryTruthAgreement:
    def test_drop_population_matches_truth_exactly(self, measured):
        world, entries, truth = measured
        assert {e.prefix for e in entries} == set(truth.drop)

    def test_listing_dates_match_truth(self, measured):
        world, entries, truth = measured
        for entry in entries:
            intent = truth.drop[entry.prefix]
            assert entry.listed == intent.listed
            assert entry.removed_on == intent.removed_on

    def test_categories_match_truth(self, measured):
        world, entries, truth = measured
        for entry in entries:
            assert entry.categories == truth.drop[entry.prefix].categories

    def test_unallocated_detection_matches_truth(self, measured):
        world, entries, truth = measured
        assert {e.prefix for e in entries if e.unallocated} == {
            p for p, t in truth.drop.items() if t.unallocated
        }

    def test_incident_marking_covers_truth(self, measured):
        world, entries, truth = measured
        flagged = {e.prefix for e in entries if e.incident}
        intended = {p for p, t in truth.drop.items() if t.incident}
        # Incident marking is geographic (the AFRINIC block), so every
        # intended prefix must be caught; at most a couple of unrelated
        # prefixes may land inside the block and be over-flagged.
        assert intended <= flagged
        assert len(flagged - intended) <= 2


class TestBehaviourTruthAgreement:
    def test_withdrawn_within_30d_subset_of_truth(self, measured):
        world, entries, truth = measured
        counted = {
            e.prefix
            for e in entries
            if withdrawn_within(world.bgp, e.prefix, e.listed, days=30)
        }
        intended = {
            p for p, t in truth.drop.items() if t.withdrawn_30d
        }
        assert counted <= intended
        # The generator withdraws what it says it withdraws, so the
        # measurement should recover (nearly) all of it too.
        assert len(counted) >= 0.9 * len(intended)

    def test_deallocations_match_truth(self, measured):
        world, entries, truth = measured
        counted = {
            e.prefix
            for e in entries
            if e.allocated_at_listing
            and world.resources.deallocated_by(
                e.prefix, world.window.end, after=e.listed
            )
        }
        intended = {p for p, t in truth.drop.items() if t.deallocated}
        assert counted == intended

    def test_presigned_hijacks_match_truth(self, measured):
        world, entries, truth = measured
        result = analyze_rpki_effectiveness(world, entries)
        intended = sum(
            1
            for t in truth.drop.values()
            if t.presigned and Category.HIJACKED in t.categories
        )
        assert result.presigned_count == intended == 3
