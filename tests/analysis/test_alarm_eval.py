"""Tests for the alarm-vs-blocklist evaluation extension."""

import pytest

from repro.analysis import evaluate_alarms, load_entries
from repro.synth import ScenarioConfig, build_world


@pytest.fixture(scope="module")
def world():
    return build_world(ScenarioConfig.tiny())


@pytest.fixture(scope="module")
def evaluation(world):
    return evaluate_alarms(world, load_entries(world))


class TestAlarmEvaluation:
    def test_most_hijacks_not_enrollable(self, evaluation):
        # The paper's abandonment story: almost all hijacked prefixes
        # were unrouted for years — nothing to baseline.
        assert evaluation.enrollable_share < 0.1
        assert evaluation.enrollable >= 1

    def test_all_enrollable_detected(self, evaluation):
        assert evaluation.detected == len(evaluation.monitored)

    def test_detection_leads_listing_by_months(self, evaluation):
        assert evaluation.median_lead_days is not None
        assert evaluation.median_lead_days > 100

    def test_case_study_detected_at_hijack_start(self, world, evaluation):
        case = world.truth.case_study
        monitored = {m.prefix: m for m in evaluation.monitored}
        assert case.signed_prefix in monitored
        record = monitored[case.signed_prefix]
        assert record.first_alarm == case.hijack_start
        assert "path" in record.alarm_kinds

    def test_every_lead_nonnegative(self, evaluation):
        for item in evaluation.monitored:
            if item.lead_days is not None:
                assert item.lead_days >= 0

    def test_empty_world_safe(self):
        # Degenerate call: no hijacks at all.
        tiny = build_world(ScenarioConfig.tiny(seed=3))
        entries = [
            e for e in load_entries(tiny) if not e.categories
        ]
        result = evaluate_alarms(tiny, entries)
        assert result.hijacked_total == 0
        assert result.median_lead_days is None
