"""Shared query-layer fixtures: one tiny world, one index, one engine.

The world is fetched through its own :class:`~repro.runtime.WorldCache`
(not the session's env cache) so index persistence tests own their cache
entry directory without racing the CLI tests.
"""

import pytest

from repro.query import QueryEngine, build_index
from repro.runtime import WorldCache
from repro.synth import ScenarioConfig


@pytest.fixture(scope="package")
def config():
    return ScenarioConfig.tiny()


@pytest.fixture(scope="package")
def stored(tmp_path_factory, config):
    """The cached world plus its entry directory and content key."""
    cache = WorldCache(tmp_path_factory.mktemp("query-cache"))
    return cache.fetch(config)


@pytest.fixture(scope="package")
def world(stored):
    return stored.world


@pytest.fixture(scope="package")
def index(world, stored):
    return build_index(world, key=stored.key)


@pytest.fixture(scope="package")
def engine(index):
    return QueryEngine(index)
