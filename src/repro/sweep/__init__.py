"""Sweep engine: grids of DSL scenarios fanned across the runner.

:mod:`~repro.sweep.spec` declares the axes (families x deployment
rates x scale), :mod:`~repro.sweep.engine` runs the cells through the
scenario cache and parallel runner, and :mod:`~repro.sweep.report`
folds the per-cell metrics into defense-effectiveness curves.  The
``repro-drop sweep`` CLI wraps all three.
"""

from .engine import CellResult, SweepOutcome, run_sweep
from .report import render_sweep_table, sweep_report
from .spec import DEFAULT_FAMILIES, SweepSpec, SweepSpecError

__all__ = [
    "CellResult",
    "DEFAULT_FAMILIES",
    "SweepOutcome",
    "SweepSpec",
    "SweepSpecError",
    "render_sweep_table",
    "run_sweep",
    "sweep_report",
]
