"""Unit tests for the parallel experiment runner."""

import os

import pytest

from repro.analysis import load_entries
from repro.reporting import EXPERIMENTS
from repro.runtime import (
    Instrumentation,
    WorldCache,
    default_jobs,
    resolve_jobs,
    run_experiments,
)
from repro.synth import ScenarioConfig


@pytest.fixture(scope="module")
def cached_world(tmp_path_factory):
    """A tiny world with an on-disk cache entry for spawn-path workers."""
    cache = WorldCache(tmp_path_factory.mktemp("runner-cache"))
    outcome = cache.fetch(ScenarioConfig.tiny())
    return outcome.world, outcome.directory


@pytest.fixture(scope="module")
def entries(cached_world):
    world, _ = cached_world
    return load_entries(world)


SUBSET = ["fig1", "tab1", "fig5", "ext-survival"]


class TestJobs:
    def test_env_controls_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert default_jobs() == 1
        monkeypatch.setenv("REPRO_JOBS", "6")
        assert default_jobs() == 6

    def test_zero_means_one_per_cpu(self, monkeypatch):
        assert resolve_jobs(0) == (os.cpu_count() or 1)
        monkeypatch.setenv("REPRO_JOBS", "0")
        assert default_jobs() == (os.cpu_count() or 1)

    def test_negative_and_garbage_rejected_loudly(self, monkeypatch):
        with pytest.raises(ValueError, match="jobs must be >= 0"):
            resolve_jobs(-4)
        monkeypatch.setenv("REPRO_JOBS", "-3")
        with pytest.raises(ValueError, match="jobs must be >= 0"):
            default_jobs()
        monkeypatch.setenv("REPRO_JOBS", "not-a-number")
        with pytest.raises(ValueError, match="must be an integer"):
            default_jobs()

    def test_positive_passthrough(self):
        assert resolve_jobs(1) == 1
        assert resolve_jobs(7) == 7


class TestRunExperiments:
    def test_serial_matches_registry_order(self, cached_world, entries):
        world, directory = cached_world
        outcome = run_experiments(world, SUBSET, jobs=1, entries=entries)
        assert outcome.ok
        assert [r.exp_id for r in outcome.reports] == SUBSET

    def test_parallel_equals_serial(self, cached_world, entries):
        world, directory = cached_world
        serial = run_experiments(world, SUBSET, jobs=1, entries=entries)
        parallel = run_experiments(
            world, SUBSET, jobs=4, directory=directory, entries=entries
        )
        assert parallel.ok
        assert parallel.reports == serial.reports

    def test_unknown_experiment_rejected(self, cached_world):
        world, _ = cached_world
        with pytest.raises(KeyError):
            run_experiments(world, ["nope"], jobs=1)

    def test_per_experiment_timings_recorded(self, cached_world, entries):
        world, _ = cached_world
        instr = Instrumentation()
        run_experiments(
            world, SUBSET, jobs=1, entries=entries, instrumentation=instr
        )
        assert [s.name for s in instr.group("experiment")] == SUBSET

    def test_failure_is_isolated_serial(
        self, cached_world, entries, monkeypatch
    ):
        world, _ = cached_world

        def explode(world, entries, substrate=None):
            raise RuntimeError("injected experiment failure")

        monkeypatch.setitem(EXPERIMENTS, "boom", explode)
        outcome = run_experiments(
            world, ["fig1", "boom", "tab1"], jobs=1, entries=entries
        )
        assert [r.exp_id for r in outcome.reports] == ["fig1", "tab1"]
        assert [f.exp_id for f in outcome.failures] == ["boom"]
        assert "injected experiment failure" in outcome.failures[0].error
        assert outcome.failures[0].kind == "raised"

    def test_failure_is_isolated_parallel(
        self, cached_world, entries, monkeypatch
    ):
        world, directory = cached_world

        def explode(world, entries, substrate=None):
            raise RuntimeError("injected experiment failure")

        monkeypatch.setitem(EXPERIMENTS, "boom", explode)
        outcome = run_experiments(
            world,
            ["fig1", "boom", "tab1"],
            jobs=2,
            directory=directory,
            entries=entries,
        )
        assert [r.exp_id for r in outcome.reports] == ["fig1", "tab1"]
        assert [f.exp_id for f in outcome.failures] == ["boom"]
