"""Shared analysis plumbing: the per-prefix DROP entry view.

Every analysis starts from the same join: the DROP episode (listing and
removal dates), the SBL record and its Appendix-A classification, the
managing RIR and allocation status at listing, and the AFRINIC-incident
flag.  :func:`load_entries` performs that join once; analyses filter the
resulting list.

Incident detection mirrors the paper's manual step (§3.1): the incidents
are *clusters* of many large same-region prefixes listed on the same day —
:func:`detect_incidents` finds them from the data, without ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from datetime import date

from ..drop.categories import Category
from ..drop.categorize import Categorizer
from ..net.prefix import IPv4Prefix
from ..synth.world import World

__all__ = ["DropEntryView", "detect_incidents", "load_entries"]

#: Minimum prefixes listed on one day in one region to call it an incident
#: cluster, and the minimum address space (a /14) that cluster must cover.
_INCIDENT_MIN_PREFIXES = 10
_INCIDENT_MIN_ADDRESSES = 1 << 18


@dataclass(frozen=True, slots=True)
class DropEntryView:
    """One DROP prefix with everything the analyses join against it."""

    prefix: IPv4Prefix
    listed: date
    removed_on: date | None
    sbl_id: str | None
    categories: frozenset[Category]
    manual_classification: bool
    mentioned_asns: tuple[int, ...]
    region: str | None
    allocated_at_listing: bool
    incident: bool = False

    @property
    def removed(self) -> bool:
        """True if Spamhaus removed the prefix during the window."""
        return self.removed_on is not None

    @property
    def unallocated(self) -> bool:
        """True if no RIR had allocated the prefix when it was listed."""
        return not self.allocated_at_listing

    def has_category(self, category: Category) -> bool:
        """True if the Appendix-A classification includes ``category``."""
        return category in self.categories


def load_entries(
    world: World, *, mark_incidents: bool = True
) -> list[DropEntryView]:
    """Join DROP, SBL, and registry data into per-prefix entry views.

    Uses each prefix's *first* listing episode, as the paper does for its
    per-prefix statistics.  Classification runs the Appendix-A categorizer
    over the live SBL text (records Spamhaus already removed classify as
    NR).  Unallocated prefixes are detected from the registry, and the
    UA label is added when the registry confirms it even if the record
    text lacked the keyword.
    """
    categorizer = Categorizer(manual_overrides=world.manual_overrides)
    entries: list[DropEntryView] = []
    for prefix in world.drop.unique_prefixes():
        episode = world.drop.first_episode(prefix)
        assert episode is not None
        record = world.sbl.record_for_prefix(prefix)
        if record is None:
            result = categorizer.classify_missing(prefix)
            mentioned: tuple[int, ...] = ()
        else:
            result = categorizer.classify_record(record)
            mentioned = record.mentioned_asns
        status = world.resources.status_of(prefix, episode.added)
        categories = set(result.categories)
        if status.is_unallocated and record is not None:
            categories.add(Category.UNALLOCATED)
        entries.append(
            DropEntryView(
                prefix=prefix,
                listed=episode.added,
                removed_on=episode.removed,
                sbl_id=episode.sbl_id,
                categories=frozenset(categories),
                manual_classification=result.manual,
                mentioned_asns=mentioned,
                region=status.rir,
                allocated_at_listing=status.is_allocated,
            )
        )
    if mark_incidents:
        incident_prefixes = detect_incidents(entries)
        entries = [
            replace(entry, incident=entry.prefix in incident_prefixes)
            for entry in entries
        ]
    return entries


def detect_incidents(entries: list[DropEntryView]) -> set[IPv4Prefix]:
    """Find incident clusters: many large same-day, same-region listings.

    The paper identified two AFRINIC incidents of alleged fraudulent
    address acquisition — 45 prefixes, 6.3% of listings but 48.8% of the
    listed address space — and excluded them from the analyses.  The
    cluster signature (≥10 prefixes, ≥ a /14 of space, one region, one
    listing day) recovers exactly those prefixes.
    """
    clusters: dict[tuple[date, str | None], list[DropEntryView]] = {}
    for entry in entries:
        clusters.setdefault((entry.listed, entry.region), []).append(entry)
    incidents: set[IPv4Prefix] = set()
    for members in clusters.values():
        if len(members) < _INCIDENT_MIN_PREFIXES:
            continue
        space = sum(m.prefix.num_addresses for m in members)
        if space < _INCIDENT_MIN_ADDRESSES:
            continue
        incidents.update(m.prefix for m in members)
    return incidents
