"""Content-addressed world cache.

Building a synthetic world is deterministic in its
:class:`~repro.synth.config.ScenarioConfig`, so worlds are cached on
disk keyed by a stable hash of the config plus the generator version.
Entries persist through the ordinary :func:`~repro.synth.archive.save_world`
/ :func:`~repro.synth.archive.load_world` round-trip (daily DROP
snapshots, so episode dates reload exactly and analyses stay
byte-identical with a fresh build).

Layout: ``<root>/worlds/<key>/`` where ``root`` defaults to
``~/.cache/repro-drop`` (``$REPRO_CACHE_DIR`` overrides; honors
``$XDG_CACHE_HOME``).  Writes are atomic — the world is saved into a
temporary sibling directory and renamed into place — and loads are
corruption-tolerant: any failure to reload an entry evicts it and falls
back to a rebuild.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import tempfile
from dataclasses import dataclass
from pathlib import Path

from ..synth import ScenarioConfig, World, build_world, load_world, save_world
from ..synth.builder import GENERATOR_VERSION
from .instrument import Instrumentation, world_sizes

__all__ = [
    "CACHE_DIR_ENV",
    "CacheOutcome",
    "WorldCache",
    "default_cache_root",
    "world_cache_key",
]

CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Version of the on-disk cache layout itself (key derivation, snapshot
#: density).  Bump to orphan every existing entry.
_CACHE_FORMAT = 1


def default_cache_root() -> Path:
    """The cache root: ``$REPRO_CACHE_DIR`` or ``~/.cache/repro-drop``."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env).expanduser()
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg).expanduser() if xdg else Path.home() / ".cache"
    return base / "repro-drop"


def world_cache_key(config: ScenarioConfig) -> str:
    """The content address of the world ``config`` would build.

    Any config field, the generator version, or the cache format
    changing yields a fresh key, so stale entries are never reused.
    """
    payload = json.dumps(
        {
            "cache_format": _CACHE_FORMAT,
            "generator": GENERATOR_VERSION,
            "config": config.canonical_dict(),
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True, slots=True)
class CacheOutcome:
    """A fetched world plus how the cache resolved it."""

    world: World
    #: ``"hit"`` (loaded from disk), ``"miss"`` (built and stored), or
    #: ``"refresh"`` (rebuild forced by the caller).
    status: str
    key: str
    directory: Path


class WorldCache:
    """Fetches worlds by config, building and storing on miss."""

    def __init__(self, root: Path | None = None) -> None:
        self.root = Path(root) if root is not None else default_cache_root()

    def directory_for(self, config: ScenarioConfig) -> Path:
        """Where the entry for ``config`` lives (existing or not)."""
        return self.root / "worlds" / world_cache_key(config)

    def fetch(
        self,
        config: ScenarioConfig,
        *,
        instrumentation: Instrumentation | None = None,
        refresh: bool = False,
    ) -> CacheOutcome:
        """The world for ``config``: cached if possible, else built.

        A loaded world carries the caller's full ``config`` (the archive
        round-trip keeps only seed + window), so analyses that read
        generator parameters behave identically on either path.  Ground
        truth is not cached — cache hits are measurement-only worlds,
        exactly like loading real archives.
        """
        instr = instrumentation or Instrumentation()
        key = world_cache_key(config)
        directory = self.root / "worlds" / key
        if not refresh and directory.exists():
            try:
                with instr.stage("cache-load", group="cache"):
                    world = load_world(directory)
            except Exception:
                # Truncated or corrupt entry (interrupted writer, disk
                # fault): evict and rebuild below.
                shutil.rmtree(directory, ignore_errors=True)
                instr.incr("world_cache_evictions")
            else:
                world.config = config
                instr.incr("world_cache_hits")
                instr.annotate("world_sizes", world_sizes(world))
                return CacheOutcome(world, "hit", key, directory)
        instr.incr("world_cache_misses")
        world = build_world(config, instrumentation=instr)
        instr.annotate("world_sizes", world_sizes(world))
        self._store(world, directory, instr)
        return CacheOutcome(
            world, "refresh" if refresh else "miss", key, directory
        )

    def _store(
        self, world: World, directory: Path, instr: Instrumentation
    ) -> None:
        """Atomically persist ``world`` as the entry at ``directory``."""
        directory.parent.mkdir(parents=True, exist_ok=True)
        staging = Path(
            tempfile.mkdtemp(
                dir=directory.parent, prefix=f".{directory.name}-"
            )
        )
        try:
            with instr.stage("cache-store", group="cache"):
                # Daily snapshots so DROP episode dates reload exactly.
                save_world(world, staging, drop_step_days=1)
                (staging / "cache-key.json").write_text(
                    json.dumps(
                        {
                            "key": directory.name,
                            "generator": GENERATOR_VERSION,
                            "config": world.config.canonical_dict(),
                        },
                        indent=2,
                        sort_keys=True,
                    )
                )
            if directory.exists():
                # refresh, or a concurrent writer won: replace our target.
                shutil.rmtree(directory, ignore_errors=True)
            os.rename(staging, directory)
        except OSError:
            # Lost a rename race; the winner's entry is equivalent.
            shutil.rmtree(staging, ignore_errors=True)
        except BaseException:
            shutil.rmtree(staging, ignore_errors=True)
            raise
