"""Extension: survival analysis of routes after DROP listing.

Figure 2 reports a single point of a richer object: the paper's "19%
withdrawn within 30 days" is one evaluation of the survival function of
announcement lifetime after listing.  This module estimates the whole
curve with the Kaplan-Meier product-limit estimator — the standard tool
for right-censored durations, which these are: a route still announced
at the end of the data window has an unknown (censored) lifetime, not an
infinite one.

Per-category curves make the paper's contrast quantitative at every
horizon: hijacked and unallocated routes die fast; bulletproof-hosting
routes barely die at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import timedelta

from ..drop.categories import Category
from ..synth.world import World
from .common import DropEntryView, load_entries

__all__ = ["SurvivalCurve", "SurvivalResult", "analyze_survival"]


@dataclass(frozen=True, slots=True)
class SurvivalCurve:
    """A Kaplan-Meier estimate: S(t) at each observed event time."""

    label: str
    #: (days since listing, survival probability) step points, plus the
    #: implicit (0, 1.0) start.
    steps: tuple[tuple[int, float], ...]
    subjects: int
    events: int  # observed withdrawals (the rest are censored)

    def at(self, days: int) -> float:
        """S(days): probability the route outlives ``days``."""
        survival = 1.0
        for time, value in self.steps:
            if time > days:
                break
            survival = value
        return survival

    @property
    def censored(self) -> int:
        """Routes still announced at the window end."""
        return self.subjects - self.events

    def median_lifetime(self) -> int | None:
        """The first day S(t) drops to 0.5 or below, if it ever does."""
        for time, value in self.steps:
            if value <= 0.5:
                return time
        return None


@dataclass(frozen=True, slots=True)
class SurvivalResult:
    """Overall and per-category survival curves."""

    overall: SurvivalCurve
    by_category: dict[Category, SurvivalCurve]

    def curve(self, category: Category) -> SurvivalCurve:
        """One category's curve (KeyError if it had no subjects)."""
        return self.by_category[category]


def kaplan_meier(
    durations: list[tuple[int, bool]], label: str
) -> SurvivalCurve:
    """The product-limit estimator over (duration, observed) pairs.

    ``observed=False`` marks right-censoring (the route outlived the
    window).  Durations are in days.
    """
    events_at: dict[int, int] = {}
    censored_at: dict[int, int] = {}
    for duration, observed in durations:
        bucket = events_at if observed else censored_at
        bucket[duration] = bucket.get(duration, 0) + 1
    at_risk = len(durations)
    survival = 1.0
    steps: list[tuple[int, float]] = []
    for time in sorted(set(events_at) | set(censored_at)):
        deaths = events_at.get(time, 0)
        if deaths and at_risk:
            survival *= 1.0 - deaths / at_risk
            steps.append((time, survival))
        at_risk -= deaths + censored_at.get(time, 0)
    return SurvivalCurve(
        label=label,
        steps=tuple(steps),
        subjects=len(durations),
        events=sum(events_at.values()),
    )


def analyze_survival(
    world: World,
    entries: list[DropEntryView] | None = None,
    *,
    exclude_incidents: bool = True,
) -> SurvivalResult:
    """Estimate post-listing route survival, overall and per category.

    A prefix enters the study if it was announced at (or the day before)
    its listing; its duration is days from listing to the end of its last
    exact-prefix announcement, right-censored at the window end.
    """
    if entries is None:
        entries = load_entries(world)
    if exclude_incidents:
        entries = [e for e in entries if not e.incident]
    window_end = world.window.end

    durations: list[tuple[int, bool]] = []
    per_category: dict[Category, list[tuple[int, bool]]] = {}
    for entry in entries:
        announced = world.bgp.is_announced(
            entry.prefix, entry.listed, include_covering=False
        ) or world.bgp.is_announced(
            entry.prefix,
            entry.listed - timedelta(days=1),
            include_covering=False,
        )
        if not announced:
            continue
        last = world.bgp.last_announced(entry.prefix)
        if last is None or last >= window_end:
            sample = ((window_end - entry.listed).days, False)
        else:
            sample = (max(0, (last - entry.listed).days), True)
        durations.append(sample)
        for category in entry.categories:
            per_category.setdefault(category, []).append(sample)
    return SurvivalResult(
        overall=kaplan_meier(durations, "all DROP prefixes"),
        by_category={
            category: kaplan_meier(samples, category.value)
            for category, samples in per_category.items()
        },
    )
