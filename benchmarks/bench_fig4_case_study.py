"""Figure 4 / §6.1: the RPKI-valid hijack and the sibling sweep."""

from repro.analysis import analyze_rpki_effectiveness, find_sibling_prefixes


def bench_fig4_case_study(benchmark, world, entries):
    result = benchmark(analyze_rpki_effectiveness, world, entries)
    # Shape: presigned hijacks are rare (attackers avoid signed space);
    # one is a true RPKI-valid hijack with a sibling constellation.
    assert result.presigned_count <= 5
    assert result.presigned_count < 0.05 * result.hijack_prefixes
    assert result.roa_follows_origin_count >= 1
    assert len(result.rpki_valid_hijacks) == 1
    hijack = result.rpki_valid_hijacks[0]
    assert len(hijack.siblings) == 6
    assert 0 < len(hijack.siblings_on_drop) < len(hijack.siblings)


def bench_fig4_sibling_sweep(benchmark, world, entries):
    case = world.truth.case_study
    siblings = benchmark(
        find_sibling_prefixes,
        world,
        origin=case.owner_asn,
        transit=case.hijacker_transit_asn,
        exclude=case.signed_prefix,
    )
    assert set(siblings) == set(case.sibling_prefixes)
