"""The synthetic world: every archive the study consumes, plus ground truth.

A :class:`World` bundles the five data sources of §3 (DROP episodes, SBL
records, BGP observations, the IRR, the ROA archive, RIR allocation state)
built from one :class:`~repro.synth.config.ScenarioConfig`.  The analyses in
:mod:`repro.analysis` take a ``World`` and *measure* it the way the paper
measures the real archives — they never peek at :attr:`World.truth`, which
exists so tests can check the measurement pipeline against the generator's
intent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import date

from ..bgp.collector import PeerRegistry
from ..bgp.ribs import RouteIntervalStore
from ..drop.categories import Category
from ..drop.droplist import DropArchive
from ..drop.sbl import SblDatabase
from ..irr.radb import IrrDatabase
from ..net.prefix import IPv4Prefix
from ..net.timeline import DateWindow
from ..rirstats.registry import ResourceRegistry
from ..rpki.archive import RoaArchive
from .config import ScenarioConfig

__all__ = ["CaseStudyTruth", "DropTruth", "GroundTruth", "World"]


@dataclass(frozen=True, slots=True)
class DropTruth:
    """What the generator intended for one DROP prefix."""

    prefix: IPv4Prefix
    categories: frozenset[Category]
    listed: date
    removed_on: date | None
    region: str | None
    unallocated: bool = False
    incident: bool = False
    hijacker_asn: int | None = None
    origin_at_listing: int | None = None
    has_irr_object: bool = False
    irr_hijacker_match: bool = False
    irr_created_recently: bool = False
    irr_removed_after: bool = False
    presigned: bool = False
    signs_after: bool = False
    sign_asn_relation: str | None = None  # different / same / none
    withdrawn_30d: bool = False
    deallocated: bool = False
    manual_sbl: bool = False

    @property
    def removed(self) -> bool:
        """True if Spamhaus removed the prefix during the window."""
        return self.removed_on is not None


@dataclass(frozen=True, slots=True)
class CaseStudyTruth:
    """The Figure 4 cast: the RPKI-valid hijack and its siblings."""

    signed_prefix: IPv4Prefix
    owner_asn: int
    owner_transit_asn: int
    hijacker_transit_asn: int
    hijacker_second_hop: int
    sibling_prefixes: tuple[IPv4Prefix, ...]
    siblings_on_drop: tuple[IPv4Prefix, ...]
    unrouted_since: date
    hijack_start: date


@dataclass
class GroundTruth:
    """Generator intent, keyed by prefix, for validation in tests."""

    drop: dict[IPv4Prefix, DropTruth] = field(default_factory=dict)
    filtering_peer_ids: frozenset[int] = frozenset()
    case_study: CaseStudyTruth | None = None
    #: ORG-ID → hijacker route-object prefixes registered under it.
    hijacker_orgs: dict[str, list[IPv4Prefix]] = field(default_factory=dict)
    #: holder name → unrouted signed space in /8 equivalents (§6.2.1).
    unrouted_signed_holders: dict[str, float] = field(default_factory=dict)
    #: The operator-AS0 story prefix (45.65.112.0/22 in the paper).
    operator_as0_prefix: IPv4Prefix | None = None
    #: Background (never-on-DROP) prefixes per region that signed.
    background_signed: dict[str, int] = field(default_factory=dict)
    #: Routed prefixes covered by RIR AS0 TAL ROAs at window end (§6.2.2).
    as0_filterable: list[IPv4Prefix] = field(default_factory=list)
    #: Director truth for DSL-composed scenarios
    #: (:class:`repro.scenarios.compose.ScenarioTruth`); None for the
    #: legacy paper build.  Typed loosely to avoid an import cycle.
    scenario: object | None = None


@dataclass
class World:
    """All archives for one synthetic study run."""

    config: ScenarioConfig
    window: DateWindow
    peers: PeerRegistry
    bgp: RouteIntervalStore
    resources: ResourceRegistry
    irr: IrrDatabase
    roas: RoaArchive
    drop: DropArchive
    sbl: SblDatabase
    #: Manual category judgements for keyword-free SBL records, as fed to
    #: the Appendix-A categorizer (sbl_id → categories).
    manual_overrides: dict[str, frozenset[Category]]
    truth: GroundTruth

    @property
    def study_window(self) -> DateWindow:
        """The DROP measurement window (alias of :attr:`window`)."""
        return self.window

    def fork(self) -> "World":
        """A copy-on-write fork for scenario overlay application.

        Clones exactly the tables the
        :class:`~repro.scenarios.compose.ScenarioDirector` appends to
        (announcements, ROAs, DROP episodes, SBL records, the
        allocation registry) and shares everything overlays never touch
        (peers, the IRR, manual overrides, window, config).  The fork
        gets a fresh :class:`GroundTruth` container with the base's
        per-field state shared and ``scenario`` cleared, so many forks
        of one base can each carry their own director truth.  The
        original world must be treated read-only afterwards — which it
        is by construction: only directors mutate worlds post-build,
        and they run against forks.
        """
        return World(
            config=self.config,
            window=self.window,
            peers=self.peers,
            bgp=self.bgp.fork(),
            resources=self.resources.fork(),
            irr=self.irr,
            roas=self.roas.fork(),
            drop=self.drop.fork(),
            sbl=self.sbl.fork(),
            manual_overrides=self.manual_overrides,
            truth=GroundTruth(
                drop=self.truth.drop,
                filtering_peer_ids=self.truth.filtering_peer_ids,
                case_study=self.truth.case_study,
                hijacker_orgs=self.truth.hijacker_orgs,
                unrouted_signed_holders=self.truth.unrouted_signed_holders,
                operator_as0_prefix=self.truth.operator_as0_prefix,
                background_signed=self.truth.background_signed,
                as0_filterable=self.truth.as0_filterable,
                scenario=None,
            ),
        )
