"""Shared fixtures for the binary store tests: one tiny world + index."""

import pytest

from repro.query import build_index
from repro.runtime import WorldCache
from repro.synth import ScenarioConfig


@pytest.fixture(scope="package")
def config():
    return ScenarioConfig.tiny()


@pytest.fixture(scope="package")
def stored(tmp_path_factory, config):
    cache = WorldCache(tmp_path_factory.mktemp("store-cache"))
    return cache.fetch(config)


@pytest.fixture(scope="package")
def world(stored):
    return stored.world


@pytest.fixture(scope="package")
def index(world, stored):
    return build_index(world, key=stored.key)
