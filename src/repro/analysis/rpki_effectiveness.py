"""§6.1 / Figure 4: RPKI-valid hijacks and the case study.

Three measurements:

* how many hijack-labeled DROP prefixes were RPKI-signed before listing
  (paper: 3 of 179);
* which of those show the *ROA-follows-origin* pattern — the ROA's ASN
  changed in lockstep with the BGP origin in the years before listing,
  implying the attacker controls the ROA (paper: 2 of the 3);
* the case-study discovery: given an RPKI-valid hijack (a prefix
  re-announced after an unrouted spell with the ROA's ASN as origin but
  new transit), sweep BGP for sibling prefixes with the same
  origin+transit pattern (paper: 6 siblings, 3 of them on DROP).
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import date, timedelta

from ..bgp.ribs import RouteInterval
from ..drop.categories import Category
from ..net.prefix import IPv4Prefix
from ..rpki.validation import RouteValidity, validate_route
from ..synth.world import World
from .common import DropEntryView, load_entries

__all__ = [
    "PresignedHijack",
    "RpkiValidHijack",
    "RpkiEffectiveness",
    "analyze_rpki_effectiveness",
    "find_sibling_prefixes",
]


@dataclass(frozen=True, slots=True)
class PresignedHijack:
    """A hijack-labeled prefix that had a ROA before listing."""

    prefix: IPv4Prefix
    listed: date
    roa_follows_origin: bool
    rpki_valid_at_listing: bool


@dataclass(frozen=True, slots=True)
class RpkiValidHijack:
    """An RPKI-valid hijack: the announcement validates, the owner is gone."""

    prefix: IPv4Prefix
    owner_asn: int
    hijack_transit: int
    unrouted_from: date
    hijack_start: date
    siblings: tuple[IPv4Prefix, ...]
    siblings_on_drop: tuple[IPv4Prefix, ...]


@dataclass(frozen=True, slots=True)
class RpkiEffectiveness:
    """Everything §6.1 reports."""

    hijack_prefixes: int
    presigned: tuple[PresignedHijack, ...]
    rpki_valid_hijacks: tuple[RpkiValidHijack, ...]

    @property
    def presigned_count(self) -> int:
        """Hijacked prefixes RPKI-signed before listing (3)."""
        return len(self.presigned)

    @property
    def roa_follows_origin_count(self) -> int:
        """Those where the attacker appears to control the ROA (2)."""
        return sum(1 for p in self.presigned if p.roa_follows_origin)


def analyze_rpki_effectiveness(
    world: World, entries: list[DropEntryView] | None = None
) -> RpkiEffectiveness:
    """Run the §6.1 analysis."""
    if entries is None:
        entries = load_entries(world)
    hijacks = [
        e for e in entries if Category.HIJACKED in e.categories
    ]
    presigned: list[PresignedHijack] = []
    valid_hijacks: list[RpkiValidHijack] = []
    drop_prefixes = {e.prefix for e in entries}
    for entry in hijacks:
        covering = world.roas.covering(entry.prefix, entry.listed)
        if not covering:
            continue
        follows = _roa_follows_origin(world, entry)
        origins = world.bgp.origins_on(entry.prefix, entry.listed)
        rpki_valid = any(
            validate_route(
                entry.prefix, origin, [r.roa for r in covering]
            )
            is RouteValidity.VALID
            for origin in origins
        )
        presigned.append(
            PresignedHijack(
                prefix=entry.prefix,
                listed=entry.listed,
                roa_follows_origin=follows,
                rpki_valid_at_listing=rpki_valid,
            )
        )
        if rpki_valid and not follows:
            hijack = _reconstruct_valid_hijack(world, entry, drop_prefixes)
            if hijack is not None:
                valid_hijacks.append(hijack)
    return RpkiEffectiveness(
        hijack_prefixes=len(hijacks),
        presigned=tuple(presigned),
        rpki_valid_hijacks=tuple(valid_hijacks),
    )


def _roa_follows_origin(world: World, entry: DropEntryView) -> bool:
    """True if ROA ASN changes track BGP origin changes before listing.

    The §6.1 signature of an attacker-controlled ROA: over the two years
    before listing, each time the announced origin changed, the published
    ROA changed to match.
    """
    horizon = entry.listed - timedelta(days=730)
    roa_records = sorted(
        (
            r
            for r in world.roas.covering(entry.prefix)
            if r.created >= horizon and r.created <= entry.listed
        ),
        key=lambda r: r.created,
    )
    changes = 0
    for record in roa_records:
        origins_then = world.bgp.origins_on(
            entry.prefix, record.created + timedelta(days=3)
        )
        if record.roa.asn in origins_then and len(roa_records) > 1:
            changes += 1
    return changes >= 2


def _reconstruct_valid_hijack(
    world: World,
    entry: DropEntryView,
    drop_prefixes: set[IPv4Prefix],
) -> RpkiValidHijack | None:
    """Recover the Figure 4 narrative for one RPKI-valid hijack."""
    history = world.bgp.intervals_exact(entry.prefix)
    if len(history) < 2:
        return None
    # The last interval is the hijack; the one before is the owner's.
    hijack = history[-1]
    owner_era = history[-2]
    if owner_era.end is None or hijack.origin != owner_era.origin:
        return None
    transit = hijack.path.neighbour_of_origin()
    if transit is None:
        return None
    # Allow multi-hop hijacker transit: use the first hop as the search key
    # (the paper keys on AS50509, the first hop of "50509 34665 263692").
    search_transit = hijack.path.first_hop
    siblings = find_sibling_prefixes(
        world,
        origin=hijack.origin,
        transit=search_transit,
        exclude=entry.prefix,
    )
    return RpkiValidHijack(
        prefix=entry.prefix,
        owner_asn=hijack.origin,
        hijack_transit=search_transit,
        unrouted_from=owner_era.end + timedelta(days=1),
        hijack_start=hijack.start,
        siblings=tuple(siblings),
        siblings_on_drop=tuple(
            p for p in siblings if p in drop_prefixes
        ),
    )


def find_sibling_prefixes(
    world: World,
    *,
    origin: int,
    transit: int,
    exclude: IPv4Prefix | None = None,
) -> list[IPv4Prefix]:
    """Prefixes announced with the same (origin, transit) pattern.

    This is the paper's sweep: "on inspecting the BGP routing data for a
    similar pattern — originated by AS263692 and routed via AS50509 — we
    find six additional non-RPKI-signed prefixes".  More-specific
    announcements inside an already-matched block are folded into it.
    """

    def matches(interval: RouteInterval) -> bool:
        return (
            interval.origin == origin
            and interval.path.contains(transit)
            and interval.path.transits(transit)
        )

    found: list[IPv4Prefix] = []
    for interval in world.bgp.find_intervals(matches):
        prefix = interval.prefix
        if exclude is not None and (
            prefix == exclude or exclude.contains(prefix)
        ):
            continue
        if any(existing.contains(prefix) for existing in found):
            continue
        if prefix not in found:
            found.append(prefix)
    return sorted(found)
