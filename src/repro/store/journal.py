"""The delta journal: applied batches, durably, in one container.

Incremental state is memory-only — the world cache entry's persisted
index and substrate stay *full knowledge* and must never be overwritten
with a partial as-of view — so restart recovery needs its own record.
The journal is that record: one :mod:`repro.store.container` file
(``delta-journal.bin``) whose meta pins the format, generator, world
key, and base day, and whose sections (``delta-0000``, ``delta-0001``,
...) each hold one applied :class:`~repro.ingest.delta.DeltaBatch` as
canonical JSON bytes.  On restart the ingest service rebuilds the as-of
base and replays the journaled batches in order.

Durability follows the store discipline: every append rewrites the
whole container through :func:`~repro.store.container.durable_write`
(journals are small — tens of batches of a few KB), so a crash can
never publish a torn file through the normal path.  The
``ingest.journal`` fault site models the abnormal paths: ``io-error``
on save degrades to an unjournaled apply with a counter and a warning
(the daemon keeps serving; recovery just replays fewer days), and a
``truncate`` fired at load — via :func:`~repro.runtime.faults
.corrupt_file` — tears the file so the next load finds it corrupt,
**evicts** it, and recovery falls back to the base state: eviction,
never poisoning, matching the ``base.*`` precedent.
"""

from __future__ import annotations

import json
import warnings
from datetime import date
from pathlib import Path

from ..errors import ReproError
from ..obs import Instrumentation
from ..runtime.faults import corrupt_file, fault_point
from ..synth.builder import GENERATOR_VERSION
from .container import StoreReader, build_store, durable_write

__all__ = [
    "JOURNAL_FILENAME",
    "JOURNAL_FORMAT",
    "DeltaJournal",
    "JournalLoadError",
]

#: Journal layout version; bump to orphan every persisted journal.
JOURNAL_FORMAT = 1

#: The journal file's name (in the daemon's state dir, not the cache entry).
JOURNAL_FILENAME = "delta-journal.bin"


class JournalLoadError(ReproError, ValueError):
    """A journal that cannot be trusted (torn, stale, foreign)."""

    code = "ingest.journal-stale"


class DeltaJournal:
    """Durable, replayable record of the batches applied since base day.

    Batches stay resident (``self.batches``, as their serialized dicts)
    so appends rewrite the container without re-reading it.
    """

    def __init__(
        self,
        directory: Path,
        *,
        key: str = "",
        base_day: date | None = None,
        instrumentation: Instrumentation | None = None,
    ) -> None:
        self.directory = Path(directory)
        self.key = key
        self.base_day = base_day
        self.instrumentation = instrumentation or Instrumentation()
        self.batches: list[dict] = []

    @property
    def path(self) -> Path:
        return self.directory / JOURNAL_FILENAME

    def append(self, batch_dict: dict) -> bool:
        """Record one applied batch durably; False when degraded.

        A write failure (read-only dir, disk full, injected ``io-error``
        at ``ingest.journal``) keeps the batch in memory and the daemon
        serving — only restart recovery loses the day — with a counter
        and a warning, mirroring the index/substrate save paths.
        """
        instr = self.instrumentation
        self.batches.append(batch_dict)
        meta = {
            "format": JOURNAL_FORMAT,
            "generator": GENERATOR_VERSION,
            "key": self.key,
            "base_day": (
                None if self.base_day is None else self.base_day.isoformat()
            ),
            "batches": len(self.batches),
        }
        sections = [
            (f"delta-{i:04d}", "B",
             json.dumps(raw, sort_keys=True,
                        separators=(",", ":")).encode("utf-8"))
            for i, raw in enumerate(self.batches)
        ]
        try:
            with instr.stage("journal-append", group="ingest"):
                fault_point("ingest.journal", instrumentation=instr)
                durable_write(
                    self.directory,
                    JOURNAL_FILENAME,
                    build_store(meta, sections),
                )
        except OSError as error:
            instr.incr("ingest_journal_store_errors")
            message = (
                f"delta journal store failed ({error}); "
                "continuing unjournaled"
            )
            instr.warn(message)
            warnings.warn(message, RuntimeWarning, stacklevel=2)
            return False
        instr.incr("ingest_journal_stores")
        return True

    @classmethod
    def load(
        cls,
        directory: Path,
        *,
        expected_key: str = "",
        instrumentation: Instrumentation | None = None,
    ) -> "DeltaJournal":
        """Read a persisted journal back, verifying its pins.

        Raises :class:`JournalLoadError` (or the underlying
        ``OSError``/:class:`~repro.store.container.StoreError`) when the
        file is missing, torn, or foreign — callers evict via
        :meth:`load_or_evict`.
        """
        instr = instrumentation or Instrumentation()
        path = Path(directory) / JOURNAL_FILENAME
        with instr.stage("journal-load", group="ingest"):
            # A truncate fault models a journal torn by a crash that
            # bypassed the durable-write path (disk lying about fsync).
            corrupt_file("ingest.journal", path, instrumentation=instr)
            fault_point("ingest.journal", instrumentation=instr)
            reader = StoreReader.open(path)
            try:
                meta = reader.meta
                if meta.get("format") != JOURNAL_FORMAT:
                    raise JournalLoadError(
                        f"journal format {meta.get('format')!r} != "
                        f"{JOURNAL_FORMAT}"
                    )
                if meta.get("generator") != GENERATOR_VERSION:
                    raise JournalLoadError(
                        f"journal generator {meta.get('generator')!r} != "
                        f"{GENERATOR_VERSION!r}"
                    )
                if expected_key and meta.get("key") != expected_key:
                    raise JournalLoadError(
                        f"journal key {meta.get('key')!r} != "
                        f"{expected_key!r}"
                    )
                count = meta.get("batches", 0)
                names = set(reader.section_names())
                batches = []
                for i in range(count):
                    name = f"delta-{i:04d}"
                    if name not in names:
                        raise JournalLoadError(
                            f"journal missing section {name!r}"
                        )
                    batches.append(
                        json.loads(bytes(reader.view(name, "B")))
                    )
                base_day = meta.get("base_day")
                journal = cls(
                    Path(directory),
                    key=meta.get("key", ""),
                    base_day=(
                        None if base_day is None
                        else date.fromisoformat(base_day)
                    ),
                    instrumentation=instr,
                )
                journal.batches = batches
            finally:
                reader.close()
        instr.incr("ingest_journal_loads")
        return journal

    @classmethod
    def load_or_evict(
        cls,
        directory: Path,
        *,
        expected_key: str = "",
        instrumentation: Instrumentation | None = None,
    ) -> "DeltaJournal | None":
        """A trustworthy journal, or None after evicting a bad one."""
        instr = instrumentation or Instrumentation()
        path = Path(directory) / JOURNAL_FILENAME
        if not path.exists():
            return None
        try:
            return cls.load(
                directory,
                expected_key=expected_key,
                instrumentation=instr,
            )
        except Exception:
            path.unlink(missing_ok=True)
            instr.incr("ingest_journal_evictions")
            return None
