"""Table 1: RPKI signing rates, never / removed / present on DROP."""

from repro.analysis import analyze_rpki_uptake


def bench_table1_rpki_uptake(benchmark, world, entries):
    table = benchmark(analyze_rpki_uptake, world, entries)
    # Shape: removal from DROP correlates with signing at roughly twice
    # the background rate; staying listed correlates with under-signing.
    assert (
        table.overall.removed_rate
        > 1.5 * table.overall.never_rate
        > table.overall.present_rate
    )
    # Per-region ordering holds for the big regions.
    for region in ("ARIN", "RIPE", "APNIC"):
        row = table.row(region)
        assert row.removed_rate > row.never_rate > row.present_rate
    # RIPE signs at roughly four times ARIN's base rate (0.33 vs 0.085).
    assert table.row("RIPE").never_rate > 2 * table.row("ARIN").never_rate
    # §4.2: removed-and-signed prefixes overwhelmingly sign with an ASN
    # other than the one originating them when listed.
    assert table.different_asn_rate > 10 * table.same_asn_rate
