"""Query subsystem: point-in-time prefix lookups, batch API, daemon.

The serving layer on top of the runtime world cache:

* :mod:`repro.query.index` — the immutable, read-optimized, persisted
  :class:`QueryIndex` (date-annotated prefix tries, content-addressed
  alongside the world's cache entry);
* :mod:`repro.query.engine` — :class:`QueryEngine` with
  ``lookup(prefix, on=day)`` / ``lookup_many`` returning the unified
  :class:`PrefixStatus`;
* :mod:`repro.query.server` — the ``repro-drop serve`` HTTP daemon
  (``/v1/status``, ``/v1/batch``, ``/healthz``).
"""

from .engine import (
    BatchParseError,
    PrefixStatus,
    QueryEngine,
    parse_query_batch,
    parse_query_line,
)
from .index import (
    INDEX_FILENAME,
    INDEX_FORMAT,
    IndexLoadError,
    QueryIndex,
    build_index,
    load_index,
    load_or_build_index,
    save_index,
)
from .server import QueryServer

__all__ = [
    "BatchParseError",
    "INDEX_FILENAME",
    "INDEX_FORMAT",
    "IndexLoadError",
    "PrefixStatus",
    "QueryEngine",
    "QueryIndex",
    "QueryServer",
    "build_index",
    "load_index",
    "load_or_build_index",
    "parse_query_batch",
    "parse_query_line",
    "save_index",
]
