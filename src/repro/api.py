"""The supported public surface of :mod:`repro`, in one module.

Everything a downstream user of this package should need rides here;
anything not exported from :mod:`repro.api` is an internal detail that
may move or change shape between releases without notice.  The split
follows the product's layers:

* **worlds** — :class:`ScenarioConfig`, :func:`build_world`,
  :func:`load_world` / :func:`save_world`, :class:`WorldCache`,
  :func:`world_cache_key`;
* **experiments** — :data:`EXPERIMENTS`, :func:`run_experiment`,
  :func:`render_text`, :func:`render_markdown`;
* **queries** — :func:`build_index`, :class:`QueryEngine`,
  :class:`QueryServer`, :class:`AsyncQueryServer`;
* **sweeps** — :class:`SweepSpec`, :func:`run_sweep`;
* **incremental ingest** — :class:`DeltaBatch`, :class:`DeltaSource`,
  :func:`compute_delta`, :func:`apply_delta`,
  :func:`build_index_as_of`, :class:`Ingestor`;
* **observability** — :class:`Instrumentation`;
* **errors** — :class:`ReproError` and its concrete family, every one
  carrying a stable machine-readable ``.code``.

Names resolve lazily (module ``__getattr__``), so ``import repro.api``
costs nothing until a symbol is touched; ``from repro import X`` works
for every name here too, via the package's own delegation.
"""

from __future__ import annotations

import importlib

#: Every public name, mapped to the module that defines it.
_EXPORTS = {
    # worlds
    "ScenarioConfig": "repro.synth",
    "World": "repro.synth",
    "build_world": "repro.synth",
    "load_world": "repro.synth",
    "save_world": "repro.synth",
    "WorldCache": "repro.runtime",
    "world_cache_key": "repro.runtime",
    # experiments
    "EXPERIMENTS": "repro.reporting",
    "run_experiment": "repro.reporting",
    "render_text": "repro.reporting",
    "render_markdown": "repro.reporting",
    # queries
    "build_index": "repro.query",
    "QueryEngine": "repro.query",
    "QueryServer": "repro.query",
    "AsyncQueryServer": "repro.query",
    # sweeps
    "SweepSpec": "repro.sweep",
    "run_sweep": "repro.sweep",
    # incremental ingest
    "DeltaBatch": "repro.ingest",
    "DeltaSource": "repro.ingest",
    "compute_delta": "repro.ingest",
    "apply_delta": "repro.ingest",
    "build_index_as_of": "repro.ingest",
    "Ingestor": "repro.ingest",
    # observability
    "Instrumentation": "repro.runtime",
    # errors (the stable-.code family)
    "ReproError": "repro.errors",
    "CacheCorruptionError": "repro.errors",
    "BatchParseError": "repro.query.engine",
    "IndexLoadError": "repro.query.index",
    "SubstrateLoadError": "repro.analysis.substrate",
    "FaultSpecError": "repro.runtime.faults",
    "RequestError": "repro.query.http",
    "BadPrefixError": "repro.query.http",
    "BadDayError": "repro.query.http",
    "NotFoundError": "repro.query.http",
    "ReloadError": "repro.query.http",
    "IngestError": "repro.ingest",
    "JournalLoadError": "repro.store.journal",
    "SweepSpecError": "repro.sweep",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    return getattr(importlib.import_module(module_name), name)


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_EXPORTS))
