"""Benchmark-harness collection smoke tests.

``bench_archive_round_trip`` once referenced fixtures that only exist in
``benchmarks/conftest.py`` — a conftest regression (or a renamed
fixture) would make the whole bench suite silently uncollectable or
error at setup rather than failing loudly.  These tests run pytest
against ``benchmarks/`` in collect-only and setup-plan modes, so broken
bench signatures fail CI instead of silently skipping.  ``--setup-plan``
is the part that actually resolves fixture closures (collect-only alone
passes even with an unknown fixture name); neither executes a benchmark.
"""

import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]


def _pytest(*args: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.run(
        [sys.executable, "-m", "pytest", *args, "benchmarks"],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )


def test_benchmarks_collect_cleanly():
    proc = _pytest("--collect-only")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    out = proc.stdout
    # The round-trip bench (and its fixture-using peers) must be present.
    assert "bench_archive_round_trip" in out
    assert "bench_build_tiny_world" in out
    assert "bench_world_build" in out
    assert "bench_query_single_lookup" in out
    assert "bench_query_batch_10k" in out


def test_benchmark_fixture_signatures_resolve():
    """Every bench fixture closure resolves (world, entries, benchmark)."""
    proc = _pytest("--setup-plan", "-q")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "SETUP    S world" in proc.stdout
    assert "SETUP    S entries" in proc.stdout
    assert "ERROR" not in proc.stdout
