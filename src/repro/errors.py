"""The unified error surface: every repro failure mode, one base class.

Each subsystem used to raise its own ad-hoc ``ValueError`` subclass;
callers that wanted to distinguish "bad input" from "stale persisted
state" from "corrupt cache entry" had to import from four modules and
match on class identity.  Every repro-specific error now subclasses
:class:`ReproError` and carries a stable machine-readable ``.code``
(``<subsystem>.<condition>``), so logs, HTTP error payloads, and tests
can match on the code without importing the concrete class.

The concrete classes stay defined next to the code that raises them
(``BatchParseError`` in :mod:`repro.query.engine`, ``IndexLoadError``
in :mod:`repro.query.index`, ...) and are re-exported — alongside this
module's own classes — from :mod:`repro` itself::

    from repro import ReproError, BatchParseError

Codes are part of the public API: never renumber or reuse one.
"""

from __future__ import annotations

__all__ = ["CacheCorruptionError", "ReproError"]


class ReproError(Exception):
    """Base of every repro-specific error.

    ``code`` is a stable ``<subsystem>.<condition>`` identifier; the
    class attribute is the contract, instances inherit it.
    """

    code: str = "repro.error"


class CacheCorruptionError(ReproError):
    """A world cache entry that failed to reload (torn, truncated,
    foreign).  Raised internally by the cache load path and always
    handled by evict-and-rebuild — it reaches callers only through the
    degraded-run counters and warnings."""

    code = "runtime.cache-corrupt"
