"""IPv4 prefix and address value types.

The whole library speaks IPv4 in terms of two small immutable value types:

``IPv4Prefix``
    A CIDR block such as ``192.0.2.0/24``, stored as an integer network
    address plus a prefix length.  Host bits must be zero; use
    :meth:`IPv4Prefix.parse` with ``strict=False`` to mask them off.

``AddressRange``
    A half-open integer interval ``[start, end)`` of IPv4 addresses.  Ranges
    are the working representation for set algebra (see
    :mod:`repro.net.prefixset`) and convert losslessly to and from minimal
    lists of CIDR prefixes.

The paper accounts for address space in "/8 equivalents" (one /8 is
2**24 addresses); :func:`slash8_equivalents` implements that unit.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from functools import total_ordering
from typing import Iterator

__all__ = [
    "IPV4_BITS",
    "IPV4_MAX",
    "AddressRange",
    "IPv4Prefix",
    "PrefixError",
    "format_ip",
    "parse_ip",
    "slash8_equivalents",
]

IPV4_BITS = 32
IPV4_MAX = 2**IPV4_BITS  # one past the last address

_DOTTED_QUAD = re.compile(r"^(\d{1,3})\.(\d{1,3})\.(\d{1,3})\.(\d{1,3})$")


class PrefixError(ValueError):
    """Raised for malformed addresses, prefixes, or ranges."""


def parse_ip(text: str) -> int:
    """Parse a dotted-quad IPv4 address into an integer.

    >>> parse_ip("192.0.2.1")
    3221225985
    """
    match = _DOTTED_QUAD.match(text.strip())
    if match is None:
        raise PrefixError(f"not a dotted-quad IPv4 address: {text!r}")
    value = 0
    for octet_text in match.groups():
        octet = int(octet_text)
        if octet > 255:
            raise PrefixError(f"octet out of range in {text!r}")
        value = (value << 8) | octet
    return value


def format_ip(value: int) -> str:
    """Format an integer as a dotted-quad IPv4 address.

    >>> format_ip(3221225985)
    '192.0.2.1'
    """
    if not 0 <= value < IPV4_MAX:
        raise PrefixError(f"address out of IPv4 range: {value}")
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


def slash8_equivalents(num_addresses: int) -> float:
    """Express an address count in /8 equivalents (the paper's unit).

    >>> slash8_equivalents(2 ** 24)
    1.0
    """
    return num_addresses / float(2**24)


@total_ordering
@dataclass(frozen=True, slots=True)
class IPv4Prefix:
    """An IPv4 CIDR prefix: an integer network address and a length.

    Instances are immutable, hashable, and totally ordered by
    ``(network, length)``, which sorts prefixes in address order with
    covering prefixes before their subnets.
    """

    network: int
    length: int

    def __post_init__(self) -> None:
        if not 0 <= self.length <= IPV4_BITS:
            raise PrefixError(f"prefix length out of range: /{self.length}")
        if not 0 <= self.network < IPV4_MAX:
            raise PrefixError(f"network address out of range: {self.network}")
        if self.network & (self.hostmask):
            raise PrefixError(
                f"host bits set in {format_ip(self.network)}/{self.length}"
            )

    # -- construction ---------------------------------------------------

    @classmethod
    def parse(cls, text: str, *, strict: bool = True) -> "IPv4Prefix":
        """Parse ``"a.b.c.d/len"`` (or a bare address, meaning a /32).

        With ``strict=False``, host bits below the prefix length are masked
        off instead of raising.
        """
        text = text.strip()
        if "/" in text:
            addr_text, _, len_text = text.partition("/")
            try:
                length = int(len_text)
            except ValueError:
                raise PrefixError(f"bad prefix length in {text!r}") from None
        else:
            addr_text, length = text, IPV4_BITS
        address = parse_ip(addr_text)
        if not 0 <= length <= IPV4_BITS:
            raise PrefixError(f"prefix length out of range in {text!r}")
        mask = _netmask(length)
        if strict and address & ~mask & 0xFFFFFFFF:
            raise PrefixError(f"host bits set in {text!r}")
        return cls(address & mask, length)

    @classmethod
    def from_first_address(cls, address: int, length: int) -> "IPv4Prefix":
        """Build a prefix from any address inside it, masking host bits."""
        return cls(address & _netmask(length), length)

    # -- basic properties -----------------------------------------------

    @property
    def netmask(self) -> int:
        """The integer netmask (e.g. ``0xFFFFFF00`` for a /24)."""
        return _netmask(self.length)

    @property
    def hostmask(self) -> int:
        """The integer host mask (complement of the netmask)."""
        return ~_netmask(self.length) & 0xFFFFFFFF

    @property
    def num_addresses(self) -> int:
        """The number of addresses covered (``2 ** (32 - length)``)."""
        return 1 << (IPV4_BITS - self.length)

    @property
    def first(self) -> int:
        """The first (network) address as an integer."""
        return self.network

    @property
    def last(self) -> int:
        """The last (broadcast) address as an integer."""
        return self.network + self.num_addresses - 1

    @property
    def slash8_equivalents(self) -> float:
        """Address space covered, in /8 equivalents."""
        return slash8_equivalents(self.num_addresses)

    # -- containment ----------------------------------------------------

    def contains_address(self, address: int) -> bool:
        """True if the integer address falls inside this prefix."""
        return self.network <= address <= self.last

    def contains(self, other: "IPv4Prefix") -> bool:
        """True if ``other`` is equal to or a subnet of this prefix."""
        return (
            self.length <= other.length
            and (other.network & self.netmask) == self.network
        )

    def overlaps(self, other: "IPv4Prefix") -> bool:
        """True if the two prefixes share any address."""
        return self.contains(other) or other.contains(self)

    def is_subnet_of(self, other: "IPv4Prefix") -> bool:
        """True if this prefix is equal to or inside ``other``."""
        return other.contains(self)

    # -- derivation -----------------------------------------------------

    def supernet(self, new_length: int | None = None) -> "IPv4Prefix":
        """The covering prefix at ``new_length`` (default: one bit shorter)."""
        if new_length is None:
            new_length = self.length - 1
        if not 0 <= new_length <= self.length:
            raise PrefixError(
                f"cannot widen /{self.length} to /{new_length}"
            )
        return IPv4Prefix(self.network & _netmask(new_length), new_length)

    def subnets(self, new_length: int | None = None) -> Iterator["IPv4Prefix"]:
        """Iterate the subnets of this prefix at ``new_length``.

        Default is one bit longer (i.e. the two halves).
        """
        if new_length is None:
            new_length = self.length + 1
        if not self.length <= new_length <= IPV4_BITS:
            raise PrefixError(
                f"cannot split /{self.length} into /{new_length}"
            )
        step = 1 << (IPV4_BITS - new_length)
        for network in range(self.network, self.network + self.num_addresses, step):
            yield IPv4Prefix(network, new_length)

    def to_range(self) -> "AddressRange":
        """The half-open address range covered by this prefix."""
        return AddressRange(self.network, self.network + self.num_addresses)

    # -- ordering / display ----------------------------------------------

    def __lt__(self, other: object) -> bool:
        if not isinstance(other, IPv4Prefix):
            return NotImplemented
        return (self.network, self.length) < (other.network, other.length)

    def __str__(self) -> str:
        return f"{format_ip(self.network)}/{self.length}"

    def __repr__(self) -> str:
        return f"IPv4Prefix({str(self)!r})"


@dataclass(frozen=True, slots=True)
class AddressRange:
    """A half-open interval ``[start, end)`` of IPv4 addresses."""

    start: int
    end: int

    def __post_init__(self) -> None:
        if not 0 <= self.start < self.end <= IPV4_MAX:
            raise PrefixError(f"bad address range [{self.start}, {self.end})")

    @classmethod
    def from_prefix(cls, prefix: IPv4Prefix) -> "AddressRange":
        """The range covered by a CIDR prefix."""
        return prefix.to_range()

    @classmethod
    def from_count(cls, start: int, count: int) -> "AddressRange":
        """A range of ``count`` addresses beginning at ``start``.

        This matches the RIR delegated-stats convention of recording IPv4
        resources as (first address, address count).
        """
        return cls(start, start + count)

    @property
    def num_addresses(self) -> int:
        """The number of addresses in the range."""
        return self.end - self.start

    @property
    def slash8_equivalents(self) -> float:
        """Address space covered, in /8 equivalents."""
        return slash8_equivalents(self.num_addresses)

    def contains_address(self, address: int) -> bool:
        """True if the integer address falls inside this range."""
        return self.start <= address < self.end

    def contains(self, other: "AddressRange") -> bool:
        """True if ``other`` lies entirely within this range."""
        return self.start <= other.start and other.end <= self.end

    def overlaps(self, other: "AddressRange") -> bool:
        """True if the two ranges share any address."""
        return self.start < other.end and other.start < self.end

    def intersection(self, other: "AddressRange") -> "AddressRange | None":
        """The overlapping sub-range, or ``None`` if disjoint."""
        start = max(self.start, other.start)
        end = min(self.end, other.end)
        if start >= end:
            return None
        return AddressRange(start, end)

    def to_prefixes(self) -> list[IPv4Prefix]:
        """Decompose the range into a minimal ordered list of CIDR prefixes.

        This is the standard greedy CIDR decomposition: at each step emit the
        largest aligned block that fits in the remainder.
        """
        prefixes: list[IPv4Prefix] = []
        cursor = self.start
        while cursor < self.end:
            # Largest block aligned at `cursor`:
            align = (cursor & -cursor).bit_length() - 1 if cursor else IPV4_BITS
            # Largest block fitting before `end`:
            fit = (self.end - cursor).bit_length() - 1
            size_bits = min(align, fit)
            prefixes.append(IPv4Prefix(cursor, IPV4_BITS - size_bits))
            cursor += 1 << size_bits
        return prefixes

    def __str__(self) -> str:
        return f"{format_ip(self.start)}-{format_ip(self.end - 1)}"


def _netmask(length: int) -> int:
    if length == 0:
        return 0
    return (0xFFFFFFFF << (IPV4_BITS - length)) & 0xFFFFFFFF
