"""Unit tests for repro.bgp.messages."""

from datetime import date

import pytest

from repro.bgp.messages import (
    ASPath,
    BgpElement,
    ElementType,
    paths_equal_ignoring_prepend,
)
from repro.net.prefix import IPv4Prefix


class TestASPath:
    def test_of_and_origin(self):
        path = ASPath.of(50509, 34665, 263692)
        assert path.origin == 263692
        assert path.first_hop == 50509

    def test_parse_round_trip(self):
        path = ASPath.parse("50509 34665 263692")
        assert str(path) == "50509 34665 263692"

    def test_parse_empty_raises(self):
        with pytest.raises(ValueError):
            ASPath.parse("")

    def test_empty_tuple_raises(self):
        with pytest.raises(ValueError):
            ASPath(())

    def test_length_collapses_prepending(self):
        path = ASPath.of(100, 200, 200, 200, 300)
        assert path.length == 3
        assert len(path) == 5

    def test_contains_and_transits(self):
        path = ASPath.of(50509, 34665, 263692)
        assert path.contains(34665)
        assert path.transits(50509)
        assert not path.transits(263692)

    def test_neighbour_of_origin(self):
        assert ASPath.of(1, 2, 3).neighbour_of_origin() == 2

    def test_neighbour_of_origin_skips_prepending(self):
        assert ASPath.of(1, 2, 3, 3, 3).neighbour_of_origin() == 2

    def test_neighbour_of_origin_none_for_origin_only(self):
        assert ASPath.of(3).neighbour_of_origin() is None

    def test_prepended(self):
        assert ASPath.of(2, 3).prepended(1, times=2).asns == (1, 1, 2, 3)

    def test_prepended_invalid_times(self):
        with pytest.raises(ValueError):
            ASPath.of(1).prepended(2, times=0)

    def test_iter(self):
        assert list(ASPath.of(1, 2, 3)) == [1, 2, 3]


class TestPathsEqualIgnoringPrepend:
    def test_equal_with_prepending(self):
        a = ASPath.of(1, 2, 2, 3)
        b = ASPath.of(1, 2, 3, 3, 3)
        assert paths_equal_ignoring_prepend(a, b)

    def test_different_paths(self):
        assert not paths_equal_ignoring_prepend(
            ASPath.of(1, 2, 3), ASPath.of(1, 3)
        )


class TestBgpElement:
    def prefix(self):
        return IPv4Prefix.parse("192.0.2.0/24")

    def test_announcement_needs_path(self):
        with pytest.raises(ValueError):
            BgpElement(
                elem_type=ElementType.ANNOUNCEMENT,
                day=date(2020, 1, 1),
                collector="route-views2",
                peer_id=0,
                peer_asn=174,
                prefix=self.prefix(),
            )

    def test_withdrawal_without_path(self):
        elem = BgpElement(
            elem_type=ElementType.WITHDRAWAL,
            day=date(2020, 1, 1),
            collector="route-views2",
            peer_id=0,
            peer_asn=174,
            prefix=self.prefix(),
        )
        assert elem.origin is None

    def test_origin(self):
        elem = BgpElement(
            elem_type=ElementType.RIB,
            day=date(2020, 1, 1),
            collector="route-views2",
            peer_id=0,
            peer_asn=174,
            prefix=self.prefix(),
            path=ASPath.of(174, 3356, 64500),
        )
        assert elem.origin == 64500

    def test_bad_type_rejected(self):
        with pytest.raises(ValueError):
            BgpElement(
                elem_type="X",
                day=date(2020, 1, 1),
                collector="c",
                peer_id=0,
                peer_asn=1,
                prefix=self.prefix(),
                path=ASPath.of(1),
            )
