"""Runtime: world cache, parallel experiment dispatch, instrumentation.

The subsystem that makes reproduction runs fast without changing a
single measured byte:

* :mod:`repro.runtime.cache` — a content-addressed on-disk world cache
  keyed by config hash + generator version;
* :mod:`repro.runtime.runner` — the parallel experiment runner with
  deterministic ordering and per-experiment error isolation;
* :mod:`repro.runtime.faults` — the deterministic fault-injection
  harness (``$REPRO_FAULTS``) that drives every recovery path above
  under test.
"""

from .cache import (
    CACHE_DIR_ENV,
    LOCK_TIMEOUT_ENV,
    CacheOutcome,
    ScenarioCacheOutcome,
    WorldCache,
    default_cache_root,
    scenario_cache_key,
    world_cache_key,
)
from .faults import (
    FAULT_SEED_ENV,
    FAULTS_ENV,
    FaultInjector,
    FaultSpec,
    FaultSpecError,
    InjectedIOError,
    injected,
)
from ..obs import Instrumentation, StageRecord, world_sizes
from .runner import (
    JOBS_ENV,
    START_METHOD_ENV,
    ExperimentFailure,
    RunOutcome,
    default_jobs,
    resolve_jobs,
    run_experiments,
)

__all__ = [
    "CACHE_DIR_ENV",
    "CacheOutcome",
    "ExperimentFailure",
    "FAULTS_ENV",
    "FAULT_SEED_ENV",
    "FaultInjector",
    "FaultSpec",
    "FaultSpecError",
    "InjectedIOError",
    "Instrumentation",
    "JOBS_ENV",
    "LOCK_TIMEOUT_ENV",
    "RunOutcome",
    "START_METHOD_ENV",
    "ScenarioCacheOutcome",
    "StageRecord",
    "WorldCache",
    "default_cache_root",
    "default_jobs",
    "injected",
    "resolve_jobs",
    "run_experiments",
    "scenario_cache_key",
    "world_cache_key",
    "world_sizes",
]
