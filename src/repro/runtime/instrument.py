"""Stage instrumentation: wall-clock timers and counters for a run.

One :class:`Instrumentation` object is threaded through a whole
invocation — world build (per-builder-stage timings), cache access
(hit/miss counters, load/store timings), and experiment dispatch
(per-experiment wall time).  The collected record serializes to JSON for
``repro-drop report --timings`` and the benchmark trajectory, so runs
can be compared across commits.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

__all__ = ["Instrumentation", "StageRecord", "world_sizes"]


@dataclass(frozen=True, slots=True)
class StageRecord:
    """One timed span: a builder stage, a cache step, or an experiment."""

    name: str
    seconds: float
    group: str = "build"


class Instrumentation:
    """Collects timed stages, counters, and free-form annotations."""

    def __init__(self) -> None:
        self.stages: list[StageRecord] = []
        self.counters: dict[str, int] = {}
        self.info: dict[str, object] = {}
        self.warnings: list[str] = []

    @contextmanager
    def stage(self, name: str, *, group: str = "build") -> Iterator[None]:
        """Time a block and record it as a stage."""
        started = time.perf_counter()
        try:
            yield
        finally:
            self.record(name, time.perf_counter() - started, group=group)

    def record(self, name: str, seconds: float, *, group: str) -> None:
        """Record an externally-timed span."""
        self.stages.append(StageRecord(name, seconds, group))

    def incr(self, name: str, amount: int = 1) -> None:
        """Bump a counter (cache hits, worker restarts, ...)."""
        self.counters[name] = self.counters.get(name, 0) + amount

    def annotate(self, key: str, value: object) -> None:
        """Attach a JSON-able fact about the run (jobs, cache status)."""
        self.info[key] = value

    def warn(self, message: str) -> None:
        """Record a degraded-but-recovered condition for the run record."""
        self.warnings.append(message)

    def group(self, group: str) -> list[StageRecord]:
        """The recorded stages of one group, in recording order."""
        return [s for s in self.stages if s.group == group]

    def to_dict(self) -> dict:
        """The whole record as a JSON-able dict."""
        grouped: dict[str, list[dict]] = {}
        for record in self.stages:
            grouped.setdefault(record.group, []).append(
                {"name": record.name, "seconds": round(record.seconds, 6)}
            )
        return {
            "schema": 1,
            "counters": dict(self.counters),
            "info": dict(self.info),
            "warnings": list(self.warnings),
            "stages": grouped,
            "total_seconds": round(
                sum(record.seconds for record in self.stages), 6
            ),
        }

    def to_json(self, *, indent: int | None = 2) -> str:
        """The record as a JSON document."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)


def world_sizes(world) -> dict[str, int]:
    """Store sizes for a world, for the timings record."""
    return {
        "drop_prefixes": len(world.drop.unique_prefixes()),
        "bgp_intervals": len(world.bgp),
        "roas": len(world.roas),
        "irr_objects": len(world.irr),
        "sbl_records": len(world.sbl),
    }
