"""Unit tests for repro.net.prefix."""

import pytest

from repro.net.prefix import (
    IPV4_MAX,
    AddressRange,
    IPv4Prefix,
    PrefixError,
    format_ip,
    parse_ip,
    slash8_equivalents,
)


class TestParseFormatIp:
    def test_round_trip(self):
        assert format_ip(parse_ip("192.0.2.1")) == "192.0.2.1"

    def test_zero(self):
        assert parse_ip("0.0.0.0") == 0

    def test_max(self):
        assert parse_ip("255.255.255.255") == IPV4_MAX - 1

    def test_octet_out_of_range(self):
        with pytest.raises(PrefixError):
            parse_ip("256.0.0.1")

    def test_not_dotted_quad(self):
        with pytest.raises(PrefixError):
            parse_ip("1.2.3")

    def test_garbage(self):
        with pytest.raises(PrefixError):
            parse_ip("hello")

    def test_format_out_of_range(self):
        with pytest.raises(PrefixError):
            format_ip(IPV4_MAX)

    def test_format_negative(self):
        with pytest.raises(PrefixError):
            format_ip(-1)


class TestSlash8Equivalents:
    def test_one_slash8(self):
        assert slash8_equivalents(2**24) == 1.0

    def test_half(self):
        assert slash8_equivalents(2**23) == 0.5

    def test_zero(self):
        assert slash8_equivalents(0) == 0.0


class TestIPv4PrefixParse:
    def test_parse_basic(self):
        prefix = IPv4Prefix.parse("192.0.2.0/24")
        assert prefix.length == 24
        assert str(prefix) == "192.0.2.0/24"

    def test_parse_bare_address_is_slash32(self):
        assert IPv4Prefix.parse("10.0.0.1").length == 32

    def test_parse_strict_rejects_host_bits(self):
        with pytest.raises(PrefixError):
            IPv4Prefix.parse("192.0.2.1/24")

    def test_parse_nonstrict_masks_host_bits(self):
        prefix = IPv4Prefix.parse("192.0.2.1/24", strict=False)
        assert str(prefix) == "192.0.2.0/24"

    def test_parse_bad_length(self):
        with pytest.raises(PrefixError):
            IPv4Prefix.parse("10.0.0.0/33")

    def test_parse_non_numeric_length(self):
        with pytest.raises(PrefixError):
            IPv4Prefix.parse("10.0.0.0/abc")

    def test_zero_length(self):
        prefix = IPv4Prefix.parse("0.0.0.0/0")
        assert prefix.num_addresses == IPV4_MAX

    def test_constructor_rejects_host_bits(self):
        with pytest.raises(PrefixError):
            IPv4Prefix(parse_ip("10.0.0.1"), 24)

    def test_from_first_address_masks(self):
        prefix = IPv4Prefix.from_first_address(parse_ip("10.0.0.255"), 24)
        assert str(prefix) == "10.0.0.0/24"

    def test_repr_parseable(self):
        prefix = IPv4Prefix.parse("198.51.100.0/24")
        assert "198.51.100.0/24" in repr(prefix)


class TestIPv4PrefixProperties:
    def test_num_addresses(self):
        assert IPv4Prefix.parse("10.0.0.0/22").num_addresses == 1024

    def test_first_last(self):
        prefix = IPv4Prefix.parse("10.0.0.0/24")
        assert format_ip(prefix.first) == "10.0.0.0"
        assert format_ip(prefix.last) == "10.0.0.255"

    def test_netmask_hostmask(self):
        prefix = IPv4Prefix.parse("10.0.0.0/24")
        assert prefix.netmask == 0xFFFFFF00
        assert prefix.hostmask == 0x000000FF

    def test_slash8_equivalents(self):
        assert IPv4Prefix.parse("10.0.0.0/8").slash8_equivalents == 1.0
        assert IPv4Prefix.parse("10.0.0.0/9").slash8_equivalents == 0.5


class TestContainment:
    def test_contains_subnet(self):
        outer = IPv4Prefix.parse("10.0.0.0/8")
        inner = IPv4Prefix.parse("10.1.0.0/16")
        assert outer.contains(inner)
        assert not inner.contains(outer)
        assert inner.is_subnet_of(outer)

    def test_contains_self(self):
        prefix = IPv4Prefix.parse("10.0.0.0/8")
        assert prefix.contains(prefix)

    def test_disjoint(self):
        a = IPv4Prefix.parse("10.0.0.0/8")
        b = IPv4Prefix.parse("11.0.0.0/8")
        assert not a.contains(b)
        assert not a.overlaps(b)

    def test_overlaps_is_symmetric_for_nested(self):
        outer = IPv4Prefix.parse("10.0.0.0/8")
        inner = IPv4Prefix.parse("10.1.0.0/16")
        assert outer.overlaps(inner)
        assert inner.overlaps(outer)

    def test_contains_address(self):
        prefix = IPv4Prefix.parse("192.0.2.0/24")
        assert prefix.contains_address(parse_ip("192.0.2.200"))
        assert not prefix.contains_address(parse_ip("192.0.3.0"))


class TestDerivation:
    def test_supernet_default(self):
        assert str(IPv4Prefix.parse("10.1.0.0/16").supernet()) == "10.0.0.0/15"

    def test_supernet_explicit(self):
        assert str(IPv4Prefix.parse("10.1.0.0/16").supernet(8)) == "10.0.0.0/8"

    def test_supernet_invalid(self):
        with pytest.raises(PrefixError):
            IPv4Prefix.parse("10.0.0.0/8").supernet(16)

    def test_subnets_default_halves(self):
        halves = list(IPv4Prefix.parse("10.0.0.0/8").subnets())
        assert [str(p) for p in halves] == ["10.0.0.0/9", "10.128.0.0/9"]

    def test_subnets_explicit(self):
        subs = list(IPv4Prefix.parse("10.0.0.0/22").subnets(24))
        assert len(subs) == 4
        assert str(subs[-1]) == "10.0.3.0/24"

    def test_subnets_invalid(self):
        with pytest.raises(PrefixError):
            list(IPv4Prefix.parse("10.0.0.0/24").subnets(8))

    def test_ordering(self):
        a = IPv4Prefix.parse("10.0.0.0/8")
        b = IPv4Prefix.parse("10.0.0.0/16")
        c = IPv4Prefix.parse("11.0.0.0/8")
        assert sorted([c, b, a]) == [a, b, c]


class TestAddressRange:
    def test_from_prefix_round_trip(self):
        prefix = IPv4Prefix.parse("192.0.2.0/24")
        assert AddressRange.from_prefix(prefix).to_prefixes() == [prefix]

    def test_from_count(self):
        r = AddressRange.from_count(parse_ip("10.0.0.0"), 512)
        assert r.num_addresses == 512

    def test_invalid_empty(self):
        with pytest.raises(PrefixError):
            AddressRange(10, 10)

    def test_invalid_reversed(self):
        with pytest.raises(PrefixError):
            AddressRange(20, 10)

    def test_contains(self):
        outer = AddressRange(0, 100)
        assert outer.contains(AddressRange(10, 20))
        assert not outer.contains(AddressRange(90, 120))

    def test_overlaps_and_intersection(self):
        a = AddressRange(0, 100)
        b = AddressRange(50, 150)
        assert a.overlaps(b)
        assert a.intersection(b) == AddressRange(50, 100)

    def test_disjoint_intersection_none(self):
        assert AddressRange(0, 10).intersection(AddressRange(10, 20)) is None

    def test_to_prefixes_unaligned(self):
        # 3 addresses starting at .1 -> /32 + /31
        r = AddressRange(parse_ip("10.0.0.1"), parse_ip("10.0.0.4"))
        assert [str(p) for p in r.to_prefixes()] == [
            "10.0.0.1/32",
            "10.0.0.2/31",
        ]

    def test_to_prefixes_covers_exactly(self):
        r = AddressRange(parse_ip("10.0.0.0"), parse_ip("10.0.1.128"))
        total = sum(p.num_addresses for p in r.to_prefixes())
        assert total == r.num_addresses

    def test_str(self):
        r = AddressRange(parse_ip("10.0.0.0"), parse_ip("10.0.1.0"))
        assert str(r) == "10.0.0.0-10.0.0.255"
