"""§4.1: RIR deallocations after DROP listing."""

from repro.analysis import analyze_deallocation
from repro.drop.categories import Category


def bench_sec41_deallocation(benchmark, world, entries):
    result = benchmark(analyze_deallocation, world, entries)
    # Shape: malicious hosting leads the deallocation table; a small
    # share of removed prefixes are deallocated, and about half of those
    # were delisted within a week of the deallocation.
    mh = result.category_rate(Category.MALICIOUS_HOSTING)
    assert mh == max(
        result.category_rate(c)
        for c in (Category.HIJACKED, Category.SNOWSHOE,
                  Category.KNOWN_SPAM, Category.MALICIOUS_HOSTING)
    )
    assert 0.05 < result.removed_deallocation_rate < 0.15
    assert 0.25 < result.within_week_share < 0.75
