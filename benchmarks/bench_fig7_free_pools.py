"""Figure 7: free-pool sizes per RIR over time."""

from repro.analysis import analyze_unallocated


def bench_fig7_free_pools(benchmark, world, entries):
    result = benchmark(analyze_unallocated, world, entries)
    # Shape: every pool shrinks or holds; AFRINIC and ARIN hold the most
    # unallocated space; the listing clusters (LACNIC-heavy) are NOT on
    # the biggest pools — the paper's "size is not correlated" point.
    finals = {r: s[-1][1] for r, s in result.free_pools.items()}
    for rir, series in result.free_pools.items():
        assert series[-1][1] <= series[0][1], rir
    ranked = sorted(finals, key=finals.get, reverse=True)
    assert set(ranked[:2]) == {"AFRINIC", "ARIN"}
    # LACNIC has the most unallocated listings but one of the smallest
    # pools.
    assert result.count_for("LACNIC") == 19
    assert finals["LACNIC"] < finals["AFRINIC"]
