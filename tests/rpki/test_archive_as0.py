"""Unit tests for repro.rpki.archive and repro.rpki.as0."""

from datetime import date

import pytest

from repro.net.prefix import IPv4Prefix
from repro.rpki.archive import RoaArchive
from repro.rpki.as0 import (
    AS0_POLICY_EVENTS,
    as0_covered,
    rir_as0_policy_start,
    rir_as0_tal,
)
from repro.rpki.roa import Roa, RoaRecord
from repro.rpki.tal import APNIC_AS0_TAL, TalSet

P22 = IPv4Prefix.parse("132.255.0.0/22")
P24 = IPv4Prefix.parse("132.255.0.0/24")
UNALLOC = IPv4Prefix.parse("103.0.0.0/16")
OTHER = IPv4Prefix.parse("10.0.0.0/24")


@pytest.fixture
def archive():
    a = RoaArchive()
    a.add(RoaRecord(Roa(P22, 263692, trust_anchor="LACNIC"),
                    created=date(2019, 1, 1)))
    a.add(RoaRecord(Roa(P24, 64500, max_length=25, trust_anchor="LACNIC"),
                    created=date(2020, 1, 1), removed=date(2021, 1, 1)))
    a.add(RoaRecord(Roa(UNALLOC, 0, max_length=32,
                        trust_anchor=APNIC_AS0_TAL),
                    created=date(2020, 9, 2)))
    return a


class TestRoaArchiveQueries:
    def test_covering_includes_less_specifics(self, archive):
        found = archive.covering(P24, date(2020, 6, 1))
        assert {str(r.roa.prefix) for r in found} == {
            "132.255.0.0/22", "132.255.0.0/24"
        }

    def test_covering_respects_lifetime(self, archive):
        found = archive.covering(P24, date(2021, 6, 1))
        assert {str(r.roa.prefix) for r in found} == {"132.255.0.0/22"}

    def test_covered(self, archive):
        found = archive.covered(P22, date(2020, 6, 1))
        assert {str(r.roa.prefix) for r in found} == {
            "132.255.0.0/22", "132.255.0.0/24"
        }

    def test_has_roa_default_tals_ignore_as0_tal(self, archive):
        assert not archive.has_roa(UNALLOC, date(2021, 1, 1))
        assert archive.has_roa(
            UNALLOC, date(2021, 1, 1), TalSet.with_as0()
        )

    def test_has_roa_unsigned_prefix(self, archive):
        assert not archive.has_roa(OTHER, date(2021, 1, 1))

    def test_roas_on(self, archive):
        roas = archive.roas_on(date(2020, 6, 1))
        assert len(roas) == 2  # AS0-TAL ROA not trusted by default

    def test_first_signed(self, archive):
        assert archive.first_signed(P24) == date(2019, 1, 1)  # /22 covers
        assert archive.first_signed(OTHER) is None
        assert archive.first_signed(
            UNALLOC, TalSet.with_as0()
        ) == date(2020, 9, 2)

    def test_signing_asns(self, archive):
        assert archive.signing_asns(P24, date(2020, 6, 1)) == {263692, 64500}

    def test_len(self, archive):
        assert len(archive) == 3


class TestPersistence:
    def test_journal_round_trip(self, archive, tmp_path):
        path = tmp_path / "roas.jsonl"
        assert archive.write_journal(path) == 3
        loaded = RoaArchive.read_journal(path)
        original = sorted(
            (str(r.roa.prefix), r.roa.asn, r.roa.max_length,
             r.roa.trust_anchor, r.created, r.removed)
            for r in archive.records()
        )
        round_tripped = sorted(
            (str(r.roa.prefix), r.roa.asn, r.roa.max_length,
             r.roa.trust_anchor, r.created, r.removed)
            for r in loaded.records()
        )
        assert original == round_tripped

    def test_csv_snapshot_round_trip(self, archive):
        days = [date(2019, 1, 1), date(2020, 1, 1), date(2020, 9, 2),
                date(2021, 1, 1), date(2022, 1, 1)]
        snapshots = [(day, archive.snapshot_csv(day)) for day in days]
        rebuilt = RoaArchive.from_snapshots(snapshots)
        assert len(rebuilt) == len(archive)
        # Lifetimes are recovered exactly because snapshots hit the
        # creation/removal days.
        original = sorted(
            (str(r.roa.prefix), r.roa.asn, r.created, r.removed)
            for r in archive.records()
        )
        round_tripped = sorted(
            (str(r.roa.prefix), r.roa.asn, r.created, r.removed)
            for r in rebuilt.records()
        )
        assert original == round_tripped

    def test_csv_header_check(self):
        with pytest.raises(ValueError):
            RoaArchive.from_snapshots([(date(2020, 1, 1), "bad,header\n")])

    def test_csv_contains_max_length(self, archive):
        text = archive.snapshot_csv(date(2020, 6, 1))
        assert "132.255.0.0/24,25,LACNIC" in text.replace("\r", "")


class TestAs0Policy:
    def test_policy_events_cover_all_rirs(self):
        assert {e.rir for e in AS0_POLICY_EVENTS} == {
            "APNIC", "LACNIC", "RIPE", "AFRINIC", "ARIN"
        }

    def test_apnic_implementation_date(self):
        assert rir_as0_policy_start("APNIC") == date(2020, 9, 2)

    def test_lacnic_implementation_date(self):
        assert rir_as0_policy_start("LACNIC") == date(2021, 6, 23)

    def test_unimplemented_rirs(self):
        for rir in ("RIPE", "AFRINIC", "ARIN"):
            assert rir_as0_policy_start(rir) is None
            assert rir_as0_tal(rir) is None

    def test_unknown_rir(self):
        with pytest.raises(ValueError):
            rir_as0_policy_start("NOPE")

    def test_outcome_labels(self):
        outcomes = {e.rir: e.outcome for e in AS0_POLICY_EVENTS}
        assert outcomes["APNIC"] == "implemented"
        assert outcomes["RIPE"] == "proposed"
        assert outcomes["ARIN"] == "none"

    def test_as0_covered_depends_on_tals(self, archive):
        day = date(2021, 1, 1)
        assert not as0_covered(archive, UNALLOC, day)
        assert as0_covered(archive, UNALLOC, day, TalSet.with_as0())

    def test_operator_as0_covered_by_default(self):
        archive = RoaArchive()
        archive.add(
            RoaRecord(
                Roa(P22, 0, max_length=32, trust_anchor="LACNIC"),
                created=date(2021, 5, 5),
            )
        )
        assert as0_covered(archive, P22, date(2021, 6, 1))
        assert not as0_covered(archive, P22, date(2021, 5, 1))
