"""Incremental ingest costs: daily delta apply vs full as-of rebuild.

Two entry points share the measurement code, mirroring
``bench_store.py``:

* pytest-benchmark functions (``bench_ingest_compute_delta``,
  ``bench_ingest_advance_day``) picked up with the rest of the bench
  suite, and
* a standalone mode — ``python benchmarks/bench_ingest.py --scale paper
  --out BENCH_ingest.json --check`` — recording this PR's acceptance
  numbers as a JSON artifact: per-day :meth:`Ingestor.advance` latency
  over a week of deltas, the cost of rebuilding the same as-of index
  from scratch with :func:`build_index_as_of`, and a byte-identity
  check that the incrementally advanced engine answers exactly what
  the rebuilt one does.  ``--smoke`` shrinks everything for CI;
  ``--check`` enforces the gates: incremental == rebuilt always, and
  at paper scale a daily delta apply at least
  :data:`APPLY_SPEEDUP_TARGET`× faster than the rebuild.
"""

import argparse
import json
import sys
from datetime import timedelta
from pathlib import Path
from time import perf_counter

from repro.ingest import Ingestor, build_index_as_of
from repro.query import QueryEngine
from repro.runtime import WorldCache
from repro.synth import ScenarioConfig

_SCALES = {
    "tiny": ScenarioConfig.tiny,
    "small": ScenarioConfig.small,
    "paper": ScenarioConfig.paper,
}

#: A daily delta apply must beat the full as-of rebuild by this much.
APPLY_SPEEDUP_TARGET = 20.0

#: Days of deltas the artifact run applies (one serving week).
DAYS = 7


# ---------------------------------------------------------------------------
# pytest-benchmark entry points
# ---------------------------------------------------------------------------


def bench_ingest_compute_delta(benchmark, world):
    from repro.ingest import compute_delta

    day = world.window.start + timedelta(days=1)
    batch = benchmark(compute_delta, world, day)
    assert batch.day == day


def bench_ingest_advance_day(benchmark, world):
    # Advancing is stateful — each round applies the ingestor's next
    # day, so rounds stay bounded well inside the world window.
    ingestor = Ingestor(world)
    results = benchmark.pedantic(ingestor.advance, rounds=5, iterations=1)
    assert len(results) == 1
    assert ingestor.days_applied == 5


# ---------------------------------------------------------------------------
# standalone artifact mode
# ---------------------------------------------------------------------------


def _sample_prefixes(index):
    prefixes = [p for i, p in enumerate(index.drop) if i % 7 == 0]
    prefixes += [p for i, p in enumerate(index.routes) if i % 41 == 0]
    prefixes += [p for i, p in enumerate(index.roa) if i % 19 == 0]
    return prefixes


def _engine_outputs(engine, prefixes, days) -> str:
    rows = []
    for prefix in prefixes:
        for day in days:
            rows.append(
                json.dumps(
                    engine.lookup(prefix, day).to_dict(), sort_keys=True
                )
            )
    return "\n".join(rows)


def run(scale: str, *, days: int = DAYS, out: Path | None = None) -> dict:
    config = _SCALES[scale]()
    outcome = WorldCache().fetch(config)
    world, key = outcome.world, outcome.key
    start = world.window.start
    final = start + timedelta(days=days)

    base_started = perf_counter()
    ingestor = Ingestor(world, key=key)
    base_seconds = perf_counter() - base_started

    per_day = []
    for _ in range(days):
        started = perf_counter()
        ingestor.advance()
        per_day.append(perf_counter() - started)
    apply_mean = sum(per_day) / len(per_day)

    rebuild_started = perf_counter()
    rebuilt = build_index_as_of(world, final, key=key)
    rebuild_seconds = perf_counter() - rebuild_started

    # Identity: the advanced engine answers exactly what a cold as-of
    # rebuild answers, over every store family and both window edges.
    prefixes = _sample_prefixes(rebuilt)
    probe_days = (start, final)
    outputs_identical = _engine_outputs(
        ingestor.engine, prefixes, probe_days
    ) == _engine_outputs(QueryEngine(rebuilt), prefixes, probe_days)

    speedup = rebuild_seconds / (apply_mean or 1e-9)
    payload = {
        "scale": scale,
        "days_applied": days,
        "base_build_seconds": round(base_seconds, 4),
        "delta_apply_seconds_mean": round(apply_mean, 4),
        "delta_apply_seconds_max": round(max(per_day), 4),
        "rebuild_seconds": round(rebuild_seconds, 4),
        "delta_apply_speedup": round(speedup, 1),
        "watch_events_emitted": ingestor.events.last_seq,
        "outputs_identical": outputs_identical,
        "meets_targets": {
            "delta_apply_speedup_20x": speedup >= APPLY_SPEEDUP_TARGET,
            "outputs_identical": outputs_identical,
        },
    }
    if out is not None:
        out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return payload


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=sorted(_SCALES), default="tiny")
    parser.add_argument("--days", type=int, default=DAYS,
                        help="days of deltas to apply")
    parser.add_argument("--smoke", action="store_true",
                        help="CI mode: force the tiny scale")
    parser.add_argument("--out", type=Path, default=None,
                        help="write the JSON artifact to FILE")
    parser.add_argument("--check", action="store_true",
                        help="exit 1 unless incremental == rebuilt (and, "
                             "at paper scale, the 20x apply target)")
    args = parser.parse_args(argv)
    scale = "tiny" if args.smoke else args.scale
    payload = run(scale, days=args.days, out=args.out)
    print(json.dumps(payload, indent=2, sort_keys=True))
    targets = dict(payload["meets_targets"])
    if scale != "paper":
        # The 20x headline is a paper-scale promise: a tiny rebuild is
        # milliseconds either way and fixed costs dominate the ratio.
        targets.pop("delta_apply_speedup_20x")
    if args.check and not all(targets.values()):
        print("ingest bench targets missed", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
