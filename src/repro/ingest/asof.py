"""Cold builds of the *as-of-day-D* knowledge state.

An incremental deployment starts serving before the window ends: on day
D it knows every DROP snapshot, ROA archive, and BGP update slice up to
and including D, and nothing after.  :func:`build_index_as_of` builds
the :class:`~repro.query.index.QueryIndex` encoding exactly that state,
and :func:`compute_roa_status_as_of` the matching Figure 5 result —
these are the *reference* the incremental path is pinned against: K
sequential :func:`~repro.ingest.apply.apply_delta` calls must land on
the same outputs as one cold as-of build of the final day (the golden
tests in ``tests/ingest/``).

Clamping rules (the knowledge model from :mod:`repro.ingest.delta`):

* DROP episodes and ROA records use exclusive ends, so an end dated
  after D is not yet knowable → stored open (``None``); an end equal to
  D *is* knowable (day D's snapshot shows the absence) and is kept.
* BGP route intervals use inclusive ends, so an end equal to D is
  knowable (day D's slice carries the withdrawal) and kept — ends after
  D become open.  Intervals starting after D are omitted entirely;
  partial-observation carve-outs keep starts ``<= D`` with the same
  inclusive-end clamp.
* IRR route objects and RIR allocations are journaled registry dumps:
  fully known up front, never clamped.

As of D == window end, nothing clamps, so the as-of index equals the
full :func:`~repro.query.index.build_index` output.
"""

from __future__ import annotations

from datetime import date

from ..analysis.roa_status import RoaStatusResult, default_sample_days
from ..analysis.substrate import compute_roa_status
from ..obs import Instrumentation
from ..query.index import (
    DropEntry,
    IrrEntry,
    QueryIndex,
    RoaEntry,
    RouteEntry,
    _append,
)
from ..synth.world import World

__all__ = ["build_index_as_of", "compute_roa_status_as_of"]


def _clamp_exclusive(end: date | None, day: date) -> date | None:
    """Exclusive-end fields: ends after ``day`` are not yet knowable."""
    return None if end is not None and end > day else end


def _clamp_inclusive(end: date | None, day: date) -> date | None:
    """Inclusive-end fields: ends after ``day`` are not yet knowable."""
    return None if end is not None and end > day else end


def build_index_as_of(
    world: World,
    day: date,
    *,
    key: str = "",
    instrumentation: Instrumentation | None = None,
) -> QueryIndex:
    """The query index as an observer ingesting daily would hold on ``day``."""
    instr = instrumentation or Instrumentation()
    with instr.stage("index-build-asof", group="ingest"):
        full_table = world.peers.full_table_peer_ids()
        index = QueryIndex(
            window=world.window,
            total_peers=len(full_table),
            key=key,
        )
        for prefix in world.drop.unique_prefixes():
            bucket = [
                DropEntry(e.added, _clamp_exclusive(e.removed, day), e.sbl_id)
                for e in world.drop.episodes_for(prefix)
                if e.added <= day
            ]
            if bucket:
                index.drop.insert(prefix, bucket)
        for record in world.irr.records():
            entry = IrrEntry(
                record.route.origin, record.created, record.deleted
            )
            _append(index.irr, record.route.prefix, entry)
        for record in world.roas.records():
            if record.created > day:
                continue
            roa = record.roa
            entry = RoaEntry(
                roa.asn,
                roa.max_length,
                roa.trust_anchor,
                record.created,
                _clamp_exclusive(record.removed, day),
            )
            _append(index.roa, roa.prefix, entry)
        interned: dict[frozenset[int], int] = {}
        for interval in world.bgp.all_intervals():
            if interval.start > day:
                continue
            observers = frozenset(interval.observers) & full_table
            ref = interned.get(observers)
            if ref is None:
                ref = len(index.observer_sets)
                interned[observers] = ref
                index.observer_sets.append(observers)
            entry = RouteEntry(
                origin=interval.origin,
                start=interval.start,
                end=_clamp_inclusive(interval.end, day),
                observers_ref=ref,
                partials=tuple(
                    (p.peer_id, p.start, _clamp_inclusive(p.end, day))
                    for p in interval.partial_observers
                    if p.peer_id in full_table and p.start <= day
                ),
            )
            _append(index.routes, interval.prefix, entry)
    instr.incr("query_index_builds")
    return index


def compute_roa_status_as_of(world: World, day: date) -> RoaStatusResult:
    """The Figure 5 result over the sample days knowable on ``day``.

    Open intervals are "still active as of today" under daily ingest,
    which is exactly how :func:`~repro.analysis.substrate
    .compute_roa_status` already treats them for sample days ``<= day``
    — so the as-of result is the full computation restricted to the
    knowable slice of the grid (empty before the first month boundary).
    """
    days = [d for d in default_sample_days(world) if d <= day]
    if not days:
        return RoaStatusResult(
            points=(),
            unrouted_signed_by_holder={},
            unrouted_unsigned_by_rir={},
        )
    return compute_roa_status(world, days)
