"""Figure 2 (left) and §4.1: routing visibility around listing.

Computes, for each DROP prefix, the fraction of full-table peers observing
it at fixed offsets from its listing day, the CDFs over prefixes per
offset, and the withdrawn-within-30-days rates overall and per category
(paper: 19% overall, 70.7% for hijacked, 54.8% for unallocated).
"""

from __future__ import annotations

from dataclasses import dataclass

from typing import TYPE_CHECKING

from ..bgp.visibility import (
    DEFAULT_OFFSETS,
    VisibilityProfile,
    visibility_profile,
    withdrawn_within,
)
from ..drop.categories import Category
from ..synth.world import World
from .common import DropEntryView, load_entries

if TYPE_CHECKING:
    from .substrate import AnalysisSubstrate

__all__ = ["VisibilityResult", "analyze_visibility"]


@dataclass(frozen=True, slots=True)
class VisibilityResult:
    """Figure 2's left panel plus the §4.1 withdrawal rates."""

    profiles: tuple[VisibilityProfile, ...]
    offsets: tuple[int, ...]
    withdrawn_total: int
    eligible_total: int
    withdrawal_rate: float
    category_withdrawal: dict[Category, tuple[int, int]]

    def cdf(self, offset: int) -> list[float]:
        """Sorted per-prefix observation fractions for one offset.

        This is the x-series of Figure 2's CDF for that offset (the CDF's
        y values are simply rank / n).
        """
        return sorted(p.fractions[offset] for p in self.profiles)

    def category_rate(self, category: Category) -> float:
        """Withdrawal rate for one category."""
        withdrawn, total = self.category_withdrawal.get(category, (0, 0))
        return withdrawn / total if total else 0.0


def analyze_visibility(
    world: World,
    entries: list[DropEntryView] | None = None,
    offsets: tuple[int, ...] = DEFAULT_OFFSETS,
    *,
    exclude_incidents: bool = True,
    substrate: "AnalysisSubstrate | None" = None,
) -> VisibilityResult:
    """Run the Figure 2 visibility analysis.

    With a ``substrate``, profiles and withdrawal checks are served
    from its per-prefix event tables (interned observer sets) instead
    of walking the raw route-interval store — same numbers, one store
    scan per world instead of one per prefix per offset.
    """
    if entries is None:
        entries = load_entries(world)
    if exclude_incidents:
        entries = [e for e in entries if not e.incident]
    profiles = []
    withdrawn_total = 0
    eligible_total = 0
    per_category: dict[Category, list[int]] = {
        c: [0, 0] for c in Category
    }
    for entry in entries:
        profiles.append(
            substrate.visibility_profile(entry.prefix, entry.listed, offsets)
            if substrate is not None
            else visibility_profile(
                world.bgp, world.peers, entry.prefix, entry.listed, offsets
            )
        )
        # A prefix is eligible for the withdrawal statistic if it was
        # BGP-observed around its listing; the paper's 19% is over all
        # listed prefixes, with never-routed prefixes never "withdrawn".
        eligible_total += 1
        withdrawn = (
            substrate.withdrawn_within(entry.prefix, entry.listed, days=30)
            if substrate is not None
            else withdrawn_within(
                world.bgp, entry.prefix, entry.listed, days=30
            )
        )
        if withdrawn:
            withdrawn_total += 1
        for category in entry.categories:
            per_category[category][1] += 1
            if withdrawn:
                per_category[category][0] += 1
    return VisibilityResult(
        profiles=tuple(profiles),
        offsets=offsets,
        withdrawn_total=withdrawn_total,
        eligible_total=eligible_total,
        withdrawal_rate=(
            withdrawn_total / eligible_total if eligible_total else 0.0
        ),
        category_withdrawal={
            category: (counts[0], counts[1])
            for category, counts in per_category.items()
            if counts[1]
        },
    )
