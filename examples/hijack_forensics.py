#!/usr/bin/env python3
"""Forensics walk-through of the paper's Figure 4 RPKI-valid hijack.

Reconstructs the 132.255.0.0/22 case study step by step with the
substrate APIs — the same investigation an operator would run against
real archives:

1. pull the prefix's BGP origin history and spot the ownership anomaly;
2. validate the hijack announcement against the ROA (it is VALID — the
   attacker forged the ROA's ASN as origin);
3. sweep the global table for sibling prefixes with the same
   origin+transit fingerprint;
4. check which siblings ended up on the DROP list.

Run:  python examples/hijack_forensics.py
"""

from repro.analysis import find_sibling_prefixes
from repro.net.prefix import IPv4Prefix
from repro.rpki.validation import validate_route
from repro.synth import ScenarioConfig, build_world


def main() -> None:
    world = build_world(ScenarioConfig.tiny())
    prefix = IPv4Prefix.parse("132.255.0.0/22")

    print(f"=== origin history of {prefix} ===")
    for start, end, origin in world.bgp.origin_history(prefix):
        until = end.isoformat() if end else "still announced"
        print(f"  {start}  ->  {until:>15}   origin AS{origin}")

    episodes = world.bgp.intervals_exact(prefix)
    owner_era, hijack_era = episodes[-2], episodes[-1]
    print(
        f"\nunrouted gap: {owner_era.end} -> {hijack_era.start} "
        f"({(hijack_era.start - owner_era.end).days} days dark)"
    )
    print(f"owner path:  {owner_era.path}")
    print(f"hijack path: {hijack_era.path}  <- new transit, same origin")

    print("\n=== RPKI validation of the hijack announcement ===")
    covering = [
        r.roa for r in world.roas.covering(prefix, hijack_era.start)
    ]
    for roa in covering:
        print(f"  covering ROA: {roa}")
    verdict = validate_route(prefix, hijack_era.origin, covering)
    print(
        f"  validate({prefix}, AS{hijack_era.origin}) = {verdict}"
        "   <- RPKI cannot catch a forged-origin hijack"
    )

    transit = hijack_era.path.first_hop
    print(
        f"\n=== sweeping BGP for 'origin AS{hijack_era.origin} via "
        f"AS{transit}' ==="
    )
    siblings = find_sibling_prefixes(
        world, origin=hijack_era.origin, transit=transit, exclude=prefix
    )
    for sibling in siblings:
        listed = world.drop.is_listed(sibling, world.window.end)
        first = world.bgp.first_announced(sibling)
        print(
            f"  {str(sibling):<20} first seen {first}"
            f"{'   ** on DROP **' if listed else ''}"
        )
    print(
        f"\n{len(siblings)} sibling prefixes (paper: 6); "
        f"{sum(1 for s in siblings if world.drop.is_listed(s, world.window.end))}"
        " on DROP (paper: 3)"
    )
    print(
        "\nLesson (§6.1): an unrouted prefix with a non-AS0 ROA is no "
        "better protected\nthan an unsigned one — the ROA should be "
        "flipped to AS0 while unrouted."
    )


if __name__ == "__main__":
    main()
