"""Unit tests for repro.net.prefixset."""

import pytest

from repro.net.prefix import AddressRange, IPv4Prefix, parse_ip
from repro.net.prefixset import PrefixSet


def pset(*cidrs):
    return PrefixSet(cidrs)


class TestConstruction:
    def test_empty_is_falsy(self):
        assert not PrefixSet()

    def test_from_strings(self):
        s = pset("10.0.0.0/8", "192.0.2.0/24")
        assert s.contains("10.1.0.0/16")
        assert s.contains("192.0.2.0/24")

    def test_from_intervals(self):
        s = PrefixSet.from_intervals([(0, 10), (20, 30)])
        assert s.num_addresses == 20

    def test_copy_is_independent(self):
        s = pset("10.0.0.0/8")
        c = s.copy()
        c.add("11.0.0.0/8")
        assert not s.contains("11.0.0.0/8")


class TestAddCoalescing:
    def test_adjacent_merge(self):
        s = pset("10.0.0.0/9", "10.128.0.0/9")
        assert list(s.intervals()) == [
            AddressRange(parse_ip("10.0.0.0"), parse_ip("11.0.0.0"))
        ]

    def test_overlapping_merge(self):
        s = pset("10.0.0.0/8")
        s.add("10.128.0.0/9")
        assert s.num_addresses == 2**24

    def test_disjoint_stay_separate(self):
        s = pset("10.0.0.0/8", "12.0.0.0/8")
        assert len(list(s.intervals())) == 2

    def test_bridging_add_merges_three(self):
        s = pset("10.0.0.0/8", "12.0.0.0/8")
        s.add("11.0.0.0/8")
        assert len(list(s.intervals())) == 1
        assert s.num_addresses == 3 * 2**24

    def test_idempotent_add(self):
        s = pset("10.0.0.0/8")
        s.add("10.0.0.0/8")
        assert s.num_addresses == 2**24


class TestDiscard:
    def test_discard_middle_splits(self):
        s = pset("10.0.0.0/8")
        s.discard("10.128.0.0/16")
        assert len(list(s.intervals())) == 2
        assert s.num_addresses == 2**24 - 2**16

    def test_discard_whole(self):
        s = pset("10.0.0.0/8")
        s.discard("10.0.0.0/8")
        assert not s

    def test_discard_absent_noop(self):
        s = pset("10.0.0.0/8")
        s.discard("20.0.0.0/8")
        assert s.num_addresses == 2**24

    def test_discard_edge(self):
        s = pset("10.0.0.0/8")
        s.discard("10.0.0.0/9")
        assert list(s.iter_prefixes()) == [IPv4Prefix.parse("10.128.0.0/9")]


class TestQueries:
    def test_contains_address(self):
        s = pset("192.0.2.0/24")
        assert s.contains_address(parse_ip("192.0.2.5"))
        assert not s.contains_address(parse_ip("192.0.3.5"))

    def test_contains_partial_false(self):
        s = pset("10.0.0.0/9")
        assert not s.contains("10.0.0.0/8")

    def test_overlaps(self):
        s = pset("10.0.0.0/9")
        assert s.overlaps("10.0.0.0/8")
        assert not s.overlaps("11.0.0.0/8")

    def test_slash8_equivalents(self):
        s = pset("10.0.0.0/8", "11.0.0.0/9")
        assert s.slash8_equivalents == pytest.approx(1.5)

    def test_iter_prefixes_minimal(self):
        s = pset("10.0.0.0/9", "10.128.0.0/9")
        assert [str(p) for p in s.iter_prefixes()] == ["10.0.0.0/8"]

    def test_repr_truncates(self):
        s = pset("10.0.0.0/8", "12.0.0.0/8", "14.0.0.0/8", "16.0.0.0/8",
                 "18.0.0.0/8")
        assert "5 ranges" in repr(s)


class TestAlgebra:
    def test_union(self):
        u = pset("10.0.0.0/8") | pset("11.0.0.0/8")
        assert u.num_addresses == 2 * 2**24

    def test_intersection(self):
        i = pset("10.0.0.0/8") & pset("10.128.0.0/9", "11.0.0.0/8")
        assert list(i.iter_prefixes()) == [IPv4Prefix.parse("10.128.0.0/9")]

    def test_intersection_empty(self):
        assert not (pset("10.0.0.0/8") & pset("11.0.0.0/8"))

    def test_difference(self):
        d = pset("10.0.0.0/8") - pset("10.0.0.0/9")
        assert list(d.iter_prefixes()) == [IPv4Prefix.parse("10.128.0.0/9")]

    def test_difference_leaves_original(self):
        a = pset("10.0.0.0/8")
        _ = a - pset("10.0.0.0/9")
        assert a.num_addresses == 2**24

    def test_equality(self):
        assert pset("10.0.0.0/9", "10.128.0.0/9") == pset("10.0.0.0/8")

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(pset("10.0.0.0/8"))


class TestFromIntervals:
    def test_degenerate_intervals_are_skipped(self):
        s = PrefixSet.from_intervals([(10, 10), (20, 30), (25, 25)])
        assert list(s.intervals()) == [AddressRange(20, 30)]

    def test_only_degenerates_is_empty(self):
        s = PrefixSet.from_intervals([(5, 5), (9, 9)])
        assert not s
        assert s == PrefixSet()

    def test_degenerate_never_seeds_a_zero_width_interval(self):
        # The regression: a leading (x, x) used to survive as a
        # zero-width interval, breaking equality with the add() path.
        bulk = PrefixSet.from_intervals([(10, 10), (10, 20)])
        incremental = PrefixSet()
        incremental.add(AddressRange(10, 20))
        assert bulk == incremental

    def test_inverted_interval_raises(self):
        with pytest.raises(ValueError, match="inverted"):
            PrefixSet.from_intervals([(30, 20)])

    def test_merge_still_coalesces(self):
        s = PrefixSet.from_intervals([(0, 10), (5, 15), (15, 20), (40, 50)])
        assert list(s.intervals()) == [
            AddressRange(0, 20), AddressRange(40, 50),
        ]
