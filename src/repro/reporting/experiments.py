"""The experiment registry: every table and figure, paper vs. measured.

Each experiment function takes a :class:`~repro.synth.world.World` (plus
the shared entry view) and returns an :class:`ExperimentReport` holding
(metric, paper value, measured value) rows and a rendered text body.  The
registry powers the benchmark harness, the full-reproduction example, and
EXPERIMENTS.md generation — one source of truth for "did we reproduce it".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from ..analysis import (
    analyze_deallocation,
    analyze_irr,
    analyze_roa_status,
    analyze_rpki_effectiveness,
    analyze_rpki_uptake,
    analyze_unallocated,
    analyze_visibility,
    classify_drop,
    detect_as0_filtering,
    detect_drop_filtering,
    load_entries,
)
from ..analysis.common import DropEntryView
from ..drop.categories import Category
from ..rirstats.rirs import ALL_RIRS, display_name
from ..synth.world import World
from .figures import ascii_cdf, ascii_series, ascii_timeline
from .tables import TextTable

if TYPE_CHECKING:  # imported lazily at runtime: substrate -> runtime
    # -> runner -> reporting would otherwise be a cycle.
    from ..analysis.substrate import AnalysisSubstrate

__all__ = [
    "EXPERIMENTS",
    "SUBSTRATE_EXPERIMENTS",
    "ExperimentReport",
    "Metric",
    "render_markdown",
    "render_text",
    "run_all",
    "run_experiment",
]


@dataclass(frozen=True, slots=True)
class Metric:
    """One paper-vs-measured comparison row."""

    name: str
    paper: float | int | str
    measured: float | int | str
    unit: str = ""

    def matches(self, rel_tol: float = 0.25) -> bool:
        """Loose agreement check for numeric metrics.

        Non-numeric values (and bools, which would otherwise slip
        through as ints) compare by equality; a zero paper value asks
        for a measured value within absolute tolerance, since relative
        error against zero is undefined.
        """
        numeric = tuple(
            isinstance(v, (int, float)) and not isinstance(v, bool)
            for v in (self.paper, self.measured)
        )
        if not all(numeric):
            return self.paper == self.measured
        if self.paper == 0:
            return abs(float(self.measured)) < 1e-9
        return (
            abs(float(self.measured) - float(self.paper))
            / abs(float(self.paper))
            <= rel_tol
        )


@dataclass(frozen=True, slots=True)
class ExperimentReport:
    """One reproduced table or figure."""

    exp_id: str
    title: str
    metrics: tuple[Metric, ...]
    body: str = ""


_Runner = Callable[
    [World, list[DropEntryView], "AnalysisSubstrate | None"],
    ExperimentReport,
]
EXPERIMENTS: dict[str, _Runner] = {}

#: Experiments that consume the substrate's expensive shared components
#: (the memoized Figure 5 series, the per-prefix event tables).  The
#: parallel runner pre-warms the substrate in the parent only when at
#: least one of these is requested.
SUBSTRATE_EXPERIMENTS = frozenset({"fig2", "fig5", "ext-as0"})


def _experiment(exp_id: str) -> Callable[[_Runner], _Runner]:
    def register(fn: _Runner) -> _Runner:
        EXPERIMENTS[exp_id] = fn
        return fn

    return register


def run_experiment(
    world: World,
    exp_id: str,
    entries: list[DropEntryView] | None = None,
    substrate: "AnalysisSubstrate | None" = None,
    *,
    tracer=None,
) -> ExperimentReport:
    """Run one registered experiment by id.

    ``substrate`` shares the expensive once-per-world state (see
    :class:`~repro.analysis.substrate.AnalysisSubstrate`); without one
    the experiment recomputes what it needs from the raw stores —
    identical results either way.  ``tracer`` (a
    :class:`repro.obs.Tracer`) wraps the experiment body in a span; the
    pooled runner passes its worker-side tracer so per-experiment spans
    ride back to the parent trace.
    """
    # Imported lazily: reporting loads before the runtime package, and
    # the injection point must also cover direct library calls (run_all,
    # the examples), not just the pooled runner.
    from ..runtime.faults import fault_point

    fault_point(f"experiment.run:{exp_id}")
    if entries is None:
        entries = load_entries(world)
    if tracer is not None:
        with tracer.span(f"experiment:{exp_id}", experiment=exp_id):
            return EXPERIMENTS[exp_id](world, entries, substrate)
    return EXPERIMENTS[exp_id](world, entries, substrate)


def run_all(
    world: World,
    exp_ids: list[str] | None = None,
    entries: list[DropEntryView] | None = None,
    substrate: "AnalysisSubstrate | None" = None,
) -> list[ExperimentReport]:
    """Run experiments serially — all of them, or just ``exp_ids``.

    ``entries`` lets callers (the parallel runner, benchmarks) reuse an
    already-computed entry view instead of re-joining the archives.
    A memory-only :class:`AnalysisSubstrate` is created when the caller
    does not supply one, so the experiments share the Figure 5 series
    and the per-prefix event tables instead of each re-walking the raw
    stores; reports are identical with or without it.
    """
    if entries is None:
        entries = load_entries(world)
    if substrate is None:
        from ..analysis.substrate import AnalysisSubstrate

        substrate = AnalysisSubstrate(world)
    ids = list(EXPERIMENTS) if exp_ids is None else list(exp_ids)
    return [
        EXPERIMENTS[exp_id](world, entries, substrate) for exp_id in ids
    ]


def render_text(report: ExperimentReport) -> str:
    """A terminal rendering of one report."""
    table = TextTable(["metric", "paper", "measured"])
    for metric in report.metrics:
        paper = metric.paper
        measured = metric.measured
        if metric.unit:
            paper = f"{paper}{metric.unit}"
            measured = (
                f"{measured:.3f}{metric.unit}"
                if isinstance(measured, float)
                else f"{measured}{metric.unit}"
            )
        table.add_row(metric.name, paper, measured)
    parts = [f"== {report.exp_id}: {report.title} ==", table.render()]
    if report.body:
        parts.append(report.body)
    return "\n\n".join(parts)


def render_markdown(reports: list[ExperimentReport]) -> str:
    """A Markdown rendering of all reports (EXPERIMENTS.md body)."""
    lines: list[str] = []
    for report in reports:
        lines.append(f"### {report.exp_id} — {report.title}")
        lines.append("")
        lines.append("| metric | paper | measured |")
        lines.append("|---|---|---|")
        for metric in report.metrics:
            measured = (
                f"{metric.measured:.3f}"
                if isinstance(metric.measured, float)
                else str(metric.measured)
            )
            lines.append(
                f"| {metric.name} | {metric.paper}{metric.unit} "
                f"| {measured}{metric.unit} |"
            )
        lines.append("")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# experiments
# ---------------------------------------------------------------------------


@_experiment("fig1")
def _fig1(
    world: World,
    entries: list[DropEntryView],
    substrate: "AnalysisSubstrate | None" = None,
) -> ExperimentReport:
    result = classify_drop(world, entries)
    table = TextTable(
        ["category", "exclusive", "additional", "addresses", "/8 equiv"]
    )
    for bar in result.bars:
        table.add_row(
            bar.category.value,
            bar.exclusive_prefixes,
            bar.additional_prefixes,
            bar.addresses,
            bar.slash8,
        )
    metrics = (
        Metric("unique prefixes", 712, result.total_prefixes),
        Metric("prefixes with SBL record", 526, result.with_record),
        Metric("hijacked prefixes", 179,
               result.bar(Category.HIJACKED).total_prefixes),
        Metric("snowshoe prefixes", 230,
               result.bar(Category.SNOWSHOE).total_prefixes),
        Metric("unallocated prefixes", 40,
               result.bar(Category.UNALLOCATED).total_prefixes),
        Metric("no-record prefixes", 186,
               result.bar(Category.NO_RECORD).total_prefixes),
        Metric("incident prefixes", 45, result.incident_prefixes),
        Metric("incident space share", 0.488,
               round(result.incident_space_share, 3)),
        Metric("snowshoe space share", 0.085,
               round(result.space_share(Category.SNOWSHOE), 3)),
    )
    return ExperimentReport(
        "fig1", "Classification of DROP entries", metrics, table.render()
    )


@_experiment("fig2")
def _fig2(
    world: World,
    entries: list[DropEntryView],
    substrate: "AnalysisSubstrate | None" = None,
) -> ExperimentReport:
    result = analyze_visibility(world, entries, substrate=substrate)
    body = ascii_cdf(
        result.cdf(30),
        label="Fraction of peers observing prefix, 30 days after listing",
    )
    metrics = (
        Metric("withdrawn within 30 days", 0.19,
               round(result.withdrawal_rate, 3)),
        Metric("hijacked withdrawn", 0.707,
               round(result.category_rate(Category.HIJACKED), 3)),
        Metric("unallocated withdrawn", 0.548,
               round(result.category_rate(Category.UNALLOCATED), 3)),
    )
    return ExperimentReport(
        "fig2", "Routing visibility after listing", metrics, body
    )


@_experiment("fig2-peers")
def _fig2_peers(
    world: World,
    entries: list[DropEntryView],
    substrate: "AnalysisSubstrate | None" = None,
) -> ExperimentReport:
    result = detect_drop_filtering(world, entries)
    table = TextTable(["peer", "collector", "rate"])
    for suspect in result.suspects:
        table.add_row(
            f"AS{suspect.peer_asn}", suspect.collector, suspect.rate
        )
    metrics = (
        Metric("peers filtering DROP", 3, len(result.suspects)),
    )
    return ExperimentReport(
        "fig2-peers", "RouteViews peers filtering the DROP list",
        metrics, table.render(),
    )


@_experiment("tab1")
def _tab1(
    world: World,
    entries: list[DropEntryView],
    substrate: "AnalysisSubstrate | None" = None,
) -> ExperimentReport:
    result = analyze_rpki_uptake(world, entries)
    table = TextTable(
        ["region", "never", "of", "removed", "of", "present", "of"]
    )
    for row in list(result.rows) + [result.overall]:
        table.add_row(
            display_name(row.region) if row.region != "Overall" else "Overall",
            row.never_rate,
            row.never_total,
            row.removed_rate,
            row.removed_total,
            row.present_rate,
            row.present_total,
        )
    metrics = (
        Metric("overall never-on-DROP rate", 0.223,
               round(result.overall.never_rate, 3)),
        Metric("overall removed rate", 0.425,
               round(result.overall.removed_rate, 3)),
        Metric("overall present rate (rows aggregate ~0.108)", 0.138,
               round(result.overall.present_rate, 3)),
        Metric("removed signed w/ different ASN", 0.823,
               round(result.different_asn_rate, 3)),
        Metric("removed signed w/ same ASN", 0.063,
               round(result.same_asn_rate, 3)),
    )
    return ExperimentReport(
        "tab1", "RPKI signing rates (Table 1)", metrics, table.render()
    )


@_experiment("fig3")
def _fig3(
    world: World,
    entries: list[DropEntryView],
    substrate: "AnalysisSubstrate | None" = None,
) -> ExperimentReport:
    result = analyze_irr(world, entries)
    to_bgp = [
        t.days_to_bgp
        for t in result.timings
        if t.days_to_bgp is not None and t.days_to_bgp >= 0
    ]
    to_drop = [t.days_to_drop for t in result.timings if t.days_to_drop >= 0]
    body = "\n\n".join(
        [
            ascii_cdf(
                [float(d) for d in to_bgp],
                label="Days from IRR record creation to BGP appearance",
            ),
            ascii_cdf(
                [float(d) for d in to_drop],
                label="Days from IRR record creation to DROP listing",
            ),
        ]
    )
    within_week = sum(1 for d in to_bgp if d <= 7)
    metrics = (
        Metric("forged records", 57, len(result.timings)),
        Metric("announced within 7 days of record", 55, within_week),
        Metric("records created >1yr after BGP", 2, result.late_records),
    )
    return ExperimentReport(
        "fig3", "IRR record creation vs BGP/DROP appearance", metrics, body
    )


@_experiment("fig4")
def _fig4(
    world: World,
    entries: list[DropEntryView],
    substrate: "AnalysisSubstrate | None" = None,
) -> ExperimentReport:
    result = analyze_rpki_effectiveness(world, entries)
    lines = []
    for hijack in result.rpki_valid_hijacks:
        lines.append(
            f"RPKI-valid hijack of {hijack.prefix}: owner AS{hijack.owner_asn},"
            f" unrouted from {hijack.unrouted_from},"
            f" hijacked {hijack.hijack_start} via AS{hijack.hijack_transit}"
        )
        for sibling in hijack.siblings:
            on_drop = (
                " [on DROP]" if sibling in hijack.siblings_on_drop else ""
            )
            lines.append(f"  sibling {sibling}{on_drop}")
    valid = result.rpki_valid_hijacks
    metrics = (
        Metric("hijacked prefixes signed before listing", 3,
               result.presigned_count),
        Metric("attacker-controlled ROAs (follows origin)", 2,
               result.roa_follows_origin_count),
        Metric("RPKI-valid hijacks", 1, len(valid)),
        Metric("sibling prefixes", 6,
               len(valid[0].siblings) if valid else 0),
        Metric("siblings added to DROP", 3,
               len(valid[0].siblings_on_drop) if valid else 0),
    )
    return ExperimentReport(
        "fig4", "The RPKI-valid hijack case study", metrics,
        "\n".join(lines),
    )


@_experiment("fig5")
def _fig5(
    world: World,
    entries: list[DropEntryView],
    substrate: "AnalysisSubstrate | None" = None,
) -> ExperimentReport:
    result = (
        substrate.roa_status()
        if substrate is not None
        else analyze_roa_status(world)
    )
    body = ascii_series(
        [(p.day, p.signed) for p in result.points],
        label="ROA-covered allocated space (/8 equivalents)",
    )
    metrics = (
        Metric("signed space at start", 49.1,
               round(result.first.signed, 1), " /8s"),
        Metric("signed space at end", 70.4,
               round(result.final.signed, 1), " /8s"),
        Metric("unrouted signed at start", 1.6,
               round(result.first.signed_unrouted, 1), " /8s"),
        Metric("unrouted signed at end", 6.7,
               round(result.final.signed_unrouted, 1), " /8s"),
        Metric("unrouted unsigned at start", 29.2,
               round(result.first.allocated_unrouted_unsigned, 1), " /8s"),
        Metric("unrouted unsigned at end", 30.0,
               round(result.final.allocated_unrouted_unsigned, 1), " /8s"),
        Metric("percent of ROAs routed, start", 97.1,
               round(result.first.percent_routed, 1), "%"),
        Metric("percent of ROAs routed, end", 90.5,
               round(result.final.percent_routed, 1), "%"),
        Metric("top-3 holders of unrouted signed", 0.701,
               round(result.top_holder_share(3), 3)),
        Metric("ARIN share of unrouted unsigned", 0.608,
               round(result.rir_unsigned_share("ARIN"), 3)),
    )
    return ExperimentReport(
        "fig5", "Routing status of ROAs", metrics, body
    )


@_experiment("fig6")
def _fig6(
    world: World,
    entries: list[DropEntryView],
    substrate: "AnalysisSubstrate | None" = None,
) -> ExperimentReport:
    result = analyze_unallocated(world, entries)
    events = [
        (l.listed, f"{l.prefix} ({l.region})") for l in result.listings
    ]
    markers = [
        (e.implemented, f"{e.rir} AS0 policy implemented")
        for e in result.policy_events
        if e.implemented is not None
    ]
    metrics = (
        Metric("unallocated prefixes on DROP", 40, result.total),
        Metric("LACNIC cluster", 19, result.count_for("LACNIC")),
        Metric("AFRINIC cluster", 12, result.count_for("AFRINIC")),
        Metric("listings after a live AS0 policy", ">0",
               result.after_policy_count),
    )
    return ExperimentReport(
        "fig6", "Unallocated space appearing on DROP vs AS0 policy",
        metrics, ascii_timeline(events, markers=markers),
    )


@_experiment("fig7")
def _fig7(
    world: World,
    entries: list[DropEntryView],
    substrate: "AnalysisSubstrate | None" = None,
) -> ExperimentReport:
    result = analyze_unallocated(world, entries)
    bodies = []
    metrics = []
    for rir in ALL_RIRS:
        series = result.free_pools[rir]
        profile = world.config.regions[rir]
        bodies.append(
            ascii_series(
                [(d, v / 1e6) for d, v in series],
                label=f"{display_name(rir)} free pool (millions of addrs)",
                height=6,
            )
        )
        metrics.append(
            Metric(
                f"{rir} pool at end",
                round(profile.free_pool_end / 1e6, 1),
                round(series[-1][1] / 1e6, 1),
                "M",
            )
        )
    return ExperimentReport(
        "fig7", "Unallocated address space per RIR over time",
        tuple(metrics), "\n\n".join(bodies),
    )


@_experiment("tab2")
def _tab2(
    world: World,
    entries: list[DropEntryView],
    substrate: "AnalysisSubstrate | None" = None,
) -> ExperimentReport:
    result = classify_drop(world, entries)
    metrics = (
        Metric("records with one keyword", 0.90,
               round(result.keyword_stats["one"], 3)),
        Metric("records with two keywords", 0.027,
               round(result.keyword_stats["two_or_more"], 3)),
        Metric("records with no keyword", 0.073,
               round(result.keyword_stats["none"], 3)),
    )
    return ExperimentReport(
        "tab2", "Appendix A keyword classification", metrics
    )


@_experiment("sec4.1-dealloc")
def _dealloc(
    world: World,
    entries: list[DropEntryView],
    substrate: "AnalysisSubstrate | None" = None,
) -> ExperimentReport:
    result = analyze_deallocation(world, entries)
    metrics = (
        Metric("MH prefixes deallocated", 0.174,
               round(result.category_rate(Category.MALICIOUS_HOSTING), 3)),
        Metric("removed prefixes deallocated", 0.088,
               round(result.removed_deallocation_rate, 3)),
        Metric("of those, removed within a week", 0.5,
               round(result.within_week_share, 3)),
    )
    return ExperimentReport(
        "sec4.1-dealloc", "RIR deallocation after listing", metrics
    )


@_experiment("sec5")
def _sec5(
    world: World,
    entries: list[DropEntryView],
    substrate: "AnalysisSubstrate | None" = None,
) -> ExperimentReport:
    result = analyze_irr(world, entries)
    org_table = TextTable(["ORG-ID", "route objects"])
    for org, count in sorted(
        result.org_id_counts.items(), key=lambda kv: -kv[1]
    )[:6]:
        org_table.add_row(org, count)
    metrics = (
        Metric("prefixes with route object", 226, result.with_route_object),
        Metric("object rate", 0.317, round(result.object_rate, 3)),
        Metric("space covered", 0.688, round(result.space_share, 3)),
        Metric("created month before listing", 0.32,
               round(result.created_recently_rate, 3)),
        Metric("removed month after listing", 0.43,
               round(result.removed_after_rate, 3)),
        Metric("labeled hijacks", 130, result.asn_labeled_hijacks),
        Metric("hijacker-ASN route objects", 57,
               result.hijacker_asn_matches),
        Metric("distinct hijacking ASNs", 13,
               result.distinct_hijacker_asns),
        Metric("objects under top-3 ORG-IDs", 49,
               result.top_org_cluster_size),
        Metric("prefixes with pre-existing entries", 5,
               result.preexisting_entries),
        Metric("unallocated prefixes in IRR", 1,
               len(result.unallocated_in_irr)),
    )
    return ExperimentReport(
        "sec5", "Effectiveness of the IRR", metrics, org_table.render()
    )


@_experiment("sec6.2-as0")
def _sec62(
    world: World,
    entries: list[DropEntryView],
    substrate: "AnalysisSubstrate | None" = None,
) -> ExperimentReport:
    result = detect_as0_filtering(world)
    metrics = (
        Metric("prefixes the AS0 TALs would filter", 30,
               len(result.filterable_prefixes)),
        Metric("mean carried per full-table peer", 30,
               round(result.mean_carried, 1)),
        Metric("peers filtering with AS0 TALs", 0,
               len(result.peers_filtering)),
    )
    return ExperimentReport(
        "sec6.2-as0", "AS0 trust anchors: unused for filtering", metrics
    )


# ---------------------------------------------------------------------------
# extension experiments (the paper's §6–§7 implications, quantified)
# ---------------------------------------------------------------------------


@_experiment("ext-rov")
def _ext_rov(
    world: World,
    entries: list[DropEntryView],
    substrate: "AnalysisSubstrate | None" = None,
) -> ExperimentReport:
    from ..analysis.counterfactuals import rov_counterfactual
    from ..rpki.validation import RouteValidity

    result = rov_counterfactual(world, entries)
    table = TextTable(["outcome", "as deployed", "if all signed"])
    for validity in RouteValidity:
        table.add_row(
            str(validity),
            result.as_deployed.get(validity, 0),
            result.if_all_signed.get(validity, 0),
        )
    metrics = (
        Metric("DROP announcements ROV drops today", "~0",
               round(result.stopped_as_deployed, 3)),
        Metric("dropped under universal signing", ">0.9",
               round(result.stopped_if_all_signed, 3)),
        Metric("forged-origin escapes (need path validation)", ">0",
               result.forged_origin_escapes),
    )
    return ExperimentReport(
        "ext-rov", "Counterfactual: would ROV have stopped the DROP "
        "announcements?", metrics, table.render(),
    )


@_experiment("ext-as0")
def _ext_as0(
    world: World,
    entries: list[DropEntryView],
    substrate: "AnalysisSubstrate | None" = None,
) -> ExperimentReport:
    from ..analysis.counterfactuals import as0_counterfactual

    result = as0_counterfactual(world, entries, substrate=substrate)
    ladder = ", ".join(f"top-{i+1}: {x:.0%}"
                       for i, x in enumerate(result.operator_ladder[:3]))
    metrics = (
        Metric("unallocated listings", 40, result.unallocated_listings),
        Metric("covered by published RIR AS0 ROAs", "some",
               result.covered_as_published),
        Metric("blocked if AS0 TALs trusted", "<1.0",
               round(result.tals_trusted_share, 3)),
        Metric("blocked under universal RIR AS0", 1.0,
               round(result.universal_share, 3)),
        Metric("top-3 operator AS0 covers (of unrouted signed)", 0.701,
               round(result.operator_ladder[2], 3)
               if len(result.operator_ladder) >= 3 else 0.0),
    )
    return ExperimentReport(
        "ext-as0", "Counterfactual: the AS0 deployment ladder", metrics,
        f"operator ladder: {ladder}",
    )


@_experiment("ext-maxlen")
def _ext_maxlen(
    world: World,
    entries: list[DropEntryView],
    substrate: "AnalysisSubstrate | None" = None,
) -> ExperimentReport:
    from ..analysis.maxlength import audit_maxlength

    result = audit_maxlength(world)
    examples = "\n".join(
        f"  {v.roa} -> hijackable more-specific {v.example_target}"
        for v in result.vulnerable[:5]
    )
    metrics = (
        Metric("ROAs using maxLength", "some", result.using_maxlength),
        Metric("of those, forged-origin vulnerable (Gilad et al.: 0.84)",
               0.84, round(result.vulnerable_rate, 2)),
    )
    return ExperimentReport(
        "ext-maxlen", "maxLength audit (forged-origin sub-prefix hijacks)",
        metrics, examples,
    )


@_experiment("ext-alarms")
def _ext_alarms(
    world: World,
    entries: list[DropEntryView],
    substrate: "AnalysisSubstrate | None" = None,
) -> ExperimentReport:
    from ..analysis.alarm_eval import evaluate_alarms

    result = evaluate_alarms(world, entries)
    table = TextTable(["prefix", "listed", "first alarm", "lead (days)"])
    for item in result.monitored:
        table.add_row(
            str(item.prefix),
            item.listed.isoformat(),
            item.first_alarm.isoformat() if item.first_alarm else "-",
            item.lead_days if item.lead_days is not None else "-",
        )
    metrics = (
        Metric("hijacked prefixes with baselinable history", "few",
               result.enrollable),
        Metric("enrollable share", "<0.1",
               round(result.enrollable_share, 3)),
        Metric("of those, detected before listing", "all",
               result.detected),
        Metric("median detection lead over DROP (days)", ">100",
               result.median_lead_days or 0),
    )
    return ExperimentReport(
        "ext-alarms",
        "Counterfactual: PHAS/ARTEMIS-style monitoring vs the blocklist",
        metrics, table.render(),
    )


@_experiment("ext-serial")
def _ext_serial(
    world: World,
    entries: list[DropEntryView],
    substrate: "AnalysisSubstrate | None" = None,
) -> ExperimentReport:
    from ..analysis.serial_hijackers import profile_origins

    result = profile_origins(world, entries)
    table = TextTable(
        ["origin", "prefixes", "on DROP", "short-lived", "score"]
    )
    for candidate in result.candidates[:10]:
        table.add_row(
            f"AS{candidate.asn}",
            candidate.prefixes,
            candidate.listed_on_drop,
            candidate.short_lived,
            candidate.score,
        )
    flagged_prefixes = sum(c.listed_on_drop for c in result.candidates)
    metrics = (
        Metric("origin ASes profiled", ">1000", len(result.profiles)),
        Metric("serial-hijacker candidates", "~tens",
               len(result.candidates)),
        Metric("DROP prefixes attributed to candidates", ">50",
               flagged_prefixes),
    )
    return ExperimentReport(
        "ext-serial",
        "Profiling serial hijackers (after Testart et al.)",
        metrics, table.render(),
    )


@_experiment("ext-survival")
def _ext_survival(
    world: World,
    entries: list[DropEntryView],
    substrate: "AnalysisSubstrate | None" = None,
) -> ExperimentReport:
    from ..analysis.survival import analyze_survival

    result = analyze_survival(world, entries)
    table = TextTable(["cohort", "subjects", "S(7d)", "S(30d)", "median"])
    cohorts = [("overall", result.overall)]
    cohorts += [
        (category.value, curve)
        for category, curve in sorted(
            result.by_category.items(), key=lambda kv: kv[0].value
        )
    ]
    for label, curve in cohorts:
        median = curve.median_lifetime()
        table.add_row(
            label,
            curve.subjects,
            curve.at(7),
            curve.at(30),
            median if median is not None else "-",
        )
    hijacked = result.by_category.get(Category.HIJACKED)
    hosting = result.by_category.get(Category.MALICIOUS_HOSTING)
    metrics = (
        Metric("overall death by 30d (Fig 2: 19%)", 0.19,
               round(1 - result.overall.at(30), 3)),
        Metric("hijacked death by 30d (Fig 2: 70.7%)", 0.707,
               round(1 - hijacked.at(30), 3) if hijacked else 0.0),
        Metric(
            "hosting median lifetime",
            "none (censored)",
            (
                "none (censored)"
                if hosting and hosting.median_lifetime() is None
                else str(hosting.median_lifetime() if hosting else "-")
            ),
        ),
    )
    return ExperimentReport(
        "ext-survival",
        "Kaplan-Meier survival of routes after listing",
        metrics, table.render(),
    )
