"""Binary codec + lazy mmap view for the :class:`QueryIndex`.

The JSON index deserializes every entry up front: at paper scale that is
seconds of parsing and hundreds of MB of per-process heap.  The binary
codec flattens each trie into **sorted columnar arrays** — one ``u64``
key per prefix (``network << 8 | length``), bucket offsets, and one flat
column per entry field — and the loader hands back a
:class:`StoreIndexView` that answers every query straight off the
``mmap``:

* exact :meth:`~LazyPrefixTable.get` is one :func:`bisect.bisect_left`
  over the key column (which works directly on the typed memoryview);
* :meth:`~LazyPrefixTable.lookup_covering` is at most 33 exact probes,
  least-specific first — the same order the radix trie returns, because
  sorted ``(network, length)`` order *is* the trie's pre-order walk;
* :meth:`~LazyPrefixTable.lookup_covered` is one contiguous key-range
  scan filtered by length;
* buckets materialize into the real entry dataclasses only on first
  touch and are memoized, so the engine's answers are byte-identical to
  the built/JSON index (pinned by golden tests) while an idle table
  costs no anonymous memory at all.

Dates are stored as ``date.toordinal()`` (u32, 0 = None); strings are
interned into one pool (ref 0 = None); observer sets live as offset +
flat peer-id columns and materialize to ``frozenset`` per ref on first
use.  The file carries the same header pins as ``query-index.json``
(index format, generator version, world key) and the same eviction
discipline via the ``store.load``/``store.save`` fault sites.
"""

from __future__ import annotations

import warnings
from array import array
from bisect import bisect_left
from datetime import date
from pathlib import Path

from ..net.prefix import IPV4_BITS, IPv4Prefix
from ..net.timeline import DateWindow
from ..obs import Instrumentation
from ..query.index import (
    INDEX_FORMAT,
    DropEntry,
    IndexLoadError,
    IrrEntry,
    QueryIndex,
    RoaEntry,
    RouteEntry,
)
from ..runtime.faults import corrupt_file, fault_point
from ..synth.builder import GENERATOR_VERSION
from .container import StoreError, StoreReader, build_store, durable_write

__all__ = [
    "STORE_INDEX_FILENAME",
    "LazyObserverSets",
    "LazyPrefixTable",
    "StoreIndexView",
    "encode_index",
    "load_store_index",
    "save_store_index",
]

#: The binary index file's name inside a world cache entry (or archive
#: dir), next to its JSON sibling.
STORE_INDEX_FILENAME = "query-index.bin"

_KIND = "query-index"

#: ``max_length`` has no value on most ROAs; 255 is the None sentinel in
#: the u8 column (real values are <= 32).
_NO_MAXLEN = 255


def _to_day(day: date | None) -> int:
    return 0 if day is None else day.toordinal()


def _from_day(ordinal: int) -> date | None:
    return None if ordinal == 0 else date.fromordinal(ordinal)


def _prefix_key(prefix: IPv4Prefix) -> int:
    return (prefix.network << 8) | prefix.length


def _mask(network: int, length: int) -> int:
    if length == 0:
        return 0
    return network & ((0xFFFFFFFF << (IPV4_BITS - length)) & 0xFFFFFFFF)


class _PoolWriter:
    """Interns strings into one offsets+bytes pool; ref 0 is None."""

    def __init__(self) -> None:
        self._refs: dict[str, int] = {}
        self.offsets = array("I", [0])
        self.data = bytearray()

    def ref(self, text: str | None) -> int:
        if text is None:
            return 0
        ref = self._refs.get(text)
        if ref is None:
            self.data.extend(text.encode("utf-8"))
            self.offsets.append(len(self.data))
            ref = self._refs[text] = len(self.offsets) - 1
        return ref


class _PoolView:
    """The read side of a string pool; decoded strings are memoized."""

    __slots__ = ("_offsets", "_data", "_cache")

    def __init__(self, offsets, data) -> None:
        self._offsets = offsets
        self._data = data
        self._cache: dict[int, str] = {}

    def get(self, ref: int) -> str | None:
        if ref == 0:
            return None
        text = self._cache.get(ref)
        if text is None:
            lo, hi = self._offsets[ref - 1], self._offsets[ref]
            text = self._cache[ref] = bytes(self._data[lo:hi]).decode("utf-8")
        return text


class LazyObserverSets:
    """``QueryIndex.observer_sets`` semantics over offset + id columns.

    Indexable and sized like the list of ``frozenset`` it replaces; each
    ref materializes on first subscript and is memoized, so only the
    observer sets a workload actually touches ever cost heap.
    """

    __slots__ = ("_offsets", "_values", "_cache")

    def __init__(self, offsets, values) -> None:
        self._offsets = offsets
        self._values = values
        self._cache: dict[int, frozenset[int]] = {}

    def __len__(self) -> int:
        return len(self._offsets) - 1

    def __getitem__(self, ref: int) -> frozenset[int]:
        if ref < 0:
            ref += len(self)
        members = self._cache.get(ref)
        if members is None:
            if not 0 <= ref < len(self):
                raise IndexError(f"observer set ref {ref} out of range")
            lo, hi = self._offsets[ref], self._offsets[ref + 1]
            members = self._cache[ref] = frozenset(self._values[lo:hi])
        return members

    def __iter__(self):
        for ref in range(len(self)):
            yield self[ref]


class LazyPrefixTable:
    """A read-only :class:`~repro.net.radix.PrefixTrie` over sorted columns.

    Needs only the key column (sorted u64 ``network<<8|length``), the
    bucket-offset column, and a ``decode(lo, hi)`` callable that
    materializes the entries of one bucket; decoded buckets are memoized
    by position so repeated hits return the identical list objects, as
    the in-memory trie does.
    """

    __slots__ = ("_keys", "_offsets", "_decode", "_buckets")

    def __init__(self, keys, offsets, decode) -> None:
        self._keys = keys
        self._offsets = offsets
        self._decode = decode
        self._buckets: dict[int, list] = {}

    # -- size / iteration ---------------------------------------------------

    def __len__(self) -> int:
        return len(self._keys)

    def __bool__(self) -> bool:
        return len(self._keys) > 0

    def __iter__(self):
        for key in self._keys:
            yield IPv4Prefix(key >> 8, key & 0xFF)

    def items(self):
        """All entries in address order (the trie's pre-order walk)."""
        for pos in range(len(self._keys)):
            key = self._keys[pos]
            yield IPv4Prefix(key >> 8, key & 0xFF), self._bucket(pos)

    # -- internals ----------------------------------------------------------

    def _bucket(self, pos: int) -> list:
        bucket = self._buckets.get(pos)
        if bucket is None:
            bucket = self._buckets[pos] = self._decode(
                self._offsets[pos], self._offsets[pos + 1]
            )
        return bucket

    def _position(self, prefix: IPv4Prefix) -> int:
        key = _prefix_key(prefix)
        pos = bisect_left(self._keys, key)
        if pos < len(self._keys) and self._keys[pos] == key:
            return pos
        return -1

    # -- exact lookup -------------------------------------------------------

    def get(self, prefix: IPv4Prefix, default=None):
        pos = self._position(prefix)
        return default if pos < 0 else self._bucket(pos)

    def __contains__(self, prefix: IPv4Prefix) -> bool:
        return self._position(prefix) >= 0

    def __getitem__(self, prefix: IPv4Prefix):
        pos = self._position(prefix)
        if pos < 0:
            raise KeyError(prefix)
        return self._bucket(pos)

    # -- covering / covered queries -----------------------------------------

    def lookup_covering(self, prefix: IPv4Prefix) -> list:
        """All entries covering ``prefix``, least-specific first."""
        found = []
        keys = self._keys
        size = len(keys)
        for length in range(prefix.length + 1):
            masked = _mask(prefix.network, length)
            key = (masked << 8) | length
            pos = bisect_left(keys, key)
            if pos < size and keys[pos] == key:
                found.append((IPv4Prefix(masked, length), self._bucket(pos)))
        return found

    def lookup_best(self, prefix: IPv4Prefix):
        covering = self.lookup_covering(prefix)
        return covering[-1] if covering else None

    def lookup_covered(self, prefix: IPv4Prefix) -> list:
        """All entries equal to or more specific than ``prefix``."""
        keys = self._keys
        lo = bisect_left(keys, prefix.first << 8)
        hi = bisect_left(keys, (prefix.last + 1) << 8)
        found = []
        for pos in range(lo, hi):
            key = keys[pos]
            if (key & 0xFF) >= prefix.length:
                found.append(
                    (IPv4Prefix(key >> 8, key & 0xFF), self._bucket(pos))
                )
        return found

    def covers_address(self, address: int) -> bool:
        return self.lookup_best(IPv4Prefix(address, IPV4_BITS)) is not None


class StoreIndexView:
    """A :class:`QueryIndex` look-alike served lazily from one mmap.

    Exposes the exact surface the engine, daemon, and substrate use —
    ``window`` / ``total_peers`` / ``key`` / ``generator``, the four
    tables, ``observer_sets``, ``sizes()`` — with identical answers
    (golden-tested) and near-zero anonymous memory until touched.
    """

    __slots__ = (
        "window",
        "total_peers",
        "key",
        "generator",
        "drop",
        "irr",
        "roa",
        "routes",
        "observer_sets",
        "_reader",
    )

    def __init__(self, reader: StoreReader) -> None:
        meta = reader.meta
        self._reader = reader
        self.window = DateWindow(
            date.fromisoformat(meta["window"][0]),
            date.fromisoformat(meta["window"][1]),
        )
        self.total_peers = meta["total_peers"]
        self.key = meta["key"]
        self.generator = meta["generator"]
        self.observer_sets = LazyObserverSets(
            reader.view("obs.off", "I"), reader.view("obs.val", "I")
        )
        strings = _PoolView(
            reader.view("str.off", "I"), reader.view("str.dat", "B")
        )

        added = reader.view("drop.added", "I")
        removed = reader.view("drop.removed", "I")
        sbl = reader.view("drop.sbl", "I")

        def decode_drop(lo: int, hi: int) -> list[DropEntry]:
            return [
                DropEntry(
                    _from_day(added[i]),  # type: ignore[arg-type]
                    _from_day(removed[i]),
                    strings.get(sbl[i]),
                )
                for i in range(lo, hi)
            ]

        origin = reader.view("irr.origin", "I")
        created = reader.view("irr.created", "I")
        deleted = reader.view("irr.deleted", "I")

        def decode_irr(lo: int, hi: int) -> list[IrrEntry]:
            return [
                IrrEntry(
                    origin[i],
                    _from_day(created[i]),  # type: ignore[arg-type]
                    _from_day(deleted[i]),
                )
                for i in range(lo, hi)
            ]

        roa_asn = reader.view("roa.asn", "I")
        roa_maxlen = reader.view("roa.maxlen", "B")
        roa_ta = reader.view("roa.ta", "I")
        roa_created = reader.view("roa.created", "I")
        roa_removed = reader.view("roa.removed", "I")

        def decode_roa(lo: int, hi: int) -> list[RoaEntry]:
            return [
                RoaEntry(
                    roa_asn[i],
                    None if roa_maxlen[i] == _NO_MAXLEN else roa_maxlen[i],
                    strings.get(roa_ta[i]),  # type: ignore[arg-type]
                    _from_day(roa_created[i]),  # type: ignore[arg-type]
                    _from_day(roa_removed[i]),
                )
                for i in range(lo, hi)
            ]

        rt_origin = reader.view("rt.origin", "I")
        rt_start = reader.view("rt.start", "I")
        rt_end = reader.view("rt.end", "I")
        rt_obs = reader.view("rt.obs", "I")
        rt_poff = reader.view("rt.poff", "I")
        rt_peer = reader.view("rt.peer", "I")
        rt_pstart = reader.view("rt.pstart", "I")
        rt_pend = reader.view("rt.pend", "I")

        def decode_routes(lo: int, hi: int) -> list[RouteEntry]:
            return [
                RouteEntry(
                    origin=rt_origin[i],
                    start=_from_day(rt_start[i]),  # type: ignore[arg-type]
                    end=_from_day(rt_end[i]),
                    observers_ref=rt_obs[i],
                    partials=tuple(
                        (
                            rt_peer[j],
                            _from_day(rt_pstart[j]),
                            _from_day(rt_pend[j]),
                        )
                        for j in range(rt_poff[i], rt_poff[i + 1])
                    ),
                )
                for i in range(lo, hi)
            ]

        self.drop = LazyPrefixTable(
            reader.view("drop.key", "Q"), reader.view("drop.off", "I"),
            decode_drop,
        )
        self.irr = LazyPrefixTable(
            reader.view("irr.key", "Q"), reader.view("irr.off", "I"),
            decode_irr,
        )
        self.roa = LazyPrefixTable(
            reader.view("roa.key", "Q"), reader.view("roa.off", "I"),
            decode_roa,
        )
        self.routes = LazyPrefixTable(
            reader.view("rt.key", "Q"), reader.view("rt.off", "I"),
            decode_routes,
        )

    def sizes(self) -> dict[str, int]:
        """Per-table entry counts — same shape as :meth:`QueryIndex.sizes`."""
        return {
            "drop_prefixes": len(self.drop),
            "irr_prefixes": len(self.irr),
            "roa_prefixes": len(self.roa),
            "route_prefixes": len(self.routes),
            "observer_sets": len(self.observer_sets),
        }


# ---------------------------------------------------------------------------
# encoding
# ---------------------------------------------------------------------------


def _sorted_items(trie) -> list:
    return sorted(trie.items(), key=lambda item: _prefix_key(item[0]))


def encode_index(index: QueryIndex) -> bytes:
    """Flatten a built index into one container blob."""
    strings = _PoolWriter()

    obs_off = array("I", [0])
    obs_val = array("I")
    for members in index.observer_sets:
        obs_val.extend(sorted(members))
        obs_off.append(len(obs_val))

    drop_key = array("Q")
    drop_off = array("I", [0])
    drop_added = array("I")
    drop_removed = array("I")
    drop_sbl = array("I")
    for prefix, bucket in _sorted_items(index.drop):
        drop_key.append(_prefix_key(prefix))
        for entry in bucket:
            drop_added.append(_to_day(entry.added))
            drop_removed.append(_to_day(entry.removed))
            drop_sbl.append(strings.ref(entry.sbl_id))
        drop_off.append(len(drop_added))

    irr_key = array("Q")
    irr_off = array("I", [0])
    irr_origin = array("I")
    irr_created = array("I")
    irr_deleted = array("I")
    for prefix, bucket in _sorted_items(index.irr):
        irr_key.append(_prefix_key(prefix))
        for entry in bucket:
            irr_origin.append(entry.origin)
            irr_created.append(_to_day(entry.created))
            irr_deleted.append(_to_day(entry.deleted))
        irr_off.append(len(irr_origin))

    roa_key = array("Q")
    roa_off = array("I", [0])
    roa_asn = array("I")
    roa_maxlen = array("B")
    roa_ta = array("I")
    roa_created = array("I")
    roa_removed = array("I")
    for prefix, bucket in _sorted_items(index.roa):
        roa_key.append(_prefix_key(prefix))
        for entry in bucket:
            roa_asn.append(entry.asn)
            roa_maxlen.append(
                _NO_MAXLEN if entry.max_length is None else entry.max_length
            )
            roa_ta.append(strings.ref(entry.trust_anchor))
            roa_created.append(_to_day(entry.created))
            roa_removed.append(_to_day(entry.removed))
        roa_off.append(len(roa_asn))

    rt_key = array("Q")
    rt_off = array("I", [0])
    rt_origin = array("I")
    rt_start = array("I")
    rt_end = array("I")
    rt_obs = array("I")
    rt_poff = array("I", [0])
    rt_peer = array("I")
    rt_pstart = array("I")
    rt_pend = array("I")
    for prefix, bucket in _sorted_items(index.routes):
        rt_key.append(_prefix_key(prefix))
        for entry in bucket:
            rt_origin.append(entry.origin)
            rt_start.append(_to_day(entry.start))
            rt_end.append(_to_day(entry.end))
            rt_obs.append(entry.observers_ref)
            for peer_id, pstart, pend in entry.partials:
                rt_peer.append(peer_id)
                rt_pstart.append(_to_day(pstart))
                rt_pend.append(_to_day(pend))
            rt_poff.append(len(rt_peer))
        rt_off.append(len(rt_origin))

    meta = {
        "kind": _KIND,
        "index_format": INDEX_FORMAT,
        "generator": index.generator,
        "key": index.key,
        "window": [
            index.window.start.isoformat(),
            index.window.end.isoformat(),
        ],
        "total_peers": index.total_peers,
    }
    return build_store(
        meta,
        [
            ("obs.off", "I", obs_off),
            ("obs.val", "I", obs_val),
            ("str.off", "I", strings.offsets),
            ("str.dat", "B", bytes(strings.data)),
            ("drop.key", "Q", drop_key),
            ("drop.off", "I", drop_off),
            ("drop.added", "I", drop_added),
            ("drop.removed", "I", drop_removed),
            ("drop.sbl", "I", drop_sbl),
            ("irr.key", "Q", irr_key),
            ("irr.off", "I", irr_off),
            ("irr.origin", "I", irr_origin),
            ("irr.created", "I", irr_created),
            ("irr.deleted", "I", irr_deleted),
            ("roa.key", "Q", roa_key),
            ("roa.off", "I", roa_off),
            ("roa.asn", "I", roa_asn),
            ("roa.maxlen", "B", roa_maxlen),
            ("roa.ta", "I", roa_ta),
            ("roa.created", "I", roa_created),
            ("roa.removed", "I", roa_removed),
            ("rt.key", "Q", rt_key),
            ("rt.off", "I", rt_off),
            ("rt.origin", "I", rt_origin),
            ("rt.start", "I", rt_start),
            ("rt.end", "I", rt_end),
            ("rt.obs", "I", rt_obs),
            ("rt.poff", "I", rt_poff),
            ("rt.peer", "I", rt_peer),
            ("rt.pstart", "I", rt_pstart),
            ("rt.pend", "I", rt_pend),
        ],
    )


# ---------------------------------------------------------------------------
# persistence
# ---------------------------------------------------------------------------


def save_store_index(
    index: QueryIndex,
    directory: Path,
    *,
    instrumentation: Instrumentation | None = None,
) -> Path | None:
    """Persist the binary index next to its JSON sibling.

    Follows the JSON artifacts' degradation contract: any failure
    (read-only dir, disk full, injected fault at ``store.save``) leaves
    an unpersisted store with a counter and a warning — never an error.
    """
    instr = instrumentation or Instrumentation()
    try:
        with instr.stage("store-index-save", group="store"):
            fault_point("store.save", instrumentation=instr)
            durable_write(directory, STORE_INDEX_FILENAME, encode_index(index))
    except (OSError, StoreError) as error:
        instr.incr("store_save_errors")
        message = f"binary index store failed ({error}); JSON path remains"
        instr.warn(message)
        warnings.warn(message, RuntimeWarning, stacklevel=2)
        return None
    instr.incr("store_saves")
    return directory / STORE_INDEX_FILENAME


def load_store_index(
    directory: Path,
    *,
    expected_key: str,
    instrumentation: Instrumentation | None = None,
) -> StoreIndexView:
    """Map and verify the binary index, returning the lazy view.

    Raises :class:`IndexLoadError` / :class:`StoreError` (or the
    underlying ``OSError``) for anything untrustworthy — torn file, bad
    checksum, foreign generator or key — and callers evict the ``.bin``
    and fall back to JSON or a rebuild.
    """
    instr = instrumentation or Instrumentation()
    path = directory / STORE_INDEX_FILENAME
    with instr.stage("store-index-load", group="store"):
        # A truncate fault here models a torn binary file that became
        # visible anyway (crash between write and fsync).
        corrupt_file("store.load", path, instrumentation=instr)
        fault_point("store.load", instrumentation=instr)
        reader = StoreReader.open(path)
        meta = reader.meta
        if meta.get("kind") != _KIND:
            raise IndexLoadError(f"store kind {meta.get('kind')!r} != {_KIND!r}")
        if meta.get("index_format") != INDEX_FORMAT:
            raise IndexLoadError(
                f"store index format {meta.get('index_format')!r} != "
                f"{INDEX_FORMAT}"
            )
        if meta.get("generator") != GENERATOR_VERSION:
            raise IndexLoadError(
                f"store generator {meta.get('generator')!r} != "
                f"{GENERATOR_VERSION!r}"
            )
        if expected_key and meta.get("key") != expected_key:
            raise IndexLoadError(
                f"store key {meta.get('key')!r} != {expected_key!r}"
            )
        view = StoreIndexView(reader)
    instr.incr("store_loads")
    return view
