#!/usr/bin/env python3
"""Policy what-ifs: quantifying the paper's §6–§7 recommendations.

The paper closes by arguing that (1) ROV alone cannot stop the observed
abuse, (2) operators should AS0-sign unrouted space, and (3) RIR AS0
policies are toothless while their TALs go unused.  This example runs the
counterfactual analyses that put numbers on each claim, plus the
maxLength audit the paper cites from Gilad et al.

Run:  python examples/policy_whatif.py
"""

from repro.analysis import (
    as0_counterfactual,
    audit_maxlength,
    load_entries,
    rov_counterfactual,
)
from repro.rpki.validation import RouteValidity
from repro.synth import ScenarioConfig, build_world


def main() -> None:
    world = build_world(ScenarioConfig.tiny())
    entries = load_entries(world)

    print("=== 1. Would route origin validation have helped? ===")
    rov = rov_counterfactual(world, entries)
    deployed = rov.as_deployed
    print(f"  {rov.evaluated} DROP announcements replayed through RFC 6811")
    print(
        f"  as deployed:        "
        f"{deployed[RouteValidity.NOT_FOUND]} not-found, "
        f"{deployed[RouteValidity.VALID]} valid, "
        f"{deployed[RouteValidity.INVALID]} invalid"
    )
    print(
        f"  -> ROV drops {rov.stopped_as_deployed:.1%} today: attackers "
        "deliberately use unsigned space"
    )
    print(
        f"  if every victim had signed: {rov.stopped_if_all_signed:.1%} "
        f"dropped, but {rov.forged_origin_escapes} forged-origin "
        "announcements stay VALID"
    )
    print("  -> the residue needs path validation (BGPsec/ASPA)\n")

    print("=== 2. The AS0 deployment ladder ===")
    as0 = as0_counterfactual(world, entries)
    print(
        f"  {as0.unallocated_listings} unallocated prefixes were hijacked "
        "and listed"
    )
    print(
        f"  published RIR AS0 ROAs covered {as0.covered_as_published}; "
        f"trusting the AS0 TALs would have dropped "
        f"{as0.tals_trusted_share:.0%}"
    )
    print(
        f"  universal RIR AS0 (all five, whole window): "
        f"{as0.universal_share:.0%} dropped"
    )
    ladder = ", ".join(
        f"top-{i + 1}={x:.0%}" for i, x in enumerate(as0.operator_ladder[:3])
    )
    print(
        "  operator side: share of signed-but-unrouted space fixed as "
        f"holders adopt AS0: {ladder}\n"
    )

    print("=== 3. maxLength audit (forged-origin sub-prefix hijacks) ===")
    audit = audit_maxlength(world)
    print(
        f"  {audit.using_maxlength} ROAs use maxLength "
        f"({audit.usage_rate:.1%} of {audit.total_roas})"
    )
    print(
        f"  {audit.vulnerable_rate:.0%} of them authorize more-specifics "
        "their holder never announces (Gilad et al. 2017: 84%)"
    )
    for item in audit.vulnerable[:3]:
        print(f"    e.g. {item.roa} -> attacker target {item.example_target}")


if __name__ == "__main__":
    main()
