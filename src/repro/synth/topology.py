"""AS-level topology for realistic announcement paths.

The analyses the paper runs over AS paths only need origins and the
occasional transit fingerprint, but a reproduction that emits flat
two-hop paths everywhere looks nothing like a RouteViews table.  This
module grows a small provider hierarchy — a clique of tier-1 transit
networks, a layer of regional providers multihomed to the tier-1s, and
edge networks attached to the regionals — and derives *valley-free*
paths from any edge network up through its providers to the core, which
is where the collectors' full-table peers sit.

The graph lives in ``networkx`` (with customer→provider edges) so that
downstream users can run their own graph analytics over the same world.
"""

from __future__ import annotations

import numpy as np
import networkx as nx

from ..bgp.messages import ASPath

__all__ = ["AsTopology"]

#: Relationship labels on edges (drawn customer → provider).
CUSTOMER_PROVIDER = "c2p"
PEER_PEER = "p2p"


class AsTopology:
    """A provider hierarchy with valley-free path derivation."""

    def __init__(self, rng: np.random.Generator) -> None:
        self._rng = rng
        self.graph = nx.DiGraph()
        self.tier1: list[int] = []
        self.regional: list[int] = []

    @classmethod
    def generate(
        cls,
        rng: np.random.Generator,
        *,
        tier1_count: int = 10,
        regional_count: int = 60,
    ) -> "AsTopology":
        """Grow the transit core: a tier-1 clique plus regionals."""
        topology = cls(rng)
        topology.tier1 = [100 + i for i in range(tier1_count)]
        for asn in topology.tier1:
            topology.graph.add_node(asn, tier=1)
        for a in topology.tier1:
            for b in topology.tier1:
                if a < b:
                    topology.graph.add_edge(a, b, rel=PEER_PEER)
        topology.regional = [1000 + i for i in range(regional_count)]
        for asn in topology.regional:
            topology.graph.add_node(asn, tier=2)
            providers = rng.choice(
                np.array(topology.tier1),
                size=min(len(topology.tier1), 2 + int(rng.integers(0, 2))),
                replace=False,
            )
            for provider in providers:
                topology.graph.add_edge(asn, int(provider), rel=CUSTOMER_PROVIDER)
        return topology

    # -- growth -----------------------------------------------------------

    def attach_edge_network(self, asn: int) -> tuple[int, ...]:
        """Attach an edge network under 1–2 regional providers."""
        if self.graph.has_node(asn):
            raise ValueError(f"AS{asn} already in the topology")
        count = 1 + int(self._rng.integers(0, 2))
        providers = self._rng.choice(
            np.array(self.regional), size=count, replace=False
        )
        self.graph.add_node(asn, tier=3)
        for provider in providers:
            self.graph.add_edge(asn, int(provider), rel=CUSTOMER_PROVIDER)
        return tuple(int(p) for p in providers)

    def __contains__(self, asn: int) -> bool:
        return self.graph.has_node(asn)

    def providers_of(self, asn: int) -> list[int]:
        """The providers an AS buys transit from."""
        return [
            provider
            for _, provider, data in self.graph.out_edges(asn, data=True)
            if data["rel"] == CUSTOMER_PROVIDER
        ]

    # -- paths ---------------------------------------------------------------

    def path_from_core(self, origin: int) -> ASPath:
        """A valley-free path from a tier-1 vantage down to ``origin``.

        The path climbs the origin's provider chain to a tier-1 and
        prepends one random tier-1 peer when the collector-side vantage
        differs — exactly the shape of a full-table RouteViews path.
        Unknown origins get a synthetic (tier1, regional, origin) path so
        callers never need to special-case.
        """
        if origin not in self:
            regional = int(
                self.regional[int(self._rng.integers(len(self.regional)))]
            )
            tier1 = self.providers_of(regional)[0]
            return ASPath.of(tier1, regional, origin)
        chain: list[int] = [origin]
        current = origin
        while self.graph.nodes[current]["tier"] > 1:
            providers = self.providers_of(current)
            current = providers[int(self._rng.integers(len(providers)))]
            chain.append(current)
        # Vantage: either the reached tier-1 itself or one of its peers.
        if self._rng.random() < 0.5:
            peers = [t for t in self.tier1 if t != current]
            vantage = peers[int(self._rng.integers(len(peers)))]
            chain.append(vantage)
        return ASPath(tuple(reversed(chain)))

    def is_valley_free(self, path: ASPath) -> bool:
        """Check the Gao-Rexford valley-free property of a path.

        Walking collector-side → origin, a path may descend
        provider→customer at any point, but once it has descended it may
        never climb customer→provider again, and at most one peer link is
        allowed at the top.
        """
        descending = False
        peered = False
        hops = list(path)
        for left, right in zip(hops, hops[1:]):
            if left == right:
                continue  # prepending
            if not self.graph.has_node(left) or not self.graph.has_node(
                right
            ):
                return False
            if self.graph.has_edge(right, left) and (
                self.graph[right][left]["rel"] == CUSTOMER_PROVIDER
            ):
                descending = True  # provider -> customer step
            elif self.graph.has_edge(left, right) and (
                self.graph[left][right]["rel"] == CUSTOMER_PROVIDER
            ):
                if descending:
                    return False  # climbed after descending: a valley
            elif (
                self.graph.has_edge(left, right)
                and self.graph[left][right]["rel"] == PEER_PEER
            ) or (
                self.graph.has_edge(right, left)
                and self.graph[right][left]["rel"] == PEER_PEER
            ):
                if descending or peered:
                    return False
                peered = True
            else:
                return False  # no relationship at all
        return True
