#!/usr/bin/env python3
"""An operational monitor built on the library — a downstream use case.

Simulates the tooling a network operator or threat-intel team would run
daily over the public archives this library models:

1. serialize a study world to disk in the real archive formats (Firehol
   DROP snapshots, RPSL journal, ROA journal, delegated stats, MRT-like
   BGP), then reload it — the monitor only ever sees the files;
2. for a chosen "today", diff the DROP list against yesterday and triage
   each new listing: allocation status, IRR provenance (was the route
   object registered suspiciously recently?), RPKI posture, and current
   BGP visibility;
3. audit the operator's own holdings for §6's attack surface: unrouted
   prefixes whose ROAs are not AS0.

Run:  python examples/blocklist_monitor.py
"""

import tempfile
from datetime import date, timedelta
from pathlib import Path

from repro.reporting import TextTable
from repro.rpki.tal import TalSet
from repro.synth import ScenarioConfig, build_world, load_world, save_world


def triage_new_listings(world, today: date) -> None:
    yesterday = today - timedelta(days=1)
    before = set(world.drop.listed_on(yesterday))
    new = [p for p in world.drop.listed_on(today) if p not in before]
    print(f"{len(new)} new DROP listings on {today}")
    table = TextTable(
        ["prefix", "alloc", "IRR object", "IRR age (d)", "RPKI", "peers see"]
    )
    for prefix in new[:15]:
        status = world.resources.status_of(prefix, today)
        records = world.irr.exact_or_more_specific(
            prefix, active_in=(today - timedelta(days=7), today)
        )
        if records:
            age = min((today - r.created).days for r in records)
            irr, irr_age = "yes", age
        else:
            irr, irr_age = "no", "-"
        rpki = (
            "signed" if world.roas.has_roa(prefix, today) else "unsigned"
        )
        observing = len(world.bgp.peers_observing(prefix, today))
        table.add_row(str(prefix), status.status, irr, irr_age, rpki,
                      observing)
    print(table.render())
    recent = sum(
        1
        for prefix in new
        for r in world.irr.exact_or_more_specific(prefix)
        if (today - r.created).days <= 31
    )
    if recent:
        print(
            f"!! {recent} listings have route objects registered in the "
            "last month — the §5 forged-IRR pattern"
        )


def audit_own_space(world, holder: str, today: date) -> None:
    print(f"\nAS0 audit for holder {holder!r} ({today}):")
    holdings = world.resources.holders_of_space(today).get(holder)
    if holdings is None:
        print("  no allocations found")
        return
    routed = world.bgp.routed_space(today)
    exposed = holdings - routed
    tals = TalSet.default()
    for prefix in list(exposed.iter_prefixes())[:10]:
        # Holdings merge into blocks larger than any one ROA, so look both
        # up (covering) and down (covered) the prefix tree.
        roas = world.roas.covering(prefix, today, tals)
        roas += world.roas.covered(prefix, today, tals)
        if not roas:
            verdict = "UNROUTED + UNSIGNED: sign with AS0"
        elif any(r.roa.is_as0 for r in roas):
            verdict = "protected by AS0"
        else:
            verdict = (
                "UNROUTED + non-AS0 ROA: hijackable RPKI-validly (§6.1)!"
            )
        print(f"  {str(prefix):<18} {verdict}")


def main() -> None:
    world = build_world(ScenarioConfig.tiny())
    with tempfile.TemporaryDirectory() as tmp:
        archive_dir = Path(tmp) / "archives"
        print(f"writing archives to {archive_dir} ...")
        save_world(world, archive_dir)
        for path in sorted(archive_dir.rglob("*")):
            if path.is_file() and path.parent == archive_dir:
                print(f"  {path.name:>18}  {path.stat().st_size:>9} bytes")
        print("reloading from archives (monitor sees only the files)...\n")
        monitor_world = load_world(archive_dir)

    # Pick a day with new listings.
    today = next(
        e.added
        for e in sorted(monitor_world.drop.episodes(), key=lambda e: e.added)
        if e.added > monitor_world.window.start + timedelta(days=60)
    )
    triage_new_listings(monitor_world, today)
    audit_own_space(monitor_world, "amazon", monitor_world.window.end)


if __name__ == "__main__":
    main()
