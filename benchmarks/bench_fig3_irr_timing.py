"""Figure 3 + §5: IRR route-object timing and hijacker fingerprints."""

from repro.analysis import analyze_irr


def bench_fig3_irr_timing(benchmark, world, entries):
    result = benchmark(analyze_irr, world, entries)
    # Shape: almost every forged record is followed by a BGP announcement
    # within a week; a couple postdate the announcement by over a year.
    quick = [
        t
        for t in result.timings
        if t.days_to_bgp is not None and 0 <= t.days_to_bgp <= 7
    ]
    assert len(quick) >= len(result.timings) - 2
    assert result.late_records == 2
    # DROP listings follow the record within weeks, not years.
    to_drop = [t.days_to_drop for t in result.timings if t.days_to_drop >= 0]
    assert to_drop and max(to_drop) < 120


def bench_sec5_irr_effectiveness(benchmark, world, entries):
    result = benchmark(analyze_irr, world, entries)
    # Shape: a third of prefixes carry objects covering two-thirds of the
    # space; 3 ORG-IDs dominate the hijacker registrations.
    assert 0.25 < result.object_rate < 0.4
    assert result.space_share > 1.5 * result.object_rate
    assert result.hijacker_asn_matches < result.asn_labeled_hijacks
    assert result.top_org_cluster_size > 0.8 * result.hijacker_asn_matches
    assert len(result.unallocated_in_irr) == 1
