"""RPKI substrate: ROAs, TALs, RFC 6811 validation, AS0 policy, archive."""

from .archive import RoaArchive
from .as0 import (
    AS0_POLICY_EVENTS,
    As0PolicyEvent,
    as0_covered,
    rir_as0_policy_start,
    rir_as0_tal,
)
from .roa import Roa, RoaRecord
from .tal import (
    APNIC_AS0_TAL,
    DEFAULT_TALS,
    LACNIC_AS0_TAL,
    RIR_TALS,
    TalSet,
)
from .validation import RouteValidity, validate_route

__all__ = [
    "APNIC_AS0_TAL",
    "AS0_POLICY_EVENTS",
    "As0PolicyEvent",
    "DEFAULT_TALS",
    "LACNIC_AS0_TAL",
    "RIR_TALS",
    "Roa",
    "RoaArchive",
    "RoaRecord",
    "RouteValidity",
    "TalSet",
    "as0_covered",
    "rir_as0_policy_start",
    "rir_as0_tal",
    "validate_route",
]
