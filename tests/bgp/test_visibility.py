"""Unit tests for repro.bgp.visibility."""

from datetime import date

import pytest

from repro.bgp.collector import PeerRegistry
from repro.bgp.messages import ASPath
from repro.bgp.ribs import PartialObservation, RouteInterval, RouteIntervalStore
from repro.bgp.visibility import (
    fraction_observing,
    peer_observation_rates,
    suspect_filtering_peers,
    visibility_profile,
    withdrawn_within,
)
from repro.net.prefix import IPv4Prefix

PREFIX = IPv4Prefix.parse("192.0.2.0/24")
LISTED = date(2020, 6, 1)


@pytest.fixture
def registry():
    reg = PeerRegistry()
    for asn in range(64500, 64510):  # 10 full-table peers
        reg.add_peer(asn, "route-views2")
    reg.add_peer(64999, "route-views3", full_table=False)
    return reg


def make_store(registry, *, end, partial=()):
    store = RouteIntervalStore(data_end=date(2022, 3, 30))
    store.add(
        RouteInterval(
            prefix=PREFIX,
            path=ASPath.of(174, 64500),
            start=date(2020, 1, 1),
            end=end,
            observers=frozenset(range(10)),
            partial_observers=tuple(partial),
        )
    )
    return store


class TestFractionObserving:
    def test_all_peers_observe(self, registry):
        store = make_store(registry, end=None)
        assert fraction_observing(store, registry, PREFIX, LISTED) == 1.0

    def test_after_withdrawal_zero(self, registry):
        store = make_store(registry, end=date(2020, 6, 10))
        assert fraction_observing(
            store, registry, PREFIX, date(2020, 7, 1)
        ) == 0.0

    def test_partial_table_peer_not_counted(self, registry):
        # Peer 10 (partial) observing would not change the denominator.
        store = make_store(registry, end=None)
        assert fraction_observing(store, registry, PREFIX, LISTED) == 1.0

    def test_empty_registry(self):
        reg = PeerRegistry()
        store = RouteIntervalStore()
        assert fraction_observing(store, reg, PREFIX, LISTED) == 0.0

    def test_filtering_peer_lowers_fraction(self, registry):
        # Peer 0 stops observing at listing (DROP filter).
        partial = [PartialObservation(0, date(2020, 1, 1), LISTED)]
        store = make_store(registry, end=None, partial=partial)
        after = fraction_observing(
            store, registry, PREFIX, date(2020, 7, 1)
        )
        assert after == pytest.approx(0.9)


class TestVisibilityProfile:
    def test_profile_offsets(self, registry):
        store = make_store(registry, end=date(2020, 6, 10))
        profile = visibility_profile(store, registry, PREFIX, LISTED)
        assert profile.fractions[-1] == 1.0
        assert profile.fractions[2] == 1.0
        assert profile.fractions[30] == 0.0
        assert profile.withdrawn_by(30)
        assert not profile.withdrawn_by(2)


class TestWithdrawnWithin:
    def test_withdrawn(self, registry):
        store = make_store(registry, end=date(2020, 6, 10))
        assert withdrawn_within(store, PREFIX, LISTED, days=30)

    def test_not_withdrawn(self, registry):
        store = make_store(registry, end=None)
        assert not withdrawn_within(store, PREFIX, LISTED, days=30)

    def test_never_announced_not_withdrawn(self, registry):
        store = RouteIntervalStore()
        assert not withdrawn_within(store, PREFIX, LISTED, days=30)

    def test_announced_only_day_before_counts(self, registry):
        store = RouteIntervalStore()
        store.add(
            RouteInterval(
                prefix=PREFIX,
                path=ASPath.of(174, 64500),
                start=date(2020, 1, 1),
                end=LISTED - date.resolution,
                observers=frozenset({0}),
            )
        )
        assert withdrawn_within(store, PREFIX, LISTED, days=30)


class TestPeerObservationRates:
    def test_filtering_peer_detected(self, registry):
        # Peer 3 never sees the prefix while 9 others do.
        store = RouteIntervalStore(data_end=date(2022, 3, 30))
        store.add(
            RouteInterval(
                prefix=PREFIX,
                path=ASPath.of(174, 64500),
                start=date(2020, 1, 1),
                end=None,
                observers=frozenset(set(range(10)) - {3}),
            )
        )
        samples = [(PREFIX, date(2020, 6, d)) for d in range(1, 21)]
        rates = peer_observation_rates(store, registry, samples)
        by_peer = {r.peer_id: r for r in rates}
        assert by_peer[3].rate == 0.0
        assert by_peer[0].rate == 1.0
        suspects = suspect_filtering_peers(rates)
        assert [s.peer_id for s in suspects] == [3]

    def test_unobservable_samples_skipped(self, registry):
        # Route seen by only 2 of 10 full-table peers: below the majority
        # threshold, so nobody is penalized.
        store = RouteIntervalStore()
        store.add(
            RouteInterval(
                prefix=PREFIX,
                path=ASPath.of(174, 64500),
                start=date(2020, 1, 1),
                end=None,
                observers=frozenset({0, 1}),
            )
        )
        rates = peer_observation_rates(
            store, registry, [(PREFIX, date(2020, 6, 1))]
        )
        assert all(r.observable == 0 for r in rates)
        assert suspect_filtering_peers(rates) == []

    def test_rate_zero_when_no_samples(self, registry):
        store = RouteIntervalStore()
        rates = peer_observation_rates(store, registry, [])
        assert all(r.rate == 0.0 for r in rates)
