"""Binary codec for the persisted :class:`RoaStatusResult` substrate.

Small enough (one row per sample day plus two breakdown maps) to
materialize eagerly at load, but it rides the same container for the
same reasons: checksummed, header-pinned, crash-safe, and ~100× faster
to open than parsing JSON — which matters because every ``run_all``
worker and every daemon restart opens it.  Floats round-trip exactly
through the ``d`` columns, so report output stays byte-identical to the
JSON path (golden-tested).  Shares the ``store.save``/``store.load``
fault sites and eviction discipline with the binary index.
"""

from __future__ import annotations

import warnings
from array import array
from datetime import date
from pathlib import Path

from ..analysis.roa_status import RoaStatusPoint, RoaStatusResult
from ..analysis.substrate import SUBSTRATE_FORMAT, SubstrateLoadError
from ..obs import Instrumentation
from ..runtime.faults import corrupt_file, fault_point
from ..synth.builder import GENERATOR_VERSION
from .container import StoreError, StoreReader, build_store, durable_write

__all__ = [
    "STORE_SUBSTRATE_FILENAME",
    "encode_substrate",
    "load_store_substrate",
    "save_store_substrate",
]

#: The binary substrate file's name, next to its JSON sibling.
STORE_SUBSTRATE_FILENAME = "analysis-substrate.bin"

_KIND = "analysis-substrate"


def _pack_strings(texts) -> tuple[array, bytes]:
    offsets = array("I", [0])
    data = bytearray()
    for text in texts:
        data.extend(text.encode("utf-8"))
        offsets.append(len(data))
    return offsets, bytes(data)


def _unpack_strings(offsets, data) -> list[str]:
    return [
        bytes(data[offsets[i] : offsets[i + 1]]).decode("utf-8")
        for i in range(len(offsets) - 1)
    ]


def encode_substrate(
    result: RoaStatusResult, *, key: str = ""
) -> bytes:
    """Flatten the Figure 5 result into one container blob."""
    days = array("I", (p.day.toordinal() for p in result.points))
    signed = array("d", (p.signed for p in result.points))
    routed = array("d", (p.signed_routed for p in result.points))
    unrouted = array("d", (p.signed_unrouted for p in result.points))
    unsigned = array(
        "d", (p.allocated_unrouted_unsigned for p in result.points)
    )
    # Both breakdown maps keep their insertion order, so the rebuilt
    # dicts iterate identically to the JSON path's.
    holder_off, holder_dat = _pack_strings(result.unrouted_signed_by_holder)
    holder_val = array("d", result.unrouted_signed_by_holder.values())
    rir_off, rir_dat = _pack_strings(result.unrouted_unsigned_by_rir)
    rir_val = array("d", result.unrouted_unsigned_by_rir.values())
    meta = {
        "kind": _KIND,
        "substrate_format": SUBSTRATE_FORMAT,
        "generator": GENERATOR_VERSION,
        "key": key,
    }
    return build_store(
        meta,
        [
            ("pt.day", "I", days),
            ("pt.signed", "d", signed),
            ("pt.routed", "d", routed),
            ("pt.unrouted", "d", unrouted),
            ("pt.unsigned", "d", unsigned),
            ("hold.off", "I", holder_off),
            ("hold.dat", "B", holder_dat),
            ("hold.val", "d", holder_val),
            ("rir.off", "I", rir_off),
            ("rir.dat", "B", rir_dat),
            ("rir.val", "d", rir_val),
        ],
    )


def save_store_substrate(
    result: RoaStatusResult,
    directory: Path,
    *,
    key: str = "",
    instrumentation: Instrumentation | None = None,
) -> Path | None:
    """Persist the binary substrate; failures degrade with a warning."""
    instr = instrumentation or Instrumentation()
    try:
        with instr.stage("store-substrate-save", group="store"):
            fault_point("store.save", instrumentation=instr)
            durable_write(
                directory,
                STORE_SUBSTRATE_FILENAME,
                encode_substrate(result, key=key),
            )
    except (OSError, StoreError) as error:
        instr.incr("store_save_errors")
        message = f"binary substrate store failed ({error}); JSON path remains"
        instr.warn(message)
        warnings.warn(message, RuntimeWarning, stacklevel=2)
        return None
    instr.incr("store_saves")
    return directory / STORE_SUBSTRATE_FILENAME


def load_store_substrate(
    directory: Path,
    *,
    expected_key: str = "",
    instrumentation: Instrumentation | None = None,
) -> RoaStatusResult:
    """Map, verify, and materialize the binary substrate.

    Raises :class:`SubstrateLoadError` / :class:`StoreError` (or the
    underlying ``OSError``) for anything untrustworthy; callers evict
    the ``.bin`` and fall back to JSON or a rebuild.
    """
    instr = instrumentation or Instrumentation()
    path = directory / STORE_SUBSTRATE_FILENAME
    with instr.stage("store-substrate-load", group="store"):
        corrupt_file("store.load", path, instrumentation=instr)
        fault_point("store.load", instrumentation=instr)
        reader = StoreReader.open(path)
        meta = reader.meta
        if meta.get("kind") != _KIND:
            raise SubstrateLoadError(
                f"store kind {meta.get('kind')!r} != {_KIND!r}"
            )
        if meta.get("substrate_format") != SUBSTRATE_FORMAT:
            raise SubstrateLoadError(
                f"store substrate format {meta.get('substrate_format')!r} "
                f"!= {SUBSTRATE_FORMAT}"
            )
        if meta.get("generator") != GENERATOR_VERSION:
            raise SubstrateLoadError(
                f"store generator {meta.get('generator')!r} != "
                f"{GENERATOR_VERSION!r}"
            )
        if expected_key and meta.get("key") != expected_key:
            raise SubstrateLoadError(
                f"store key {meta.get('key')!r} != {expected_key!r}"
            )
        # Copied out eagerly (the substrate is small) so no memoryview
        # outlives the reader and the mmap can close cleanly below.
        days = list(reader.view("pt.day", "I"))
        signed = list(reader.view("pt.signed", "d"))
        routed = list(reader.view("pt.routed", "d"))
        unrouted = list(reader.view("pt.unrouted", "d"))
        unsigned = list(reader.view("pt.unsigned", "d"))
        points = tuple(
            RoaStatusPoint(
                day=date.fromordinal(days[i]),
                signed=signed[i],
                signed_routed=routed[i],
                signed_unrouted=unrouted[i],
                allocated_unrouted_unsigned=unsigned[i],
            )
            for i in range(len(days))
        )
        holders = _unpack_strings(
            reader.view("hold.off", "I"), reader.view("hold.dat", "B")
        )
        holder_val = list(reader.view("hold.val", "d"))
        rirs = _unpack_strings(
            reader.view("rir.off", "I"), reader.view("rir.dat", "B")
        )
        rir_val = list(reader.view("rir.val", "d"))
        result = RoaStatusResult(
            points=points,
            unrouted_signed_by_holder=dict(zip(holders, holder_val)),
            unrouted_unsigned_by_rir=dict(zip(rirs, rir_val)),
        )
        reader.close()
    instr.incr("store_loads")
    return result
