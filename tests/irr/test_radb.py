"""Unit tests for repro.irr.radb."""

from datetime import date

import pytest

from repro.irr.radb import IrrDatabase, RouteObjectRecord
from repro.irr.rpsl import RouteObject
from repro.net.prefix import IPv4Prefix

P24 = IPv4Prefix.parse("192.0.2.0/24")
P25 = IPv4Prefix.parse("192.0.2.0/25")
P22 = IPv4Prefix.parse("192.0.0.0/22")
OTHER = IPv4Prefix.parse("198.51.100.0/24")


def record(prefix=P24, origin=64500, maintainer="MAINT-A", org="ORG-A",
           created=date(2020, 1, 1), deleted=None):
    return RouteObjectRecord(
        route=RouteObject(
            prefix=prefix, origin=origin, maintainer=maintainer, org_id=org
        ),
        created=created,
        deleted=deleted,
    )


@pytest.fixture
def db():
    database = IrrDatabase()
    database.add(record())
    database.add(record(prefix=P25, origin=64501, org="ORG-B",
                        created=date(2020, 6, 1)))
    database.add(record(prefix=P22, origin=64502, org="ORG-A",
                        created=date(2019, 1, 1), deleted=date(2020, 3, 1)))
    database.add(record(prefix=OTHER, origin=64503, org=None))
    return database


class TestRecordLifetime:
    def test_active_on(self):
        r = record(created=date(2020, 1, 1), deleted=date(2020, 3, 1))
        assert r.active_on(date(2020, 1, 1))
        assert r.active_on(date(2020, 2, 29))
        assert not r.active_on(date(2020, 3, 1))
        assert not r.active_on(date(2019, 12, 31))

    def test_deleted_before_created_rejected(self):
        with pytest.raises(ValueError):
            record(created=date(2020, 3, 1), deleted=date(2020, 1, 1))


class TestQueries:
    def test_exact(self, db):
        assert [r.route.origin for r in db.exact(P24)] == [64500]

    def test_covering(self, db):
        origins = [r.route.origin for r in db.covering(P25)]
        assert set(origins) == {64500, 64501, 64502}

    def test_covered(self, db):
        origins = [r.route.origin for r in db.covered(P24)]
        assert set(origins) == {64500, 64501}

    def test_exact_or_more_specific_window(self, db):
        # Only the P25 object (created 2020-06-01) is active in June.
        active = db.exact_or_more_specific(
            P24, active_in=(date(2020, 6, 1), date(2020, 6, 7))
        )
        assert {r.route.origin for r in active} == {64500, 64501}
        # Before June, only the P24 object.
        active = db.exact_or_more_specific(
            P24, active_in=(date(2020, 2, 1), date(2020, 2, 7))
        )
        assert {r.route.origin for r in active} == {64500}

    def test_active_on(self, db):
        active = db.active_on(date(2020, 2, 1))
        assert {str(r.route.prefix) for r in active} == {
            "192.0.2.0/24", "192.0.0.0/22", "198.51.100.0/24"
        }

    def test_org_ids(self, db):
        assert db.org_ids() == {"ORG-A": 2, "ORG-B": 1}

    def test_len(self, db):
        assert len(db) == 4


class TestJournalPersistence:
    def test_round_trip(self, db, tmp_path):
        path = tmp_path / "journal.jsonl"
        assert db.write_journal(path) == 4
        loaded = IrrDatabase.read_journal(path)
        assert len(loaded) == 4
        original = sorted(
            (str(r.route.prefix), r.route.origin, r.created, r.deleted)
            for r in db.records()
        )
        round_tripped = sorted(
            (str(r.route.prefix), r.route.origin, r.created, r.deleted)
            for r in loaded.records()
        )
        assert original == round_tripped


class TestSnapshotReconstruction:
    def test_snapshot_text_contains_active_only(self, db):
        text = db.snapshot_text(date(2020, 2, 1))
        assert "192.0.0.0/22" in text
        assert "192.0.2.0/25" not in text  # not yet created

    def test_empty_snapshot(self):
        db = IrrDatabase()
        assert db.snapshot_text(date(2020, 1, 1)).startswith("%")

    def test_from_snapshots_rebuilds_journal(self, db):
        days = [date(2019, 1, 1), date(2020, 1, 1), date(2020, 3, 1),
                date(2020, 6, 1), date(2021, 1, 1)]
        snapshots = [(day, db.snapshot_text(day)) for day in days]
        rebuilt = IrrDatabase.from_snapshots(snapshots)
        assert len(rebuilt) == len(db)
        original = sorted(
            (str(r.route.prefix), r.route.origin, r.created, r.deleted)
            for r in db.records()
        )
        round_tripped = sorted(
            (str(r.route.prefix), r.route.origin, r.created, r.deleted)
            for r in rebuilt.records()
        )
        assert original == round_tripped

    def test_sparse_snapshots_coarsen_dates(self, db):
        # Monthly snapshots: the /22's deletion on Mar 1 is still seen at
        # exactly Mar 1 (a snapshot day); creation dates snap to the first
        # snapshot that includes the object.
        days = [date(2020, 2, 1), date(2020, 3, 1)]
        snapshots = [(day, db.snapshot_text(day)) for day in days]
        rebuilt = IrrDatabase.from_snapshots(snapshots)
        deleted = [r for r in rebuilt.records() if r.deleted is not None]
        assert len(deleted) == 1
        assert deleted[0].route.prefix == P22
        assert deleted[0].deleted == date(2020, 3, 1)
