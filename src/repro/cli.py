"""Command-line interface: build worlds, run experiments, export reports.

Installed as ``repro-drop``::

    repro-drop build --scale tiny --out ./archives
    repro-drop report --exp tab1 --exp fig5
    repro-drop report --all
    repro-drop markdown > EXPERIMENTS-run.md

``report``/``markdown`` accept either ``--scale`` (build a fresh world)
or ``--archives DIR`` (load one previously written by ``build``).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .analysis import load_entries
from .reporting import (
    EXPERIMENTS,
    render_markdown,
    render_text,
    run_experiment,
)
from .synth import ScenarioConfig, World, build_world, load_world, save_world

__all__ = ["main"]

_SCALES = {
    "tiny": ScenarioConfig.tiny,
    "small": ScenarioConfig.small,
    "paper": ScenarioConfig.paper,
}


def _add_world_source(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scale",
        choices=sorted(_SCALES),
        default="tiny",
        help="synthetic world scale (default: tiny)",
    )
    parser.add_argument(
        "--seed", type=int, default=2022, help="generator seed"
    )
    parser.add_argument(
        "--archives",
        type=Path,
        default=None,
        help="load a world from a directory written by 'build' "
        "instead of generating one",
    )


def _resolve_world(args: argparse.Namespace) -> World:
    if args.archives is not None:
        return load_world(args.archives)
    return build_world(_SCALES[args.scale](seed=args.seed))


def _cmd_build(args: argparse.Namespace) -> int:
    world = build_world(_SCALES[args.scale](seed=args.seed))
    save_world(world, args.out, drop_step_days=args.drop_step_days)
    print(
        f"wrote {args.out}: {len(world.drop.unique_prefixes())} DROP "
        f"prefixes, {len(world.bgp)} route intervals, "
        f"{len(world.roas)} ROAs, {len(world.irr)} IRR objects"
    )
    return 0


def _cmd_list(_args: argparse.Namespace) -> int:
    for exp_id in EXPERIMENTS:
        print(exp_id)
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    wanted = list(EXPERIMENTS) if args.all else args.exp
    if not wanted:
        print("nothing to run: pass --exp ID (repeatable) or --all",
              file=sys.stderr)
        return 2
    unknown = [e for e in wanted if e not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}",
              file=sys.stderr)
        return 2
    world = _resolve_world(args)
    entries = load_entries(world)
    for exp_id in wanted:
        print(render_text(run_experiment(world, exp_id, entries)))
        print()
    return 0


def _cmd_markdown(args: argparse.Namespace) -> int:
    world = _resolve_world(args)
    entries = load_entries(world)
    reports = [
        run_experiment(world, exp_id, entries) for exp_id in EXPERIMENTS
    ]
    print(render_markdown(reports))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-drop",
        description="Reproduce 'Stop, DROP, and ROA' (IMC 2022).",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    build_cmd = commands.add_parser(
        "build", help="generate a world and write its archives to disk"
    )
    build_cmd.add_argument("--scale", choices=sorted(_SCALES),
                           default="tiny")
    build_cmd.add_argument("--seed", type=int, default=2022)
    build_cmd.add_argument("--out", type=Path, required=True)
    build_cmd.add_argument(
        "--drop-step-days", type=int, default=7,
        help="DROP snapshot interval in days (default: weekly)",
    )
    build_cmd.set_defaults(func=_cmd_build)

    list_cmd = commands.add_parser(
        "list", help="list registered experiment ids"
    )
    list_cmd.set_defaults(func=_cmd_list)

    report_cmd = commands.add_parser(
        "report", help="run experiments and print paper-vs-measured"
    )
    _add_world_source(report_cmd)
    report_cmd.add_argument(
        "--exp", action="append", default=[],
        help="experiment id (repeatable; see 'list')",
    )
    report_cmd.add_argument(
        "--all", action="store_true", help="run every experiment"
    )
    report_cmd.set_defaults(func=_cmd_report)

    markdown_cmd = commands.add_parser(
        "markdown", help="print all experiments as a Markdown report"
    )
    _add_world_source(markdown_cmd)
    markdown_cmd.set_defaults(func=_cmd_markdown)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
