"""Unit tests for the content-addressed world cache."""

import shutil

import pytest

from repro.runtime import (
    Instrumentation,
    WorldCache,
    default_cache_root,
    run_experiments,
    world_cache_key,
)
from repro.synth import ScenarioConfig


@pytest.fixture(scope="module")
def cache_and_first(tmp_path_factory):
    """A cache with one tiny entry already fetched (the expensive part)."""
    root = tmp_path_factory.mktemp("world-cache")
    cache = WorldCache(root)
    instr = Instrumentation()
    outcome = cache.fetch(ScenarioConfig.tiny(), instrumentation=instr)
    return cache, outcome, instr


class TestCacheKey:
    def test_stable_across_equal_configs(self):
        assert world_cache_key(ScenarioConfig.tiny()) == world_cache_key(
            ScenarioConfig.tiny()
        )

    def test_differs_by_seed_and_scale(self):
        keys = {
            world_cache_key(ScenarioConfig.tiny()),
            world_cache_key(ScenarioConfig.tiny(seed=5)),
            world_cache_key(ScenarioConfig.small()),
            world_cache_key(ScenarioConfig.paper()),
        }
        assert len(keys) == 4

    def test_content_hash_covers_region_profiles(self):
        base = ScenarioConfig.tiny()
        assert base.content_hash() == ScenarioConfig.tiny().content_hash()
        assert (
            ScenarioConfig.tiny().canonical_dict()["regions"].keys()
            == base.regions.keys()
        )

    def test_default_root_honours_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "custom"))
        assert default_cache_root() == tmp_path / "custom"
        monkeypatch.delenv("REPRO_CACHE_DIR")
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
        assert default_cache_root() == tmp_path / "xdg" / "repro-drop"


class TestFetch:
    def test_miss_builds_and_stores(self, cache_and_first):
        cache, outcome, instr = cache_and_first
        assert outcome.status == "miss"
        assert outcome.directory.is_dir()
        assert (outcome.directory / "config.json").exists()
        assert (outcome.directory / "cache-key.json").exists()
        assert instr.counters.get("world_cache_misses") == 1
        # No stray staging directories survive the atomic rename.
        leftovers = [
            p
            for p in outcome.directory.parent.iterdir()
            if p.name.startswith(".")
        ]
        assert leftovers == []

    def test_hit_loads_and_restores_config(self, cache_and_first):
        cache, first, _ = cache_and_first
        instr = Instrumentation()
        config = ScenarioConfig.tiny()
        outcome = cache.fetch(config, instrumentation=instr)
        assert outcome.status == "hit"
        assert outcome.key == first.key
        assert instr.counters.get("world_cache_hits") == 1
        # The archive round-trip keeps only seed+window; the cache must
        # hand back the caller's full config (regions, rates, ...).
        assert outcome.world.config == config
        assert len(outcome.world.drop.unique_prefixes()) == 712
        # Cache hits are measurement-only worlds: no ground truth.
        assert not outcome.world.truth.drop

    def test_corrupt_entry_falls_back_to_rebuild(self, cache_and_first):
        cache, first, _ = cache_and_first
        (first.directory / "config.json").write_text("{ truncated")
        instr = Instrumentation()
        outcome = cache.fetch(ScenarioConfig.tiny(), instrumentation=instr)
        assert outcome.status == "miss"
        assert instr.counters.get("world_cache_evictions") == 1
        assert instr.counters.get("world_cache_misses") == 1
        # The rebuilt entry is whole again and hits on the next fetch.
        again = cache.fetch(ScenarioConfig.tiny())
        assert again.status == "hit"

    def test_refresh_overwrites_entry(self, cache_and_first):
        cache, first, _ = cache_and_first
        marker = first.directory / "stale-marker"
        marker.write_text("old entry")
        outcome = cache.fetch(ScenarioConfig.tiny(), refresh=True)
        assert outcome.status == "refresh"
        assert not marker.exists()

    def test_distinct_configs_get_distinct_directories(
        self, cache_and_first
    ):
        cache, first, _ = cache_and_first
        other = cache.directory_for(ScenarioConfig.tiny(seed=5))
        assert other != first.directory
        assert other.parent == first.directory.parent


@pytest.fixture(scope="module")
def baseline_report(cache_and_first):
    """A fresh-build report body, the byte-identity reference."""
    _, outcome, _ = cache_and_first
    return run_experiments(outcome.world, ["fig1"], jobs=1).reports


class TestCorruptEntries:
    """Every file type in an entry, truncated or deleted, must evict.

    One parametrization per archive format: the load failure evicts the
    entry, bumps ``world_cache_evictions``, and the rebuilt world's
    reports are byte-identical to a fresh build's.
    """

    TRUNCATE = [
        "config.json",
        "overrides.json",
        "sbl.jsonl",
        "irr.jsonl",
        "roas.jsonl",
        "registry.jsonl",
        "bgp/intervals.jsonl",
    ]
    DELETE = [
        "config.json",
        "sbl.jsonl",
        "bgp/peers.jsonl",
        "drop",  # the whole snapshot directory
    ]

    def _assert_recovers(self, cache, baseline_report):
        instr = Instrumentation()
        outcome = cache.fetch(ScenarioConfig.tiny(), instrumentation=instr)
        assert outcome.status == "miss"
        assert instr.counters.get("world_cache_evictions") == 1
        assert instr.counters.get("world_cache_misses") == 1
        reports = run_experiments(outcome.world, ["fig1"], jobs=1).reports
        assert reports == tuple(baseline_report)
        assert cache.fetch(ScenarioConfig.tiny()).status == "hit"

    @pytest.mark.parametrize("name", TRUNCATE)
    def test_truncated_file_evicts_and_rebuilds(
        self, cache_and_first, baseline_report, name
    ):
        cache, first, _ = cache_and_first
        target = first.directory / name
        data = target.read_bytes()
        target.write_bytes(data[: len(data) // 2])
        self._assert_recovers(cache, baseline_report)

    @pytest.mark.parametrize("name", DELETE)
    def test_deleted_file_evicts_and_rebuilds(
        self, cache_and_first, baseline_report, name
    ):
        cache, first, _ = cache_and_first
        target = first.directory / name
        if target.is_dir():
            shutil.rmtree(target)
        else:
            target.unlink()
        self._assert_recovers(cache, baseline_report)
