"""The shared analysis substrate: build once per world, reuse everywhere.

Every experiment in :mod:`repro.reporting.experiments` used to re-walk
the raw DROP/IRR/ROA/BGP stores independently; at paper scale that is
minutes of redundant interval scans (two identical Figure 5 series, ~70
full routed-space walks).  The substrate computes the expensive shared
state once per world:

* the **columnar per-prefix event tables** — sorted announcement
  episodes with interned full-table observer sets, plus the ROA/IRR
  interval indexes — are the :class:`~repro.query.index.QueryIndex`
  itself, reused (not re-implemented) so the observer-set interning has
  exactly one home;
* the **Figure 5 day grid** — routed, allocated, and ROA-signed address
  space per monthly sample day, computed in one pass over each store
  (bucketing every interval into the sample days it spans) instead of
  one full scan per day;
* the **memoized Figure 5 result** itself, which both the ``fig5``
  experiment and the ``ext-as0`` counterfactual consume.

The substrate persists as ``analysis-substrate.json`` next to
``query-index.json`` inside the world's cache entry, so it is
content-addressed by construction and follows the same corruption
discipline: the header pins the format version, the generator version,
and the world key; any load failure (torn file, stale header, injected
fault at ``substrate.load``) evicts the file and rebuilds from the
world; save failures degrade to an unpersisted substrate with a counter
and a warning.
"""

from __future__ import annotations

import json
import warnings
from bisect import bisect_left, bisect_right
from datetime import date, timedelta
from pathlib import Path
from typing import Sequence

from ..bgp.visibility import (
    DEFAULT_OFFSETS,
    VisibilityProfile,
    fraction_observing as bgp_fraction_observing,
)
from ..errors import ReproError
from ..net.prefix import IPv4Prefix
from ..net.prefixset import PrefixSet
from ..rpki.tal import TalSet
from ..synth.builder import GENERATOR_VERSION
from ..synth.world import World
from .roa_status import (
    RoaStatusPoint,
    RoaStatusResult,
    analyze_roa_status,
    default_sample_days,
)

__all__ = [
    "SUBSTRATE_FILENAME",
    "SUBSTRATE_FORMAT",
    "AnalysisSubstrate",
    "BatchedDaySpaces",
    "SubstrateLoadError",
    "compute_roa_status",
    "load_substrate_file",
    "save_substrate_file",
]

#: On-disk substrate layout version; bump to orphan every persisted file.
SUBSTRATE_FORMAT = 1

#: The substrate file's name inside a world cache entry (or archive dir).
SUBSTRATE_FILENAME = "analysis-substrate.json"


class SubstrateLoadError(ReproError, ValueError):
    """A persisted substrate that cannot be trusted (torn, stale, foreign)."""

    code = "analysis.substrate-stale"


# ---------------------------------------------------------------------------
# batched per-day space computation
# ---------------------------------------------------------------------------


class BatchedDaySpaces:
    """Figure 5's per-day address-space sets, computed in single passes.

    :class:`~repro.analysis.roa_status.DirectDaySpaces` walks every
    store once *per sample day*; this provider walks each store once
    *total*, bucketing each interval into the (sorted) sample days it
    spans, then materializes one :class:`PrefixSet` per day.  The
    resulting sets are identical — ``PrefixSet.from_intervals``
    normalizes either way — so ``analyze_roa_status`` produces the same
    bytes from either provider.
    """

    def __init__(
        self, world: World, sample_days: Sequence[date], tals: TalSet
    ) -> None:
        self.world = world
        self.tals = tals
        self.days = sorted(sample_days)
        spans_routed: list[list] = [[] for _ in self.days]
        spans_alloc: list[list] = [[] for _ in self.days]
        spans_signed: list[list] = [[] for _ in self.days]
        spans_non_as0: list[list] = [[] for _ in self.days]
        # BGP route intervals: end day is *inclusive* (None = open).
        for interval in world.bgp.all_intervals():
            lo = bisect_left(self.days, interval.start)
            hi = (
                len(self.days)
                if interval.end is None
                else bisect_right(self.days, interval.end)
            )
            if lo >= hi:
                continue
            span = (interval.prefix.first, interval.prefix.last + 1)
            for i in range(lo, hi):
                spans_routed[i].append(span)
        # Allocations: end day is *exclusive* (first day no longer held).
        for alloc in world.resources.allocations():
            if alloc.status not in ("allocated", "assigned"):
                continue
            lo = bisect_left(self.days, alloc.start)
            hi = (
                len(self.days)
                if alloc.end is None
                else bisect_left(self.days, alloc.end)
            )
            if lo >= hi:
                continue
            span = (alloc.addresses.start, alloc.addresses.end)
            for i in range(lo, hi):
                spans_alloc[i].append(span)
        # ROA records: end day is *exclusive* (first day absent).
        for record in world.roas.records():
            if not tals.trusts(record.roa.trust_anchor):
                continue
            lo = bisect_left(self.days, record.created)
            hi = (
                len(self.days)
                if record.removed is None
                else bisect_left(self.days, record.removed)
            )
            if lo >= hi:
                continue
            span = (record.roa.prefix.first, record.roa.prefix.last + 1)
            for i in range(lo, hi):
                spans_signed[i].append(span)
                if not record.roa.is_as0:
                    spans_non_as0[i].append(span)
        self._routed = {
            day: PrefixSet.from_intervals(spans)
            for day, spans in zip(self.days, spans_routed)
        }
        self._allocated = {
            day: PrefixSet.from_intervals(spans)
            for day, spans in zip(self.days, spans_alloc)
        }
        self._signed = {
            day: (
                PrefixSet.from_intervals(all_spans),
                PrefixSet.from_intervals(non_as0),
            )
            for day, all_spans, non_as0 in zip(
                self.days, spans_signed, spans_non_as0
            )
        }

    def signed(self, day: date) -> tuple[PrefixSet, PrefixSet]:
        return self._signed[day]

    def allocated(self, day: date) -> PrefixSet:
        return self._allocated[day]

    def routed(self, day: date) -> PrefixSet:
        return self._routed[day]


def compute_roa_status(
    world: World, sample_days: Sequence[date] | None = None
) -> RoaStatusResult:
    """The Figure 5 result via the batched (single-walk) providers."""
    days = (
        default_sample_days(world)
        if sample_days is None
        else list(sample_days)
    )
    spaces = BatchedDaySpaces(world, days, TalSet.default())
    return analyze_roa_status(world, days, spaces=spaces)


# ---------------------------------------------------------------------------
# the substrate
# ---------------------------------------------------------------------------


class AnalysisSubstrate:
    """Lazily-built, optionally persisted shared state for one world.

    Components build on first use and memoize: :meth:`roa_status` (the
    Figure 5 result, persisted in ``analysis-substrate.json``) and
    :meth:`query_index` (the per-prefix event tables, persisted by
    :mod:`repro.query.index` as ``query-index.json``).  With a
    ``directory`` (the world's cache entry or archive dir) both load
    from disk when a valid persisted copy exists and evict-and-rebuild
    otherwise; without one the substrate is memory-only.
    """

    def __init__(
        self,
        world: World,
        *,
        directory: Path | None = None,
        key: str = "",
        instrumentation: "Instrumentation | None" = None,
    ) -> None:
        # Imported lazily throughout: repro.runtime's package import
        # pulls in the runner, which imports repro.reporting, which
        # imports this module — a cycle at module-load time.
        from ..obs import Instrumentation

        self.world = world
        self.directory = Path(directory) if directory is not None else None
        self.key = key
        self.instrumentation = instrumentation or Instrumentation()
        self._roa_status: RoaStatusResult | None = None
        self._index = None

    # -- components --------------------------------------------------------

    def roa_status(self) -> RoaStatusResult:
        """The memoized Figure 5 result (persisted when possible)."""
        if self._roa_status is not None:
            return self._roa_status
        instr = self.instrumentation
        if self.directory is not None:
            # Binary columnar store first (mmap + checksums), JSON
            # compatibility artifact second; either failing its pins is
            # evicted before the next fallback.
            from ..store.substrate import (
                STORE_SUBSTRATE_FILENAME,
                load_store_substrate,
            )

            store_path = self.directory / STORE_SUBSTRATE_FILENAME
            if store_path.exists():
                try:
                    self._roa_status = load_store_substrate(
                        self.directory,
                        expected_key=self.key,
                        instrumentation=instr,
                    )
                except Exception:
                    store_path.unlink(missing_ok=True)
                    instr.incr("store_evictions")
                else:
                    return self._roa_status
        path = (
            None
            if self.directory is None
            else self.directory / SUBSTRATE_FILENAME
        )
        if path is not None and path.exists():
            try:
                self._roa_status = load_substrate_file(
                    self.directory,
                    expected_key=self.key,
                    instrumentation=instr,
                )
            except Exception:
                path.unlink(missing_ok=True)
                instr.incr("substrate_evictions")
            else:
                # Upgrade path: a JSON-only entry (pre-binary cache, or
                # an evicted ``.bin``) gains its binary sibling here so
                # the next open takes the mmap fast path.
                from ..store.substrate import save_store_substrate

                save_store_substrate(
                    self._roa_status,
                    self.directory,
                    key=self.key,
                    instrumentation=instr,
                )
                return self._roa_status
        with instr.stage("substrate-build", group="substrate"):
            self._roa_status = compute_roa_status(self.world)
        instr.incr("substrate_builds")
        if self.directory is not None:
            save_substrate_file(
                self._roa_status,
                self.directory,
                key=self.key,
                instrumentation=instr,
            )
        return self._roa_status

    def query_index(self):
        """The per-prefix event tables (a shared ``QueryIndex``)."""
        if self._index is None:
            from ..query.index import load_or_build_index

            self._index = load_or_build_index(
                self.world,
                self.directory,
                key=self.key,
                instrumentation=self.instrumentation,
            )
        return self._index

    def warm(self) -> "AnalysisSubstrate":
        """Build (or load) the shared analysis state now — e.g. before
        forking pool workers, so they inherit it instead of each
        rebuilding it.

        Deliberately does *not* touch :meth:`query_index`: at paper
        scale loading (or building) the index costs far more than
        answering every visibility query straight from the raw store,
        so the index only pays for itself in processes that already
        hold one — the serving daemon and the ``repro-drop query``
        fast path."""
        self.roa_status()
        return self

    # -- visibility queries (served from the event tables) -----------------

    def fraction_observing(self, prefix: IPv4Prefix, day: date) -> float:
        """Fraction of full-table peers with an exact route on ``day``.

        Served from the event tables when an index is already in
        memory (the observer sets are pre-intersected with the
        full-table peers at build time), otherwise straight from the
        raw BGP store — :func:`repro.bgp.visibility.fraction_observing`
        semantics, identical either way (pinned by tests).
        """
        index = self._index
        if index is None:
            return bgp_fraction_observing(
                self.world.bgp, self.world.peers, prefix, day
            )
        if not index.total_peers:
            return 0.0
        bucket = index.routes.get(prefix) or ()
        observing: set[int] = set()
        for entry in bucket:
            observing.update(entry.observers_on(day, index.observer_sets))
        return len(observing) / index.total_peers

    def visibility_profile(
        self,
        prefix: IPv4Prefix,
        listed: date,
        offsets: Sequence[int] = DEFAULT_OFFSETS,
    ) -> VisibilityProfile:
        """Figure 2's per-prefix profile, from the event tables."""
        fractions = {
            offset: self.fraction_observing(
                prefix, listed + timedelta(days=offset)
            )
            for offset in offsets
        }
        return VisibilityProfile(
            prefix=prefix, listed=listed, fractions=fractions
        )

    def announced_on(self, prefix: IPv4Prefix, day: date) -> bool:
        """True if an exact-prefix route episode was active on ``day``."""
        index = self._index
        if index is None:
            return self.world.bgp.is_announced(
                prefix, day, include_covering=False
            )
        bucket = index.routes.get(prefix) or ()
        return any(entry.active_on(day) for entry in bucket)

    def withdrawn_within(
        self, prefix: IPv4Prefix, listed: date, days: int = 30
    ) -> bool:
        """§4.1's withdrawal predicate, from the event tables."""
        announced_at_listing = self.announced_on(
            prefix, listed
        ) or self.announced_on(prefix, listed - timedelta(days=1))
        if not announced_at_listing:
            return False
        return not self.announced_on(prefix, listed + timedelta(days=days))


# ---------------------------------------------------------------------------
# persistence
# ---------------------------------------------------------------------------


def _iso(day: date | None) -> str | None:
    return None if day is None else day.isoformat()


def save_substrate_file(
    result: RoaStatusResult,
    directory: Path,
    *,
    key: str = "",
    instrumentation: "Instrumentation | None" = None,
) -> Path | None:
    """Persist the substrate atomically as ``analysis-substrate.json``.

    Write failures (read-only dir, disk full, injected fault at
    ``substrate.save``) degrade to an unpersisted substrate with a
    counter and a warning.  Returns the written path, or None.
    """
    from ..runtime.faults import fault_point
    from ..obs import Instrumentation
    from ..store.container import durable_write

    instr = instrumentation or Instrumentation()
    payload = {
        "format": SUBSTRATE_FORMAT,
        "generator": GENERATOR_VERSION,
        "key": key,
        "roa_status": {
            "points": [
                [
                    _iso(p.day),
                    p.signed,
                    p.signed_routed,
                    p.signed_unrouted,
                    p.allocated_unrouted_unsigned,
                ]
                for p in result.points
            ],
            "by_holder": result.unrouted_signed_by_holder,
            "by_rir": result.unrouted_unsigned_by_rir,
        },
    }
    target = directory / SUBSTRATE_FILENAME
    try:
        with instr.stage("substrate-save", group="substrate"):
            fault_point("substrate.save", instrumentation=instr)
            # durable_write fsyncs the staging file before the rename
            # and the directory after it, so a crash can never publish
            # a torn substrate.
            durable_write(
                directory,
                SUBSTRATE_FILENAME,
                json.dumps(payload, separators=(",", ":")).encode("utf-8"),
            )
    except OSError as error:
        instr.incr("substrate_store_errors")
        message = f"substrate store failed ({error}); continuing unpersisted"
        instr.warn(message)
        warnings.warn(message, RuntimeWarning, stacklevel=2)
        return None
    instr.incr("substrate_stores")
    # The binary columnar sibling: what the fast paths load.  Written
    # after the JSON artifact so a fault degrades to JSON-only.
    from ..store.substrate import save_store_substrate

    save_store_substrate(result, directory, key=key, instrumentation=instr)
    return target


def load_substrate_file(
    directory: Path,
    *,
    expected_key: str = "",
    instrumentation: "Instrumentation | None" = None,
) -> RoaStatusResult:
    """Load a persisted substrate, verifying its header.

    Raises :class:`SubstrateLoadError` (or the underlying ``OSError`` /
    ``json.JSONDecodeError``) when the file is missing, torn, or was
    built by a different generator or for a different world — callers
    evict and rebuild (see :meth:`AnalysisSubstrate.roa_status`).
    """
    from ..runtime.faults import corrupt_file, fault_point
    from ..obs import Instrumentation

    instr = instrumentation or Instrumentation()
    path = directory / SUBSTRATE_FILENAME
    with instr.stage("substrate-load", group="substrate"):
        # A truncate fault at the load site models a torn file that
        # became visible anyway (crash between write and fsync).
        corrupt_file("substrate.load", path, instrumentation=instr)
        fault_point("substrate.load", instrumentation=instr)
        raw = json.loads(path.read_text())
        if raw.get("format") != SUBSTRATE_FORMAT:
            raise SubstrateLoadError(
                f"substrate format {raw.get('format')!r} != "
                f"{SUBSTRATE_FORMAT}"
            )
        if raw.get("generator") != GENERATOR_VERSION:
            raise SubstrateLoadError(
                f"substrate generator {raw.get('generator')!r} != "
                f"{GENERATOR_VERSION!r}"
            )
        if expected_key and raw.get("key") != expected_key:
            raise SubstrateLoadError(
                f"substrate key {raw.get('key')!r} != {expected_key!r}"
            )
        status = raw["roa_status"]
        result = RoaStatusResult(
            points=tuple(
                RoaStatusPoint(
                    day=date.fromisoformat(day),
                    signed=signed,
                    signed_routed=routed,
                    signed_unrouted=unrouted,
                    allocated_unrouted_unsigned=unsigned,
                )
                for day, signed, routed, unrouted, unsigned in status[
                    "points"
                ]
            ),
            unrouted_signed_by_holder=dict(status["by_holder"]),
            unrouted_unsigned_by_rir=dict(status["by_rir"]),
        )
    instr.incr("substrate_loads")
    return result
