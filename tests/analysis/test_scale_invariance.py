"""Scale invariance: rates survive shrinking the background population.

The tiny/small/paper presets differ only in the never-on-DROP population
size; every behavioural *rate* is a config constant.  These tests pin
that property — it is what justifies running the fast scales in CI while
EXPERIMENTS.md reports paper scale.
"""

import pytest

from repro.analysis import (
    analyze_irr,
    analyze_rpki_uptake,
    analyze_visibility,
    classify_drop,
    load_entries,
)
from repro.synth import ScenarioConfig, build_world


@pytest.fixture(scope="module")
def tiny():
    world = build_world(ScenarioConfig.tiny())
    return world, load_entries(world)


@pytest.fixture(scope="module")
def small():
    world = build_world(ScenarioConfig.small())
    return world, load_entries(world)


class TestScaleInvariance:
    def test_drop_population_identical(self, tiny, small):
        (tw, te), (sw, se) = tiny, small
        assert len(te) == len(se) == 712

    def test_classification_identical(self, tiny, small):
        (tw, te), (sw, se) = tiny, small
        a = classify_drop(tw, te)
        b = classify_drop(sw, se)
        for bar_a, bar_b in zip(a.bars, b.bars):
            assert bar_a.total_prefixes == bar_b.total_prefixes

    def test_withdrawal_rates_close(self, tiny, small):
        (tw, te), (sw, se) = tiny, small
        a = analyze_visibility(tw, te)
        b = analyze_visibility(sw, se)
        assert a.withdrawal_rate == pytest.approx(
            b.withdrawal_rate, abs=0.02
        )

    def test_table1_drop_columns_identical(self, tiny, small):
        (tw, te), (sw, se) = tiny, small
        a = analyze_rpki_uptake(tw, te)
        b = analyze_rpki_uptake(sw, se)
        # The DROP columns are background-independent.
        assert a.overall.removed_total == b.overall.removed_total
        assert a.overall.removed_signed == b.overall.removed_signed
        assert a.overall.present_signed == b.overall.present_signed

    def test_table1_never_rate_converges(self, tiny, small):
        (tw, te), (sw, se) = tiny, small
        a = analyze_rpki_uptake(tw, te)
        b = analyze_rpki_uptake(sw, se)
        # The 10x larger background sits closer to the configured 22.3%.
        assert b.overall.never_total > 5 * a.overall.never_total
        assert b.overall.never_rate == pytest.approx(0.223, abs=0.02)

    def test_irr_statistics_identical(self, tiny, small):
        (tw, te), (sw, se) = tiny, small
        a = analyze_irr(tw, te)
        b = analyze_irr(sw, se)
        assert a.with_route_object == b.with_route_object
        assert a.hijacker_asn_matches == b.hijacker_asn_matches
        assert a.distinct_hijacker_asns == b.distinct_hijacker_asns
