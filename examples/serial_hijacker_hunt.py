#!/usr/bin/env python3
"""Threat hunting: from one blocklisted prefix to the whole operation.

Chains three of the library's capabilities the way an analyst would:

1. profile every origin AS against the DROP list to surface serial
   hijacker candidates (after Testart et al.);
2. pivot into the IRR to recover the candidates' registration
   infrastructure (the ORG-ID clusters of §5);
3. arm a hijack monitor for the space those actors touched, replaying
   BGP to see what else they announced and when.

Run:  python examples/serial_hijacker_hunt.py
"""

from collections import Counter

from repro.analysis import load_entries, profile_origins
from repro.bgp.alarms import HijackMonitor, ProtectedPrefix
from repro.reporting import TextTable
from repro.synth import ScenarioConfig, build_world


def main() -> None:
    world = build_world(ScenarioConfig.tiny())
    entries = load_entries(world)

    print("=== step 1: score origins against the DROP list ===")
    report = profile_origins(world, entries)
    table = TextTable(["origin", "prefixes", "on DROP", "score"])
    for candidate in report.candidates[:8]:
        table.add_row(
            f"AS{candidate.asn}",
            candidate.prefixes,
            candidate.listed_on_drop,
            candidate.score,
        )
    print(table.render())
    print(
        f"{len(report.candidates)} candidates out of "
        f"{len(report.profiles)} origins profiled\n"
    )

    print("=== step 2: pivot into the IRR ===")
    candidate_asns = {c.asn for c in report.candidates}
    orgs: Counter[str] = Counter()
    for record in world.irr.records():
        if record.route.origin in candidate_asns and record.route.org_id:
            orgs[record.route.org_id] += 1
    for org, count in orgs.most_common(5):
        print(f"  {org}: {count} route objects registered")
    print(
        "  -> a handful of ORG-IDs registered the bulk of the forged "
        "objects (§5)\n"
    )

    print("=== step 3: monitor the space the top actor touched ===")
    top_org = orgs.most_common(1)[0][0]
    protected = []
    for record in world.irr.records():
        if record.route.org_id == top_org:
            # The IRR object's origin is the *attacker's*; the prefix's
            # pre-attack origins (if any) are the legitimate ones.
            historic = world.bgp.historic_origins(
                record.route.prefix, record.created
            ) - {record.route.origin}
            protected.append(
                ProtectedPrefix(
                    record.route.prefix,
                    frozenset(historic or {0}),
                )
            )
    monitor = HijackMonitor(protected)
    alarms = list(monitor.scan(world.bgp))
    print(
        f"  {top_org}: monitoring {len(protected)} prefixes -> "
        f"{len(alarms)} alarms"
    )
    for alarm in alarms[:6]:
        print(f"    {alarm}")
    if len(alarms) > 6:
        print(f"    ... and {len(alarms) - 6} more")


if __name__ == "__main__":
    main()
