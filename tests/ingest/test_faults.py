"""Fault injection on the ingest path: eviction, never poisoning.

Three abnormal paths, all pinned against the identity rule:

* ``io-error@ingest.apply`` — a delta application that dies mid-flight
  must leave the previous day's state serving (the daemon answers, the
  as-of day does not move) and the *next* advance must succeed cleanly;
* ``io-error@ingest.journal`` on append — journal persistence degrades
  to unjournaled operation with a warning and a counter, the advance
  itself succeeds;
* ``truncate@ingest.journal`` at load — a torn journal is evicted and
  recovery falls back to the as-of base state, which then re-advances
  to exactly the answers an untorn restart would have given.
"""

import json
import threading
import warnings
from datetime import timedelta

import pytest

from repro.ingest import Ingestor, IngestError, build_index_as_of
from repro.query import QueryServer
from repro.query.engine import QueryEngine
from repro.runtime import Instrumentation
from repro.runtime.faults import InjectedIOError, injected
from repro.store.journal import JOURNAL_FILENAME, DeltaJournal
from repro.synth import ScenarioConfig, build_world

from .test_identity import engine_outputs, probe_days, probe_prefixes


@pytest.fixture(scope="module")
def world():
    return build_world(ScenarioConfig.tiny(seed=7))


class TestApplyFaults:
    def test_failed_apply_leaves_previous_day_serving(self, world):
        instr = Instrumentation()
        ingestor = Ingestor(world, instrumentation=instr)
        ingestor.advance()
        day_one = world.window.start + timedelta(days=1)
        engine_before = ingestor.engine
        index_before = ingestor.index
        prefixes = probe_prefixes(world)
        days = probe_days(world, world.window.start, day_one)
        answers_before = engine_outputs(engine_before, prefixes, days)

        with injected("io-error@ingest.apply"):
            with pytest.raises(InjectedIOError):
                ingestor.advance()

        assert ingestor.as_of == day_one
        assert ingestor.days_applied == 1
        assert ingestor.engine is engine_before
        assert ingestor.index is index_before
        assert instr.counters["ingest_apply_failures"] == 1
        assert engine_outputs(engine_before, prefixes, days) == answers_before
        # The fault disarmed: the next advance applies day two cleanly.
        results = ingestor.advance()
        assert [r.day for r in results] == [day_one + timedelta(days=1)]

    def test_failed_apply_over_http_answers_500_then_serves(self, world):
        ingestor = Ingestor(world)
        srv = QueryServer(ingestor.engine, "127.0.0.1", 0, ingestor=ingestor)
        thread = threading.Thread(
            target=srv.serve_until_shutdown, daemon=True
        )
        thread.start()
        try:
            from tests.query.conftest import fetch

            address = srv.server_address
            with injected("io-error@ingest.apply"):
                reply = fetch(address, "POST", "/v1/ingest", b"")
            assert reply.status == 500
            payload = json.loads(reply.body)
            assert payload["error"]["code"] == "ingest.failed"
            # The daemon still answers from the pre-fault state.
            prefix = next(iter(ingestor.index.drop))
            reply = fetch(address, "GET", f"/v1/status?prefix={prefix}")
            assert reply.status == 200
            health = json.loads(fetch(address, "GET", "/healthz").body)
            assert health["ingest"]["days_applied"] == 0
            # And the retry succeeds once the fault is gone.
            assert fetch(address, "POST", "/v1/ingest", b"").status == 200
        finally:
            srv.shutdown()
            thread.join(timeout=10)
        assert not thread.is_alive()


class TestJournalFaults:
    def test_append_io_error_degrades_not_fails(self, world, tmp_path):
        instr = Instrumentation()
        ingestor = Ingestor(
            world, state_dir=tmp_path / "state", instrumentation=instr
        )
        with injected("io-error@ingest.journal"):
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                results = ingestor.advance()
        assert len(results) == 1
        assert ingestor.days_applied == 1
        assert instr.counters["ingest_journal_store_errors"] == 1
        assert any(
            "continuing unjournaled" in str(w.message) for w in caught
        )
        # The next append rewrites the whole container, so the lost
        # day is back in the durable record.
        ingestor.advance()
        assert instr.counters["ingest_journal_stores"] == 1
        reloaded = DeltaJournal.load(tmp_path / "state")
        assert len(reloaded.batches) == 2

    def test_torn_journal_evicted_and_rebuilt(self, world, tmp_path):
        state = tmp_path / "state"
        first = Ingestor(world, state_dir=state)
        final = world.window.start + timedelta(days=6)
        first.advance(to_day=final)
        journal_path = state / JOURNAL_FILENAME
        assert journal_path.exists()

        instr = Instrumentation()
        with injected("truncate@ingest.journal"):
            resumed = Ingestor(
                world, state_dir=state, instrumentation=instr
            )
        # Eviction, not poisoning: the torn journal is gone and the
        # service restarted from the base day.
        assert instr.counters["ingest_journal_evictions"] == 1
        assert resumed.as_of == world.window.start
        assert resumed.days_applied == 0
        prefixes = probe_prefixes(world)
        days = probe_days(world, world.window.start, world.window.start)
        base = QueryEngine(build_index_as_of(world, world.window.start))
        assert engine_outputs(
            resumed.engine, prefixes, days
        ) == engine_outputs(base, prefixes, days)
        # Re-advancing lands on exactly the untorn answers, and the
        # journal file is rebuilt durably as it goes.
        resumed.advance(to_day=final)
        days = probe_days(world, world.window.start, final)
        assert engine_outputs(
            resumed.engine, prefixes, days
        ) == engine_outputs(first.engine, prefixes, days)
        assert journal_path.exists()
        third = Ingestor(world, state_dir=state)
        assert third.as_of == final
        assert third.days_applied == 6

    def test_garbage_journal_evicted(self, world, tmp_path):
        state = tmp_path / "state"
        Ingestor(world, state_dir=state).advance()
        # Not merely torn — overwritten with bytes that are no container
        # at all (a bad disk, a stray writer): same eviction path.
        (state / JOURNAL_FILENAME).write_bytes(b"not a container")
        instr = Instrumentation()
        resumed = Ingestor(world, state_dir=state, instrumentation=instr)
        assert instr.counters["ingest_journal_evictions"] == 1
        assert resumed.days_applied == 0
        assert not (state / JOURNAL_FILENAME).exists()

    def test_foreign_key_journal_ignored(self, world, tmp_path):
        state = tmp_path / "state"
        Ingestor(world, key="world-a", state_dir=state).advance()
        # A restart under a different world key must not replay the
        # foreign journal (its deltas describe different archives).
        resumed = Ingestor(world, key="world-b", state_dir=state)
        assert resumed.days_applied == 0
        assert resumed.as_of == world.window.start
        # Its first advance overwrites the foreign journal in place.
        resumed.advance()
        reloaded = DeltaJournal.load(state, expected_key="world-b")
        assert len(reloaded.batches) == 1


class TestAdvanceBounds:
    def test_window_end_exhaustion_is_ingest_error(self, world):
        ingestor = Ingestor(
            world, start_day=world.window.end - timedelta(days=1)
        )
        ingestor.advance()
        assert ingestor.as_of == world.window.end
        with pytest.raises(IngestError, match="nothing left to ingest"):
            ingestor.advance()
