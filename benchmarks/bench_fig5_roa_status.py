"""Figure 5 / §6.2.1: routing status of ROA-covered space over time."""

from repro.analysis import analyze_roa_status


def bench_fig5_roa_status(benchmark, world, entries):
    result = benchmark(analyze_roa_status, world)
    first, final = result.first, result.final
    # Shape: signed space grows ~1.4x across the window while the routed
    # share of it declines; unrouted-signed space roughly quadruples;
    # unsigned-unrouted space stays flat around 30 /8s.
    assert 1.3 < final.signed / first.signed < 1.6
    assert final.percent_routed < first.percent_routed
    assert final.signed_unrouted > 3 * first.signed_unrouted
    assert abs(final.allocated_unrouted_unsigned
               - first.allocated_unrouted_unsigned) < 3.0
    # Monotone-ish growth of signed space (no sample dips below start).
    assert all(p.signed >= first.signed - 1.0 for p in result.points)


def bench_fig5_holder_concentration(benchmark, world, entries):
    result = benchmark(analyze_roa_status, world)
    # §6.2.1: three organizations hold ~70% of unrouted signed space, and
    # ARIN manages ~60% of the unsigned unrouted space.
    assert 0.6 < result.top_holder_share(3) < 0.8
    assert 0.5 < result.rir_unsigned_share("ARIN") < 0.7
    top = sorted(
        result.unrouted_signed_by_holder.items(), key=lambda kv: -kv[1]
    )
    assert top[0][0] == "amazon"
