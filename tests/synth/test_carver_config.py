"""Unit tests for the space carver and scenario config."""

import pytest

from repro.synth.builder import _RESERVED_SLASH8, SpaceCarver
from repro.synth.config import ScenarioConfig


class TestSpaceCarver:
    def test_no_overlap(self):
        carver = SpaceCarver()
        seen = []
        for length in (24, 16, 20, 8, 24, 12):
            prefix = carver.carve(length)
            for other in seen:
                assert not prefix.overlaps(other), (prefix, other)
            seen.append(prefix)

    def test_alignment(self):
        carver = SpaceCarver()
        carver.carve(24)
        p16 = carver.carve(16)
        assert p16.network % p16.num_addresses == 0

    def test_skips_reserved_slash8s(self):
        carver = SpaceCarver()
        for _ in range(250):
            prefix = carver.carve(9)
            first = prefix.network >> 24
            last = prefix.last >> 24
            for s8 in range(first, last + 1):
                assert s8 not in _RESERVED_SLASH8

    def test_exhaustion_raises(self):
        carver = SpaceCarver()
        with pytest.raises(RuntimeError):
            for _ in range(300):
                carver.carve(8)

    def test_carve_range_contiguous(self):
        carver = SpaceCarver()
        r = carver.carve_range(3_000_000, align_length=12)
        assert r.num_addresses >= 3_000_000
        assert r.num_addresses % (1 << 20) == 0

    def test_carve_slash8_equiv(self):
        carver = SpaceCarver()
        chunks = carver.carve_slash8_equiv(1.0, 10)
        assert len(chunks) == 4
        assert all(c.length == 10 for c in chunks)

    def test_case_study_blocks_reserved(self):
        # The Figure 4 prefixes must never collide with carved space.
        for s8 in (45, 132, 187, 191, 200):
            assert s8 in _RESERVED_SLASH8


class TestScenarioConfig:
    def test_paper_totals(self):
        cfg = ScenarioConfig.paper()
        assert cfg.total_drop_prefixes == 712
        assert cfg.total_unallocated == 40
        assert cfg.total_background == 194_601

    def test_tiny_preserves_rates(self):
        paper = ScenarioConfig.paper()
        tiny = ScenarioConfig.tiny()
        for rir in paper.regions:
            assert (
                tiny.regions[rir].base_signing_rate
                == paper.regions[rir].base_signing_rate
            )
            assert tiny.regions[rir].background_prefixes < (
                paper.regions[rir].background_prefixes
            )
        assert tiny.total_drop_prefixes == 712

    def test_frozen(self):
        cfg = ScenarioConfig.paper()
        with pytest.raises(AttributeError):
            cfg.seed = 1

    def test_region_quotas_sum_to_table1_populations(self):
        cfg = ScenarioConfig.paper()
        removed = sum(p.drop_removed for p in cfg.regions.values())
        present = sum(p.drop_present for p in cfg.regions.values())
        assert removed == 186
        assert present == 420
