"""Unit tests for the experiment registry."""

import pytest

from repro.reporting.experiments import (
    EXPERIMENTS,
    Metric,
    render_markdown,
    render_text,
    run_all,
    run_experiment,
)
from repro.synth import ScenarioConfig, build_world


@pytest.fixture(scope="module")
def world():
    return build_world(ScenarioConfig.tiny())


class TestMetric:
    def test_matches_within_tolerance(self):
        assert Metric("x", 100, 110).matches()
        assert not Metric("x", 100, 200).matches()

    def test_matches_zero_paper_value(self):
        assert Metric("x", 0, 0).matches()
        assert not Metric("x", 0, 5).matches()
        # Floats below the absolute tolerance still count as zero.
        assert Metric("x", 0, 1e-12).matches()
        assert Metric("x", 0.0, -1e-10).matches()
        assert not Metric("x", 0, 1e-3).matches()

    def test_string_metric_exact(self):
        assert Metric("x", "yes", "yes").matches()
        assert not Metric("x", "yes", "no").matches()

    def test_mixed_types_compare_by_equality(self):
        # A string never slips past the numeric path, even paired with
        # a number or when the paper value is 0.
        assert not Metric("x", 0, "0").matches()
        assert not Metric("x", "100", 100).matches()
        assert not Metric("x", 100, "100").matches()

    def test_bools_are_not_numeric(self):
        # bool is an int subclass; it must compare by identity of value,
        # not fall into the relative-tolerance branch.
        assert Metric("x", True, True).matches()
        assert not Metric("x", True, False).matches()
        assert not Metric("x", False, 0.1).matches()


class TestRegistry:
    def test_all_design_md_experiments_registered(self):
        expected = {
            "fig1", "fig2", "fig2-peers", "tab1", "fig3", "fig4", "fig5",
            "fig6", "fig7", "tab2", "sec4.1-dealloc", "sec5", "sec6.2-as0",
        }
        assert expected <= set(EXPERIMENTS)

    def test_run_experiment_by_id(self, world):
        report = run_experiment(world, "tab2")
        assert report.exp_id == "tab2"
        assert report.metrics

    def test_unknown_experiment(self, world):
        with pytest.raises(KeyError):
            run_experiment(world, "fig99")

    def test_run_all_covers_registry(self, world):
        reports = run_all(world)
        assert {r.exp_id for r in reports} == set(EXPERIMENTS)

    def test_every_numeric_metric_within_tolerance(self, world):
        for report in run_all(world):
            for metric in report.metrics:
                if isinstance(metric.paper, (int, float)):
                    assert metric.matches(), (
                        report.exp_id, metric.name, metric.paper,
                        metric.measured,
                    )


class TestRendering:
    def test_render_text_contains_metrics(self, world):
        report = run_experiment(world, "fig2")
        text = render_text(report)
        assert "fig2" in text
        assert "withdrawn within 30 days" in text
        assert "paper" in text

    def test_render_markdown_table_syntax(self, world):
        reports = [run_experiment(world, "tab2")]
        markdown = render_markdown(reports)
        assert "### tab2" in markdown
        assert "| metric | paper | measured |" in markdown
        assert "|---|---|---|" in markdown
