"""The binary columnar container: header, section table, checksums.

Every ``repro.store`` artifact — the query index, the analysis
substrate, a background shard's merge payload — is one *container*: a
versioned little-endian file holding named typed **sections** (flat
columns of ``B``/``H``/``I``/``Q``/``d`` values) behind a JSON metadata
blob and a section table with per-section CRC32 checksums.

Layout (all integers little-endian)::

    +--------------------------------------------------------------+
    | magic "RDROPST\\x01" | format u32 | meta length u32           |
    | meta: canonical JSON (sorted keys, compact separators), utf-8 |
    | section count u32                                            |
    | per section: name 16s | typecode c | pad 7 |                 |
    |              offset u64 | nbytes u64 | crc32 u32 | pad 4     |
    | header crc32 u32  (over every preceding byte)                |
    | padding to 8-byte alignment                                  |
    | section payloads, each 8-byte aligned                        |
    +--------------------------------------------------------------+

Readers :func:`StoreReader.open` the file through ``mmap`` and hand out
**zero-copy typed views** (``memoryview.cast``): nothing is parsed or
copied per row, so N processes mapping the same file share one page
cache image and per-process anonymous memory stays near zero.  All
checksums are verified eagerly at open — a torn or bit-flipped file
fails fast and the caller evicts it (the same discipline as the JSON
artifacts) — which also pre-faults the pages into the *shared* cache.

Writers go through :func:`durable_write`: staging file, ``flush`` +
``fsync``, atomic ``rename``, then ``fsync`` of the directory — the
crash-safety contract the torn-file fault tests pin.
"""

from __future__ import annotations

import io
import json
import mmap
import os
import struct
import sys
import tempfile
import zlib
from pathlib import Path

from ..errors import ReproError

__all__ = [
    "STORE_FORMAT",
    "StoreError",
    "StoreReader",
    "build_store",
    "durable_write",
    "fsync_directory",
]

#: Container layout version; bump to orphan every persisted store file.
STORE_FORMAT = 1

_MAGIC = b"RDROPST\x01"
_HEAD = struct.Struct("<8sII")  # magic, format, meta nbytes
_COUNT = struct.Struct("<I")
_SECTION = struct.Struct("<16sc7xQQI4x")  # name, typecode, offset, nbytes, crc
_CRC = struct.Struct("<I")
_ALIGN = 8

#: Section element types: array/memoryview typecode -> element size.
_ITEMSIZES = {"B": 1, "H": 2, "I": 4, "Q": 8, "d": 8}


class StoreError(ReproError, ValueError):
    """A store container that cannot be trusted (torn, foreign, stale)."""

    code = "store.invalid"


def _require_little_endian() -> None:
    if sys.byteorder != "little":  # pragma: no cover - LE-only CI
        raise StoreError(
            "binary store requires a little-endian host; "
            "use the JSON artifacts instead"
        )


def _pad(out: io.BytesIO) -> None:
    out.write(b"\x00" * (-out.tell() % _ALIGN))


def build_store(meta: dict, sections) -> bytes:
    """Serialize ``meta`` plus named columns into one container blob.

    ``sections`` is an iterable of ``(name, typecode, data)`` where
    ``data`` is anything exposing the buffer protocol (``array.array``,
    ``bytes``, ``memoryview``) whose byte length is a multiple of the
    typecode's element size.  Names must be unique ASCII, at most 16
    bytes.
    """
    _require_little_endian()
    entries = []
    payloads = []
    for name, typecode, data in sections:
        raw = bytes(data)
        encoded = name.encode("ascii")
        if not encoded or len(encoded) > 16:
            raise StoreError(f"section name {name!r} must be 1..16 bytes")
        itemsize = _ITEMSIZES.get(typecode)
        if itemsize is None:
            raise StoreError(f"section {name!r}: unknown typecode {typecode!r}")
        if len(raw) % itemsize:
            raise StoreError(
                f"section {name!r}: {len(raw)} bytes is not a multiple "
                f"of itemsize {itemsize}"
            )
        entries.append((encoded, typecode, raw))
        payloads.append(raw)

    meta_blob = json.dumps(
        meta, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    head_size = (
        _HEAD.size
        + len(meta_blob)
        + _COUNT.size
        + len(entries) * _SECTION.size
        + _CRC.size
    )
    cursor = head_size + (-head_size % _ALIGN)
    table = []
    for encoded, typecode, raw in entries:
        table.append((encoded, typecode, cursor, len(raw), zlib.crc32(raw)))
        cursor += len(raw) + (-len(raw) % _ALIGN)

    out = io.BytesIO()
    out.write(_HEAD.pack(_MAGIC, STORE_FORMAT, len(meta_blob)))
    out.write(meta_blob)
    out.write(_COUNT.pack(len(table)))
    for encoded, typecode, offset, nbytes, crc in table:
        out.write(
            _SECTION.pack(
                encoded.ljust(16, b"\x00"),
                typecode.encode("ascii"),
                offset,
                nbytes,
                crc,
            )
        )
    out.write(_CRC.pack(zlib.crc32(out.getvalue())))
    for raw in payloads:
        _pad(out)
        out.write(raw)
    return out.getvalue()


class StoreReader:
    """A parsed container over an ``mmap`` (or any in-memory buffer).

    Holds the mapping open for the lifetime of every view it hands out;
    views are ``memoryview.cast`` slices — zero-copy, indexable, and
    directly usable with :mod:`bisect`.
    """

    def __init__(self, buffer, *, source: str = "<memory>") -> None:
        _require_little_endian()
        self._buffer = buffer
        self._view = memoryview(buffer)
        self.source = source
        try:
            self.meta, self._sections = self._parse()
        except StoreError:
            self._view.release()
            raise

    @classmethod
    def open(cls, path: Path) -> "StoreReader":
        """Map ``path`` read-only and parse + checksum it eagerly."""
        with open(path, "rb") as handle:
            if os.fstat(handle.fileno()).st_size == 0:
                raise StoreError(f"{path}: empty store file")
            mapped = mmap.mmap(
                handle.fileno(), 0, access=mmap.ACCESS_READ
            )
        return cls(mapped, source=str(path))

    @classmethod
    def from_bytes(cls, blob: bytes) -> "StoreReader":
        return cls(blob)

    def _parse(self):
        view = self._view
        if len(view) < _HEAD.size:
            raise StoreError(f"{self.source}: truncated header")
        magic, fmt, meta_len = _HEAD.unpack_from(view, 0)
        if magic != _MAGIC:
            raise StoreError(f"{self.source}: bad magic {magic!r}")
        if fmt != STORE_FORMAT:
            raise StoreError(
                f"{self.source}: store format {fmt} != {STORE_FORMAT}"
            )
        cursor = _HEAD.size
        if len(view) < cursor + meta_len + _COUNT.size:
            raise StoreError(f"{self.source}: truncated metadata")
        try:
            meta = json.loads(bytes(view[cursor : cursor + meta_len]))
        except ValueError as error:
            raise StoreError(f"{self.source}: bad metadata ({error})") from None
        cursor += meta_len
        (count,) = _COUNT.unpack_from(view, cursor)
        cursor += _COUNT.size
        table_end = cursor + count * _SECTION.size
        if len(view) < table_end + _CRC.size:
            raise StoreError(f"{self.source}: truncated section table")
        sections: dict[str, tuple[str, int, int]] = {}
        for _ in range(count):
            raw_name, raw_code, offset, nbytes, crc = _SECTION.unpack_from(
                view, cursor
            )
            cursor += _SECTION.size
            name = raw_name.rstrip(b"\x00").decode("ascii")
            typecode = raw_code.decode("ascii")
            if typecode not in _ITEMSIZES:
                raise StoreError(
                    f"{self.source}: section {name!r} has unknown "
                    f"typecode {typecode!r}"
                )
            if offset + nbytes > len(view):
                raise StoreError(
                    f"{self.source}: section {name!r} overruns the file"
                )
            if zlib.crc32(view[offset : offset + nbytes]) != crc:
                raise StoreError(
                    f"{self.source}: section {name!r} checksum mismatch"
                )
            sections[name] = (typecode, offset, nbytes)
        (header_crc,) = _CRC.unpack_from(view, table_end)
        if zlib.crc32(view[:table_end]) != header_crc:
            raise StoreError(f"{self.source}: header checksum mismatch")
        return meta, sections

    def section_names(self) -> list[str]:
        return list(self._sections)

    def view(self, name: str, typecode: str | None = None) -> memoryview:
        """The zero-copy typed view of one section's column."""
        try:
            stored_code, offset, nbytes = self._sections[name]
        except KeyError:
            raise StoreError(
                f"{self.source}: missing section {name!r}"
            ) from None
        if typecode is not None and typecode != stored_code:
            raise StoreError(
                f"{self.source}: section {name!r} is {stored_code!r}, "
                f"expected {typecode!r}"
            )
        raw = self._view[offset : offset + nbytes]
        return raw if stored_code == "B" else raw.cast(stored_code)

    def close(self) -> None:  # pragma: no cover - GC handles the common path
        self._view.release()
        if isinstance(self._buffer, mmap.mmap):
            self._buffer.close()


# ---------------------------------------------------------------------------
# durable writes
# ---------------------------------------------------------------------------


def fsync_directory(directory: Path) -> None:
    """Flush a directory's entry table so a rename survives a crash.

    Best-effort: platforms/filesystems that cannot fsync a directory
    (some network mounts) degrade to the plain rename semantics.
    """
    try:
        fd = os.open(directory, os.O_RDONLY | getattr(os, "O_DIRECTORY", 0))
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - fs-dependent
        pass
    finally:
        os.close(fd)


def durable_write(directory: Path, filename: str, blob: bytes) -> Path:
    """Crash-safe atomic publish of ``blob`` as ``directory/filename``.

    Stages in the same directory, ``fsync``\\ s the staging file *before*
    the atomic rename (so the rename can never expose a torn file), then
    ``fsync``\\ s the directory (so the rename itself is on disk).
    """
    fd, staging = tempfile.mkstemp(dir=directory, prefix=f".{filename}-")
    try:
        with os.fdopen(fd, "wb") as out:
            out.write(blob)
            out.flush()
            os.fsync(out.fileno())
        os.rename(staging, directory / filename)
    except BaseException:
        Path(staging).unlink(missing_ok=True)
        raise
    fsync_directory(directory)
    return directory / filename
