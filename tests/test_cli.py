"""Tests for the repro-drop command-line interface."""

import pytest

from repro.cli import EXIT_DEGRADED, build_parser, main
from repro.reporting import EXPERIMENTS


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_build_requires_out(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["build"])

    def test_report_defaults(self):
        args = build_parser().parse_args(["report", "--exp", "tab1"])
        assert args.scale == "tiny"
        assert args.exp == ["tab1"]
        assert not args.all

    def test_jobs_zero_accepted(self):
        args = build_parser().parse_args(["report", "--exp", "tab1",
                                          "--jobs", "0"])
        assert args.jobs == 0

    def test_jobs_negative_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["report", "--exp", "tab1",
                                       "--jobs", "-2"])
        assert excinfo.value.code == 2
        assert "must be >= 0" in capsys.readouterr().err

    def test_jobs_garbage_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["report", "--exp", "tab1",
                                       "--jobs", "many"])
        assert excinfo.value.code == 2
        assert "invalid" in capsys.readouterr().err


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out.splitlines()
        assert set(out) == set(EXPERIMENTS)

    def test_report_single_experiment(self, capsys):
        assert main(["report", "--exp", "tab2"]) == 0
        out = capsys.readouterr().out
        assert "Appendix A" in out
        assert "measured" in out

    def test_report_unknown_experiment(self, capsys):
        assert main(["report", "--exp", "nope"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_report_nothing_selected(self, capsys):
        assert main(["report"]) == 2
        assert "nothing to run" in capsys.readouterr().err

    def test_build_then_report_from_archives(self, tmp_path, capsys):
        out_dir = tmp_path / "archives"
        assert main(["build", "--out", str(out_dir), "--seed", "5"]) == 0
        built = capsys.readouterr().out
        assert "712 DROP prefixes" in built
        assert (out_dir / "sbl.jsonl").exists()
        assert main(
            ["report", "--archives", str(out_dir), "--exp", "fig2-peers"]
        ) == 0
        report = capsys.readouterr().out
        assert "peers filtering DROP" in report

    def test_markdown(self, capsys):
        assert main(["markdown"]) == 0
        out = capsys.readouterr().out
        assert "### fig1" in out
        assert "### ext-rov" in out
        assert "| metric | paper | measured |" in out


class TestDegradedRuns:
    def test_env_jobs_negative_is_a_usage_error(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_JOBS", "-2")
        with pytest.raises(SystemExit) as excinfo:
            main(["report", "--exp", "tab2"])
        assert excinfo.value.code == 2
        assert "jobs must be >= 0" in capsys.readouterr().err

    def test_corrupt_cache_entry_degrades_exit_status(
        self, tmp_path, capsys
    ):
        args = ["report", "--exp", "tab2", "--cache-dir", str(tmp_path)]
        assert main(args) == 0
        capsys.readouterr()
        (entry,) = (tmp_path / "worlds").iterdir()
        (entry / "config.json").write_text("{ torn")
        # The run self-heals (evict + rebuild) but reports degradation.
        assert main(args) == EXIT_DEGRADED
        captured = capsys.readouterr()
        assert "Appendix A" in captured.out  # full, correct report
        assert "degraded run:" in captured.err
        assert "world_cache_evictions=1" in captured.err
        # A healthy entry was re-stored: the next run is clean again.
        assert main(args) == 0


class TestExitCodePolicy:
    def test_enum_values(self):
        from repro.cli import ExitCode

        assert [(c.name, c.value) for c in ExitCode] == [
            ("OK", 0), ("FAILURE", 1), ("USAGE", 2), ("DEGRADED", 3)
        ]
        # The pre-enum constant stays importable and equal.
        assert EXIT_DEGRADED == ExitCode.DEGRADED == 3

    def test_commands_return_exit_codes(self, capsys):
        from repro.cli import ExitCode

        assert main(["report", "--exp", "tab2"]) is ExitCode.OK
        assert main(["report", "--exp", "nope"]) is ExitCode.USAGE
        assert main(["query", "not-a-prefix"]) is ExitCode.USAGE
        capsys.readouterr()


class TestTraceExport:
    def test_trace_flag_writes_jsonl(self, tmp_path, capsys):
        import json as json_mod

        trace = tmp_path / "trace.jsonl"
        args = ["report", "--exp", "tab2", "--trace", str(trace)]
        assert main(args) == 0
        capsys.readouterr()
        spans = [
            json_mod.loads(line)
            for line in trace.read_text().splitlines()
        ]
        assert spans
        names = {span["name"] for span in spans}
        assert "tab2" in names  # the experiment record span
        # The world-resolution stage rides along (a cache-group span on
        # a cache hit, build-group stages on a fresh build).
        assert any(
            span["attrs"].get("group") in ("build", "cache")
            for span in spans
        )

    def test_trace_env_var(self, tmp_path, monkeypatch, capsys):
        trace = tmp_path / "env-trace.jsonl"
        monkeypatch.setenv("REPRO_TRACE", str(trace))
        assert main(["query", "192.0.2.0/24"]) == 0
        capsys.readouterr()
        assert trace.exists() and trace.read_text().strip()

    def test_profile_prints_hotspots(self, capsys):
        assert main(["report", "--exp", "tab2", "--profile"]) == 0
        err = capsys.readouterr().err
        assert "-- profile: world-resolve" in err
        assert "-- profile: experiments" in err
        assert "cumulative" in err


class TestIngestCommand:
    def test_advances_and_prints_days(self, capsys):
        assert main(["ingest", "--days", "3"]) == 0
        captured = capsys.readouterr()
        lines = captured.out.strip().splitlines()
        assert len(lines) == 3
        assert all("delta events" in line for line in lines)
        assert "3 days since" in captured.err

    def test_json_format_and_state_dir(self, tmp_path, capsys):
        state = tmp_path / "state"
        args = ["ingest", "--days", "2", "--state-dir", str(state),
                "--format", "json"]
        assert main(args) == 0
        import json as json_mod

        first = [json_mod.loads(line)
                 for line in capsys.readouterr().out.strip().splitlines()]
        assert [r["replayed"] for r in first] == [False, False]
        # A second invocation recovers from the journal and continues.
        assert main(args) == 0
        captured = capsys.readouterr()
        assert "4 days since" in captured.err

    def test_as_of_sets_base_day(self, capsys):
        assert main(["ingest", "--as-of", "2019-07-01", "--days", "1"]) == 0
        assert "since 2019-07-01" in capsys.readouterr().err

    def test_bad_as_of_is_usage_error(self, capsys):
        assert main(["ingest", "--as-of", "nope"]) == 2
        assert "bad --as-of" in capsys.readouterr().err

    def test_as_of_outside_window_is_usage_error(self, capsys):
        assert main(["ingest", "--as-of", "1999-01-01"]) == 2
        assert "outside the world window" in capsys.readouterr().err

    def test_to_and_days_conflict(self, capsys):
        assert main(["ingest", "--to", "2019-07-01", "--days", "2"]) == 2
        assert "not both" in capsys.readouterr().err

    def test_target_before_as_of_fails(self, capsys):
        assert main(["ingest", "--as-of", "2019-07-01",
                     "--to", "2019-06-10"]) == 1
        assert "outside" in capsys.readouterr().err

    def test_serve_parser_accepts_incremental_flags(self):
        args = build_parser().parse_args(
            ["serve", "--as-of", "2019-06-05", "--state-dir", "/tmp/x",
             "--webhook", "http://127.0.0.1:1/hook"]
        )
        assert args.as_of == "2019-06-05"
        assert str(args.state_dir) == "/tmp/x"
        assert args.webhook.endswith("/hook")
