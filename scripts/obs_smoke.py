#!/usr/bin/env python
"""End-to-end observability smoke: trace export + live /metrics scrape.

CI runs this after the test suite.  It drives the real CLI twice:

1. ``report --all --scale tiny --trace`` — asserts the exported span
   tree is valid JSONL, contains the per-experiment spans, and includes
   spans adopted from worker processes.
2. ``serve --scale tiny --port 0`` — scrapes ``/metrics`` off the live
   daemon, asserts the exposition parses as Prometheus text format
   0.0.4, and that the core cache / runner / per-endpoint series are
   present; then SIGTERMs it and asserts a clean drain.
3. ``serve --async --workers 2`` — the same checks against the asyncio
   tier, plus a live ``POST /v1/admin/reload`` that must flip
   ``repro_server_reload_total`` to 1 while the daemon keeps serving.

Stdlib only, exit status 0/1, every failure prints what it saw.
"""

import json
import re
import signal
import subprocess
import sys
import tempfile
import urllib.request
from pathlib import Path

CLI = [sys.executable, "-m", "repro.cli"]
BANNER = re.compile(r"serving http://([\d.]+):(\d+)")

#: Series every healthy scrape must expose (the cache and runner
#: families are pre-declared, the server ones come from traffic).
REQUIRED_METRICS = [
    "# TYPE repro_cache_hits_total counter",
    "# TYPE repro_cache_evictions_total counter",
    "# TYPE repro_runner_worker_lost_total counter",
    "# TYPE repro_faults_total counter",
    'repro_server_requests_total{endpoint="',
    'repro_server_request_seconds_bucket{endpoint="',
    'repro_server_index_entries{store="',
    "repro_server_draining 0",
]


def fail(message):
    print(f"obs-smoke: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def check_trace(trace: Path):
    run = subprocess.run(
        CLI + ["report", "--all", "--scale", "tiny", "--jobs", "2",
               "--trace", str(trace)],
        capture_output=True, text=True,
    )
    if run.returncode != 0:
        fail(f"report exited {run.returncode}:\n{run.stderr}")
    lines = trace.read_text().splitlines()
    if not lines:
        fail("trace file is empty")
    spans = [json.loads(line) for line in lines]
    for span in spans:
        missing = {"span", "parent", "name", "start", "duration",
                   "attrs", "pid"} - span.keys()
        if missing:
            fail(f"span missing fields {missing}: {span}")
    ids = {span["span"] for span in spans}
    dangling = [s for s in spans
                if s["parent"] is not None and s["parent"] not in ids]
    if dangling:
        fail(f"dangling parent ids after adoption: {dangling[:3]}")
    experiments = {s["name"] for s in spans
                   if s["attrs"].get("group") == "experiment"}
    if "fig1" not in experiments or "tab2" not in experiments:
        fail(f"experiment spans missing from trace: {sorted(experiments)}")
    adopted = [s for s in spans if s["name"].startswith("experiment:")]
    if not adopted:
        fail("no worker-side spans were adopted into the trace")
    print(f"obs-smoke: trace ok ({len(spans)} spans, "
          f"{len(adopted)} adopted from workers)")


def scrape(base, path):
    with urllib.request.urlopen(f"{base}{path}", timeout=10) as reply:
        return reply.status, reply.headers, reply.read().decode()


def check_serve(extra_args=(), *, check_reload=False):
    proc = subprocess.Popen(
        CLI + ["serve", "--scale", "tiny", "--port", "0", *extra_args],
        stderr=subprocess.PIPE, text=True,
    )
    label = "async /metrics" if extra_args else "/metrics"
    try:
        match = None
        for line in proc.stderr:
            match = BANNER.search(line)
            if match:
                break
        if match is None:
            fail(f"serve exited ({proc.wait()}) before printing its banner")
        base = f"http://{match.group(1)}:{match.group(2)}"

        status, _, _ = scrape(base, "/healthz")
        if status != 200:
            fail(f"/healthz returned {status}")
        scrape(base, "/metrics")  # first scrape seeds the metrics endpoint
        status, headers, body = scrape(base, "/metrics")
        if status != 200:
            fail(f"/metrics returned {status}")
        if not headers["Content-Type"].startswith("text/plain; version=0.0.4"):
            fail(f"unexpected content type {headers['Content-Type']!r}")
        for line in body.splitlines():
            if line.startswith("#"):
                continue
            name, _, value = line.rpartition(" ")
            if not name.startswith("repro_"):
                fail(f"sample outside the repro_ namespace: {line!r}")
            float(value)  # a non-numeric value is a format violation
        for needle in REQUIRED_METRICS:
            if needle not in body:
                fail(f"core series missing from exposition: {needle!r}")
        if check_reload:
            for needle in (
                "# TYPE repro_server_reload_total counter",
                "# TYPE repro_server_reload_failures_total counter",
            ):
                if needle not in body:
                    fail(f"reload series missing from exposition: {needle!r}")
            request = urllib.request.Request(
                f"{base}/v1/admin/reload", data=b"", method="POST"
            )
            with urllib.request.urlopen(request, timeout=60) as reply:
                payload = json.loads(reply.read())
            if payload.get("data", {}).get("status") != "reloaded":
                fail(f"admin reload answered {payload!r}")
            _, _, body = scrape(base, "/metrics")
            if "repro_server_reload_total 1" not in body:
                fail("repro_server_reload_total did not reach 1 after reload")
            print("obs-smoke: hot reload ok")
        samples = sum(1 for l in body.splitlines() if not l.startswith("#"))
        print(f"obs-smoke: {label} ok ({samples} samples)")
    finally:
        proc.send_signal(signal.SIGTERM)
        remaining = proc.communicate(timeout=30)[1]
    if proc.returncode != 0:
        fail(f"serve drained with status {proc.returncode}:\n{remaining}")
    if "drained cleanly" not in remaining:
        fail(f"no clean-drain message on stderr:\n{remaining}")
    print("obs-smoke: drain ok")


def main():
    with tempfile.TemporaryDirectory(prefix="obs-smoke-") as scratch:
        check_trace(Path(scratch) / "trace.jsonl")
    check_serve()
    check_serve(["--async", "--workers", "2"], check_reload=True)
    print("obs-smoke: PASS")


if __name__ == "__main__":
    main()
