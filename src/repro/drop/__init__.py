"""DROP blocklist substrate: episodes, snapshots, SBL records, categorizer."""

from .categories import FIGURE1_ORDER, Category
from .categorize import KEYWORD_RULES, Categorizer, ClassificationResult
from .droplist import (
    DropArchive,
    DropEpisode,
    parse_snapshot_text,
    snapshot_text,
)
from .sbl import SblDatabase, SblRecord, extract_asns

__all__ = [
    "Category",
    "Categorizer",
    "ClassificationResult",
    "DropArchive",
    "DropEpisode",
    "FIGURE1_ORDER",
    "KEYWORD_RULES",
    "SblDatabase",
    "SblRecord",
    "extract_asns",
    "parse_snapshot_text",
    "snapshot_text",
]
