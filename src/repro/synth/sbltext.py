"""SBL record text generation.

SBL records are freeform prose; the Appendix-A categorizer recovers
categories from keywords in that prose.  These templates generate text with
the same keyword structure the paper measures: 90% of records carry exactly
one keyword, ~2.7% two (the overlap records), and ~7.3% none (classified
manually).  Templates are phrased after the real excerpts in Table 2.
"""

from __future__ import annotations

import numpy as np

from ..drop.categories import Category

__all__ = ["sbl_text"]

_SINGLE_KEYWORD_TEMPLATES: dict[Category, tuple[str, ...]] = {
    Category.HIJACKED: (
        "Hijacked IP range / contact {email}",
        "Stolen netblock announced without authorization",
        "Illegal netblock hijacking operation run via {email}",
        "Hijacked address space; forged LOA documents observed",
    ),
    Category.SNOWSHOE: (
        "Snowshoe IP block used for high volume mail",
        "Snowshoe spam range rotating sender addresses",
        "Suspect snowshoe range / dedicated mailers",
    ),
    Category.KNOWN_SPAM: (
        "Register Of Known Spam Operations listing; escalation",
        "Known spam operation infrastructure / {email}",
    ),
    Category.MALICIOUS_HOSTING: (
        "Spammer hosting on this range; complaints ignored",
        "Bulletproof hosting operation; abuse reports bounced",
        "Botnet controller hosting within this netblock",
    ),
    Category.UNALLOCATED: (
        "Unallocated address space announced to the DFZ",
        "Bogon range in active use; not delegated by any RIR",
    ),
}

#: Two-keyword templates for overlap records (~2.7% of the corpus).
_OVERLAP_TEMPLATES: dict[frozenset[Category], tuple[str, ...]] = {
    frozenset({Category.SNOWSHOE, Category.HIJACKED}): (
        "Snowshoe IP block on stolen {asn} / {email}",
        "Snowshoe range within hijacked space {asn}",
    ),
    frozenset({Category.SNOWSHOE, Category.KNOWN_SPAM}): (
        "Register Of Known Spam Operations ... snowshoe range",
    ),
}

#: Keyword-free templates: the ~7.3% needing a manual pass.
_KEYWORDLESS_TEMPLATES: tuple[str, ...] = (
    "Spamhaus believes that this IP address range is being used or is "
    "about to be used for the purpose of high volume spam emission.",
    "This range is under escalation following repeated abuse reports.",
    "Listing requested by investigators; evidence retained off-record.",
)

_EMAIL_DOMAINS = (
    "ahostinginc.com", "networxhosting.com", "fastmailer.biz",
    "routeme.example", "bgp4sale.example",
)
_NAMES = ("billing", "james.johnson", "noc", "sales", "admin", "peering")


def sbl_text(
    categories: frozenset[Category],
    rng: np.random.Generator,
    *,
    asn: int | None = None,
    keywordless: bool = False,
) -> str:
    """Generate record prose for a category set.

    With ``keywordless=True`` the text matches no Appendix-A keyword
    (the caller is expected to register a manual override).  With ``asn``
    given, the text names the malicious ASN, which
    :func:`repro.drop.sbl.extract_asns` will recover.
    """
    email = (
        f"{_NAMES[int(rng.integers(len(_NAMES)))]}"
        f"@{_EMAIL_DOMAINS[int(rng.integers(len(_EMAIL_DOMAINS)))]}"
    )
    asn_text = f"AS{asn}" if asn is not None else "an undisclosed AS"
    if keywordless:
        template = _KEYWORDLESS_TEMPLATES[
            int(rng.integers(len(_KEYWORDLESS_TEMPLATES)))
        ]
        text = template
    elif len(categories) > 1:
        key = frozenset(categories)
        templates = _OVERLAP_TEMPLATES.get(key)
        if templates is None:
            # Fall back to concatenating single-keyword sentences.
            parts = [
                _pick(_SINGLE_KEYWORD_TEMPLATES[c], rng) for c in sorted(
                    categories, key=lambda c: c.value
                )
            ]
            text = " / ".join(parts)
        else:
            text = _pick(templates, rng)
    else:
        (category,) = categories
        text = _pick(_SINGLE_KEYWORD_TEMPLATES[category], rng)
    text = text.format(email=email, asn=asn_text)
    if asn is not None and f"AS{asn}" not in text:
        text = f"{text} (involved network: AS{asn})"
    return text


def _pick(options: tuple[str, ...], rng: np.random.Generator) -> str:
    return options[int(rng.integers(len(options)))]
