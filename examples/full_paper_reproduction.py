#!/usr/bin/env python3
"""Run every registered experiment and print paper-vs-measured.

This is the end-to-end reproduction driver: it builds the world, runs the
full experiment registry (every table and figure in DESIGN.md §4), prints
each report, and finishes with a scoreboard of how many metrics landed
within tolerance of the published values.

Run:  python examples/full_paper_reproduction.py [--paper-scale]

``--paper-scale`` uses the full 195.6K-prefix population (a few minutes);
the default tiny scale keeps all rates identical and runs in seconds.
"""

import sys
import time

from repro.reporting import render_text, run_all
from repro.synth import ScenarioConfig, build_world


def main() -> None:
    paper_scale = "--paper-scale" in sys.argv
    config = (
        ScenarioConfig.paper() if paper_scale else ScenarioConfig.tiny()
    )
    label = "paper" if paper_scale else "tiny"
    print(f"building world at {label} scale (seed={config.seed})...")
    start = time.time()
    world = build_world(config)
    print(f"  built in {time.time() - start:.1f}s\n")

    start = time.time()
    reports = run_all(world)
    print(f"ran {len(reports)} experiments in {time.time() - start:.1f}s\n")

    matched = total = 0
    for report in reports:
        print(render_text(report))
        print()
        for metric in report.metrics:
            if isinstance(metric.paper, (int, float)):
                total += 1
                if metric.matches():
                    matched += 1

    print("=" * 60)
    print(
        f"scoreboard: {matched}/{total} numeric metrics within 25% of "
        "the published value"
    )


if __name__ == "__main__":
    main()
