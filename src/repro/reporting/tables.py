"""Plain-text table rendering for experiment output."""

from __future__ import annotations

from typing import Sequence

__all__ = ["TextTable"]


class TextTable:
    """A simple monospace table: headers, rows, column alignment.

    Numeric cells are right-aligned, text is left-aligned; floats are
    rendered with a fixed precision chosen per table.
    """

    def __init__(
        self, headers: Sequence[str], *, float_precision: int = 3
    ) -> None:
        self._headers = [str(h) for h in headers]
        self._rows: list[list[str]] = []
        self._numeric = [True] * len(self._headers)
        self._precision = float_precision

    def add_row(self, *cells: object) -> None:
        """Append a row; must match the header width."""
        if len(cells) != len(self._headers):
            raise ValueError(
                f"expected {len(self._headers)} cells, got {len(cells)}"
            )
        rendered = []
        for index, cell in enumerate(cells):
            if isinstance(cell, float):
                rendered.append(f"{cell:.{self._precision}f}")
            elif isinstance(cell, int):
                rendered.append(str(cell))
            else:
                rendered.append(str(cell))
                self._numeric[index] = False
            if cell is None:
                rendered[-1] = "-"
        self._rows.append(rendered)

    def __len__(self) -> int:
        return len(self._rows)

    def render(self) -> str:
        """The table as text with a header separator line."""
        widths = [
            max(
                len(self._headers[i]),
                *(len(row[i]) for row in self._rows),
            )
            if self._rows
            else len(self._headers[i])
            for i in range(len(self._headers))
        ]

        def fmt(cells: Sequence[str]) -> str:
            parts = []
            for index, cell in enumerate(cells):
                if self._numeric[index]:
                    parts.append(cell.rjust(widths[index]))
                else:
                    parts.append(cell.ljust(widths[index]))
            return "  ".join(parts).rstrip()

        lines = [fmt(self._headers)]
        lines.append("  ".join("-" * w for w in widths))
        lines.extend(fmt(row) for row in self._rows)
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()
