"""The allocation registry: who holds which address space, when.

This is the substrate behind three analyses:

* §4.1's deallocation finding (prefixes deallocated after appearing on
  DROP) — :meth:`ResourceRegistry.deallocations_in`;
* Figure 5's "allocated but unrouted" accounting —
  :meth:`ResourceRegistry.allocated_space`;
* Figures 6–7's unallocated story — :meth:`ResourceRegistry.is_unallocated`
  and :meth:`ResourceRegistry.free_pool`.

The registry stores *allocations with lifetimes* (start day, optional end
day).  Daily delegated-stats snapshots are derived views, and
:meth:`from_delegated_snapshots` rebuilds lifetimes by diffing them — the
same reconstruction the paper performs over the RIRs' archived files.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import date
from typing import Iterable, Iterator

from ..net.prefix import AddressRange, IPv4Prefix
from ..net.prefixset import PrefixSet
from ..net.timeline import DateWindow
from .delegated import DelegatedRecord, emit_delegated, parse_delegated
from .rirs import ALL_RIRS, normalize_rir

__all__ = [
    "Allocation",
    "AllocationStatus",
    "ResourceRegistry",
    "StatusIndex",
]


@dataclass(frozen=True, slots=True)
class Allocation:
    """One allocation (or assignment/reservation) of address space."""

    addresses: AddressRange
    rir: str
    holder: str | None
    start: date
    end: date | None = None  # first day no longer allocated
    status: str = "allocated"
    legacy: bool = False
    country: str | None = None

    def __post_init__(self) -> None:
        if self.end is not None and self.end <= self.start:
            raise ValueError(
                f"allocation of {self.addresses} ends {self.end} "
                f"not after start {self.start}"
            )

    def active_on(self, day: date) -> bool:
        """True if the allocation was in force on ``day``."""
        return self.start <= day and (self.end is None or day < self.end)


@dataclass(frozen=True, slots=True)
class AllocationStatus:
    """The registry's answer for one prefix on one day."""

    status: str  # allocated / assigned / reserved / available / unknown
    rir: str | None
    holder: str | None = None
    since: date | None = None
    legacy: bool = False

    @property
    def is_allocated(self) -> bool:
        """True for space delegated to some holder."""
        return self.status in ("allocated", "assigned")

    @property
    def is_unallocated(self) -> bool:
        """True for space in a free pool (or not delegated to any RIR)."""
        return self.status in ("available", "unknown")


class ResourceRegistry:
    """Allocations over time, plus the IANA→RIR delegation map."""

    def __init__(self) -> None:
        self._managed: dict[str, PrefixSet] = {
            rir: PrefixSet() for rir in ALL_RIRS
        }
        self._allocations: list[Allocation] = []

    def fork(self) -> "ResourceRegistry":
        """A copy-on-write fork: pools copied, allocations shared.

        :class:`Allocation` records are immutable; only the containers
        are copied, so delegating/allocating on the fork never touches
        the original registry.
        """
        forked = ResourceRegistry()
        forked._managed = {
            rir: space.copy() for rir, space in self._managed.items()
        }
        forked._allocations = list(self._allocations)
        return forked

    # -- construction -----------------------------------------------------------

    def delegate_to_rir(
        self, rir: str, space: IPv4Prefix | AddressRange | str
    ) -> None:
        """Record IANA-level delegation of ``space`` to an RIR's pool."""
        self._managed[normalize_rir(rir)].add(space)

    def add(self, allocation: Allocation) -> None:
        """Record one allocation lifetime."""
        self._allocations.append(allocation)

    def allocations(self) -> list[Allocation]:
        """Every allocation record, in insertion order."""
        return list(self._allocations)

    def allocate(
        self,
        space: IPv4Prefix | AddressRange | str,
        rir: str,
        day: date,
        holder: str | None = None,
        *,
        status: str = "allocated",
        legacy: bool = False,
        country: str | None = None,
    ) -> Allocation:
        """Open a new allocation starting on ``day`` and return it."""
        allocation = Allocation(
            addresses=_coerce_range(space),
            rir=normalize_rir(rir),
            holder=holder,
            start=day,
            status=status,
            legacy=legacy,
            country=country,
        )
        self.add(allocation)
        return allocation

    def deallocate(
        self, space: IPv4Prefix | AddressRange | str, day: date
    ) -> list[Allocation]:
        """Close all active allocations overlapping ``space`` on ``day``.

        Returns the closed allocations (with their new end dates); raises
        if nothing was active there.
        """
        target = _coerce_range(space)
        closed: list[Allocation] = []
        for index, allocation in enumerate(self._allocations):
            if not allocation.active_on(day):
                continue
            if not allocation.addresses.overlaps(target):
                continue
            ended = Allocation(
                addresses=allocation.addresses,
                rir=allocation.rir,
                holder=allocation.holder,
                start=allocation.start,
                end=day,
                status=allocation.status,
                legacy=allocation.legacy,
                country=allocation.country,
            )
            self._allocations[index] = ended
            closed.append(ended)
        if not closed:
            raise ValueError(f"nothing allocated at {target} on {day}")
        return closed

    # -- queries -----------------------------------------------------------------

    def allocations(self) -> Iterator[Allocation]:
        """All allocation lifetimes, in insertion order."""
        yield from self._allocations

    def managed_space(self, rir: str) -> PrefixSet:
        """The address space IANA delegated to an RIR."""
        return self._managed[normalize_rir(rir)].copy()

    def managing_rir(self, prefix: IPv4Prefix) -> str | None:
        """The RIR whose pool contains ``prefix``, if any."""
        for rir, space in self._managed.items():
            if space.contains(prefix):
                return rir
        return None

    def status_of(self, prefix: IPv4Prefix, day: date) -> AllocationStatus:
        """Allocation status of a prefix on a day.

        A prefix counts as allocated if an active allocation covers it
        entirely; partially-covered prefixes report the covering
        allocation too (DROP prefixes never straddle allocations in
        practice, and the synthetic world preserves that).
        """
        target = prefix.to_range()
        best: Allocation | None = None
        for allocation in self._allocations:
            if not allocation.active_on(day):
                continue
            if allocation.addresses.overlaps(target) and (
                best is None or allocation.start > best.start
            ):
                best = allocation
        if best is not None:
            return AllocationStatus(
                status=best.status,
                rir=best.rir,
                holder=best.holder,
                since=best.start,
                legacy=best.legacy,
            )
        rir = self.managing_rir(prefix)
        return AllocationStatus(
            status="available" if rir else "unknown",
            rir=rir,
        )

    def status_index(self, day: date) -> "StatusIndex":
        """A fast repeated-lookup view of :meth:`status_of` for one day.

        Bulk analyses (Table 1 scans ~200K prefixes at the window start)
        would otherwise pay a full allocation scan per prefix.
        """
        return StatusIndex(self, day)

    def is_unallocated(self, prefix: IPv4Prefix, day: date) -> bool:
        """True if no RIR had allocated the prefix to anyone on ``day``."""
        return self.status_of(prefix, day).is_unallocated

    def allocated_space(self, day: date, rir: str | None = None) -> PrefixSet:
        """All space under an active allocation/assignment on ``day``."""
        rir = normalize_rir(rir) if rir else None
        return PrefixSet.from_intervals(
            (a.addresses.start, a.addresses.end)
            for a in self._allocations
            if a.status in ("allocated", "assigned")
            and a.active_on(day)
            and (rir is None or a.rir == rir)
        )

    def free_pool(self, rir: str, day: date) -> PrefixSet:
        """Unallocated, unreserved space in one RIR's pool on ``day``."""
        rir = normalize_rir(rir)
        pool = self.managed_space(rir)
        held = PrefixSet.from_intervals(
            (a.addresses.start, a.addresses.end)
            for a in self._allocations
            if a.rir == rir and a.active_on(day)
        )
        return pool - held

    def holders_of_space(
        self, day: date
    ) -> dict[str, PrefixSet]:
        """holder → address space actively allocated to them on ``day``."""
        holders: dict[str, PrefixSet] = {}
        for allocation in self._allocations:
            if allocation.holder is None or not allocation.active_on(day):
                continue
            if allocation.status not in ("allocated", "assigned"):
                continue
            holders.setdefault(allocation.holder, PrefixSet()).add(
                allocation.addresses
            )
        return holders

    def deallocations_in(self, window: DateWindow) -> list[Allocation]:
        """Allocations whose end date falls inside ``window``."""
        return sorted(
            (
                a
                for a in self._allocations
                if a.end is not None and a.end in window
            ),
            key=lambda a: (a.end, a.addresses.start),
        )

    def deallocated_by(
        self, prefix: IPv4Prefix, by: date, *, after: date | None = None
    ) -> Allocation | None:
        """The allocation covering ``prefix`` that ended by ``by``.

        With ``after`` given, the end must be strictly after it (used for
        "allocated when listed, deallocated by the end of the window").
        """
        target = prefix.to_range()
        for allocation in self._allocations:
            if allocation.end is None or allocation.end > by:
                continue
            if after is not None and allocation.end <= after:
                continue
            if allocation.addresses.overlaps(target):
                return allocation
        return None

    # -- delegated stats views -----------------------------------------------------

    def snapshot_records(self, day: date, rir: str) -> list[DelegatedRecord]:
        """One RIR's delegated records for ``day`` (allocations + pool)."""
        rir = normalize_rir(rir)
        records: list[DelegatedRecord] = []
        for allocation in self._allocations:
            if allocation.rir != rir or not allocation.active_on(day):
                continue
            records.append(
                DelegatedRecord(
                    registry=rir,
                    country=allocation.country,
                    rtype="ipv4",
                    start=allocation.addresses.start,
                    count=allocation.addresses.num_addresses,
                    allocated_on=allocation.start,
                    status=allocation.status,
                    opaque_id=allocation.holder,
                )
            )
        for interval in self.free_pool(rir, day).intervals():
            records.append(
                DelegatedRecord(
                    registry=rir,
                    country=None,
                    rtype="ipv4",
                    start=interval.start,
                    count=interval.num_addresses,
                    allocated_on=None,
                    status="available",
                )
            )
        records.sort(key=lambda r: r.start)
        return records

    def snapshot_delegated(self, day: date, rir: str) -> str:
        """One RIR's delegated stats file text for ``day``."""
        return emit_delegated(
            normalize_rir(rir), day, self.snapshot_records(day, rir)
        )

    @classmethod
    def from_delegated_snapshots(
        cls, snapshots: Iterable[tuple[date, str]]
    ) -> "ResourceRegistry":
        """Rebuild allocation lifetimes by diffing daily delegated files.

        Identity is (range, registry, status, opaque id).  The recorded
        allocation date inside the file is used as the lifetime start
        (it predates the first snapshot for old allocations); the end is
        the first snapshot day the record disappears.  Available records
        rebuild the IANA delegation map.
        """
        registry = cls()
        open_since: dict[tuple, tuple[date, DelegatedRecord]] = {}
        by_day: dict[date, list[str]] = {}
        for day, text in snapshots:
            by_day.setdefault(day, []).append(text)
        for day in sorted(by_day):
            present: set[tuple] = set()
            day_records = [
                record
                for text in by_day[day]
                for record in parse_delegated(text)
            ]
            for record in day_records:
                if record.rtype != "ipv4":
                    continue
                if record.status == "available":
                    registry._managed[record.registry].add(
                        record.address_range
                    )
                    continue
                key = (
                    record.start,
                    record.count,
                    record.registry,
                    record.status,
                    record.opaque_id,
                )
                present.add(key)
                if key not in open_since:
                    open_since[key] = (record.allocated_on or day, record)
                registry._managed[record.registry].add(record.address_range)
            for key in list(open_since):
                if key not in present:
                    started, record = open_since.pop(key)
                    registry.add(
                        _allocation_from_record(record, started, ended=day)
                    )
        for started, record in open_since.values():
            registry.add(_allocation_from_record(record, started, ended=None))
        return registry


def _allocation_from_record(
    record: DelegatedRecord, started: date, ended: date | None
) -> Allocation:
    return Allocation(
        addresses=record.address_range,
        rir=record.registry,
        holder=record.opaque_id,
        start=started,
        end=ended,
        status=record.status,
        country=record.country,
    )


def _coerce_range(
    space: IPv4Prefix | AddressRange | str,
) -> AddressRange:
    if isinstance(space, AddressRange):
        return space
    if isinstance(space, IPv4Prefix):
        return space.to_range()
    return IPv4Prefix.parse(space).to_range()


class StatusIndex:
    """Per-day allocation lookup in ~O(log n) per query.

    Interval stabbing over the allocations active on one day: entries are
    sorted by address, a running prefix-maximum of interval ends bounds
    the leftward walk, and ties are broken exactly as
    :meth:`ResourceRegistry.status_of` breaks them (latest start date,
    then earliest insertion).
    """

    __slots__ = ("_registry", "day", "_starts", "_allocations",
                 "_prefix_max_end")

    def __init__(self, registry: ResourceRegistry, day: date) -> None:
        self._registry = registry
        self.day = day
        active = [
            (a.addresses.start, order, a)
            for order, a in enumerate(registry.allocations())
            if a.active_on(day)
        ]
        active.sort(key=lambda item: (item[0], item[1]))
        self._starts = [start for start, _, _ in active]
        self._allocations = [(order, a) for _, order, a in active]
        self._prefix_max_end: list[int] = []
        running = 0
        for _, _, allocation in active:
            running = max(running, allocation.addresses.end)
            self._prefix_max_end.append(running)

    def status_of(self, prefix: IPv4Prefix) -> AllocationStatus:
        """Allocation status of ``prefix`` on the index's day."""
        from bisect import bisect_right

        target = prefix.to_range()
        best: Allocation | None = None
        best_key: tuple | None = None

        def consider(order: int, allocation: Allocation) -> None:
            nonlocal best, best_key
            if not allocation.addresses.overlaps(target):
                return
            # Reference tie-break: latest start date wins; the reference
            # keeps the first-inserted on equal dates.
            key = (allocation.start, -order)
            if best_key is None or key > best_key:
                best, best_key = allocation, key

        idx = bisect_right(self._starts, target.start) - 1
        # Leftward: only while some interval in the prefix could still
        # reach past the probe's start.
        i = idx
        while i >= 0 and self._prefix_max_end[i] > target.start:
            consider(*self._allocations[i])
            i -= 1
        # Rightward: allocations starting inside the probe.
        j = idx + 1
        while j < len(self._starts) and self._starts[j] < target.end:
            consider(*self._allocations[j])
            j += 1
        if best is not None:
            return AllocationStatus(
                status=best.status,
                rir=best.rir,
                holder=best.holder,
                since=best.start,
                legacy=best.legacy,
            )
        rir = self._registry.managing_rir(prefix)
        return AllocationStatus(
            status="available" if rir else "unknown", rir=rir
        )
