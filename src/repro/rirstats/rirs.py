"""The five Regional Internet Registries.

The paper's Table 1 and Figures 5–7 slice everything by RIR.  The constant
set here is the registry-name vocabulary used across the library (RIR stats
files use lowercase names; TALs and tables use the display names).
"""

from __future__ import annotations

__all__ = ["ALL_RIRS", "DISPLAY_NAMES", "display_name", "normalize_rir"]

#: Canonical RIR identifiers, as used throughout the library.
ALL_RIRS: tuple[str, ...] = ("AFRINIC", "APNIC", "ARIN", "LACNIC", "RIPE")

#: The names the paper prints in Table 1.
DISPLAY_NAMES: dict[str, str] = {
    "AFRINIC": "AFRINIC",
    "APNIC": "APNIC",
    "ARIN": "ARIN",
    "LACNIC": "LACNIC",
    "RIPE": "RIPE NCC",
}

_ALIASES: dict[str, str] = {
    "afrinic": "AFRINIC",
    "apnic": "APNIC",
    "arin": "ARIN",
    "lacnic": "LACNIC",
    "ripe": "RIPE",
    "ripencc": "RIPE",
    "ripe ncc": "RIPE",
    "ripe-ncc": "RIPE",
}


def normalize_rir(name: str) -> str:
    """Map any RIR spelling to the canonical identifier.

    >>> normalize_rir("ripencc")
    'RIPE'
    """
    canonical = _ALIASES.get(name.strip().lower())
    if canonical is None:
        raise ValueError(f"unknown RIR name {name!r}")
    return canonical


def display_name(rir: str) -> str:
    """The paper's display name for a canonical RIR identifier."""
    return DISPLAY_NAMES[normalize_rir(rir)]
