"""Instrumentation: the run-record facade over spans and metrics.

Historically this class (in ``repro.runtime.instrument``, retired) kept its
own stage list and counter dict — one of three telemetry dialects in
the codebase.  It is now a thin facade over the unified layer: every
``stage()`` / ``record()`` call produces a real :class:`~repro.obs.spans.Span`
in the run's :class:`~repro.obs.spans.Tracer`, every ``incr()`` lands in
the run's :class:`~repro.obs.metrics.MetricsRegistry` under the
canonical ``repro_<subsystem>_<name>_<unit>`` metric name — and the
``repro-drop report --timings`` JSON is *derived* from those spans
(same schema as before, golden-checked), not stored separately.

The legacy counter names (``world_cache_hits``, ``serve_status_requests``,
...) remain visible through :attr:`Instrumentation.counters` because
the ``--timings`` schema and the degraded-run report are built on them;
:data:`_CANONICAL` maps each one onto its registry metric, with
patterns folding families (``fault_<kind>``,
``serve_<endpoint>_requests``) into labeled series.
"""

from __future__ import annotations

import re
from contextlib import contextmanager
from dataclasses import dataclass
from functools import lru_cache
from typing import Iterator

from .metrics import MetricsRegistry
from .spans import Span, Tracer

__all__ = ["Instrumentation", "StageRecord", "world_sizes"]


@dataclass(frozen=True, slots=True)
class StageRecord:
    """One timed span: a builder stage, a cache step, or an experiment."""

    name: str
    seconds: float
    group: str = "build"


#: legacy counter name -> (metric name, fixed labels, help text)
_CANONICAL: dict[str, tuple[str, dict, str]] = {
    "world_cache_hits": (
        "repro_cache_hits_total", {},
        "World cache entries loaded from disk.",
    ),
    "world_cache_misses": (
        "repro_cache_misses_total", {},
        "World cache misses that triggered a build.",
    ),
    "world_cache_evictions": (
        "repro_cache_evictions_total", {},
        "Corrupt world cache entries evicted and rebuilt.",
    ),
    "world_cache_store_skipped": (
        "repro_cache_store_skipped_total", {},
        "Cache stores skipped because another writer held the lock.",
    ),
    "world_cache_store_errors": (
        "repro_cache_store_errors_total", {},
        "Cache stores that failed (disk full, permissions).",
    ),
    "world_cache_rename_races": (
        "repro_cache_rename_races_total", {},
        "Cache publishes that lost the final rename race.",
    ),
    "world_cache_lock_contention": (
        "repro_cache_lock_contention_total", {},
        "Lock acquisitions yielded to a concurrent fresh writer.",
    ),
    "world_cache_lock_takeovers": (
        "repro_cache_lock_takeovers_total", {},
        "Stale cache locks taken over from dead writers.",
    ),
    "scenario_cache_hits": (
        "repro_scenario_cache_hits_total", {},
        "Scenario cache entries loaded from disk.",
    ),
    "scenario_cache_misses": (
        "repro_scenario_cache_misses_total", {},
        "Scenario cache misses that triggered a build.",
    ),
    "base_cache_hits": (
        "repro_base_cache_hits_total", {},
        "Base-world snapshots resolved from memory or disk.",
    ),
    "base_cache_misses": (
        "repro_base_cache_misses_total", {},
        "Base-world snapshot misses that triggered a base build.",
    ),
    "base_cache_evictions": (
        "repro_base_cache_evictions_total", {},
        "Corrupt base snapshot entries evicted and rebuilt.",
    ),
    "sweep_fast_path_hits": (
        "repro_sweep_fast_path_hits_total", {},
        "Sweep cells answered from truth sidecar + persisted index.",
    ),
    "sweep_bases_built": (
        "repro_sweep_bases_built_total", {},
        "Distinct base worlds built (not cache-resumed) during sweeps.",
    ),
    "sweep_cells_ok": (
        "repro_sweep_cells_total", {"status": "ok"},
        "Sweep cells run, by outcome.",
    ),
    "sweep_cells_failed": (
        "repro_sweep_cells_total", {"status": "failed"},
        "Sweep cells run, by outcome.",
    ),
    "sweep_worlds_built": (
        "repro_sweep_worlds_built_total", {},
        "Scenario worlds built (not cache-resumed) during sweeps.",
    ),
    "worker_lost_experiments": (
        "repro_runner_worker_lost_total", {},
        "Experiments whose worker process died mid-run.",
    ),
    "worker_pool_retries": (
        "repro_runner_pool_retries_total", {},
        "Fresh-pool retry rounds after a worker loss.",
    ),
    "serial_fallback_runs": (
        "repro_runner_serial_fallback_total", {},
        "Experiments recovered serially in the parent process.",
    ),
    "faults_injected": (
        "repro_faults_injected_total", {},
        "Injected faults fired, all kinds.",
    ),
    "query_lookups": (
        "repro_query_lookups_total", {},
        "Single point-in-time prefix lookups answered.",
    ),
    "query_batches": (
        "repro_query_batches_total", {},
        "Batch lookup calls answered.",
    ),
    "query_index_builds": (
        "repro_query_index_builds_total", {},
        "Query indexes built from a world.",
    ),
    "query_index_loads": (
        "repro_query_index_loads_total", {},
        "Query indexes loaded from a persisted file.",
    ),
    "query_index_stores": (
        "repro_query_index_stores_total", {},
        "Query indexes persisted to disk.",
    ),
    "query_index_store_errors": (
        "repro_query_index_store_errors_total", {},
        "Query index stores that failed.",
    ),
    "query_index_evictions": (
        "repro_query_index_evictions_total", {},
        "Torn or stale query index files evicted.",
    ),
    "substrate_builds": (
        "repro_substrate_builds_total", {},
        "Analysis substrates computed from a world.",
    ),
    "substrate_loads": (
        "repro_substrate_loads_total", {},
        "Analysis substrates loaded from a persisted file.",
    ),
    "substrate_stores": (
        "repro_substrate_stores_total", {},
        "Analysis substrates persisted to disk.",
    ),
    "substrate_store_errors": (
        "repro_substrate_store_errors_total", {},
        "Substrate stores that failed.",
    ),
    "substrate_evictions": (
        "repro_substrate_evictions_total", {},
        "Torn or stale substrate files evicted.",
    ),
    "serve_drains": (
        "repro_server_drains_total", {},
        "Graceful drains triggered by SIGTERM/SIGINT.",
    ),
    "serve_client_errors": (
        "repro_server_errors_total", {"kind": "client"},
        "Requests answered with an error status, by kind.",
    ),
    "serve_server_errors": (
        "repro_server_errors_total", {"kind": "server"},
        "Requests answered with an error status, by kind.",
    ),
    "serve_accept_errors": (
        "repro_server_errors_total", {"kind": "accept"},
        "Requests answered with an error status, by kind.",
    ),
    "serve_reloads": (
        "repro_server_reload_total", {},
        "Successful hot reloads of the serving index.",
    ),
    "serve_reload_failures": (
        "repro_server_reload_failures_total", {},
        "Hot reloads that failed (the old index kept serving).",
    ),
    "ingest_applied_days": (
        "repro_ingest_applied_days_total", {},
        "Daily delta batches applied to the serving index.",
    ),
    "ingest_events": (
        "repro_ingest_delta_events_total", {},
        "Individual delta events applied, all categories.",
    ),
    "ingest_events_published": (
        "repro_ingest_watch_events_total", {},
        "Watch events published to the event log.",
    ),
    "ingest_apply_failures": (
        "repro_ingest_apply_failures_total", {},
        "Delta applies that failed (the previous day kept serving).",
    ),
    "ingest_journal_stores": (
        "repro_ingest_journal_stores_total", {},
        "Delta batches appended to the on-disk journal.",
    ),
    "ingest_journal_store_errors": (
        "repro_ingest_journal_store_errors_total", {},
        "Journal appends that failed (disk full, permissions).",
    ),
    "ingest_journal_loads": (
        "repro_ingest_journal_loads_total", {},
        "Journals replayed on ingestor start.",
    ),
    "ingest_journal_evictions": (
        "repro_ingest_journal_evictions_total", {},
        "Torn or mismatched journals evicted, not trusted.",
    ),
    "ingest_webhook_pushes": (
        "repro_ingest_webhook_pushes_total", {},
        "Watch events delivered to the configured webhook.",
    ),
    "ingest_webhook_errors": (
        "repro_ingest_webhook_errors_total", {},
        "Webhook deliveries that failed (events stay in the log).",
    ),
}

#: legacy pattern -> (metric name, label name, help text)
_CANONICAL_PATTERNS: tuple[tuple[re.Pattern, str, str, str], ...] = (
    (
        re.compile(r"^fault_(?P<value>.+)$"),
        "repro_faults_total", "kind",
        "Injected faults fired, by kind.",
    ),
    (
        re.compile(r"^serve_(?P<value>.+)_requests$"),
        "repro_server_requests_total", "endpoint",
        "HTTP requests handled, by endpoint.",
    ),
    (
        re.compile(r"^serve_(?P<value>.+)_us_total$"),
        "repro_server_request_microseconds_total", "endpoint",
        "Cumulative request handling time, by endpoint.",
    ),
)


@lru_cache(maxsize=512)
def _canonical(name: str) -> tuple[str, dict, str]:
    """The registry (metric, labels, help) for one legacy counter name.

    Cached: the serving tier resolves two counter names per request,
    and the pattern fallbacks below cost regex matches."""
    known = _CANONICAL.get(name)
    if known is not None:
        return known
    for pattern, metric, label, help in _CANONICAL_PATTERNS:
        match = pattern.match(name)
        if match is not None:
            return metric, {label: match.group("value")}, help
    return (
        "repro_adhoc_total",
        {"counter": name},
        "Counters with no canonical metric mapping.",
    )


class Instrumentation:
    """Collects spans, counters, and free-form annotations for one run.

    ``tracer`` and ``registry`` default to fresh private instances, so
    unit tests stay isolated; the CLI creates one Instrumentation per
    invocation and threads it everywhere, which makes its tracer and
    registry the de-facto process-wide ones for that run.
    """

    def __init__(
        self,
        *,
        tracer: Tracer | None = None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.tracer = tracer if tracer is not None else Tracer()
        self.registry = registry if registry is not None else MetricsRegistry()
        self._counters: dict[str, int] = {}
        self.info: dict[str, object] = {}
        self.warnings: list[str] = []
        # Declare every canonical family up front: a zero-sample counter
        # still exposes its HELP/TYPE lines, so scrapers see a stable
        # set of series from the first scrape, not one that grows as
        # code paths happen to run.
        for metric, labels, help in _CANONICAL.values():
            self.registry.counter(metric, help=help, labels=tuple(labels))
        for _, metric, label, help in _CANONICAL_PATTERNS:
            self.registry.counter(metric, help=help, labels=(label,))

    # -- spans -------------------------------------------------------------

    @contextmanager
    def stage(self, name: str, *, group: str = "build") -> Iterator[None]:
        """Time a block and record it as a stage (a grouped span)."""
        span = None
        try:
            with self.tracer.span(name, group=group) as span:
                yield
        finally:
            if span is not None:
                self._stage_histogram().observe(
                    span.duration, group=group, stage=name
                )

    def record(
        self,
        name: str,
        seconds: float,
        *,
        group: str,
        parent_id: int | None = None,
    ) -> Span:
        """Record an externally-timed span (e.g. a worker-measured
        experiment); returns it so callers can parent children under it."""
        span = self.tracer.record(
            name, seconds, parent_id=parent_id, group=group
        )
        self._stage_histogram().observe(seconds, group=group, stage=name)
        return span

    def _stage_histogram(self):
        return self.registry.histogram(
            "repro_run_stage_seconds",
            help="Wall time of instrumented stages, by group and stage.",
            labels=("group", "stage"),
        )

    @property
    def stages(self) -> list[StageRecord]:
        """Every recorded stage, as a view over the grouped spans."""
        return [
            StageRecord(
                span.name, span.duration, span.attributes["group"]
            )
            for span in list(self.tracer.finished)
            if "group" in span.attributes
        ]

    def group(self, group: str) -> list[StageRecord]:
        """The recorded stages of one group, in recording order."""
        return [s for s in self.stages if s.group == group]

    # -- counters / annotations --------------------------------------------

    @property
    def counters(self) -> dict[str, int]:
        """The legacy counter dict (also mirrored into the registry)."""
        return self._counters

    def incr(self, name: str, amount: int = 1) -> None:
        """Bump a counter (cache hits, worker restarts, ...)."""
        self._counters[name] = self._counters.get(name, 0) + amount
        metric, labels, help = _canonical(name)
        self.registry.counter(
            metric, help=help, labels=tuple(labels)
        ).inc(amount, **labels)

    def annotate(self, key: str, value: object) -> None:
        """Attach a JSON-able fact about the run (jobs, cache status)."""
        self.info[key] = value

    def warn(self, message: str) -> None:
        """Record a degraded-but-recovered condition for the run record."""
        self.warnings.append(message)

    # -- the --timings view ------------------------------------------------

    def to_dict(self) -> dict:
        """The whole record as a JSON-able dict (the ``--timings`` schema,
        derived from the span buffer — bytes unchanged from schema 1)."""
        grouped: dict[str, list[dict]] = {}
        total = 0.0
        for span in list(self.tracer.finished):
            group = span.attributes.get("group")
            if group is None:
                continue
            grouped.setdefault(group, []).append(
                {"name": span.name, "seconds": round(span.duration, 6)}
            )
            total += span.duration
        return {
            "schema": 1,
            "counters": dict(self._counters),
            "info": dict(self.info),
            "warnings": list(self.warnings),
            "stages": grouped,
            "total_seconds": round(total, 6),
        }

    def to_json(self, *, indent: int | None = 2) -> str:
        """The record as a JSON document."""
        import json

        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)


def world_sizes(world) -> dict[str, int]:
    """Store sizes for a world, for the timings record."""
    return {
        "drop_prefixes": len(world.drop.unique_prefixes()),
        "bgp_intervals": len(world.bgp),
        "roas": len(world.roas),
        "irr_objects": len(world.irr),
        "sbl_records": len(world.sbl),
    }
