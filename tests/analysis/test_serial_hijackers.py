"""Tests for the serial-hijacker profiling extension."""

import pytest

from repro.analysis import load_entries, profile_origins
from repro.synth import ScenarioConfig, build_world


@pytest.fixture(scope="module")
def world():
    return build_world(ScenarioConfig.tiny())


@pytest.fixture(scope="module")
def report(world):
    return profile_origins(world, load_entries(world))


class TestProfiling:
    def test_defunct_hijacker_asns_all_flagged(self, world, report):
        # The 13 defunct ASNs behind the §5 forged route objects.
        hijacker_asns = {
            truth.hijacker_asn
            for truth in world.truth.drop.values()
            if truth.irr_hijacker_match and truth.hijacker_asn is not None
        }
        flagged = {c.asn for c in report.candidates}
        multi_prefix = {
            asn
            for asn in hijacker_asns
            if (p := report.profile(asn)) is not None and p.prefixes >= 2
        }
        assert multi_prefix <= flagged

    def test_legitimate_isps_not_flagged(self, world, report):
        # Background networks announce many long-lived prefixes, none of
        # which are blocklisted.
        flagged = {c.asn for c in report.candidates}
        for profile in report.profiles:
            if profile.prefixes >= 3 and profile.listed_on_drop == 0:
                assert profile.asn not in flagged

    def test_candidates_sorted_by_score(self, report):
        scores = [c.score for c in report.candidates]
        assert scores == sorted(scores, reverse=True)

    def test_scores_bounded(self, report):
        for profile in report.profiles:
            assert 0.0 <= profile.score <= 1.0

    def test_profile_lookup(self, report):
        top = report.candidates[0]
        assert report.profile(top.asn) == top
        assert report.profile(999_999_999) is None

    def test_min_prefixes_gate(self, world):
        strict = profile_origins(
            world, load_entries(world), min_prefixes=100
        )
        assert strict.candidates == ()

    def test_candidate_shares_high(self, report):
        for candidate in report.candidates:
            assert candidate.drop_share > 0.4
