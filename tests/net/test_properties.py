"""Property-based tests for the net substrate (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.prefix import (
    IPV4_MAX,
    AddressRange,
    IPv4Prefix,
    format_ip,
    parse_ip,
)
from repro.net.prefixset import PrefixSet
from repro.net.radix import RadixTree

addresses = st.integers(min_value=0, max_value=IPV4_MAX - 1)
lengths = st.integers(min_value=0, max_value=32)


@st.composite
def prefixes(draw):
    return IPv4Prefix.from_first_address(draw(addresses), draw(lengths))


@st.composite
def ranges(draw):
    start = draw(st.integers(min_value=0, max_value=IPV4_MAX - 2))
    end = draw(st.integers(min_value=start + 1, max_value=IPV4_MAX))
    return AddressRange(start, end)


class TestPrefixProperties:
    @given(addresses)
    def test_ip_round_trip(self, addr):
        assert parse_ip(format_ip(addr)) == addr

    @given(prefixes())
    def test_prefix_string_round_trip(self, prefix):
        assert IPv4Prefix.parse(str(prefix)) == prefix

    @given(prefixes())
    def test_range_round_trip(self, prefix):
        assert prefix.to_range().to_prefixes() == [prefix]

    @given(prefixes(), addresses)
    def test_contains_address_consistent_with_range(self, prefix, addr):
        assert prefix.contains_address(addr) == (
            prefix.first <= addr <= prefix.last
        )

    @given(prefixes(), prefixes())
    def test_overlap_symmetry(self, a, b):
        assert a.overlaps(b) == b.overlaps(a)

    @given(prefixes(), prefixes())
    def test_containment_implies_overlap(self, a, b):
        if a.contains(b):
            assert a.overlaps(b)
            assert a.num_addresses >= b.num_addresses


class TestRangeDecomposition:
    @given(ranges())
    @settings(max_examples=200)
    def test_decomposition_is_exact_and_ordered(self, r):
        parts = r.to_prefixes()
        assert sum(p.num_addresses for p in parts) == r.num_addresses
        cursor = r.start
        for p in parts:
            assert p.first == cursor
            cursor = p.last + 1
        assert cursor == r.end


class TestPrefixSetProperties:
    @given(st.lists(ranges(), max_size=20))
    def test_union_count_never_exceeds_sum(self, rs):
        s = PrefixSet()
        total = 0
        for r in rs:
            s.add(r)
            total += r.num_addresses
        assert s.num_addresses <= total
        # Intervals are disjoint, sorted, and non-adjacent.
        intervals = list(s.intervals())
        for a, b in zip(intervals, intervals[1:]):
            assert a.end < b.start

    @given(st.lists(ranges(), max_size=12), st.lists(ranges(), max_size=12))
    def test_algebra_identities(self, xs, ys):
        a, b = PrefixSet(xs), PrefixSet(ys)
        union, inter, diff = a | b, a & b, a - b
        # |A∪B| = |A| + |B| - |A∩B|
        assert union.num_addresses == (
            a.num_addresses + b.num_addresses - inter.num_addresses
        )
        # A = (A - B) ∪ (A ∩ B)
        assert (diff | inter) == a
        # (A - B) ∩ B = ∅
        assert not (diff & b)

    @given(st.lists(ranges(), max_size=12), addresses)
    def test_membership_matches_naive(self, rs, addr):
        s = PrefixSet(rs)
        naive = any(r.contains_address(addr) for r in rs)
        assert s.contains_address(addr) == naive

    @given(st.lists(ranges(), max_size=10), ranges())
    def test_discard_removes_everything(self, rs, victim):
        s = PrefixSet(rs)
        s.discard(victim)
        assert not s.overlaps(victim)

    @given(st.lists(st.tuples(addresses, addresses), max_size=16))
    def test_from_intervals_matches_repeated_add(self, raw):
        """Bulk construction == repeated add, degenerates and all."""
        intervals = [(min(a, b), max(a, b)) for a, b in raw]
        bulk = PrefixSet.from_intervals(intervals)
        incremental = PrefixSet()
        for start, end in intervals:
            if start < end:  # add() has no degenerate form to mirror
                incremental.add(AddressRange(start, end))
        assert bulk == incremental
        for a, b in zip(list(bulk.intervals()), list(bulk.intervals())[1:]):
            assert a.end <= b.start


class TestRadixProperties:
    @given(st.lists(prefixes(), min_size=1, max_size=40), prefixes())
    @settings(max_examples=200)
    def test_lookup_matches_linear_scan(self, entries, probe):
        tree = RadixTree()
        table = {}
        for p in entries:
            tree.insert(p, str(p))
            table[p] = str(p)
        assert len(tree) == len(table)
        # covering = all table entries containing probe
        expect_covering = sorted(
            (p for p in table if p.contains(probe)),
            key=lambda p: p.length,
        )
        got_covering = [p for p, _ in tree.lookup_covering(probe)]
        assert got_covering == expect_covering
        # covered = all table entries inside probe
        expect_covered = {p for p in table if probe.contains(p)}
        got_covered = {p for p, _ in tree.lookup_covered(probe)}
        assert got_covered == expect_covered

    @given(st.lists(prefixes(), min_size=1, max_size=30))
    def test_items_sorted_and_complete(self, entries):
        tree = RadixTree()
        for p in entries:
            tree.insert(p, None)
        listed = [p for p, _ in tree.items()]
        assert listed == sorted(set(entries))

    @given(st.lists(prefixes(), min_size=2, max_size=30, unique=True))
    def test_delete_then_absent(self, entries):
        tree = RadixTree()
        for p in entries:
            tree.insert(p, str(p))
        victim = entries[0]
        tree.delete(victim)
        assert victim not in tree
        assert len(tree) == len(set(entries)) - 1
        for p in entries[1:]:
            assert tree.get(p) == str(p)
