"""Unit tests for repro.bgp.ribs."""

from datetime import date

import pytest

from repro.bgp.messages import ASPath
from repro.bgp.ribs import PartialObservation, RouteInterval, RouteIntervalStore
from repro.net.prefix import IPv4Prefix

P24 = IPv4Prefix.parse("192.0.2.0/24")
P22 = IPv4Prefix.parse("192.0.0.0/22")
P25 = IPv4Prefix.parse("192.0.2.0/25")
OTHER = IPv4Prefix.parse("198.51.100.0/24")


def interval(prefix=P24, path=(174, 64500), start=date(2020, 1, 1),
             end=date(2020, 6, 1), observers=(0, 1, 2), partial=()):
    return RouteInterval(
        prefix=prefix,
        path=ASPath.of(*path),
        start=start,
        end=end,
        observers=frozenset(observers),
        partial_observers=tuple(partial),
    )


class TestRouteInterval:
    def test_active_on_bounds(self):
        i = interval()
        assert i.active_on(date(2020, 1, 1))
        assert i.active_on(date(2020, 6, 1))
        assert not i.active_on(date(2019, 12, 31))
        assert not i.active_on(date(2020, 6, 2))

    def test_open_interval_always_active_after_start(self):
        i = interval(end=None)
        assert i.active_on(date(2030, 1, 1))

    def test_end_before_start_rejected(self):
        with pytest.raises(ValueError):
            interval(start=date(2020, 2, 1), end=date(2020, 1, 1))

    def test_origin(self):
        assert interval().origin == 64500

    def test_observed_by_full_observer(self):
        i = interval()
        assert i.observed_by(1, date(2020, 3, 1))
        assert not i.observed_by(9, date(2020, 3, 1))

    def test_partial_observer_window(self):
        i = interval(
            observers=(0, 1),
            partial=[PartialObservation(2, date(2020, 2, 1), date(2020, 3, 1))],
        )
        assert not i.observed_by(2, date(2020, 1, 15))
        assert i.observed_by(2, date(2020, 2, 15))
        assert not i.observed_by(2, date(2020, 3, 2))

    def test_partial_overrides_full_membership(self):
        # Peer 1 is listed as full observer but has a carve-out: the
        # carve-out wins.
        i = interval(
            observers=(0, 1),
            partial=[PartialObservation(1, date(2020, 2, 1), None)],
        )
        assert not i.observed_by(1, date(2020, 1, 15))
        assert i.observed_by(1, date(2020, 4, 1))

    def test_observers_on(self):
        i = interval(
            observers=(0, 1),
            partial=[PartialObservation(2, date(2020, 2, 1), date(2020, 3, 1))],
        )
        assert i.observers_on(date(2020, 1, 15)) == frozenset({0, 1})
        assert i.observers_on(date(2020, 2, 15)) == frozenset({0, 1, 2})
        assert i.observers_on(date(2021, 1, 1)) == frozenset()


class TestStoreRetrieval:
    @pytest.fixture
    def store(self):
        s = RouteIntervalStore(data_end=date(2022, 3, 30))
        s.add(interval())  # P24 Jan-Jun
        s.add(interval(start=date(2021, 1, 1), end=None, path=(3356, 64501)))
        s.add(interval(prefix=P22, path=(174, 64500), end=date(2020, 3, 1)))
        s.add(interval(prefix=P25, path=(50509, 64502)))
        s.add(interval(prefix=OTHER))
        return s

    def test_len(self, store):
        assert len(store) == 5

    def test_intervals_exact_sorted(self, store):
        exact = store.intervals_exact(P24)
        assert [i.start for i in exact] == [date(2020, 1, 1), date(2021, 1, 1)]

    def test_intervals_covering(self, store):
        covering = store.intervals_covering(P25)
        assert {str(i.prefix) for i in covering} == {
            "192.0.0.0/22", "192.0.2.0/24", "192.0.2.0/25"
        }

    def test_intervals_covered(self, store):
        covered = store.intervals_covered(P24)
        assert {str(i.prefix) for i in covered} == {
            "192.0.2.0/24", "192.0.2.0/25"
        }

    def test_is_announced_exact_vs_covering(self, store):
        gap_day = date(2020, 8, 1)  # P24 gap between its two intervals
        assert not store.is_announced(P24, gap_day, include_covering=False)
        assert not store.is_announced(P24, gap_day)  # P22/P25 also inactive
        # A /26 inside P25 has no exact route but is covered while P25 is up.
        sub = IPv4Prefix.parse("192.0.2.0/26")
        assert not store.is_announced(sub, date(2020, 4, 1),
                                      include_covering=False)
        assert store.is_announced(sub, date(2020, 4, 1))

    def test_origins_on(self, store):
        assert store.origins_on(P24, date(2020, 2, 1)) == {64500}
        assert store.origins_on(P24, date(2021, 6, 1)) == {64501}
        assert store.origins_on(P24, date(2020, 8, 1)) == set()

    def test_first_last_announced(self, store):
        assert store.first_announced(P24) == date(2020, 1, 1)
        # open interval -> clamped to data_end
        assert store.last_announced(P24) == date(2022, 3, 30)
        assert store.first_announced(IPv4Prefix.parse("10.0.0.0/8")) is None

    def test_peers_observing_unions_intervals(self, store):
        assert store.peers_observing(P24, date(2020, 2, 1)) == frozenset({0, 1, 2})

    def test_routed_space(self, store):
        routed = store.routed_space(date(2020, 2, 1))
        assert routed.contains(P22)  # covering announcement active
        assert routed.contains(OTHER)
        later = store.routed_space(date(2022, 1, 1))
        assert later.contains(P24)
        assert not later.contains(OTHER)

    def test_announced_prefixes_on(self, store):
        active = {str(p) for p in store.announced_prefixes_on(date(2020, 2, 1))}
        assert active == {"192.0.0.0/22", "192.0.2.0/24", "192.0.2.0/25",
                          "198.51.100.0/24"}

    def test_origin_history(self, store):
        history = store.origin_history(P24)
        assert history == [
            (date(2020, 1, 1), date(2020, 6, 1), 64500),
            (date(2021, 1, 1), None, 64501),
        ]

    def test_historic_origins(self, store):
        assert store.historic_origins(P24, date(2020, 12, 31)) == {64500}
        assert store.historic_origins(P24, date(2021, 6, 1)) == {64500, 64501}

    def test_was_unrouted_for(self, store):
        # P24 inactive from 2020-06-02 to 2020-12-31.
        assert store.was_unrouted_for(P24, date(2020, 12, 1), 30)
        assert not store.was_unrouted_for(P24, date(2020, 6, 15), 30)

    def test_find_intervals(self, store):
        hijacker = store.find_intervals(lambda i: i.path.contains(50509))
        assert len(hijacker) == 1
        assert hijacker[0].prefix == P25

    def test_prefixes_sorted(self, store):
        prefixes = list(store.prefixes())
        assert prefixes == sorted(prefixes)
