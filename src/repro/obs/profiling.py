"""``--profile``: stdlib cProfile dumps, one per instrumented stage.

Spans say *where* a run spends its time at stage granularity; when a
stage itself is the mystery, ``repro-drop ... --profile`` wraps each
top-level CLI stage (world resolution, experiment dispatch, query
answering) in a :mod:`cProfile` session and prints the top-N
cumulative entries to stderr as the stage finishes.  Zero overhead
when disabled: the context manager is a bare ``yield``.
"""

from __future__ import annotations

import sys
from contextlib import contextmanager
from typing import Iterator

__all__ = ["profiled"]

#: Rows of cProfile output printed per stage.
DEFAULT_TOP = 25


@contextmanager
def profiled(
    enabled: bool,
    label: str,
    *,
    top: int = DEFAULT_TOP,
    stream=None,
) -> Iterator[None]:
    """Profile the block when ``enabled``; dump top-``top`` cumulative
    entries to ``stream`` (default stderr) tagged with ``label``."""
    if not enabled:
        yield
        return
    import cProfile
    import pstats

    out = stream if stream is not None else sys.stderr
    profile = cProfile.Profile()
    profile.enable()
    try:
        yield
    finally:
        profile.disable()
        print(f"-- profile: {label} (top {top} by cumulative) --", file=out)
        stats = pstats.Stats(profile, stream=out)
        stats.sort_stats("cumulative").print_stats(top)
