"""Trust Anchor Locators (TALs).

Each RIR operates a trust anchor whose TAL ships with RPKI validation
software.  APNIC and LACNIC additionally publish *separate* AS0 trust
anchors for their unallocated-space ROAs; those TALs are **not** configured
by default and both RIRs recommend using them only for alerting (§2.3.1) —
the paper's §6.2.2 confirms no RouteViews full-table peer filtered with
them.  Validator behaviour therefore depends on which TAL set is
configured, which :class:`TalSet` captures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

__all__ = [
    "APNIC_AS0_TAL",
    "DEFAULT_TALS",
    "LACNIC_AS0_TAL",
    "RIR_TALS",
    "TalSet",
]

#: The five RIR production trust anchors, as configured by default in
#: validation software (routinator, rpki-client, FORT, ...).
RIR_TALS: tuple[str, ...] = ("AFRINIC", "APNIC", "ARIN", "LACNIC", "RIPE")

#: APNIC's AS0-only trust anchor (prop-132, implemented 2020-09-02).
APNIC_AS0_TAL = "APNIC-AS0"

#: LACNIC's AS0-only trust anchor (LAC-2019-12, implemented 2021-06-23).
LACNIC_AS0_TAL = "LACNIC-AS0"

#: What a validator trusts out of the box: RIR TALs only, no AS0 TALs.
DEFAULT_TALS: frozenset[str] = frozenset(RIR_TALS)


@dataclass(frozen=True, slots=True)
class TalSet:
    """The set of trust anchors a validator is configured with."""

    names: frozenset[str]

    @classmethod
    def default(cls) -> "TalSet":
        """The default validator configuration (five RIR TALs)."""
        return cls(DEFAULT_TALS)

    @classmethod
    def with_as0(cls) -> "TalSet":
        """Default TALs plus both RIR AS0 TALs (opt-in configuration)."""
        return cls(DEFAULT_TALS | {APNIC_AS0_TAL, LACNIC_AS0_TAL})

    @classmethod
    def of(cls, names: Iterable[str]) -> "TalSet":
        """An arbitrary TAL configuration."""
        return cls(frozenset(names))

    def trusts(self, trust_anchor: str) -> bool:
        """True if ROAs under ``trust_anchor`` are considered."""
        return trust_anchor in self.names

    def __contains__(self, trust_anchor: str) -> bool:
        return self.trusts(trust_anchor)
