"""The interval-based global routing information store.

Rather than materializing a daily routing table per peer (the naive image of
"daily RIB dumps"), BGP state is stored as *route intervals*: a prefix was
announced on an AS path over an inclusive window of days, observed by a set
of peers.  Daily views (is this prefix routed on day X? which peers see it?)
are derived on demand.  This is both the natural shape of the paper's
questions ("was the prefix withdrawn within 30 days of listing?", "what
origin did it have in 2018?") and far smaller than per-day tables; the
ablation benchmark ``bench_ablation_rib.py`` quantifies the difference.

Peers that filter routes (the three DROP-filtering RouteViews peers of §4.1)
observe an interval over a *sub-window*; those carve-outs are recorded as
:class:`PartialObservation` exceptions so that the common case stays a
compact frozenset of peer ids.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import date, timedelta
from typing import Callable, Iterable, Iterator

from ..net.prefix import IPv4Prefix
from ..net.prefixset import PrefixSet
from ..net.radix import RadixTree
from .messages import ASPath

__all__ = ["PartialObservation", "RouteInterval", "RouteIntervalStore"]


@dataclass(frozen=True, slots=True)
class PartialObservation:
    """A peer that observed an interval only over a sub-window."""

    peer_id: int
    start: date
    end: date | None  # inclusive; None = until the interval ends


@dataclass(frozen=True, slots=True)
class RouteInterval:
    """One announcement episode of a prefix on a path.

    ``end`` is the last day the route was observed (inclusive); ``None``
    means the route was still announced at the end of the data window.
    ``observers`` see the full window; ``partial_observers`` see only their
    recorded sub-window (and override membership in ``observers``).
    """

    prefix: IPv4Prefix
    path: ASPath
    start: date
    end: date | None
    observers: frozenset[int]
    partial_observers: tuple[PartialObservation, ...] = ()

    def __post_init__(self) -> None:
        if self.end is not None and self.end < self.start:
            raise ValueError(
                f"interval for {self.prefix} ends {self.end} "
                f"before start {self.start}"
            )

    @property
    def origin(self) -> int:
        """The origin AS of the announcement."""
        return self.path.origin

    def active_on(self, day: date) -> bool:
        """True if the route was announced (by anyone) on ``day``."""
        return self.start <= day and (self.end is None or day <= self.end)

    def observed_by(self, peer_id: int, day: date) -> bool:
        """True if the given peer had this route in its table on ``day``."""
        if not self.active_on(day):
            return False
        for partial in self.partial_observers:
            if partial.peer_id == peer_id:
                return partial.start <= day and (
                    partial.end is None or day <= partial.end
                )
        return peer_id in self.observers

    def observers_on(self, day: date) -> frozenset[int]:
        """The set of peer ids observing the route on ``day``."""
        if not self.active_on(day):
            return frozenset()
        if not self.partial_observers:
            return self.observers
        seen = set(self.observers)
        for partial in self.partial_observers:
            seen.discard(partial.peer_id)
            if partial.start <= day and (
                partial.end is None or day <= partial.end
            ):
                seen.add(partial.peer_id)
        return frozenset(seen)


class RouteIntervalStore:
    """All route intervals, indexed by prefix in a radix trie."""

    def __init__(self, data_end: date | None = None) -> None:
        self._tree: RadixTree[list[RouteInterval]] = RadixTree()
        self._count = 0
        #: Last day of the data window; open intervals are treated as
        #: announced through this day for "still announced" queries.
        self.data_end = data_end

    def add(self, interval: RouteInterval) -> None:
        """Record one route interval."""
        existing = self._tree.get(interval.prefix)
        if existing is None:
            self._tree.insert(interval.prefix, [interval])
        else:
            existing.append(interval)
        self._count += 1

    def extend(self, intervals: Iterable[RouteInterval]) -> None:
        """Record many route intervals."""
        for interval in intervals:
            self.add(interval)

    def __len__(self) -> int:
        return self._count

    def fork(self) -> "RouteIntervalStore":
        """A copy-on-write fork: cloned trie, per-prefix buckets copied.

        The :class:`RouteInterval` objects themselves are immutable and
        shared; adding to the fork never touches the original, so a
        base world can hand out many forks for overlay application.
        """
        forked = RouteIntervalStore(data_end=self.data_end)
        forked._tree = self._tree.clone(copy_value=list.copy)
        forked._count = self._count
        return forked

    # -- interval retrieval -------------------------------------------------

    def intervals_exact(self, prefix: IPv4Prefix) -> list[RouteInterval]:
        """Intervals announced for exactly this prefix, start-ordered."""
        found = self._tree.get(prefix)
        return sorted(found, key=lambda i: i.start) if found else []

    def intervals_covering(self, prefix: IPv4Prefix) -> list[RouteInterval]:
        """Intervals for this prefix or any less-specific covering it."""
        found: list[RouteInterval] = []
        for _, bucket in self._tree.lookup_covering(prefix):
            found.extend(bucket)
        return sorted(found, key=lambda i: (i.start, i.prefix))

    def intervals_covered(self, prefix: IPv4Prefix) -> list[RouteInterval]:
        """Intervals for this prefix or any more-specific inside it."""
        found: list[RouteInterval] = []
        for _, bucket in self._tree.lookup_covered(prefix):
            found.extend(bucket)
        return sorted(found, key=lambda i: (i.start, i.prefix))

    def all_intervals(self) -> Iterator[RouteInterval]:
        """Every interval, grouped by prefix in address order."""
        for _, bucket in self._tree.items():
            yield from bucket

    def prefixes(self) -> Iterator[IPv4Prefix]:
        """Every prefix that ever appeared in BGP, in address order."""
        yield from self._tree

    # -- day-level queries --------------------------------------------------

    def is_announced(
        self, prefix: IPv4Prefix, day: date, *, include_covering: bool = True
    ) -> bool:
        """True if the prefix (or a covering route) was announced on ``day``."""
        intervals = (
            self.intervals_covering(prefix)
            if include_covering
            else self.intervals_exact(prefix)
        )
        return any(i.active_on(day) for i in intervals)

    def origins_on(self, prefix: IPv4Prefix, day: date) -> set[int]:
        """Origin ASNs announcing exactly this prefix on ``day``."""
        return {
            i.origin for i in self.intervals_exact(prefix) if i.active_on(day)
        }

    def peers_observing(self, prefix: IPv4Prefix, day: date) -> frozenset[int]:
        """Peers with an exact-prefix route for ``prefix`` on ``day``."""
        seen: set[int] = set()
        for interval in self.intervals_exact(prefix):
            seen.update(interval.observers_on(day))
        return frozenset(seen)

    def first_announced(self, prefix: IPv4Prefix) -> date | None:
        """The first day the exact prefix was seen in BGP, if ever."""
        intervals = self.intervals_exact(prefix)
        return intervals[0].start if intervals else None

    def last_announced(self, prefix: IPv4Prefix) -> date | None:
        """The last day the exact prefix was seen; ``data_end`` if open."""
        latest: date | None = None
        for interval in self.intervals_exact(prefix):
            end = interval.end if interval.end is not None else self.data_end
            if end is None:
                return None  # open interval with no data window bound
            if latest is None or end > latest:
                latest = end
        return latest

    def routed_space(self, day: date) -> PrefixSet:
        """The union of all address space announced on ``day``.

        This is the "routed" side of Figure 5's accounting.
        """
        return PrefixSet.from_intervals(
            (interval.prefix.first, interval.prefix.last + 1)
            for interval in self.all_intervals()
            if interval.active_on(day)
        )

    def announced_prefixes_on(self, day: date) -> list[IPv4Prefix]:
        """All distinct prefixes with an active exact route on ``day``."""
        return [
            prefix
            for prefix in self._tree
            if any(i.active_on(day) for i in self._tree[prefix])
        ]

    # -- history queries -----------------------------------------------------

    def origin_history(self, prefix: IPv4Prefix) -> list[tuple[date, date | None, int]]:
        """``(start, end, origin)`` episodes for the exact prefix, in order."""
        return [
            (i.start, i.end, i.origin) for i in self.intervals_exact(prefix)
        ]

    def historic_origins(self, prefix: IPv4Prefix, before: date) -> set[int]:
        """Origins that announced the exact prefix strictly before ``before``."""
        return {
            i.origin
            for i in self.intervals_exact(prefix)
            if i.start < before
        }

    def was_unrouted_for(
        self, prefix: IPv4Prefix, day: date, days: int
    ) -> bool:
        """True if no exact route was active in the ``days`` before ``day``."""
        probe = day - timedelta(days=1)
        horizon = day - timedelta(days=days)
        intervals = self.intervals_exact(prefix)
        while probe >= horizon:
            if any(i.active_on(probe) for i in intervals):
                return False
            probe -= timedelta(days=1)
        return True

    def find_intervals(
        self, predicate: Callable[[RouteInterval], bool]
    ) -> list[RouteInterval]:
        """All intervals matching an arbitrary predicate (linear scan)."""
        return [i for i in self.all_intervals() if predicate(i)]
