"""Spans: the tracing half of the observability layer.

A :class:`Span` is one timed operation — a builder stage, a cache load,
an experiment, an HTTP request — with a monotonic-clock duration, a
parent link, and free-form JSON-able attributes.  A :class:`Tracer`
collects them: ``tracer.span(name)`` is a context manager that nests
(the enclosing open span becomes the parent, tracked per thread via
:mod:`contextvars`), ``@tracer.traced()`` wraps a function, and
``tracer.record(name, seconds)`` admits an externally-timed span (how
worker-measured experiment times enter the parent's trace).

Spans cross process boundaries the same way failure records already do
in the runner: a worker serializes its spans (:meth:`Tracer.export`)
onto the result tuple and the parent re-homes them with
:meth:`Tracer.adopt`, which assigns fresh ids and reparents the
worker's root spans under a parent-side span — so a ``--jobs 4`` run
yields one connected tree, not four orphaned forests.

Export is buffered JSONL (:meth:`Tracer.write_jsonl`): spans accumulate
in memory (appends under a lock, so handler threads can share one
tracer) and are written in one shot — one JSON object per line, sorted
keys — when the run ends.  ``repro-drop ... --trace PATH`` and
``$REPRO_TRACE`` both land here.
"""

from __future__ import annotations

import json
import os
import threading
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from functools import wraps
from pathlib import Path
from time import perf_counter
from typing import Callable, Iterator

__all__ = ["TRACE_ENV", "Span", "Tracer", "trace_path_from_env"]

#: Environment variable naming the JSONL trace destination.
TRACE_ENV = "REPRO_TRACE"


def trace_path_from_env(environ=os.environ) -> Path | None:
    """The ``$REPRO_TRACE`` destination, or None when unset."""
    raw = environ.get(TRACE_ENV, "").strip()
    return Path(raw).expanduser() if raw else None


@dataclass(slots=True)
class Span:
    """One finished (or still-open) timed operation."""

    span_id: int
    parent_id: int | None
    name: str
    #: ``perf_counter()`` at open — monotonic, comparable only within
    #: one process; useful for ordering, not for wall-clock display.
    start: float
    #: Seconds between open and close (or the externally-measured time).
    duration: float
    attributes: dict = field(default_factory=dict)
    pid: int = field(default_factory=os.getpid)

    def to_dict(self) -> dict:
        """The JSONL wire form (stable field set, sorted on dump)."""
        return {
            "span": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "start": round(self.start, 6),
            "duration": round(self.duration, 6),
            "attrs": dict(self.attributes),
            "pid": self.pid,
        }


class Tracer:
    """Collects spans for one run; thread-safe, processes cooperate.

    Span ids are sequential per tracer, so two identical runs produce
    identical trees (the byte-stability tests strip only timestamps and
    pids).  The current open span is tracked per execution context:
    each thread (and each :mod:`contextvars` context) nests
    independently, so server handler threads sharing one tracer do not
    see each other's spans as parents.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._next_id = 1
        self.finished: list[Span] = []
        self._current: ContextVar[int | None] = ContextVar(
            "repro_obs_current_span", default=None
        )

    # -- recording ---------------------------------------------------------

    def _allocate(self) -> int:
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
            return span_id

    def _finish(self, span: Span) -> None:
        with self._lock:
            self.finished.append(span)

    @property
    def current_span_id(self) -> int | None:
        """The enclosing open span's id in this context, or None."""
        return self._current.get()

    @contextmanager
    def span(self, name: str, **attributes) -> Iterator[Span]:
        """Time a block as a span, nested under the current open span.

        The span lands in :attr:`finished` on exit (even when the body
        raises, with an ``error`` attribute naming the exception type).
        """
        span = Span(
            span_id=self._allocate(),
            parent_id=self._current.get(),
            name=name,
            start=perf_counter(),
            duration=0.0,
            attributes=dict(attributes),
        )
        token = self._current.set(span.span_id)
        try:
            yield span
        except BaseException as error:
            span.attributes["error"] = type(error).__name__
            raise
        finally:
            self._current.reset(token)
            span.duration = perf_counter() - span.start
            self._finish(span)

    def traced(
        self, name: str | None = None, **attributes
    ) -> Callable[[Callable], Callable]:
        """Decorator form of :meth:`span` (span name defaults to
        ``module.qualname``)."""

        def decorate(fn: Callable) -> Callable:
            span_name = name or f"{fn.__module__}.{fn.__qualname__}"

            @wraps(fn)
            def wrapper(*args, **kwargs):
                with self.span(span_name, **attributes):
                    return fn(*args, **kwargs)

            return wrapper

        return decorate

    def record(
        self,
        name: str,
        seconds: float,
        *,
        parent_id: int | None = None,
        **attributes,
    ) -> Span:
        """Admit an externally-timed span (no open/close window here)."""
        span = Span(
            span_id=self._allocate(),
            parent_id=(
                parent_id if parent_id is not None else self._current.get()
            ),
            name=name,
            start=perf_counter(),
            duration=seconds,
            attributes=dict(attributes),
        )
        self._finish(span)
        return span

    # -- cross-process forwarding ------------------------------------------

    def export(self) -> tuple[dict, ...]:
        """Every finished span as picklable dicts (worker → parent)."""
        with self._lock:
            return tuple(span.to_dict() for span in self.finished)

    def adopt(
        self, spans: tuple[dict, ...] | list[dict], *, parent_id: int | None
    ) -> list[Span]:
        """Re-home exported spans (usually a worker's) into this tracer.

        Each adopted span gets a fresh local id; internal parent/child
        links are remapped, and spans that were roots over there hang
        off ``parent_id`` here.  The origin pid rides along, which is
        how the span-tree tests tell worker spans from parent spans.
        """
        spans = list(spans)
        # Two passes: spans finish children-first, so a child's parent
        # id must be pre-allocated before any links are remapped.
        id_map = {raw["span"]: self._allocate() for raw in spans}
        adopted: list[Span] = []
        for raw in spans:
            local = Span(
                span_id=id_map[raw["span"]],
                parent_id=id_map.get(raw["parent"], parent_id),
                name=raw["name"],
                start=raw["start"],
                duration=raw["duration"],
                attributes=dict(raw["attrs"]),
                pid=raw["pid"],
            )
            id_map[raw["span"]] = local.span_id
            adopted.append(local)
            self._finish(local)
        return adopted

    # -- export ------------------------------------------------------------

    def write_jsonl(self, path: Path) -> Path:
        """Write the buffered trace as JSONL (one span per line).

        The whole buffer is serialized first and written with a single
        ``write`` on an append-mode handle, so concurrent writers (two
        CLI invocations tracing to the same file) interleave at span
        granularity, never mid-line.
        """
        path = Path(path)
        if path.parent != Path():
            path.parent.mkdir(parents=True, exist_ok=True)
        with self._lock:
            lines = "".join(
                json.dumps(span.to_dict(), sort_keys=True) + "\n"
                for span in self.finished
            )
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(lines)
        return path
