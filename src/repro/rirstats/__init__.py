"""RIR stats substrate: delegated files, allocation registry, free pools."""

from .delegated import (
    DelegatedRecord,
    VALID_STATUSES,
    emit_delegated,
    parse_delegated,
)
from .registry import Allocation, AllocationStatus, ResourceRegistry
from .rirs import ALL_RIRS, DISPLAY_NAMES, display_name, normalize_rir

__all__ = [
    "ALL_RIRS",
    "Allocation",
    "AllocationStatus",
    "DISPLAY_NAMES",
    "DelegatedRecord",
    "ResourceRegistry",
    "VALID_STATUSES",
    "display_name",
    "emit_delegated",
    "normalize_rir",
    "parse_delegated",
]
