"""World generation and archive round-trip costs, plus the fast-path artifact.

Two entry points share the measurement code:

* pytest-benchmark functions (``bench_build_tiny_world``,
  ``bench_archive_round_trip``) picked up with the rest of the bench
  suite, and
* a standalone mode — ``python benchmarks/bench_world_build.py --scale
  paper --out BENCH_world.json`` — recording this PR's acceptance
  numbers as a JSON artifact: serial vs sharded build wall time (with a
  byte-identity check between the two worlds), the one-off substrate
  build cost, and ``run_all`` cold (every experiment re-walking the raw
  stores, the pre-substrate behavior) vs warm (substrate served from
  the world's cache entry), plus the binary world-store columns
  (JSON vs mmap open latency, per-forked-worker private RSS) shared
  with ``bench_store.py``.  ``--smoke`` shrinks everything for CI;
  ``--check`` enforces the headline ≥3× run_all target at paper scale.
"""

import argparse
import hashlib
import json
import sys
import tempfile
from pathlib import Path
from time import perf_counter

from repro.analysis import load_entries
from repro.analysis.substrate import SUBSTRATE_FILENAME, AnalysisSubstrate
from repro.reporting.experiments import EXPERIMENTS, run_all
from repro.runtime import WorldCache
from repro.synth import ScenarioConfig, build_world, load_world, save_world

_SCALES = {
    "tiny": ScenarioConfig.tiny,
    "small": ScenarioConfig.small,
    "paper": ScenarioConfig.paper,
}

#: run_all speedup (cold / substrate-warm) the fast path must deliver.
RUN_ALL_SPEEDUP_TARGET = 3.0


# ---------------------------------------------------------------------------
# pytest-benchmark entry points
# ---------------------------------------------------------------------------


def bench_build_tiny_world(benchmark):
    world = benchmark(build_world, ScenarioConfig.tiny())
    assert len(world.drop.unique_prefixes()) == 712


def bench_archive_round_trip(benchmark, world, entries, tmp_path_factory):
    target = tmp_path_factory.mktemp("archives")

    def run():
        # Weekly snapshots: the shortest DROP stay is ~30 days, so no
        # episode can fall between snapshots and vanish.
        directory = target / "world"
        save_world(world, directory, drop_step_days=7)
        return load_world(directory)

    loaded = benchmark.pedantic(run, rounds=1, iterations=1)
    assert len(loaded.drop.unique_prefixes()) == len(
        world.drop.unique_prefixes()
    )


# ---------------------------------------------------------------------------
# standalone artifact mode
# ---------------------------------------------------------------------------


def _archive_digest(world) -> str:
    """One digest over every persisted file of ``world``'s archive."""
    summary = hashlib.sha256()
    with tempfile.TemporaryDirectory() as staging:
        save_world(world, Path(staging), drop_step_days=1)
        for path in sorted(Path(staging).iterdir()):
            if path.is_file():
                summary.update(path.name.encode())
                summary.update(path.read_bytes())
    return summary.hexdigest()


def run(scale: str, *, jobs: int, out: Path | None) -> dict:
    config = _SCALES[scale]()

    # -- build: serial vs sharded fan-out, byte-identity checked --------
    started = perf_counter()
    serial_world = build_world(config)
    serial_seconds = perf_counter() - started

    started = perf_counter()
    parallel_world = build_world(config, jobs=jobs)
    parallel_seconds = perf_counter() - started

    serial_digest = _archive_digest(serial_world)
    identical = serial_digest == _archive_digest(parallel_world)
    del serial_world, parallel_world

    # -- analysis: run_all cold vs substrate-warm -----------------------
    outcome = WorldCache().fetch(config)
    world, entries = outcome.world, load_entries(outcome.world)

    # Cold: every experiment re-walks the raw stores independently (the
    # pre-substrate behavior run_all replaced).
    started = perf_counter()
    cold_reports = [
        EXPERIMENTS[exp_id](world, entries, None) for exp_id in EXPERIMENTS
    ]
    cold_seconds = perf_counter() - started

    # One-off substrate build, persisted into the world's cache entry.
    # A leftover file from an earlier bench run would turn the timed
    # build into a load, so start from a clean entry — the binary
    # sibling included, or warm() would happily serve it.
    from repro.store.substrate import STORE_SUBSTRATE_FILENAME

    (outcome.directory / SUBSTRATE_FILENAME).unlink(missing_ok=True)
    (outcome.directory / STORE_SUBSTRATE_FILENAME).unlink(missing_ok=True)
    substrate = AnalysisSubstrate(
        world, directory=outcome.directory, key=outcome.key
    )
    started = perf_counter()
    substrate.warm()
    substrate_build_seconds = perf_counter() - started

    # Warm: a fresh process-equivalent run paying only the substrate
    # load (from the cache entry) plus the experiments themselves.
    warm_substrate = AnalysisSubstrate(
        world, directory=outcome.directory, key=outcome.key
    )
    started = perf_counter()
    warm_reports = run_all(world, entries=entries, substrate=warm_substrate)
    warm_seconds = perf_counter() - started

    speedup = cold_seconds / warm_seconds if warm_seconds else float("inf")

    # -- store columns: open latency + per-worker RSS, both formats ------
    # Shared with bench_store.py; the world (and everything else big)
    # must be dropped first — see store_columns' docstring.
    from bench_store import store_columns

    outputs_identical = warm_reports == cold_reports
    directory, key = outcome.directory, outcome.key
    del world, entries, substrate, warm_substrate
    del cold_reports, warm_reports, outcome
    import gc

    gc.collect()
    columns = store_columns(directory, key)

    payload = {
        **columns,
        "scale": scale,
        "jobs": jobs,
        "build_serial_seconds": round(serial_seconds, 4),
        "build_parallel_seconds": round(parallel_seconds, 4),
        "build_archive_digest": serial_digest[:16],
        "build_parallel_identical": identical,
        "substrate_build_seconds": round(substrate_build_seconds, 4),
        "run_all_experiments": len(EXPERIMENTS),
        "run_all_cold_seconds": round(cold_seconds, 4),
        "run_all_warm_seconds": round(warm_seconds, 4),
        "run_all_speedup": round(speedup, 2),
        "run_all_outputs_identical": outputs_identical,
        "meets_targets": {
            "parallel_build_identical": identical,
            "run_all_outputs_identical": outputs_identical,
            "run_all_speedup_3x": speedup >= RUN_ALL_SPEEDUP_TARGET,
        },
    }
    if out is not None:
        out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return payload


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=sorted(_SCALES), default="tiny")
    parser.add_argument("--jobs", type=int, default=4,
                        help="worker count for the sharded build")
    parser.add_argument("--smoke", action="store_true",
                        help="CI mode: force the tiny scale")
    parser.add_argument("--out", type=Path, default=None,
                        help="write the JSON artifact to FILE")
    parser.add_argument("--check", action="store_true",
                        help="exit 1 unless the identity checks (and, at "
                             "paper scale, the 3x run_all target) are met")
    args = parser.parse_args(argv)
    scale = "tiny" if args.smoke else args.scale
    payload = run(scale, jobs=args.jobs, out=args.out)
    print(json.dumps(payload, indent=2, sort_keys=True))
    targets = dict(payload["meets_targets"])
    if scale != "paper":
        # The 3x headline is a paper-scale promise: tiny/small runs are
        # dominated by fixed costs, so only the identity checks gate.
        targets.pop("run_all_speedup_3x")
    if args.check and not all(targets.values()):
        print("world fast-path targets missed", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
