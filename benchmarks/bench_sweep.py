"""Sweep-engine costs: cold fan-out vs cache resume, cells/second.

Two entry points, mirroring ``bench_store.py``:

* cheap pytest-benchmark functions (``bench_sweep_spec_expansion``,
  ``bench_sweep_report_fold``) picked up with the rest of the bench
  suite — the pure-Python costs of grid expansion and report folding;
* a standalone mode — ``python benchmarks/bench_sweep.py --out
  BENCH_sweep.json --check`` — recording the PR's acceptance numbers
  as a JSON artifact: a 3-family x 3-ROV-rate grid (9 cells) run cold
  into a fresh cache root and then resumed warm with ``--jobs 4``,
  wall-clock for both, cells/second, the base-snapshot breakdown
  (how long the shared base build took vs the per-cell overlay work),
  and the resume contract (the warm run builds zero worlds and zero
  bases).  ``--smoke`` shrinks the grid to 2 cells for CI; ``--check``
  enforces the gates: every cell ok on both runs, the resume builds
  nothing, the cold run builds at most one base per distinct scale in
  the grid, and the report covers every family.
"""

import argparse
import json
import sys
import tempfile
from pathlib import Path
from time import perf_counter

from repro.obs import Instrumentation
from repro.sweep import SweepSpec, run_sweep, sweep_report

#: The artifact grid: every default family swept over three ROV rates.
GRID_SPEC = SweepSpec(
    name="bench-sweep",
    families=("prefix-hijack", "subprefix-hijack", "roa-downgrade"),
    attack_count=2,
    rov_rates=(0.0, 0.5, 0.9),
)

#: CI smoke grid: one family, two rates.
SMOKE_SPEC = SweepSpec(
    name="bench-sweep-smoke",
    families=("prefix-hijack",),
    attack_count=1,
    rov_rates=(0.0, 0.6),
)

JOBS = 4


# ---------------------------------------------------------------------------
# pytest-benchmark entry points
# ---------------------------------------------------------------------------


def bench_sweep_spec_expansion(benchmark):
    cells = benchmark(GRID_SPEC.cells)
    assert len(cells) == GRID_SPEC.grid_size


def bench_sweep_report_fold(benchmark):
    """Folding per-cell metrics into family curves, no worlds involved."""
    from repro.sweep.engine import CellResult

    rollup = {
        "visibility": 0.5,
        "blocked": 0.4,
        "post_listing_visibility": 0.3,
    }
    cells = [
        CellResult(
            name=name,
            family=scenario.attacks[0].family,
            axes={
                "rov": scenario.defenses[0].rate,
                "drop": scenario.defenses[1].rate,
                "route_server": scenario.defenses[2].rate,
            },
            status="ok",
            kind=None,
            error=None,
            cache_status="hit",
            key="0" * 16,
            seconds=0.1,
            metrics={
                "families": {scenario.attacks[0].family: dict(rollup)}
            },
        )
        for name, scenario in GRID_SPEC.cells()
    ]
    report = benchmark(sweep_report, GRID_SPEC, cells)
    assert report["cells_ok"] == GRID_SPEC.grid_size


# ---------------------------------------------------------------------------
# standalone artifact mode
# ---------------------------------------------------------------------------


def _timed_run(spec, *, cache_root, jobs):
    instr = Instrumentation()
    started = perf_counter()
    outcome = run_sweep(
        spec, jobs=jobs, cache_root=cache_root, instrumentation=instr
    )
    return outcome, perf_counter() - started


def run(spec: SweepSpec, *, jobs: int, out: Path | None) -> dict:
    with tempfile.TemporaryDirectory(prefix="bench-sweep-") as tmp:
        cache_root = Path(tmp) / "cache"
        cold, cold_seconds = _timed_run(
            spec, cache_root=cache_root, jobs=jobs
        )
        warm, warm_seconds = _timed_run(
            spec, cache_root=cache_root, jobs=jobs
        )

    cells = len(spec.cells())
    families_covered = sorted(warm.report["families"])
    all_ok = not cold.failed and not warm.failed
    resume_clean = warm.worlds_built == 0
    covers_families = families_covered == sorted(spec.families)
    # One scale+seed per SweepSpec, so the whole grid shares one base.
    distinct_bases = 1
    cold_bases = cold.report["bases_built"]
    warm_bases = warm.report["bases_built"]
    base_seconds = cold.report["base_seconds"]

    payload = {
        "spec": spec.canonical_dict(),
        "jobs": jobs,
        "cells": cells,
        "cold_seconds": round(cold_seconds, 3),
        "warm_seconds": round(warm_seconds, 3),
        "cold_cells_per_second": round(cells / cold_seconds, 3),
        "warm_cells_per_second": round(cells / warm_seconds, 3),
        "cold_worlds_built": cold.worlds_built,
        "warm_worlds_built": warm.worlds_built,
        "bases_built": cold_bases,
        "warm_bases_built": warm_bases,
        "base_seconds": round(base_seconds, 3),
        "overlay_seconds": round(cold_seconds - base_seconds, 3),
        "warm_speedup": round(cold_seconds / warm_seconds, 2),
        "families_covered": families_covered,
        "meets_targets": {
            "all_cells_ok": all_ok,
            "resume_builds_zero_worlds": resume_clean,
            "cold_builds_at_most_distinct_bases": (
                cold_bases <= distinct_bases
            ),
            "resume_builds_zero_bases": warm_bases == 0,
            "report_covers_every_family": covers_families,
        },
    }
    if out is not None:
        out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return payload


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="CI mode: 2-cell grid, 2 jobs")
    parser.add_argument("--jobs", type=int, default=JOBS)
    parser.add_argument("--out", type=Path, default=None,
                        help="write the JSON artifact to FILE")
    parser.add_argument("--check", action="store_true",
                        help="exit 1 unless every target holds")
    args = parser.parse_args(argv)
    spec = SMOKE_SPEC if args.smoke else GRID_SPEC
    jobs = min(args.jobs, 2) if args.smoke else args.jobs
    payload = run(spec, jobs=jobs, out=args.out)
    print(json.dumps(payload, indent=2, sort_keys=True))
    if args.check and not all(payload["meets_targets"].values()):
        print("sweep targets missed", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
