"""The binary substrate store: exact round-trip, pins, degradation."""

import pytest

from repro.analysis.substrate import SubstrateLoadError, compute_roa_status
from repro.obs import Instrumentation
from repro.runtime.faults import injected
from repro.store.substrate import (
    STORE_SUBSTRATE_FILENAME,
    load_store_substrate,
    save_store_substrate,
)


@pytest.fixture(scope="module")
def roa_status(world):
    return compute_roa_status(world)


@pytest.fixture(scope="module")
def saved_dir(roa_status, tmp_path_factory):
    directory = tmp_path_factory.mktemp("store-substrate")
    assert save_store_substrate(
        roa_status, directory, key="cafebabe"
    ) is not None
    return directory


class TestRoundTrip:
    def test_points_exact(self, saved_dir, roa_status):
        loaded = load_store_substrate(saved_dir, expected_key="cafebabe")
        # Floats ride 'd' columns, so equality is exact, not approximate.
        assert loaded.points == roa_status.points

    def test_breakdowns_keep_value_and_order(self, saved_dir, roa_status):
        loaded = load_store_substrate(saved_dir, expected_key="cafebabe")
        assert loaded.unrouted_signed_by_holder == \
            roa_status.unrouted_signed_by_holder
        assert list(loaded.unrouted_signed_by_holder) == \
            list(roa_status.unrouted_signed_by_holder)
        assert loaded.unrouted_unsigned_by_rir == \
            roa_status.unrouted_unsigned_by_rir
        assert list(loaded.unrouted_unsigned_by_rir) == \
            list(roa_status.unrouted_unsigned_by_rir)

    def test_counters(self, roa_status, tmp_path):
        instr = Instrumentation()
        save_store_substrate(roa_status, tmp_path, instrumentation=instr)
        load_store_substrate(tmp_path, instrumentation=instr)
        assert instr.counters["store_saves"] == 1
        assert instr.counters["store_loads"] == 1


class TestHeaderPins:
    def test_foreign_key_rejected(self, saved_dir):
        with pytest.raises(SubstrateLoadError, match="key"):
            load_store_substrate(saved_dir, expected_key="deadbeef")

    def test_empty_expected_key_skips_check(self, saved_dir, roa_status):
        loaded = load_store_substrate(saved_dir, expected_key="")
        assert loaded.points == roa_status.points

    def test_foreign_generator_rejected(self, saved_dir, monkeypatch):
        monkeypatch.setattr("repro.store.substrate.GENERATOR_VERSION", 999)
        with pytest.raises(SubstrateLoadError, match="generator"):
            load_store_substrate(saved_dir, expected_key="cafebabe")

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(OSError):
            load_store_substrate(tmp_path)


class TestFaults:
    def test_save_fault_degrades_with_warning(self, roa_status, tmp_path):
        instr = Instrumentation()
        with injected("io-error@store.save"):
            with pytest.warns(RuntimeWarning, match="substrate store failed"):
                assert save_store_substrate(
                    roa_status, tmp_path, instrumentation=instr
                ) is None
        assert instr.counters["store_save_errors"] == 1
        assert not (tmp_path / STORE_SUBSTRATE_FILENAME).exists()

    def test_load_fault_raises_for_eviction(self, roa_status, tmp_path):
        save_store_substrate(roa_status, tmp_path)
        with injected("truncate@store.load"):
            with pytest.raises(Exception):
                load_store_substrate(tmp_path)
