"""Figure 5 / §6.2.1: routing status of ROA-covered space.

Samples, over time: address space covered by (non-AS0-TAL) ROAs, the
routed and unrouted shares of it, and allocated-but-unrouted space with no
ROA at all — all in /8 equivalents, as the paper plots them.  Also
reports the §6.2.1 holder concentration: the three organizations holding
70.1% of the signed-but-unrouted space, and §6.1's ARIN share of the
unsigned-unrouted space.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import date

from ..net.prefixset import PrefixSet
from ..net.timeline import month_starts
from ..rirstats.rirs import ALL_RIRS
from ..rpki.tal import TalSet
from ..synth.world import World

__all__ = [
    "DirectDaySpaces",
    "RoaStatusPoint",
    "RoaStatusResult",
    "analyze_roa_status",
    "default_sample_days",
]


@dataclass(frozen=True, slots=True)
class RoaStatusPoint:
    """One sample day of Figure 5 (all space in /8 equivalents)."""

    day: date
    signed: float
    signed_routed: float
    signed_unrouted: float
    allocated_unrouted_unsigned: float

    @property
    def percent_routed(self) -> float:
        """Share of signed space that is routed (97.1% → 90.5%)."""
        return 100.0 * self.signed_routed / self.signed if self.signed else 0.0


@dataclass(frozen=True, slots=True)
class RoaStatusResult:
    """The Figure 5 series plus the §6.2.1 / §6.1 end-state breakdowns."""

    points: tuple[RoaStatusPoint, ...]
    #: holder → unrouted signed space (/8 equivalents) at window end.
    unrouted_signed_by_holder: dict[str, float]
    #: RIR → allocated-unrouted-unsigned space (/8 equivalents) at end.
    unrouted_unsigned_by_rir: dict[str, float]

    @property
    def final(self) -> RoaStatusPoint:
        """The last sample (the paper's March 2022 numbers)."""
        return self.points[-1]

    @property
    def first(self) -> RoaStatusPoint:
        """The first sample (the paper's mid-2019 numbers)."""
        return self.points[0]

    def top_holder_share(self, n: int = 3) -> float:
        """Share of unrouted-signed space held by the top ``n`` holders
        (paper: 70.1% for Amazon + Prudential + Alibaba)."""
        total = self.final.signed_unrouted
        if not total:
            return 0.0
        top = sorted(
            self.unrouted_signed_by_holder.values(), reverse=True
        )[:n]
        return sum(top) / total

    def rir_unsigned_share(self, rir: str) -> float:
        """One RIR's share of unsigned-unrouted space (ARIN: 60.8%)."""
        total = self.final.allocated_unrouted_unsigned
        if not total:
            return 0.0
        return self.unrouted_unsigned_by_rir.get(rir, 0.0) / total


def default_sample_days(world: World) -> list[date]:
    """Figure 5's sampling grid: month starts plus the window end."""
    days = list(month_starts(world.window.start, world.window.end))
    days.append(world.window.end)
    return days


class DirectDaySpaces:
    """Per-day space computation straight off the raw stores.

    The analysis only ever consumes three per-day sets; factoring their
    computation behind this tiny provider lets the shared substrate
    swap in batched (single-pass) versions while the set algebra — the
    part that defines Figure 5 — stays on exactly one code path.
    """

    def __init__(self, world: World, tals: TalSet) -> None:
        self.world = world
        self.tals = tals

    def signed(self, day: date) -> tuple[PrefixSet, PrefixSet]:
        """(all ROA-covered space, non-AS0 ROA-covered space)."""
        return _signed_space(self.world, day, self.tals)

    def allocated(self, day: date) -> PrefixSet:
        return self.world.resources.allocated_space(day)

    def routed(self, day: date) -> PrefixSet:
        return self.world.bgp.routed_space(day)


def analyze_roa_status(
    world: World,
    sample_days: list[date] | None = None,
    *,
    spaces: DirectDaySpaces | None = None,
) -> RoaStatusResult:
    """Compute the Figure 5 series (default: monthly samples)."""
    if sample_days is None:
        sample_days = default_sample_days(world)
    tals = TalSet.default()
    if spaces is None:
        spaces = DirectDaySpaces(world, tals)
    points = []
    for day in sample_days:
        signed_all, signed_non_as0 = spaces.signed(day)
        allocated = spaces.allocated(day)
        routed = spaces.routed(day)
        signed = signed_all & allocated
        signed_routed = signed & routed
        signed_unrouted = (signed_non_as0 & allocated) - routed
        unsigned_unrouted = (allocated - routed) - signed_all
        points.append(
            RoaStatusPoint(
                day=day,
                signed=signed.slash8_equivalents,
                signed_routed=signed_routed.slash8_equivalents,
                signed_unrouted=signed_unrouted.slash8_equivalents,
                allocated_unrouted_unsigned=(
                    unsigned_unrouted.slash8_equivalents
                ),
            )
        )

    end = sample_days[-1]
    signed_all, signed_non_as0 = spaces.signed(end)
    allocated = spaces.allocated(end)
    routed = spaces.routed(end)
    final_unrouted_signed = (signed_non_as0 & allocated) - routed
    by_holder: dict[str, float] = {}
    for holder, space in world.resources.holders_of_space(end).items():
        overlap = space & final_unrouted_signed
        if overlap:
            by_holder[holder] = overlap.slash8_equivalents
    unsigned_unrouted = (allocated - routed) - signed_all
    by_rir: dict[str, float] = {}
    for rir in ALL_RIRS:
        overlap = world.resources.allocated_space(end, rir) & unsigned_unrouted
        if overlap:
            by_rir[rir] = overlap.slash8_equivalents
    return RoaStatusResult(
        points=tuple(points),
        unrouted_signed_by_holder=by_holder,
        unrouted_unsigned_by_rir=by_rir,
    )


def _signed_space(
    world: World, day: date, tals: TalSet
) -> tuple[PrefixSet, PrefixSet]:
    """(all ROA-covered space, non-AS0 ROA-covered space) on ``day``."""
    all_intervals = []
    non_as0 = []
    for record in world.roas.records():
        if not record.active_on(day):
            continue
        if not tals.trusts(record.roa.trust_anchor):
            continue
        span = (record.roa.prefix.first, record.roa.prefix.last + 1)
        all_intervals.append(span)
        if not record.roa.is_as0:
            non_as0.append(span)
    return (
        PrefixSet.from_intervals(all_intervals),
        PrefixSet.from_intervals(non_as0),
    )
