"""The generic container: layout, checksums, views, durable writes."""

import os
import struct
from array import array

import pytest

from repro.store import StoreReader, StoreError, build_store, durable_write


def _sample_blob():
    return build_store(
        {"kind": "test", "answer": 42},
        [
            ("nums", "I", array("I", [1, 2, 3, 4])),
            ("wide", "Q", array("Q", [1 << 40, 2 << 40])),
            ("floats", "d", array("d", [0.5, -1.25])),
            ("raw", "B", b"hello"),
        ],
    )


class TestRoundTrip:
    def test_meta_and_sections(self):
        reader = StoreReader.from_bytes(_sample_blob())
        assert reader.meta == {"kind": "test", "answer": 42}
        assert sorted(reader.section_names()) == [
            "floats", "nums", "raw", "wide",
        ]
        assert list(reader.view("nums", "I")) == [1, 2, 3, 4]
        assert list(reader.view("wide", "Q")) == [1 << 40, 2 << 40]
        assert list(reader.view("floats", "d")) == [0.5, -1.25]
        assert bytes(reader.view("raw", "B")) == b"hello"

    def test_empty_sections_round_trip(self):
        blob = build_store({}, [("empty", "Q", array("Q"))])
        reader = StoreReader.from_bytes(blob)
        assert len(reader.view("empty", "Q")) == 0

    def test_views_are_zero_copy_and_aligned(self):
        reader = StoreReader.from_bytes(_sample_blob())
        view = reader.view("wide", "Q")
        assert view.itemsize == 8
        assert view.nbytes == 16
        assert view[1] == 2 << 40

    def test_open_via_mmap(self, tmp_path):
        path = tmp_path / "sample.bin"
        path.write_bytes(_sample_blob())
        reader = StoreReader.open(path)
        try:
            assert list(reader.view("nums", "I")) == [1, 2, 3, 4]
            assert reader.source == str(path)
        finally:
            reader.close()

    def test_bisect_works_on_views(self):
        from bisect import bisect_left

        keys = array("Q", [10, 20, 30, 40])
        reader = StoreReader.from_bytes(build_store({}, [("k", "Q", keys)]))
        view = reader.view("k", "Q")
        assert bisect_left(view, 30) == 2
        assert bisect_left(view, 35) == 3


class TestValidation:
    def test_bad_section_name(self):
        with pytest.raises(StoreError, match="1..16 bytes"):
            build_store({}, [("x" * 17, "I", b"")])

    def test_bad_typecode(self):
        with pytest.raises(StoreError, match="typecode"):
            build_store({}, [("x", "Z", b"")])

    def test_misaligned_payload(self):
        with pytest.raises(StoreError, match="multiple"):
            build_store({}, [("x", "I", b"abc")])

    def test_missing_section(self):
        reader = StoreReader.from_bytes(_sample_blob())
        with pytest.raises(StoreError, match="missing section"):
            reader.view("nope", "I")

    def test_wrong_typecode_on_view(self):
        reader = StoreReader.from_bytes(_sample_blob())
        with pytest.raises(StoreError, match="expected"):
            reader.view("nums", "Q")


class TestCorruption:
    def test_bad_magic(self):
        blob = bytearray(_sample_blob())
        blob[0] ^= 0xFF
        with pytest.raises(StoreError, match="magic"):
            StoreReader.from_bytes(bytes(blob))

    def test_unknown_format(self):
        blob = bytearray(_sample_blob())
        struct.pack_into("<I", blob, 8, 999)
        with pytest.raises(StoreError, match="format"):
            StoreReader.from_bytes(bytes(blob))

    def test_every_truncation_fails_closed(self):
        blob = _sample_blob()
        for cut in range(0, len(blob) - 1, 7):
            with pytest.raises(StoreError):
                StoreReader.from_bytes(blob[:cut])

    def test_payload_bitflip_fails_checksum(self):
        blob = bytearray(_sample_blob())
        blob[-1] ^= 0x01  # inside the last section's payload
        with pytest.raises(StoreError, match="checksum"):
            StoreReader.from_bytes(bytes(blob))

    def test_header_bitflip_fails_checksum(self):
        blob = bytearray(_sample_blob())
        # Flip a byte inside the JSON metadata (after the 16-byte head).
        blob[20] ^= 0x01
        with pytest.raises(StoreError):
            StoreReader.from_bytes(bytes(blob))

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.bin"
        path.write_bytes(b"")
        with pytest.raises(StoreError, match="empty"):
            StoreReader.open(path)


class TestDurableWrite:
    def test_publishes_atomically(self, tmp_path):
        target = durable_write(tmp_path, "out.bin", b"payload")
        assert target.read_bytes() == b"payload"
        assert [p.name for p in tmp_path.iterdir()] == ["out.bin"]

    def test_fsyncs_file_before_rename(self, tmp_path, monkeypatch):
        """The crash-safety ordering: fsync(data) happens-before rename."""
        events = []
        real_fsync, real_rename = os.fsync, os.rename

        def recording_fsync(fd):
            events.append("fsync")
            real_fsync(fd)

        def recording_rename(src, dst):
            events.append("rename")
            real_rename(src, dst)

        monkeypatch.setattr(os, "fsync", recording_fsync)
        monkeypatch.setattr(os, "rename", recording_rename)
        durable_write(tmp_path, "out.bin", b"payload")
        # staging-file fsync, rename, then the directory fsync.
        assert events == ["fsync", "rename", "fsync"]

    def test_failed_write_leaves_no_trace(self, tmp_path, monkeypatch):
        def exploding_fsync(fd):
            raise OSError("injected")

        monkeypatch.setattr(os, "fsync", exploding_fsync)
        with pytest.raises(OSError):
            durable_write(tmp_path, "out.bin", b"payload")
        assert list(tmp_path.iterdir()) == []

    def test_overwrite_is_atomic(self, tmp_path):
        durable_write(tmp_path, "out.bin", b"old")
        durable_write(tmp_path, "out.bin", b"new")
        assert (tmp_path / "out.bin").read_bytes() == b"new"
        assert [p.name for p in tmp_path.iterdir()] == ["out.bin"]
