"""Reporting: text tables, ASCII figures, and the experiment registry."""

from .experiments import (
    EXPERIMENTS,
    SUBSTRATE_EXPERIMENTS,
    ExperimentReport,
    Metric,
    render_markdown,
    render_text,
    run_all,
    run_experiment,
)
from .figures import ascii_cdf, ascii_series, ascii_timeline, cdf_points
from .tables import TextTable

__all__ = [
    "EXPERIMENTS",
    "SUBSTRATE_EXPERIMENTS",
    "ExperimentReport",
    "Metric",
    "TextTable",
    "ascii_cdf",
    "ascii_series",
    "ascii_timeline",
    "cdf_points",
    "render_markdown",
    "render_text",
    "run_all",
    "run_experiment",
]
