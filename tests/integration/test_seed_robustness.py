"""Seed robustness: the generator and pipeline hold for arbitrary seeds.

The scenario quotas must survive any RNG stream — a seed that crashes
the builder or breaks an invariant is a bug (one such off-by-a-month
date bug was found this way during development).
"""

import pytest

from repro.analysis import (
    analyze_rpki_effectiveness,
    analyze_visibility,
    classify_drop,
    load_entries,
)
from repro.synth import ScenarioConfig, build_world

SEEDS = (1, 11, 101, 1001, 20_260_704)


@pytest.mark.parametrize("seed", SEEDS)
def test_world_builds_and_reproduces(seed):
    world = build_world(ScenarioConfig.tiny(seed=seed))
    entries = load_entries(world)
    assert len(entries) == 712

    classification = classify_drop(world, entries)
    assert classification.with_record == 526
    assert classification.incident_prefixes == 45

    visibility = analyze_visibility(world, entries)
    assert 0.1 < visibility.withdrawal_rate < 0.3

    rpki = analyze_rpki_effectiveness(world, entries)
    assert rpki.presigned_count == 3
    assert len(rpki.rpki_valid_hijacks) == 1
    assert len(rpki.rpki_valid_hijacks[0].siblings) == 6
