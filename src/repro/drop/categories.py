"""The DROP prefix taxonomy from §3.1 of the paper.

Each prefix added to DROP is placed in one or more categories based on its
SBL record text (Appendix A), or ``NO_RECORD`` when Spamhaus had already
removed the SBL record.
"""

from __future__ import annotations

from enum import Enum

__all__ = ["Category"]


class Category(Enum):
    """Why a prefix appeared on the DROP list."""

    #: Prefixes obtained through fraud from an RIR, or announced without
    #: authorization (§3.1 category 1).
    HIJACKED = "HJ"
    #: Prefixes used to send spam from many addresses to evade detection.
    SNOWSHOE = "SS"
    #: Prefixes under the control of, or connected with, a spam operation.
    KNOWN_SPAM = "KS"
    #: Prefixes used by bulletproof hosting services.
    MALICIOUS_HOSTING = "MH"
    #: Prefixes no RIR has allocated, but attackers are using.
    UNALLOCATED = "UA"
    #: Prefixes whose SBL record was already removed (post-remediation).
    NO_RECORD = "NR"

    @property
    def label(self) -> str:
        """The two-letter label used in the paper's figures."""
        return self.value

    @classmethod
    def from_label(cls, label: str) -> "Category":
        """Look up a category by its two-letter label."""
        for category in cls:
            if category.value == label.upper():
                return category
        raise ValueError(f"unknown DROP category label {label!r}")

    def __str__(self) -> str:
        return self.value


#: Figure 1 bar order.
FIGURE1_ORDER: tuple[Category, ...] = (
    Category.HIJACKED,
    Category.SNOWSHOE,
    Category.KNOWN_SPAM,
    Category.MALICIOUS_HOSTING,
    Category.UNALLOCATED,
    Category.NO_RECORD,
)
