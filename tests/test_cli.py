"""Tests for the repro-drop command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.reporting import EXPERIMENTS


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_build_requires_out(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["build"])

    def test_report_defaults(self):
        args = build_parser().parse_args(["report", "--exp", "tab1"])
        assert args.scale == "tiny"
        assert args.exp == ["tab1"]
        assert not args.all


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out.splitlines()
        assert set(out) == set(EXPERIMENTS)

    def test_report_single_experiment(self, capsys):
        assert main(["report", "--exp", "tab2"]) == 0
        out = capsys.readouterr().out
        assert "Appendix A" in out
        assert "measured" in out

    def test_report_unknown_experiment(self, capsys):
        assert main(["report", "--exp", "nope"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_report_nothing_selected(self, capsys):
        assert main(["report"]) == 2
        assert "nothing to run" in capsys.readouterr().err

    def test_build_then_report_from_archives(self, tmp_path, capsys):
        out_dir = tmp_path / "archives"
        assert main(["build", "--out", str(out_dir), "--seed", "5"]) == 0
        built = capsys.readouterr().out
        assert "712 DROP prefixes" in built
        assert (out_dir / "sbl.jsonl").exists()
        assert main(
            ["report", "--archives", str(out_dir), "--exp", "fig2-peers"]
        ) == 0
        report = capsys.readouterr().out
        assert "peers filtering DROP" in report

    def test_markdown(self, capsys):
        assert main(["markdown"]) == 0
        out = capsys.readouterr().out
        assert "### fig1" in out
        assert "### ext-rov" in out
        assert "| metric | paper | measured |" in out
