"""Deprecated shim: stage instrumentation moved to :mod:`repro.obs`.

The :class:`Instrumentation` facade, :class:`StageRecord`, and
:func:`world_sizes` now live in :mod:`repro.obs.instrument`, where
stages are real spans and counters are registry metrics.  This module
keeps the old import path working for one release; every attribute
access emits a :class:`DeprecationWarning`.  Import from
:mod:`repro.obs` (or :mod:`repro.runtime`, which re-exports) instead.
"""

from __future__ import annotations

import warnings

__all__ = ["Instrumentation", "StageRecord", "world_sizes"]

_MOVED = frozenset(__all__)


def __getattr__(name: str):
    if name in _MOVED:
        warnings.warn(
            f"repro.runtime.instrument.{name} moved to repro.obs; "
            "this shim will be removed in the next release",
            DeprecationWarning,
            stacklevel=2,
        )
        from .. import obs

        return getattr(obs, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
