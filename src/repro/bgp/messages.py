"""BGP message-level value types: AS paths and route elements.

The reproduction's BGP data model mirrors what the paper extracts from
RouteViews MRT archives: for each (prefix, peer, time) we need the AS path
(notably its origin and any transit AS of interest), and announce/withdraw
transitions.  ``ASPath`` is a thin immutable wrapper over a tuple of ASNs;
``BgpElement`` is the pybgpstream-style "elem" record produced by
:mod:`repro.bgp.stream`.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import date
from typing import Iterable, Iterator

from ..net.asn import parse_asn
from ..net.prefix import IPv4Prefix

__all__ = ["ASPath", "BgpElement", "ElementType"]


@dataclass(frozen=True, slots=True)
class ASPath:
    """An ordered AS path, nearest AS first, origin last.

    Prepending is represented naturally by repeated ASNs.  AS_SETs are not
    modeled: the paper's analyses only use the origin and path membership,
    and modern RouteViews data contains almost no AS_SETs.
    """

    asns: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.asns:
            raise ValueError("AS path must contain at least one ASN")

    @classmethod
    def of(cls, *asns: int) -> "ASPath":
        """Build from ASNs listed nearest-first."""
        return cls(tuple(asns))

    @classmethod
    def parse(cls, text: str) -> "ASPath":
        """Parse a space-separated path string, e.g. ``"50509 34665 263692"``."""
        parts = text.split()
        if not parts:
            raise ValueError("empty AS path")
        return cls(tuple(parse_asn(p) for p in parts))

    @property
    def origin(self) -> int:
        """The origin AS (last ASN on the path)."""
        return self.asns[-1]

    @property
    def first_hop(self) -> int:
        """The AS nearest the collector peer (first ASN on the path)."""
        return self.asns[0]

    @property
    def length(self) -> int:
        """Unique-AS path length (prepending collapsed), the BGP tiebreak."""
        deduped = 1
        for prev, cur in zip(self.asns, self.asns[1:]):
            if cur != prev:
                deduped += 1
        return deduped

    def contains(self, asn: int) -> bool:
        """True if ``asn`` appears anywhere on the path."""
        return asn in self.asns

    def transits(self, asn: int) -> bool:
        """True if ``asn`` appears on the path but is not the origin."""
        return asn in self.asns[:-1]

    def neighbour_of_origin(self) -> int | None:
        """The AS adjacent to the origin, or ``None`` for origin-only paths."""
        for asn in reversed(self.asns[:-1]):
            if asn != self.origin:
                return asn
        return None

    def prepended(self, asn: int, times: int = 1) -> "ASPath":
        """A new path with ``asn`` prepended ``times`` times at the front."""
        if times < 1:
            raise ValueError("times must be >= 1")
        return ASPath((asn,) * times + self.asns)

    def __iter__(self) -> Iterator[int]:
        return iter(self.asns)

    def __len__(self) -> int:
        return len(self.asns)

    def __str__(self) -> str:
        return " ".join(str(a) for a in self.asns)


class ElementType:
    """pybgpstream-compatible element type strings."""

    ANNOUNCEMENT = "A"
    WITHDRAWAL = "W"
    RIB = "R"


@dataclass(frozen=True, slots=True)
class BgpElement:
    """One BGP observation element, as yielded by the stream API.

    Mirrors the fields of a pybgpstream elem: type (A/W/R), day, collector,
    peer ASN, prefix, and (for A/R) the AS path.
    """

    elem_type: str
    day: date
    collector: str
    peer_id: int
    peer_asn: int
    prefix: IPv4Prefix
    path: ASPath | None = None

    def __post_init__(self) -> None:
        if self.elem_type not in (
            ElementType.ANNOUNCEMENT,
            ElementType.WITHDRAWAL,
            ElementType.RIB,
        ):
            raise ValueError(f"bad element type {self.elem_type!r}")
        if self.elem_type != ElementType.WITHDRAWAL and self.path is None:
            raise ValueError("announcement/rib elements need an AS path")

    @property
    def origin(self) -> int | None:
        """The origin ASN, or ``None`` for withdrawals."""
        return None if self.path is None else self.path.origin


def paths_equal_ignoring_prepend(a: ASPath, b: ASPath) -> bool:
    """True if two paths traverse the same AS sequence modulo prepending."""
    return _collapse(a.asns) == _collapse(b.asns)


def _collapse(asns: Iterable[int]) -> tuple[int, ...]:
    out: list[int] = []
    for asn in asns:
        if not out or out[-1] != asn:
            out.append(asn)
    return tuple(out)
