"""Routing-visibility computations (Figure 2 and §4.1).

Figure 2's left panel is a CDF, over DROP prefixes, of the fraction of
full-table RouteViews peers observing the prefix at fixed offsets from the
listing day (-1, +2, +7, +30 days); the headline number is that 19% of
prefixes were withdrawn within 30 days of listing.  The right panel detects
peers whose observation rate across DROP prefixes is anomalously low —
the three peers that filter DROP-listed routes.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import date, timedelta
from typing import Iterable, Sequence

from ..net.prefix import IPv4Prefix
from .collector import PeerRegistry
from .ribs import RouteIntervalStore

__all__ = [
    "DEFAULT_OFFSETS",
    "PeerObservationRate",
    "VisibilityProfile",
    "fraction_observing",
    "peer_observation_rates",
    "suspect_filtering_peers",
    "visibility_profile",
    "withdrawn_within",
]

#: Day offsets from the listing date used in Figure 2's left panel.
DEFAULT_OFFSETS: tuple[int, ...] = (-1, 2, 7, 30)


def fraction_observing(
    store: RouteIntervalStore,
    registry: PeerRegistry,
    prefix: IPv4Prefix,
    day: date,
) -> float:
    """Fraction of full-table peers with an exact route for ``prefix``."""
    full_table = registry.full_table_peer_ids()
    if not full_table:
        return 0.0
    observing = store.peers_observing(prefix, day) & full_table
    return len(observing) / len(full_table)


@dataclass(frozen=True, slots=True)
class VisibilityProfile:
    """Per-prefix visibility fractions at fixed offsets from listing."""

    prefix: IPv4Prefix
    listed: date
    fractions: dict[int, float]

    def withdrawn_by(self, offset: int) -> bool:
        """True if no peer observed the prefix at the given offset."""
        return self.fractions.get(offset, 0.0) == 0.0


def visibility_profile(
    store: RouteIntervalStore,
    registry: PeerRegistry,
    prefix: IPv4Prefix,
    listed: date,
    offsets: Sequence[int] = DEFAULT_OFFSETS,
) -> VisibilityProfile:
    """Visibility fractions for one prefix around its listing date."""
    fractions = {
        offset: fraction_observing(
            store, registry, prefix, listed + timedelta(days=offset)
        )
        for offset in offsets
    }
    return VisibilityProfile(prefix=prefix, listed=listed, fractions=fractions)


def withdrawn_within(
    store: RouteIntervalStore,
    prefix: IPv4Prefix,
    listed: date,
    days: int = 30,
) -> bool:
    """True if the prefix was routed at listing but not ``days`` later.

    Matches the paper's §4.1 definition: a prefix counts as withdrawn if it
    was BGP-observed around its listing day and no exact-prefix route
    remained active ``days`` days after listing.
    """
    announced_at_listing = store.is_announced(
        prefix, listed, include_covering=False
    ) or store.is_announced(
        prefix, listed - timedelta(days=1), include_covering=False
    )
    if not announced_at_listing:
        return False
    return not store.is_announced(
        prefix, listed + timedelta(days=days), include_covering=False
    )


@dataclass(frozen=True, slots=True)
class PeerObservationRate:
    """How often one peer observed a collection of target routes."""

    peer_id: int
    peer_asn: int
    collector: str
    observed: int
    observable: int

    @property
    def rate(self) -> float:
        """Fraction of observable (prefix, day) samples this peer saw."""
        return self.observed / self.observable if self.observable else 0.0


def peer_observation_rates(
    store: RouteIntervalStore,
    registry: PeerRegistry,
    samples: Iterable[tuple[IPv4Prefix, date]],
) -> list[PeerObservationRate]:
    """Per-peer observation rates over (prefix, day) samples.

    A sample is *observable* by a peer if at least half of the full-table
    peers saw the route that day — i.e. the route was genuinely in the
    global table, so a full-table peer missing it is notable.
    """
    full_table = registry.full_table_peer_ids()
    threshold = max(1, len(full_table) // 2)
    observed: dict[int, int] = {pid: 0 for pid in full_table}
    observable: dict[int, int] = {pid: 0 for pid in full_table}
    for prefix, day in samples:
        observers = store.peers_observing(prefix, day)
        if len(observers & full_table) < threshold:
            continue
        for pid in full_table:
            observable[pid] += 1
            if pid in observers:
                observed[pid] += 1
    rates = []
    for pid in sorted(full_table):
        peer = registry.peer(pid)
        rates.append(
            PeerObservationRate(
                peer_id=pid,
                peer_asn=peer.asn,
                collector=peer.collector,
                observed=observed[pid],
                observable=observable[pid],
            )
        )
    return rates


def suspect_filtering_peers(
    rates: Sequence[PeerObservationRate],
    *,
    max_rate: float = 0.5,
    min_samples: int = 10,
) -> list[PeerObservationRate]:
    """Peers whose observation rate over target routes is anomalously low.

    With DROP prefixes as the targets, peers filtering the DROP list show
    near-zero rates while normal full-table peers sit near 1.0; the paper
    found three such peers.
    """
    return [
        r
        for r in rates
        if r.observable >= min_samples and r.rate <= max_rate
    ]
