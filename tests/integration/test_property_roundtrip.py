"""Randomized (seeded, stdlib ``random``) archive round-trip properties.

Every serialization format the study consumes must reload to exactly the
records it saved: RPSL flat files, ROA CSV snapshots, delegated-stats
files, and the whole-world ``save_world``/``load_world`` archive.  The
generators draw from seeded :class:`random.Random` streams so failures
replay deterministically — on a failure, the parametrized seed pins the
exact input.
"""

import random
from datetime import date, timedelta

import pytest

from repro.irr.rpsl import (
    Maintainer,
    Organisation,
    RouteObject,
    emit_objects,
    parse_objects,
)
from repro.net.prefix import IPv4Prefix
from repro.rirstats.delegated import (
    DelegatedRecord,
    emit_delegated,
    parse_delegated,
)
from repro.rirstats.rirs import ALL_RIRS
from repro.rpki.archive import RoaArchive
from repro.rpki.roa import Roa, RoaRecord
from repro.synth import ScenarioConfig, build_world, load_world, save_world

SEEDS = (1, 7, 2022)


def _random_prefix(rng: random.Random, min_len: int = 8) -> IPv4Prefix:
    length = rng.randint(min_len, 32)
    network = rng.getrandbits(32) & ~((1 << (32 - length)) - 1)
    return IPv4Prefix(network, length)


def _random_day(rng: random.Random) -> date:
    return date(2019, 1, 1) + timedelta(days=rng.randint(0, 1200))


@pytest.mark.parametrize("seed", SEEDS)
class TestRpslRoundTrip:
    def test_route_objects(self, seed):
        rng = random.Random(seed)
        originals = [
            RouteObject(
                prefix=_random_prefix(rng),
                origin=rng.randint(1, 4_200_000_000),
                maintainer=f"MAINT-{rng.randint(1, 999)}",
                org_id=(
                    f"ORG-{rng.randint(1, 99)}" if rng.random() < 0.5
                    else None
                ),
                descr=(
                    f"net description {rng.randint(0, 10**6)}"
                    if rng.random() < 0.5
                    else None
                ),
                source=rng.choice(["RADB", "RIPE", "LEVEL3"]),
            )
            for _ in range(50)
        ]
        text = emit_objects([o.to_rpsl() for o in originals])
        reparsed = [RouteObject.from_rpsl(o) for o in parse_objects(text)]
        assert reparsed == originals

    def test_maintainers_and_organisations(self, seed):
        rng = random.Random(seed)
        originals = [
            Maintainer(
                name=f"MNT-{rng.randint(1, 9999)}",
                org_id=(
                    f"ORG-{rng.randint(1, 99)}" if rng.random() < 0.5
                    else None
                ),
                email=(
                    f"noc{rng.randint(1, 99)}@example.net"
                    if rng.random() < 0.5
                    else None
                ),
            )
            for _ in range(30)
        ] + [
            Organisation(
                org_id=f"ORG-{rng.randint(100, 999)}",
                name=f"Example Org {rng.randint(1, 999)}",
            )
            for _ in range(30)
        ]
        text = emit_objects([o.to_rpsl() for o in originals])
        reparsed = [
            Maintainer.from_rpsl(o)
            if o.object_class == "mntner"
            else Organisation.from_rpsl(o)
            for o in parse_objects(text)
        ]
        assert reparsed == originals


@pytest.mark.parametrize("seed", SEEDS)
class TestRoaCsvRoundTrip:
    def test_snapshot_diffing_recovers_active_sets(self, seed):
        """Rebuilding from daily CSVs preserves each day's active ROAs."""
        rng = random.Random(seed)
        archive = RoaArchive()
        start = date(2020, 1, 1)
        for _ in range(60):
            prefix = _random_prefix(rng, min_len=8)
            created = start + timedelta(days=rng.randint(0, 60))
            removed = (
                created + timedelta(days=rng.randint(1, 60))
                if rng.random() < 0.4
                else None
            )
            archive.add(
                RoaRecord(
                    roa=Roa(
                        prefix=prefix,
                        asn=rng.randint(0, 65_000),
                        max_length=(
                            rng.randint(prefix.length, 32)
                            if rng.random() < 0.5
                            else None
                        ),
                        trust_anchor=rng.choice(ALL_RIRS),
                    ),
                    created=created,
                    removed=removed,
                )
            )
        days = [start + timedelta(days=offset) for offset in range(0, 140)]
        rebuilt = RoaArchive.from_snapshots(
            [(day, archive.snapshot_csv(day)) for day in days]
        )

        def active_set(source, day):
            # CSV carries the *effective* maxLength, so compare on it.
            return sorted(
                (str(r.prefix), r.asn, r.effective_max_length,
                 r.trust_anchor)
                for r in source.roas_on(day)
            )

        for day in days:
            assert active_set(rebuilt, day) == active_set(archive, day)

    def test_csv_parse_emits_exact_records(self, seed):
        rng = random.Random(seed)
        archive = RoaArchive()
        day = date(2021, 6, 1)
        originals = []
        for _ in range(40):
            prefix = _random_prefix(rng)
            roa = Roa(
                prefix=prefix,
                asn=rng.randint(0, 4_200_000_000),
                max_length=rng.randint(prefix.length, 32),
                trust_anchor=rng.choice(ALL_RIRS),
            )
            originals.append(roa)
            archive.add(RoaRecord(roa=roa, created=day))
        rebuilt = RoaArchive.from_snapshots(
            [(day, archive.snapshot_csv(day))]
        )
        key = lambda roa: (str(roa.prefix), roa.asn,
                           roa.effective_max_length, roa.trust_anchor)
        assert sorted(map(key, rebuilt.roas_on(day))) == sorted(
            map(key, originals)
        )


@pytest.mark.parametrize("seed", SEEDS)
class TestDelegatedRoundTrip:
    def test_records_survive_emit_parse(self, seed):
        rng = random.Random(seed)
        registry = rng.choice(ALL_RIRS)
        originals = []
        for _ in range(80):
            if rng.random() < 0.7:
                prefix = _random_prefix(rng, min_len=8)
                rtype, start, count = (
                    "ipv4", prefix.network, 1 << (32 - prefix.length)
                )
            else:
                rtype, start, count = (
                    "asn", rng.randint(1, 400_000), rng.randint(1, 16)
                )
            originals.append(
                DelegatedRecord(
                    registry=registry,
                    country=(
                        rng.choice(["US", "BR", "ZA", "NL"])
                        if rng.random() < 0.8
                        else None
                    ),
                    rtype=rtype,
                    start=start,
                    count=count,
                    allocated_on=(
                        _random_day(rng) if rng.random() < 0.8 else None
                    ),
                    status=rng.choice(
                        ["allocated", "assigned", "available", "reserved"]
                    ),
                    opaque_id=(
                        f"opaque-{rng.randint(1, 10**6)}"
                        if rng.random() < 0.5
                        else None
                    ),
                )
            )
        text = emit_delegated(registry, date(2022, 3, 30), originals)
        assert list(parse_delegated(text)) == originals


@pytest.mark.parametrize("seed", (11, 3107))
def test_world_archive_round_trip_randomized(seed, tmp_path):
    """Reloaded stores equal the in-memory originals, any seed."""
    world = build_world(ScenarioConfig.tiny(seed=seed))
    directory = tmp_path / "world"
    save_world(world, directory, drop_step_days=1)
    reloaded = load_world(directory)

    episodes = lambda w: sorted(
        (str(e.prefix), e.added, e.removed, e.sbl_id)
        for e in w.drop.episodes()
    )
    roas = lambda w: sorted(
        (str(r.roa.prefix), r.roa.asn, r.roa.max_length,
         r.roa.trust_anchor, r.created, r.removed)
        for r in w.roas.records()
    )
    routes = lambda w: sorted(
        (str(i.prefix), str(i.path), i.start, i.end)
        for i in w.bgp.all_intervals()
    )
    assert episodes(reloaded) == episodes(world)
    assert roas(reloaded) == roas(world)
    assert routes(reloaded) == routes(world)
    assert len(reloaded.irr) == len(world.irr)
    assert len(reloaded.sbl) == len(world.sbl)
