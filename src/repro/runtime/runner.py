"""Parallel experiment runner.

Fans the :data:`~repro.reporting.experiments.EXPERIMENTS` registry out
over a :class:`~concurrent.futures.ProcessPoolExecutor`.  The expensive
shared state (the world and its entry view) is established once: on
POSIX the workers fork it from the parent; under spawn/forkserver the
initializer reloads the world from the cache entry (or rebuilds it from
the config), so results are identical either way.

Guarantees:

* **deterministic ordering** — reports come back in the order the
  experiment ids were requested, regardless of completion order;
* **error isolation** — one failing experiment becomes an
  :class:`ExperimentFailure` in the outcome instead of killing the run;
* **worker-loss recovery** — a dying worker process (OOM kill, segfault,
  injected crash) poisons the pool, not the run: the experiments it took
  down are retried in a fresh pool, then serially in-parent, so one bad
  worker costs wall time instead of results;
* **byte-identical output** — a parallel run renders exactly what the
  serial run renders (asserted by the golden regression tests).

``--jobs N`` on the CLI and the ``REPRO_JOBS`` environment variable
select the worker count (``0`` means one per CPU); ``jobs == 1`` runs
serially in-process.  ``REPRO_START_METHOD`` forces a multiprocessing
start method (``fork``/``spawn``/``forkserver``) so the spawn
initializer path is testable on fork-default platforms.
"""

from __future__ import annotations

import multiprocessing
import os
import traceback
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from time import perf_counter

from ..analysis import load_entries
from ..analysis.common import DropEntryView
from ..analysis.substrate import AnalysisSubstrate
from ..reporting import (
    EXPERIMENTS,
    SUBSTRATE_EXPERIMENTS,
    ExperimentReport,
    run_experiment,
)
from ..synth import ScenarioConfig, World, build_world, load_world
from . import faults
from .cache import world_cache_key
from ..obs import Instrumentation, Tracer

__all__ = [
    "JOBS_ENV",
    "START_METHOD_ENV",
    "ExperimentFailure",
    "RunOutcome",
    "default_jobs",
    "parallel_map",
    "resolve_jobs",
    "run_experiments",
]

JOBS_ENV = "REPRO_JOBS"
START_METHOD_ENV = "REPRO_START_METHOD"

#: Fresh-pool retry rounds for experiments whose worker died, before
#: falling back to running them serially in the parent.
_MAX_POOL_RETRIES = 1


def resolve_jobs(value: int) -> int:
    """A validated worker count: ``0`` means one per CPU.

    Raises :class:`ValueError` for negative counts — silently clamping
    them to serial hid typos like ``--jobs -4``.
    """
    if value < 0:
        raise ValueError(
            f"jobs must be >= 0 (0 = one worker per CPU), got {value}"
        )
    if value == 0:
        return os.cpu_count() or 1
    return value


def default_jobs() -> int:
    """The worker count from ``$REPRO_JOBS`` (default 1 = serial)."""
    raw = os.environ.get(JOBS_ENV, "")
    if not raw:
        return 1
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(
            f"${JOBS_ENV} must be an integer (0 = one worker per CPU), "
            f"got {raw!r}"
        ) from None
    return resolve_jobs(value)


@dataclass(frozen=True, slots=True)
class ExperimentFailure:
    """One experiment that did not produce a report.

    ``kind`` distinguishes ``"raised"`` (the experiment itself raised;
    ``error`` carries its traceback) from ``"worker-lost"`` (the worker
    process running it died and every recovery attempt was exhausted or
    disabled).
    """

    exp_id: str
    error: str
    kind: str = "raised"


@dataclass(frozen=True, slots=True)
class RunOutcome:
    """Every requested experiment, resolved to a report or a failure."""

    reports: tuple[ExperimentReport, ...]
    failures: tuple[ExperimentFailure, ...]

    @property
    def ok(self) -> bool:
        """True when every experiment produced a report."""
        return not self.failures


#: Worker-process state: ``(world, entries, substrate)``.  Set in the
#: parent before the pool is created so forked workers inherit it
#: without reloading.
_WORKER_STATE: tuple[World, list[DropEntryView], AnalysisSubstrate] | None = (
    None
)


def _substrate_for(
    world: World,
    directory: Path | None,
    instrumentation: Instrumentation | None = None,
) -> AnalysisSubstrate:
    """A substrate keyed like the query index, persisted in ``directory``."""
    key = "" if world.config is None else world_cache_key(world.config)
    return AnalysisSubstrate(
        world,
        directory=directory,
        key=key,
        instrumentation=instrumentation,
    )


def _init_worker(
    directory: str | None, config: ScenarioConfig | None
) -> None:
    global _WORKER_STATE
    faults.mark_worker_process()
    if _WORKER_STATE is not None:  # forked: inherited from the parent
        return
    if directory is not None:
        world = load_world(Path(directory))
        if config is not None:
            world.config = config
    elif config is not None:
        world = build_world(config)
    else:  # pragma: no cover - guarded by run_experiments
        raise RuntimeError("worker has neither a world directory nor a config")
    _WORKER_STATE = (
        world,
        load_entries(world),
        _substrate_for(
            world, Path(directory) if directory is not None else None
        ),
    )


def _run_one(exp_id: str):
    assert _WORKER_STATE is not None
    world, entries, substrate = _WORKER_STATE
    # Faults fired while running (in this process — possibly a worker)
    # ride back on the result tuple so they land in the parent's
    # instrumentation counters.  Spans travel the same way: the body
    # traces into a private per-call tracer whose export rides the
    # tuple, and the parent adopts it under its experiment span.
    injector = faults.active()
    already_fired = len(injector.fired) if injector is not None else 0
    tracer = Tracer()
    started = perf_counter()
    try:
        faults.fault_point(f"worker.run:{exp_id}")
        report = run_experiment(
            world, exp_id, entries, substrate, tracer=tracer
        )
        error = None
    except Exception:
        report, error = None, traceback.format_exc()
    seconds = perf_counter() - started
    fired = tuple(injector.fired[already_fired:]) if injector is not None else ()
    return exp_id, report, seconds, error, fired, tracer.export()


def _mp_context():
    """The pool context ``$REPRO_START_METHOD`` selects, or None."""
    method = os.environ.get(START_METHOD_ENV, "").strip()
    return multiprocessing.get_context(method) if method else None


def parallel_map(
    fn, tasks, *, jobs: int, initializer=None, initargs=()
) -> list:
    """Ordered ``[fn(t) for t in tasks]`` over a process pool.

    The generic fan-out behind the sharded world build: ``fn`` must be
    a picklable module-level function of one picklable task.
    ``initializer(*initargs)`` — when given — runs once per worker
    process (and once in the parent on the serial paths), so bulky
    task-invariant state ships once per worker instead of once per
    task.  A broken pool (worker OOM-killed, injected crash) falls back
    to computing the whole map serially in the parent — a dying worker
    costs wall time, never results, matching :func:`run_experiments`.
    ``jobs <= 1`` or a single task short-circuits to the serial loop.
    """
    tasks = list(tasks)
    if jobs <= 1 or len(tasks) <= 1:
        if initializer is not None:
            initializer(*initargs)
        return [fn(task) for task in tasks]
    try:
        with ProcessPoolExecutor(
            max_workers=min(jobs, len(tasks)),
            mp_context=_mp_context(),
            initializer=initializer,
            initargs=initargs,
        ) as pool:
            return list(pool.map(fn, tasks))
    except Exception:
        if initializer is not None:
            initializer(*initargs)
        return [fn(task) for task in tasks]


def _collect_parallel(
    exp_ids: list[str],
    jobs: int,
    directory: Path | None,
    config,
    results: dict[str, tuple],
) -> list[str]:
    """One pool round over ``exp_ids``; returns the worker-lost ids.

    A worker death breaks the whole pool, so every still-pending future
    raises the same pool-level error; those experiments are *lost*, not
    failed — the caller retries them rather than reporting N copies of
    one opaque ``BrokenProcessPool``.
    """
    lost: list[str] = []
    with ProcessPoolExecutor(
        max_workers=min(jobs, len(exp_ids)),
        mp_context=_mp_context(),
        initializer=_init_worker,
        initargs=(
            str(directory) if directory is not None else None,
            config,
        ),
    ) as pool:
        futures = {e: pool.submit(_run_one, e) for e in exp_ids}
        for exp_id in exp_ids:
            try:
                results[exp_id] = futures[exp_id].result()
            except Exception:
                lost.append(exp_id)
    return lost


def run_experiments(
    world: World,
    exp_ids: list[str],
    *,
    jobs: int = 1,
    directory: Path | None = None,
    entries: list[DropEntryView] | None = None,
    substrate: AnalysisSubstrate | None = None,
    instrumentation: Instrumentation | None = None,
    serial_fallback: bool = True,
) -> RunOutcome:
    """Run ``exp_ids`` against ``world``, serially or in parallel.

    ``directory`` (a cache entry or an archives directory holding this
    world) lets spawned workers load the world when fork inheritance is
    unavailable.  Per-experiment wall times land in ``instrumentation``
    under the ``"experiment"`` group.

    Experiments whose worker process died are retried in a fresh pool
    (at most :data:`_MAX_POOL_RETRIES` rounds), then — unless
    ``serial_fallback`` is disabled — run serially in the parent, where
    a process crash cannot recur.  Recovery is counted
    (``worker_lost_experiments``, ``worker_pool_retries``,
    ``serial_fallback_runs``) and annotated so ``--timings`` shows what
    happened.
    """
    global _WORKER_STATE
    instr = instrumentation or Instrumentation()
    exp_ids = list(exp_ids)
    unknown = [e for e in exp_ids if e not in EXPERIMENTS]
    if unknown:
        raise KeyError(f"unknown experiment(s): {', '.join(unknown)}")
    if entries is None:
        with instr.stage("load-entries", group="run"):
            entries = load_entries(world)
    if substrate is None:
        substrate = _substrate_for(world, directory, instr)

    results: dict[str, tuple] = {}
    unrecovered: list[str] = []
    if jobs <= 1 or len(exp_ids) <= 1:
        _WORKER_STATE = (world, entries, substrate)
        try:
            results = {e: _run_one(e) for e in exp_ids}
        finally:
            _WORKER_STATE = None
    else:
        if SUBSTRATE_EXPERIMENTS & set(exp_ids):
            # Build (or load) the shared state once in the parent:
            # forked workers inherit it, spawned workers reload the
            # persisted copy — nobody rebuilds it per process.
            with instr.stage("substrate-warm", group="run"):
                substrate.warm()
        _WORKER_STATE = (world, entries, substrate)
        try:
            lost = _collect_parallel(
                exp_ids, jobs, directory, world.config, results
            )
            if lost:
                instr.incr("worker_lost_experiments", len(lost))
                instr.annotate("worker_lost", list(lost))
                instr.warn(
                    "worker process died; lost experiment(s): "
                    + ", ".join(lost)
                )
            retries = 0
            while lost and retries < _MAX_POOL_RETRIES and len(lost) > 1:
                # More than one experiment went down with the pool:
                # most are collateral, so one fresh pool round recovers
                # them in parallel before anything drops to serial.
                retries += 1
                instr.incr("worker_pool_retries")
                lost = _collect_parallel(
                    lost, jobs, directory, world.config, results
                )
            if lost and serial_fallback:
                for exp_id in lost:
                    instr.incr("serial_fallback_runs")
                    results[exp_id] = _run_one(exp_id)
                lost = []
            unrecovered = lost
        finally:
            _WORKER_STATE = None

    status_counter = instr.registry.counter(
        "repro_runner_experiments_total",
        help="Experiments resolved, by final status.",
        labels=("status",),
    )
    reports: list[ExperimentReport] = []
    failures: list[ExperimentFailure] = []
    for exp_id in exp_ids:
        if exp_id in results:
            _, report, seconds, error, fired, spans = results[exp_id]
            span = instr.record(exp_id, seconds, group="experiment")
            if spans:
                instr.tracer.adopt(spans, parent_id=span.span_id)
            for kind, _site in fired:
                instr.incr("faults_injected")
                instr.incr(f"fault_{kind}")
            if error is not None:
                status_counter.inc(status="raised")
                failures.append(ExperimentFailure(exp_id, error))
            else:
                status_counter.inc(status="ok")
                reports.append(report)
        else:
            assert exp_id in unrecovered
            instr.record(exp_id, 0.0, group="experiment")
            status_counter.inc(status="worker-lost")
            failures.append(
                ExperimentFailure(
                    exp_id,
                    "worker process died while running this experiment "
                    "(retries exhausted or serial fallback disabled)",
                    kind="worker-lost",
                )
            )
    return RunOutcome(tuple(reports), tuple(failures))
