"""Serving-tier costs: end-to-end latency and sustained throughput.

Two entry points share the measurement code:

* pytest-benchmark functions (``bench_serve_*``) measuring the
  transport-independent :class:`~repro.query.http.ServerCore` dispatch
  (the per-request work both daemons do), and
* a standalone load harness — ``python benchmarks/bench_serve.py --out
  BENCH_serve.json`` — that spawns the *real* daemon as a subprocess
  (``repro-drop serve --async``), drives it over live sockets, and
  records the PR's acceptance numbers: sustained throughput >= 10k
  requests/second and end-to-end single-lookup p99 < 5 ms (< 1 ms is
  also reported, the local target).

The two phases measure different things on purpose.  The *latency*
phase keeps exactly one request in flight on one keep-alive connection,
so every sample is an honest client-observed round trip.  The
*throughput* phase pipelines ``--depth`` requests over ``--connections``
connections — the regime the async tier's keep-alive parsing and
response cache are built for — and counts completed responses over the
wall clock.  On a one-core runner the client and server timeshare the
CPU, so pipelining is what keeps the server's accept loops saturated.
"""

import argparse
import json
import os
import re
import signal
import socket
import subprocess
import sys
from pathlib import Path
from time import perf_counter

_SRC = Path(__file__).resolve().parents[1] / "src"

_BANNER = re.compile(r"serving http://([\d.]+):(\d+)")

#: RPS the throughput phase must sustain (the PR acceptance floor).
TARGET_RPS = 10_000

#: End-to-end p99 ceilings: the CI floor and the local expectation.
TARGET_P99_CI_MS = 5.0
TARGET_P99_LOCAL_MS = 1.0


def _request_bytes(target: str) -> bytes:
    return f"GET {target} HTTP/1.1\r\nHost: bench\r\n\r\n".encode()


def _read_response(sock_file) -> tuple:
    """Consume one response off a buffered socket file.

    Returns ``(status, total_bytes)`` — the byte count covers the whole
    response on the wire (head and body), which the throughput phase
    uses to drain repeat rounds without re-parsing.
    """
    status_line = sock_file.readline()
    if not status_line:
        raise ConnectionError("server closed the connection")
    status = int(status_line.split(b" ")[1])
    total = len(status_line)
    length = 0
    while True:
        line = sock_file.readline()
        total += len(line)
        if line in (b"\r\n", b""):
            break
        name, _, value = line.partition(b":")
        if name.lower() == b"content-length":
            length = int(value)
    if length:
        total += len(sock_file.read(length))
    return status, total


class _Daemon:
    """The served-under-test ``repro-drop serve --async`` subprocess."""

    def __init__(self, scale: str, workers: int) -> None:
        env = dict(os.environ)
        env["PYTHONPATH"] = str(_SRC) + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        self.proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve", "--async",
                "--workers", str(workers), "--scale", scale, "--port", "0",
            ],
            env=env,
            stderr=subprocess.PIPE,
            text=True,
        )
        self.address = None
        deadline = perf_counter() + 300
        while perf_counter() < deadline:
            line = self.proc.stderr.readline()
            if not line:
                break
            match = _BANNER.search(line)
            if match:
                self.address = (match.group(1), int(match.group(2)))
                break
        if self.address is None:
            self.proc.kill()
            raise RuntimeError("daemon never printed its serving banner")

    def connect(self) -> socket.socket:
        sock = socket.create_connection(self.address)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return sock

    def stop(self) -> int:
        self.proc.send_signal(signal.SIGTERM)
        try:
            return self.proc.wait(timeout=30)
        except subprocess.TimeoutExpired:
            self.proc.kill()
            return self.proc.wait(timeout=10)


def _targets(daemon, count: int = 64) -> list:
    """``/v1/status`` targets for prefixes the daemon actually serves."""
    sock = daemon.connect()
    try:
        sock.sendall(_request_bytes("/healthz"))
        reader = sock.makefile("rb")
        reader.readline()
        length = 0
        while True:
            line = reader.readline()
            if line in (b"\r\n", b""):
                break
            name, _, value = line.partition(b":")
            if name.lower() == b"content-length":
                length = int(value)
        health = json.loads(reader.read(length))
    finally:
        sock.close()
    start, end = health["window"]
    # Deterministic spread over the synthetic populations (192.0.2.x is
    # also fine: a miss is still a full lookup + serialized answer).
    prefixes = [f"10.{i}.0.0/24" for i in range(count)]
    days = [start, end]
    return [
        f"/v1/status?prefix={prefix}&on={days[i % 2]}"
        for i, prefix in enumerate(prefixes)
    ]


def _percentile(sorted_values, q):
    rank = min(len(sorted_values) - 1, round(q * (len(sorted_values) - 1)))
    return sorted_values[rank]


def _latency_phase(daemon, targets, samples: int) -> dict:
    """Sequential single-in-flight round trips on one connection."""
    sock = daemon.connect()
    reader = sock.makefile("rb")
    try:
        for target in targets:  # warm the daemon's response cache
            sock.sendall(_request_bytes(target))
            _read_response(reader)
        latencies = []
        for i in range(samples):
            target = targets[i % len(targets)]
            started = perf_counter()
            sock.sendall(_request_bytes(target))
            status, _ = _read_response(reader)
            latencies.append(perf_counter() - started)
            assert status == 200, f"unexpected status {status}"
    finally:
        reader.close()
        sock.close()
    latencies.sort()
    return {
        "samples": samples,
        "p50_ms": round(_percentile(latencies, 0.50) * 1e3, 4),
        "p99_ms": round(_percentile(latencies, 0.99) * 1e3, 4),
        "max_ms": round(latencies[-1] * 1e3, 4),
    }


def _throughput_phase(
    daemon, targets, *, connections: int, depth: int, seconds: float
) -> dict:
    """Pipelined load: every connection keeps ``depth`` requests in
    flight; completed responses over the wall clock is the RPS.

    The first round per connection is parsed response-by-response and
    its total byte count recorded; the index is immutable and every
    round repeats the identical batch, so later rounds just drain that
    many bytes (what ``wrk``-style load generators do).  That keeps the
    client cheap enough that the daemon — not the harness — is what the
    one-core measurement saturates.
    """
    socks = [daemon.connect() for _ in range(connections)]
    batches = []
    round_sizes = []
    for c, sock in enumerate(socks):
        batch = b"".join(
            _request_bytes(targets[(c + i) % len(targets)])
            for i in range(depth)
        )
        batches.append(batch)
        reader = sock.makefile("rb")
        sock.sendall(batch)
        total = 0
        for _ in range(depth):
            status, size = _read_response(reader)
            assert status == 200, f"unexpected status {status}"
            total += size
        reader.detach()
        round_sizes.append(total)
    completed = connections * depth
    started = perf_counter()
    try:
        while True:
            for sock, batch, expected in zip(socks, batches, round_sizes):
                sock.sendall(batch)
                seen = 0
                while seen < expected:
                    chunk = sock.recv(expected - seen)
                    if not chunk:
                        raise ConnectionError("server closed mid-round")
                    seen += len(chunk)
                completed += depth
            if perf_counter() - started >= seconds:
                break
        elapsed = perf_counter() - started
    finally:
        for sock in socks:
            sock.close()
    return {
        "connections": connections,
        "pipeline_depth": depth,
        "seconds": round(elapsed, 4),
        "requests": completed,
        "sustained_rps": round(completed / elapsed),
    }


# ---------------------------------------------------------------------------
# pytest-benchmark entry points
# ---------------------------------------------------------------------------


def bench_serve_core_status_cached(benchmark, world):
    """The per-request dispatch cost with a warm response cache — the
    unit of work the throughput target is built on."""
    from repro.query import QueryEngine, build_index
    from repro.query.http import DEFAULT_CACHE_SIZE, ServerCore

    engine = QueryEngine(build_index(world))
    core = ServerCore(engine, cache_size=DEFAULT_CACHE_SIZE)
    target = f"/v1/status?prefix={next(iter(engine.index.routes))}"
    assert core.handle("GET", target, None, 0).status == 200  # warm
    response = benchmark(lambda: core.handle("GET", target, None, 0))
    assert response.status == 200


def bench_serve_core_status_uncached(benchmark, world):
    from repro.query import QueryEngine, build_index
    from repro.query.http import ServerCore

    engine = QueryEngine(build_index(world))
    core = ServerCore(engine)  # cache off: full parse + lookup + dump
    target = f"/v1/status?prefix={next(iter(engine.index.routes))}"
    response = benchmark(lambda: core.handle("GET", target, None, 0))
    assert response.status == 200


# ---------------------------------------------------------------------------
# standalone artifact mode
# ---------------------------------------------------------------------------


def run(
    scale: str,
    *,
    workers: int,
    samples: int,
    connections: int,
    depth: int,
    seconds: float,
    out: Path | None,
) -> dict:
    daemon = _Daemon(scale, workers)
    try:
        targets = _targets(daemon)
        latency = _latency_phase(daemon, targets, samples)
        throughput = _throughput_phase(
            daemon,
            targets,
            connections=connections,
            depth=depth,
            seconds=seconds,
        )
    finally:
        exit_code = daemon.stop()
    payload = {
        "scale": scale,
        "workers": workers,
        "latency": latency,
        "throughput": throughput,
        "daemon_exit_code": exit_code,
        "meets_targets": {
            "sustained_10k_rps": throughput["sustained_rps"] >= TARGET_RPS,
            "p99_under_5ms": latency["p99_ms"] < TARGET_P99_CI_MS,
            "p99_under_1ms_local": latency["p99_ms"] < TARGET_P99_LOCAL_MS,
            "clean_drain_exit": exit_code == 0,
        },
    }
    if out is not None:
        out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return payload


#: ``p99_under_1ms_local`` is informational (scheduler jitter on shared
#: CI runners), so ``--check`` gates on the other three.
_CHECKED_TARGETS = ("sustained_10k_rps", "p99_under_5ms", "clean_drain_exit")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=["tiny", "small", "paper"],
                        default="tiny")
    parser.add_argument("--workers", type=int, default=2,
                        help="async serving workers in the daemon")
    parser.add_argument("--samples", type=int, default=2000,
                        help="latency-phase round trips")
    parser.add_argument("--connections", type=int, default=4,
                        help="throughput-phase connections")
    parser.add_argument("--depth", type=int, default=64,
                        help="pipelined requests in flight per connection")
    parser.add_argument("--seconds", type=float, default=5.0,
                        help="throughput-phase duration")
    parser.add_argument("--smoke", action="store_true",
                        help="CI mode: short phases")
    parser.add_argument("--out", type=Path, default=None,
                        help="write the JSON artifact to FILE")
    parser.add_argument("--check", action="store_true",
                        help="exit 1 unless the serving targets are met")
    args = parser.parse_args(argv)
    payload = run(
        args.scale,
        workers=args.workers,
        samples=300 if args.smoke else args.samples,
        connections=args.connections,
        depth=args.depth,
        seconds=1.5 if args.smoke else args.seconds,
        out=args.out,
    )
    print(json.dumps(payload, indent=2, sort_keys=True))
    if args.check and not all(
        payload["meets_targets"][name] for name in _CHECKED_TARGETS
    ):
        print("serving targets missed", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
