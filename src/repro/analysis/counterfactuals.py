"""What-if analyses for the paper's policy implications (§6–§7).

The paper ends with recommendations rather than measurements: deploy
ROV, sign unrouted space with AS0, and let RIRs AS0-cover their pools.
These counterfactuals quantify each recommendation against the study's
own DROP population:

* :func:`rov_counterfactual` — replay every DROP announcement through
  RFC 6811 validation as deployed (almost everything is NOT_FOUND: the
  attackers target unsigned space, so ROV alone stops little), and under
  the hypothetical where every victim prefix had been signed with its
  historic origin (forged-origin hijacks still validate — the §6.1
  lesson generalized).
* :func:`as0_counterfactual` — how many unallocated-prefix hijacks the
  RIR AS0 TALs would have covered as actually deployed, if validators
  trusted those TALs, and if every RIR had operated an AS0 policy for
  the whole window; plus the operator-side ladder: the share of the
  signed-but-unrouted attack surface removed as the top-N holders flip
  their ROAs to AS0.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import timedelta
from typing import TYPE_CHECKING

from ..rpki.roa import Roa
from ..rpki.tal import TalSet
from ..rpki.validation import RouteValidity, validate_route
from ..synth.world import World
from .common import DropEntryView, load_entries
from .roa_status import analyze_roa_status

if TYPE_CHECKING:
    from .substrate import AnalysisSubstrate

__all__ = [
    "As0Counterfactual",
    "RovCounterfactual",
    "as0_counterfactual",
    "rov_counterfactual",
]


@dataclass(frozen=True, slots=True)
class RovCounterfactual:
    """Validation outcomes for DROP announcements, real and hypothetical."""

    evaluated: int
    #: RFC 6811 outcome counts for the actual ROA archive at listing.
    as_deployed: dict[RouteValidity, int]
    #: Outcomes if every victim prefix had a ROA for its historic origin.
    if_all_signed: dict[RouteValidity, int]

    @property
    def stopped_as_deployed(self) -> float:
        """Share of announcements ROV would drop today (INVALID)."""
        if not self.evaluated:
            return 0.0
        return self.as_deployed.get(RouteValidity.INVALID, 0) / self.evaluated

    @property
    def stopped_if_all_signed(self) -> float:
        """Share dropped in the everyone-signs hypothetical."""
        if not self.evaluated:
            return 0.0
        return (
            self.if_all_signed.get(RouteValidity.INVALID, 0)
            / self.evaluated
        )

    @property
    def forged_origin_escapes(self) -> int:
        """Announcements that stay VALID even with universal signing —
        the forged-origin residue only path validation can remove."""
        return self.if_all_signed.get(RouteValidity.VALID, 0)


def rov_counterfactual(
    world: World,
    entries: list[DropEntryView] | None = None,
    *,
    exclude_incidents: bool = True,
) -> RovCounterfactual:
    """Replay DROP announcements through origin validation."""
    if entries is None:
        entries = load_entries(world)
    if exclude_incidents:
        entries = [e for e in entries if not e.incident]
    tals = TalSet.default()
    deployed: dict[RouteValidity, int] = {v: 0 for v in RouteValidity}
    hypothetical: dict[RouteValidity, int] = {v: 0 for v in RouteValidity}
    evaluated = 0
    for entry in entries:
        origins = world.bgp.origins_on(entry.prefix, entry.listed)
        if not origins:
            origins = world.bgp.origins_on(
                entry.prefix, entry.listed - timedelta(days=1)
            )
        if not origins:
            continue
        origin = min(origins)
        evaluated += 1
        covering = [
            r.roa for r in world.roas.covering(entry.prefix, entry.listed)
        ]
        deployed[validate_route(entry.prefix, origin, covering, tals)] += 1
        # Hypothetical: the legitimate holder signed with the origin that
        # announced the prefix before the attacker showed up (or, if the
        # prefix was never legitimately announced, any owner ASN distinct
        # from the attacker's).
        historic = world.bgp.historic_origins(
            entry.prefix, entry.listed - timedelta(days=365)
        )
        historic.discard(origin)
        owner = min(historic) if historic else origin + 1_000_000
        hypothetical_roas = covering + [
            Roa(entry.prefix, owner, trust_anchor="RIPE")
        ]
        hypothetical[
            validate_route(entry.prefix, origin, hypothetical_roas, tals)
        ] += 1
    return RovCounterfactual(
        evaluated=evaluated,
        as_deployed=deployed,
        if_all_signed=hypothetical,
    )


@dataclass(frozen=True, slots=True)
class As0Counterfactual:
    """How far each AS0 deployment step reduces the attack surface."""

    unallocated_listings: int
    #: Covered by an RIR AS0 ROA as actually published (policy live and
    #: the prefix inside the covered pool) — but under non-default TALs.
    covered_as_published: int
    #: Would have been INVALID had validators trusted the AS0 TALs.
    blocked_if_tals_trusted: int
    #: Would have been INVALID had every RIR run AS0 from the start.
    blocked_if_universal: int
    #: Cumulative share of signed-unrouted space removed as the top-N
    #: holders flip to AS0 (index 0 = top-1).
    operator_ladder: tuple[float, ...]

    @property
    def tals_trusted_share(self) -> float:
        """Share of unallocated hijacks stopped by trusting the TALs."""
        if not self.unallocated_listings:
            return 0.0
        return self.blocked_if_tals_trusted / self.unallocated_listings

    @property
    def universal_share(self) -> float:
        """Share stopped under universal RIR AS0 from the window start."""
        if not self.unallocated_listings:
            return 0.0
        return self.blocked_if_universal / self.unallocated_listings


def as0_counterfactual(
    world: World,
    entries: list[DropEntryView] | None = None,
    *,
    substrate: "AnalysisSubstrate | None" = None,
) -> As0Counterfactual:
    """Quantify the §6.2 AS0 recommendations.

    The operator ladder reuses the substrate's memoized Figure 5
    result when one is supplied — ``fig5`` and this counterfactual
    otherwise each recompute the identical (and expensive) series.
    """
    if entries is None:
        entries = load_entries(world)
    unallocated = [e for e in entries if e.unallocated]
    with_as0 = TalSet.with_as0()
    covered = blocked_tals = blocked_universal = 0
    for entry in unallocated:
        roas = [
            r.roa
            for r in world.roas.covering(entry.prefix, entry.listed, with_as0)
        ]
        has_as0 = any(roa.is_as0 for roa in roas)
        if has_as0:
            covered += 1
            blocked_tals += 1
        # Universal counterfactual: the managing RIR covers its whole
        # pool with AS0 from the window start, so every unallocated
        # announcement inside any RIR pool validates INVALID regardless
        # of the actual policy dates.
        if entry.region is not None:
            blocked_universal += 1
    status = (
        substrate.roa_status()
        if substrate is not None
        else analyze_roa_status(world)
    )
    ladder = []
    holders = sorted(
        status.unrouted_signed_by_holder.values(), reverse=True
    )
    total = status.final.signed_unrouted or 1.0
    cumulative = 0.0
    for share in holders[:5]:
        cumulative += share
        ladder.append(min(1.0, cumulative / total))
    return As0Counterfactual(
        unallocated_listings=len(unallocated),
        covered_as_published=covered,
        blocked_if_tals_trusted=blocked_tals,
        blocked_if_universal=blocked_universal,
        operator_ladder=tuple(ladder),
    )
