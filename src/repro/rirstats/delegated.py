"""The RIR statistics exchange ("delegated") file format.

Every RIR publishes a daily snapshot of its number resources in a shared
pipe-separated format [APNIC 2022]:

::

    2|apnic|20220330|3|19830101|20220330|+10
    apnic|*|ipv4|*|2|summary
    apnic|AU|ipv4|1.0.0.0|256|20110811|allocated|opaque-id
    apnic||ipv4|1.4.128.0|128||available

We parse and emit the IPv4 and ASN record types.  The ``value`` field for
IPv4 is an address *count* (not a prefix length) and need not be a CIDR
block — :class:`~repro.net.prefix.AddressRange` handles that.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import date
from typing import Iterable, Iterator

from ..net.prefix import AddressRange, format_ip, parse_ip
from ..net.timeline import parse_date
from .rirs import normalize_rir

__all__ = [
    "DelegatedRecord",
    "VALID_STATUSES",
    "emit_delegated",
    "parse_delegated",
]

VALID_STATUSES = frozenset(
    {"allocated", "assigned", "available", "reserved"}
)


@dataclass(frozen=True, slots=True)
class DelegatedRecord:
    """One resource line of a delegated stats file."""

    registry: str
    country: str | None
    rtype: str  # "ipv4" or "asn"
    start: int  # first address (ipv4) or first ASN (asn)
    count: int
    allocated_on: date | None
    status: str
    opaque_id: str | None = None

    def __post_init__(self) -> None:
        if self.status not in VALID_STATUSES:
            raise ValueError(f"bad delegated status {self.status!r}")
        if self.rtype not in ("ipv4", "asn"):
            raise ValueError(f"unsupported record type {self.rtype!r}")
        if self.count <= 0:
            raise ValueError(f"non-positive count {self.count}")

    @property
    def address_range(self) -> AddressRange:
        """The IPv4 range this record covers (ipv4 records only)."""
        if self.rtype != "ipv4":
            raise ValueError("not an ipv4 record")
        return AddressRange.from_count(self.start, self.count)

    def to_line(self) -> str:
        """The pipe-separated file line for this record."""
        start_text = (
            format_ip(self.start) if self.rtype == "ipv4" else str(self.start)
        )
        fields = [
            self.registry.lower() if self.registry != "RIPE" else "ripencc",
            self.country or "",
            self.rtype,
            start_text,
            str(self.count),
            (
                self.allocated_on.strftime("%Y%m%d")
                if self.allocated_on
                else ""
            ),
            self.status,
        ]
        if self.opaque_id:
            fields.append(self.opaque_id)
        return "|".join(fields)


def parse_delegated(text: str) -> Iterator[DelegatedRecord]:
    """Parse a delegated stats file, yielding resource records.

    The version header and summary lines are validated for shape and
    skipped; comment lines start with ``#``.
    """
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        fields = line.split("|")
        if fields[0].isdigit() or fields[0] == "2.3":
            # Version header: version|registry|serial|records|start|end|UTC.
            if len(fields) < 7:
                raise ValueError(
                    f"line {line_number}: short version header {line!r}"
                )
            continue
        if len(fields) >= 6 and fields[5] == "summary":
            continue
        if len(fields) < 7:
            raise ValueError(f"line {line_number}: short record {line!r}")
        registry, country, rtype, start_text, count_text = fields[:5]
        date_text, status = fields[5], fields[6]
        if rtype not in ("ipv4", "asn"):
            continue  # ipv6 and anything newer: out of scope
        start = (
            parse_ip(start_text) if rtype == "ipv4" else int(start_text)
        )
        yield DelegatedRecord(
            registry=normalize_rir(registry),
            country=country or None,
            rtype=rtype,
            start=start,
            count=int(count_text),
            allocated_on=parse_date(date_text) if date_text else None,
            status=status,
            opaque_id=fields[7] if len(fields) > 7 else None,
        )


def emit_delegated(
    registry: str,
    snapshot_day: date,
    records: Iterable[DelegatedRecord],
    *,
    serial: int = 1,
) -> str:
    """Emit a delegated stats file for one registry and day."""
    records = list(records)
    ipv4_count = sum(1 for r in records if r.rtype == "ipv4")
    asn_count = sum(1 for r in records if r.rtype == "asn")
    registry_field = "ripencc" if registry == "RIPE" else registry.lower()
    day_text = snapshot_day.strftime("%Y%m%d")
    lines = [
        f"2|{registry_field}|{day_text}|{serial}|19830101|{day_text}|+00",
        f"{registry_field}|*|ipv4|*|{ipv4_count}|summary",
        f"{registry_field}|*|asn|*|{asn_count}|summary",
    ]
    lines.extend(record.to_line() for record in records)
    return "\n".join(lines) + "\n"
