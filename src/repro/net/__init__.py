"""Core IPv4/ASN/time value types shared by every subsystem."""

from .asn import (
    AS0,
    AsnBlock,
    AsnError,
    is_documentation_asn,
    is_private_asn,
    is_public_asn,
    is_reserved_asn,
    parse_asn,
)
from .prefix import (
    AddressRange,
    IPv4Prefix,
    PrefixError,
    format_ip,
    parse_ip,
    slash8_equivalents,
)
from .prefixset import PrefixSet
from .radix import PrefixTrie, RadixTree
from .timeline import (
    STUDY_END,
    STUDY_START,
    STUDY_WINDOW,
    DailySeries,
    DateWindow,
    StepFunction,
    date_range,
    month_starts,
    parse_date,
)

__all__ = [
    "AS0",
    "AddressRange",
    "AsnBlock",
    "AsnError",
    "DailySeries",
    "DateWindow",
    "IPv4Prefix",
    "PrefixError",
    "PrefixSet",
    "PrefixTrie",
    "RadixTree",
    "STUDY_END",
    "STUDY_START",
    "STUDY_WINDOW",
    "StepFunction",
    "date_range",
    "format_ip",
    "is_documentation_asn",
    "is_private_asn",
    "is_public_asn",
    "is_reserved_asn",
    "month_starts",
    "parse_asn",
    "parse_date",
    "parse_ip",
    "slash8_equivalents",
]
