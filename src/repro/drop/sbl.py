"""The Spamhaus Block List (SBL) record store.

Every DROP entry references an SBL record ("SBL-something") whose freeform
text documents why Spamhaus listed the prefix.  The paper processes that
text with the Appendix-A categorizer and extracts any "malicious ASN"
mentioned.  Records are removed when the prefix holder remediates, which is
why 186 of the paper's 712 prefixes have no SBL record (category NR).
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass
from datetime import date
from pathlib import Path
from typing import Iterator

from ..net.asn import parse_asn
from ..net.prefix import IPv4Prefix

__all__ = ["SblDatabase", "SblRecord", "extract_asns"]

_ASN_PATTERN = re.compile(r"\bAS(\d{1,10})\b")


def extract_asns(text: str) -> tuple[int, ...]:
    """All ASNs mentioned in freeform SBL text, in order of appearance.

    >>> extract_asns("Snowshoe IP block on Stolen AS62927")
    (62927,)
    """
    seen: list[int] = []
    for match in _ASN_PATTERN.finditer(text):
        asn = parse_asn(match.group(1))
        if asn not in seen:
            seen.append(asn)
    return tuple(seen)


@dataclass(frozen=True, slots=True)
class SblRecord:
    """One SBL database entry."""

    sbl_id: str
    prefix: IPv4Prefix
    text: str
    created: date
    removed: date | None = None

    def __post_init__(self) -> None:
        if not self.sbl_id.upper().startswith("SBL"):
            raise ValueError(f"SBL id must start with 'SBL': {self.sbl_id!r}")

    @property
    def mentioned_asns(self) -> tuple[int, ...]:
        """ASNs named in the record text (the "malicious ASN" annotation)."""
        return extract_asns(self.text)

    def available_on(self, day: date) -> bool:
        """True if the record still existed in the SBL on ``day``."""
        return self.created <= day and (
            self.removed is None or day < self.removed
        )


class SblDatabase:
    """All SBL records, indexed by id and by prefix."""

    def __init__(self) -> None:
        self._by_id: dict[str, SblRecord] = {}
        self._by_prefix: dict[IPv4Prefix, list[SblRecord]] = {}

    def add(self, record: SblRecord) -> None:
        """Insert a record; ids must be unique."""
        if record.sbl_id in self._by_id:
            raise ValueError(f"duplicate SBL id {record.sbl_id}")
        self._by_id[record.sbl_id] = record
        self._by_prefix.setdefault(record.prefix, []).append(record)

    def __len__(self) -> int:
        return len(self._by_id)

    def fork(self) -> "SblDatabase":
        """A copy-on-write fork sharing the immutable records.

        Insertion order (and so :meth:`dump` output) is preserved.
        """
        forked = SblDatabase()
        forked._by_id = dict(self._by_id)
        forked._by_prefix = {
            prefix: list(records)
            for prefix, records in self._by_prefix.items()
        }
        return forked

    def __contains__(self, sbl_id: str) -> bool:
        return sbl_id in self._by_id

    def get(self, sbl_id: str) -> SblRecord | None:
        """The record with the given id, if any."""
        return self._by_id.get(sbl_id)

    def records(self) -> Iterator[SblRecord]:
        """All records, in insertion order."""
        yield from self._by_id.values()

    def record_for_prefix(
        self, prefix: IPv4Prefix, on: date | None = None
    ) -> SblRecord | None:
        """The record documenting ``prefix``.

        With ``on`` given, only a record still present in the SBL on that
        day is returned — mirroring the paper's inability to retrieve
        records Spamhaus had already removed.
        """
        candidates = self._by_prefix.get(prefix, [])
        for record in candidates:
            if on is None or record.available_on(on):
                return record
        return None

    # -- persistence -----------------------------------------------------

    def dump(self, path: Path) -> int:
        """Write the database as JSONL; returns the record count."""
        with open(path, "w") as out:
            for record in self.records():
                json.dump(
                    {
                        "sbl_id": record.sbl_id,
                        "prefix": str(record.prefix),
                        "text": record.text,
                        "created": record.created.isoformat(),
                        "removed": (
                            None
                            if record.removed is None
                            else record.removed.isoformat()
                        ),
                    },
                    out,
                    separators=(",", ":"),
                )
                out.write("\n")
        return len(self)

    @classmethod
    def load(cls, path: Path) -> "SblDatabase":
        """Read a database written by :meth:`dump`."""
        db = cls()
        with open(path) as source:
            for line in source:
                line = line.strip()
                if not line:
                    continue
                raw = json.loads(line)
                db.add(
                    SblRecord(
                        sbl_id=raw["sbl_id"],
                        prefix=IPv4Prefix.parse(raw["prefix"]),
                        text=raw["text"],
                        created=date.fromisoformat(raw["created"]),
                        removed=(
                            None
                            if raw["removed"] is None
                            else date.fromisoformat(raw["removed"])
                        ),
                    )
                )
        return db
