"""repro — reproduction of "Stop, DROP, and ROA" (IMC 2022).

A complete measurement stack for studying the Spamhaus DROP blocklist
against BGP, IRR, RPKI, and RIR-allocation data:

* :mod:`repro.net` — IPv4 prefixes, interval sets, radix trie, timelines;
* :mod:`repro.bgp` — collectors/peers, interval RIB, streams, visibility;
* :mod:`repro.drop` — DROP episodes/snapshots, SBL records, categorizer;
* :mod:`repro.irr` — RPSL and the journaled RADb database;
* :mod:`repro.rpki` — ROAs, TALs, RFC 6811 validation, AS0 policy;
* :mod:`repro.rirstats` — delegated files and the allocation registry;
* :mod:`repro.synth` — the deterministic synthetic world generator;
* :mod:`repro.analysis` — the paper's analyses, one module per experiment;
* :mod:`repro.reporting` — text tables/figures and the experiment registry;
* :mod:`repro.obs` — spans, metrics registry, Prometheus exposition: the
  one instrumentation API behind ``--timings``/``--trace``/``/metrics``;
* :mod:`repro.errors` — the unified error surface (``ReproError.code``).

The supported import surface is :mod:`repro.api`; every name it
exports is also reachable directly off the package (``from repro
import build_world``), resolved lazily so ``import repro`` stays
cheap.  Submodules beyond that surface are internal and may change
shape between releases.

Quickstart::

    from repro import ScenarioConfig, build_world, run_experiment, render_text

    world = build_world(ScenarioConfig.tiny())
    print(render_text(run_experiment(world, "tab1")))
"""

__version__ = "1.0.0"


def _api_names() -> list[str]:
    from . import api

    return list(api.__all__)


def __getattr__(name: str):
    if name == "__all__":
        value = ["__version__", *_api_names()]
        globals()["__all__"] = value
        return value
    if name.startswith("_"):
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    from . import api

    try:
        return getattr(api, name)
    except AttributeError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None


def __dir__() -> list[str]:
    return sorted(set(globals()) | {"__all__"} | set(_api_names()))
