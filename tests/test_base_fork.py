"""Base-snapshot fork tests: byte identity, shared caching, faults.

The contract that makes the base cache safe to exist at all: a world
forked from a shared base snapshot and overlaid by the director is
byte-identical to one built from scratch for the same scenario, for
every attack family crossed with every defense.  The fault tests pin
the failure semantics of the ``base.*`` sites — a torn or unreadable
base entry evicts and rebuilds, never poisoning the cells forked from
it.
"""

import filecmp
import json
from pathlib import Path

import pytest

from repro.obs import Instrumentation
from repro.runtime import cache as cache_mod
from repro.runtime import faults
from repro.runtime.cache import WorldCache
from repro.scenarios import Scenario, build_scenario_world
from repro.scenarios.compose import build_base_world, fork_scenario_world
from repro.scenarios.metrics import (
    evaluate_scenario,
    evaluate_scenario_from_index,
)
from repro.scenarios.spec import ATTACK_FAMILIES, DEFENSE_KINDS, WorldScale
from repro.query.index import build_index
from repro.synth import save_world


@pytest.fixture(autouse=True)
def _fresh_base_lru():
    """Each test starts without in-memory base snapshots."""
    cache_mod._BASE_LRU.clear()
    yield
    cache_mod._BASE_LRU.clear()


def _tree(directory: Path) -> dict[str, Path]:
    return {
        str(p.relative_to(directory)): p
        for p in sorted(directory.rglob("*"))
        if p.is_file()
    }


def _assert_same_archives(scratch_dir: Path, fork_dir: Path) -> None:
    scratch_files = _tree(scratch_dir)
    fork_files = _tree(fork_dir)
    assert set(scratch_files) == set(fork_files)
    different = [
        name
        for name in scratch_files
        if not filecmp.cmp(
            scratch_files[name], fork_files[name], shallow=False
        )
    ]
    assert different == [], f"forked archives differ from scratch: {different}"


class TestForkScratchGolden:
    @pytest.mark.parametrize("seed", (2022, 5))
    def test_forked_overlays_match_scratch_byte_for_byte(
        self, tmp_path, seed
    ):
        base = WorldScale(scale="tiny", seed=seed)
        base_world, base_state = build_base_world(base)
        for family, attack_cls in ATTACK_FAMILIES.items():
            for kind, defense_cls in DEFENSE_KINDS.items():
                scenario = Scenario(
                    name=f"{family}/{kind}",
                    base=base,
                    attacks=(attack_cls(),),
                    defenses=(defense_cls(),),
                )
                scratch_dir = tmp_path / f"scratch-{family}-{kind}"
                fork_dir = tmp_path / f"fork-{family}-{kind}"
                save_world(
                    build_scenario_world(scenario),
                    scratch_dir,
                    drop_step_days=1,
                )
                forked = fork_scenario_world(
                    scenario, base_world, base_state
                )
                save_world(forked, fork_dir, drop_step_days=1)
                _assert_same_archives(scratch_dir, fork_dir)

    def test_forks_leave_the_base_untouched_and_isolated(self):
        base = WorldScale()
        base_world, base_state = build_base_world(base)
        sizes = (
            len(base_world.bgp),
            len(base_world.roas),
            len(base_world.drop),
            len(base_world.sbl),
        )
        first = fork_scenario_world(
            Scenario(attacks=(ATTACK_FAMILIES["prefix-hijack"](),)),
            base_world,
            base_state,
        )
        second = fork_scenario_world(
            Scenario(attacks=(ATTACK_FAMILIES["as0-misconfig"](),)),
            base_world,
            base_state,
        )
        assert sizes == (
            len(base_world.bgp),
            len(base_world.roas),
            len(base_world.drop),
            len(base_world.sbl),
        )
        assert base_world.truth.scenario is None
        assert first.truth.scenario is not second.truth.scenario
        assert first.truth.scenario.attacks[0].family == "prefix-hijack"
        assert second.truth.scenario.attacks[0].family == "as0-misconfig"


class TestIndexMetricsParity:
    def test_index_evaluation_equals_world_evaluation(self):
        base = WorldScale()
        base_world, base_state = build_base_world(base)
        for family, attack_cls in ATTACK_FAMILIES.items():
            scenario = Scenario(
                name=family,
                attacks=(attack_cls(),),
                defenses=(DEFENSE_KINDS["rov"](rate=0.5),),
            )
            world = fork_scenario_world(scenario, base_world, base_state)
            truth = world.truth.scenario
            from_world = evaluate_scenario(world, truth)
            from_index = evaluate_scenario_from_index(
                build_index(world), truth
            )
            assert from_index == from_world


class TestBaseCache:
    def test_memory_then_disk_hits(self, tmp_path):
        cache = WorldCache(tmp_path / "cache")
        base = WorldScale()
        instr = Instrumentation()
        first = cache.fetch_base(base, instrumentation=instr)
        assert first.status == "miss"
        assert instr.counters["base_cache_misses"] == 1
        second = cache.fetch_base(base, instrumentation=instr)
        assert second.status == "hit"
        assert second.world is first.world  # in-memory LRU, no load
        cache_mod._BASE_LRU.clear()
        third = cache.fetch_base(base, instrumentation=instr)
        assert third.status == "hit"
        assert third.world is not first.world  # reloaded from disk
        assert instr.counters["base_cache_hits"] == 2
        assert instr.counters["base_cache_misses"] == 1

    def test_state_sidecar_round_trips_exactly(self, tmp_path):
        cache = WorldCache(tmp_path / "cache")
        base = WorldScale()
        built = cache.fetch_base(base)
        cache_mod._BASE_LRU.clear()
        loaded = cache.fetch_base(base)
        assert loaded.status == "hit"
        assert loaded.state == json.loads(json.dumps(built.state))

    def test_scenario_misses_share_one_base_build(self, tmp_path):
        cache = WorldCache(tmp_path / "cache")
        instr = Instrumentation()
        for family in ("prefix-hijack", "subprefix-hijack", "roa-downgrade"):
            out = cache.fetch_scenario(
                Scenario(
                    name=family, attacks=(ATTACK_FAMILIES[family](),)
                ),
                instrumentation=instr,
            )
            assert out.status == "miss"
        assert instr.counters["base_cache_misses"] == 1
        assert instr.counters["base_cache_hits"] == 2

    def test_refresh_rebuilds_scenario_but_not_base(self, tmp_path):
        cache = WorldCache(tmp_path / "cache")
        scenario = Scenario(attacks=(ATTACK_FAMILIES["prefix-hijack"](),))
        cache.fetch_scenario(scenario)
        instr = Instrumentation()
        out = cache.fetch_scenario(
            scenario, instrumentation=instr, refresh=True
        )
        assert out.status == "refresh"
        assert instr.counters["base_cache_hits"] == 1
        assert "base_cache_misses" not in instr.counters


class TestBaseFaults:
    def test_save_io_error_degrades_to_uncached(self, tmp_path):
        cache = WorldCache(tmp_path / "cache")
        instr = Instrumentation()
        with faults.injected("io-error@base.save"):
            with pytest.warns(RuntimeWarning, match="continuing uncached"):
                out = cache.fetch_base(WorldScale(), instrumentation=instr)
        assert out.status == "miss"
        assert not out.directory.exists()
        assert instr.counters["world_cache_store_errors"] == 1
        # The in-memory base still serves forks.
        forked = fork_scenario_world(
            Scenario(attacks=(ATTACK_FAMILIES["prefix-hijack"](),)),
            out.world,
            out.state,
        )
        assert forked.truth.scenario is not None

    def test_torn_base_entry_evicts_and_never_poisons_cells(self, tmp_path):
        cache = WorldCache(tmp_path / "cache")
        with faults.injected("truncate@base.store"):
            torn = cache.fetch_base(WorldScale())
        assert torn.directory.exists()  # published, but torn
        cache_mod._BASE_LRU.clear()
        instr = Instrumentation()
        rebuilt = cache.fetch_base(WorldScale(), instrumentation=instr)
        assert rebuilt.status == "miss"
        assert instr.counters["base_cache_evictions"] == 1
        # Cells forked from the rebuilt base score identically to a
        # from-scratch build: the torn entry never leaked downstream.
        scenario = Scenario(
            attacks=(ATTACK_FAMILIES["subprefix-hijack"](),)
        )
        cell = cache.fetch_scenario(scenario, instrumentation=instr)
        scratch = build_scenario_world(scenario)
        assert evaluate_scenario(cell.world, cell.truth) == (
            evaluate_scenario(scratch, scratch.truth.scenario)
        )

    def test_load_fault_evicts_and_rebuilds(self, tmp_path):
        cache = WorldCache(tmp_path / "cache")
        cache.fetch_base(WorldScale())
        cache_mod._BASE_LRU.clear()
        instr = Instrumentation()
        with faults.injected("io-error@base.load"):
            out = cache.fetch_base(WorldScale(), instrumentation=instr)
        assert out.status == "miss"
        assert instr.counters["base_cache_evictions"] == 1
        assert out.directory.exists()  # republished clean

    def test_fork_fault_fails_the_cell_and_leaves_base_reusable(
        self, tmp_path
    ):
        cache = WorldCache(tmp_path / "cache")
        scenario = Scenario(attacks=(ATTACK_FAMILIES["roa-downgrade"](),))
        instr = Instrumentation()
        with faults.injected("io-error@base.fork"):
            with pytest.raises(OSError):
                cache.fetch_scenario(scenario, instrumentation=instr)
        retry = cache.fetch_scenario(scenario, instrumentation=instr)
        assert retry.status == "miss"
        assert instr.counters["base_cache_misses"] == 1  # built once
        assert instr.counters["base_cache_hits"] == 1  # reused on retry

    def test_foreign_base_entry_is_evicted(self, tmp_path):
        cache = WorldCache(tmp_path / "cache")
        out = cache.fetch_base(WorldScale())
        meta_path = out.directory / "cache-key.json"
        meta = json.loads(meta_path.read_text())
        meta["base"]["seed"] = 999
        meta_path.write_text(json.dumps(meta))
        cache_mod._BASE_LRU.clear()
        instr = Instrumentation()
        again = cache.fetch_base(WorldScale(), instrumentation=instr)
        assert again.status == "miss"
        assert instr.counters["base_cache_evictions"] == 1
