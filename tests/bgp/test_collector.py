"""Unit tests for repro.bgp.collector."""

import pytest

from repro.bgp.collector import (
    ROUTEVIEWS_COLLECTOR_NAMES,
    Collector,
    Peer,
    PeerRegistry,
)


class TestRouteViewsFleet:
    def test_36_collectors(self):
        assert len(ROUTEVIEWS_COLLECTOR_NAMES) == 36

    def test_unique_names(self):
        assert len(set(ROUTEVIEWS_COLLECTOR_NAMES)) == 36


class TestPeerRegistry:
    def test_peer_ids_sequential(self):
        reg = PeerRegistry()
        a = reg.add_peer(174, "route-views2")
        b = reg.add_peer(3356, "route-views3")
        assert (a.peer_id, b.peer_id) == (0, 1)

    def test_add_collector_idempotent(self):
        reg = PeerRegistry()
        c1 = reg.add_collector("route-views2")
        c2 = reg.add_collector("route-views2")
        assert c1 is c2

    def test_peers_grouped_by_collector(self):
        reg = PeerRegistry()
        reg.add_peer(174, "route-views2")
        reg.add_peer(3356, "route-views2")
        reg.add_peer(2914, "route-views3")
        assert len(reg.collector("route-views2").peers) == 2
        assert len(reg.collector("route-views3").peers) == 1

    def test_full_table_peer_ids(self):
        reg = PeerRegistry()
        reg.add_peer(174, "c", full_table=True)
        reg.add_peer(3356, "c", full_table=False)
        reg.add_peer(2914, "c", full_table=True)
        assert reg.full_table_peer_ids() == frozenset({0, 2})

    def test_filters_drop_flag(self):
        reg = PeerRegistry()
        peer = reg.add_peer(64500, "c", filters_drop=True)
        assert reg.peer(peer.peer_id).filters_drop

    def test_len_and_peer_ids(self):
        reg = PeerRegistry()
        for asn in (1, 2, 3):
            reg.add_peer(asn, "c")
        assert len(reg) == 3
        assert reg.peer_ids() == frozenset({0, 1, 2})

    def test_unknown_collector_raises(self):
        reg = PeerRegistry()
        with pytest.raises(KeyError):
            reg.collector("nope")

    def test_unknown_peer_raises(self):
        reg = PeerRegistry()
        with pytest.raises(KeyError):
            reg.peer(99)


class TestCollector:
    def test_add_peer_wrong_collector_rejected(self):
        collector = Collector("a")
        with pytest.raises(ValueError):
            collector.add_peer(Peer(peer_id=0, asn=1, collector="b"))
