"""The transport-independent serving core shared by both daemons.

``repro-drop serve`` exists twice: the threaded stdlib daemon
(:class:`~repro.query.server.QueryServer`) and the asyncio multi-worker
tier (:class:`~repro.query.aserver.AsyncQueryServer`).  Their wire
contract — every endpoint, every success body, every error payload —
must be byte-identical, so the request handling lives here exactly
once: a :class:`ServerCore` owns the engine reference, the health
snapshot, the metrics wiring, the drain flag, and a bounded response
cache, and maps one parsed request onto one :class:`Response`.  The two
servers are thin transports: they read bytes off a socket, call
:meth:`ServerCore.handle`, and write the response back.

Every ``/v1/*`` JSON body rides one versioned envelope (API version
:data:`API_VERSION`)::

    {"api": 1, "data": ...}                                  success
    {"api": 1, "error": {"code": "...", "message": "..."}}   failure

Client errors are :class:`ReproError` subclasses with stable codes
(``query.bad-prefix``, ``query.bad-day``, ``query.bad-request``,
``query.not-found``), carried in the envelope's ``error`` object.  The
non-versioned operational endpoints — ``/healthz`` (monitoring JSON)
and ``/metrics`` (Prometheus exposition) — keep their legacy shapes;
``docs/api-contract.json`` is the machine-readable statement of the
whole surface, checked against both daemons by the contract tests.

The engine reference swaps atomically: requests grab one immutable
``(engine, snapshot, cache)`` state tuple at dispatch, so a hot reload
(:meth:`ServerCore.set_engine`) can never produce a torn answer — an
in-flight request finishes entirely on the state it started with.  The
response cache rides inside the state tuple for the same reason: a slow
request racing a reload can only populate the *old* state's cache,
which the swap orphans wholesale.
"""

from __future__ import annotations

import json
import threading
from collections import OrderedDict
from datetime import date, timedelta
from time import perf_counter
from typing import Callable, NamedTuple
from urllib.parse import parse_qs, urlsplit

from ..errors import ReproError
from ..net.prefix import IPv4Prefix, PrefixError
from ..net.timeline import parse_date
from .engine import BatchParseError, QueryEngine

__all__ = [
    "API_VERSION",
    "BAD_REQUEST_BODY",
    "MAX_BATCH_BYTES",
    "PROMETHEUS_CONTENT_TYPE",
    "SSE_CONTENT_TYPE",
    "WATCH_TIMEOUT_CAP",
    "BadDayError",
    "BadPrefixError",
    "NotFoundError",
    "ReloadError",
    "RequestError",
    "Response",
    "ServerCore",
    "envelope",
    "error_payload",
    "parse_content_length",
    "parse_day",
    "parse_prefix",
]

#: The version stamped into every ``/v1/*`` JSON envelope.  Bump only
#: with a breaking body-shape change (and a new contract file).
API_VERSION = 1

#: Largest accepted ``/v1/batch`` request body, in bytes.
MAX_BATCH_BYTES = 8 << 20

#: Longest ``/v1/watch`` long-poll a client may request, in seconds.
WATCH_TIMEOUT_CAP = 30.0

#: The content type ``/v1/watch?mode=sse`` answers with.
SSE_CONTENT_TYPE = "text/event-stream; charset=utf-8"

#: The exposition content type ``GET /metrics`` answers with.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Default capacity of the per-engine response cache (entries).  The
#: index is immutable, so a ``/v1/status`` answer for one raw request
#: target never changes until a reload swaps the engine (which swaps
#: the cache with it).
DEFAULT_CACHE_SIZE = 65536


class RequestError(ReproError, ValueError):
    """A malformed request: reported with :attr:`http_status` and a
    stable ``.code`` in the JSON error body."""

    code = "query.bad-request"
    http_status = 400


class BadPrefixError(RequestError):
    """A missing or unparseable ``prefix`` argument."""

    code = "query.bad-prefix"


class BadDayError(RequestError):
    """An ``on`` argument that is not a valid calendar date."""

    code = "query.bad-day"


class NotFoundError(RequestError):
    """A request for a path/method pair no endpoint answers."""

    code = "query.not-found"
    http_status = 404


class ReloadError(ReproError, RuntimeError):
    """A hot reload that failed; the old index keeps serving."""

    code = "query.reload-failed"
    http_status = 500


def envelope(data: object) -> dict:
    """The success envelope every ``/v1/*`` JSON body rides in."""
    return {"api": API_VERSION, "data": data}


def error_payload(error: ReproError) -> dict:
    """The error envelope: stable code plus human message."""
    return {
        "api": API_VERSION,
        "error": {"code": error.code, "message": str(error)},
    }


#: The one 400 body both transports answer when the request itself is
#: not parseable HTTP (so there is no endpoint to blame): the same
#: error envelope as every other failure, with the stable
#: ``query.bad-request`` code.
BAD_REQUEST_BODY = json.dumps(
    error_payload(RequestError("malformed HTTP request")), sort_keys=True
).encode("utf-8")


def parse_content_length(raw: str | None) -> int:
    """A ``Content-Length`` header value as a byte count.

    RFC 9110 says ``1*DIGIT``, so only ASCII digits pass: a negative,
    signed, or non-numeric value raises :class:`ValueError` and the
    transport answers :data:`BAD_REQUEST_BODY` — ``int()`` alone would
    let ``"-5"`` through as a negative length, which the threaded
    transport then handed to ``rfile.read`` paths expecting a size.
    An absent or empty header means no body (0).
    """
    if not raw:
        return 0
    if not raw.isascii() or not raw.isdigit():
        raise ValueError(f"bad Content-Length {raw!r}")
    return int(raw)


def parse_day(args: dict, *, default: date) -> date:
    """The ``on`` argument as a date (``default`` when absent)."""
    raw = args.get("on")
    if raw is None:
        return default
    try:
        return parse_date(str(raw))
    except ValueError as error:
        raise BadDayError(str(error)) from None


def parse_prefix(raw: object) -> IPv4Prefix:
    """The ``prefix`` argument, required and parseable."""
    if not isinstance(raw, str) or not raw:
        raise BadPrefixError("missing prefix")
    try:
        return IPv4Prefix.parse(raw)
    except PrefixError as error:
        raise BadPrefixError(str(error)) from None


class Response(NamedTuple):
    """One finished HTTP response, transport-agnostic."""

    status: int
    content_type: str
    body: bytes


def _json_response(status: int, payload: dict) -> Response:
    body = json.dumps(payload, sort_keys=True).encode("utf-8")
    return Response(status, "application/json", body)


def _data_response(status: int, data: object) -> Response:
    """A ``/v1/*`` success body, enveloped."""
    return _json_response(status, envelope(data))


class _State(NamedTuple):
    """What one request dispatch sees, swapped atomically on reload."""

    engine: QueryEngine
    snapshot: dict
    cache: "OrderedDict[str, Response]"


def _snapshot(engine: QueryEngine) -> dict:
    """The engine-free ``/healthz`` facts: window bounds, store sizes."""
    index = engine.index
    return {
        "window": [
            index.window.start.isoformat(),
            index.window.end.isoformat(),
        ],
        "index": index.sizes(),
    }


class ServerCore:
    """Engine, snapshot, metrics, drain state, and request dispatch.

    One core serves every transport thread (and every asyncio worker
    loop) of one daemon.  ``reloader`` — when the daemon supports hot
    reload — is a callable returning the fresh health snapshot; it
    backs ``POST /v1/admin/reload`` (404 when absent, so the threaded
    daemon's surface is unchanged).  ``ingestor`` — when the daemon
    runs in incremental mode — is a :class:`~repro.ingest.service
    .Ingestor`; it backs ``GET /v1/watch`` and ``POST /v1/ingest``
    (both 404 when absent) and its ``on_engine`` callback is wired to
    :meth:`set_engine` so every applied delta publishes atomically.
    ``cache_size=0`` disables the response cache.
    """

    def __init__(
        self,
        engine: QueryEngine,
        *,
        verbose: bool = False,
        reloader: Callable[[], dict] | None = None,
        ingestor=None,
        cache_size: int = 0,
    ) -> None:
        self.instrumentation = engine.instrumentation
        self.registry = self.instrumentation.registry
        self.verbose = verbose
        self.reloader = reloader
        self.ingestor = ingestor
        if ingestor is not None:
            ingestor.on_engine = lambda fresh: self.set_engine(fresh)
        self.cache_size = cache_size
        self.draining = threading.Event()
        self._cache_lock = threading.Lock()
        self._state = _State(engine, _snapshot(engine), OrderedDict())
        self._index_entries = self.registry.gauge(
            "repro_server_index_entries",
            help="Entries in the served query index, by store.",
            labels=("store",),
        )
        self._publish_snapshot(self._state.snapshot)
        self.draining_gauge = self.registry.gauge(
            "repro_server_draining",
            help="1 while the server is draining after SIGTERM/SIGINT.",
        )
        self.draining_gauge.set(0)
        self.request_seconds = self.registry.histogram(
            "repro_server_request_seconds",
            help="Request handling latency, by endpoint.",
            labels=("endpoint",),
        )

    # -- engine state ------------------------------------------------------

    @property
    def engine(self) -> QueryEngine:
        return self._state.engine

    @property
    def health_snapshot(self) -> dict:
        return self._state.snapshot

    def set_engine(
        self, engine: QueryEngine, *, refresh_snapshot: bool = True
    ) -> dict:
        """Atomically swap the served engine (the hot-reload primitive).

        In-flight requests finish on the state they grabbed at dispatch;
        new requests see the new engine, snapshot, and an empty response
        cache.  Returns the published snapshot.
        """
        old = self._state
        snapshot = _snapshot(engine) if refresh_snapshot else old.snapshot
        self._state = _State(engine, snapshot, OrderedDict())
        if refresh_snapshot:
            self._publish_snapshot(snapshot)
        return snapshot

    def _publish_snapshot(self, snapshot: dict) -> None:
        for store, count in snapshot["index"].items():
            self._index_entries.set(count, store=store)

    def start_drain(self) -> bool:
        """Flip to draining (healthz 503); True on the first call only."""
        if self.draining.is_set():
            return False
        self.draining.set()
        self.draining_gauge.set(1)
        self.instrumentation.incr("serve_drains")
        return True

    # -- dispatch ----------------------------------------------------------

    def handle(
        self,
        method: str,
        target: str,
        body: bytes | None,
        content_length: int,
    ) -> Response:
        """One request, one response.

        ``target`` is the raw request target (path plus query string);
        ``body`` is the request body when the transport read one (POSTs
        within :data:`MAX_BATCH_BYTES` only), ``content_length`` the
        declared length either way — the size-limit errors are raised
        here so both transports report them identically.
        """
        url = urlsplit(target)
        if method == "GET":
            if url.path == "/v1/status":
                return self._timed(
                    "status", lambda: self._status(url.query, target)
                )
            if url.path == "/v1/watch" and self.ingestor is not None:
                return self._timed("watch", lambda: self._watch(url.query))
            if url.path == "/healthz":
                return self._timed("healthz", self._healthz)
            if url.path == "/metrics":
                return self._timed("metrics", self._metrics)
        elif method == "POST":
            if url.path == "/v1/batch":
                return self._timed(
                    "batch", lambda: self._batch(body, content_length)
                )
            if url.path == "/v1/admin/reload" and self.reloader is not None:
                return self._timed("reload", self._admin_reload)
            if url.path == "/v1/ingest" and self.ingestor is not None:
                return self._timed("ingest", lambda: self._ingest(body))
        self.instrumentation.incr("serve_client_errors")
        return _json_response(
            404, error_payload(NotFoundError(f"unknown path {url.path}"))
        )

    def _timed(self, endpoint: str, handler) -> Response:
        instr = self.instrumentation
        started = perf_counter()
        try:
            return handler()
        except (RequestError, BatchParseError) as error:
            instr.incr("serve_client_errors")
            return _json_response(
                getattr(error, "http_status", 400), error_payload(error)
            )
        except Exception as error:  # pragma: no cover - defensive
            instr.incr("serve_server_errors")
            return _json_response(
                500,
                {
                    "api": API_VERSION,
                    "error": {
                        "code": "query.internal",
                        "message": f"{type(error).__name__}: {error}",
                    },
                },
            )
        finally:
            elapsed = perf_counter() - started
            self.request_seconds.observe(elapsed, endpoint=endpoint)
            instr.incr(f"serve_{endpoint}_requests")
            instr.incr(f"serve_{endpoint}_us_total", int(elapsed * 1e6))

    # -- endpoints ---------------------------------------------------------

    def _status(self, query: str, target: str) -> Response:
        state = self._state
        if self.cache_size:
            with self._cache_lock:
                cached = state.cache.get(target)
                if cached is not None:
                    state.cache.move_to_end(target)
                    return cached
        args = {k: v[-1] for k, v in parse_qs(query).items()}
        prefix = parse_prefix(args.get("prefix"))
        day = parse_day(args, default=state.engine.default_day)
        response = _data_response(
            200, state.engine.lookup(prefix, day).to_dict()
        )
        if self.cache_size:
            with self._cache_lock:
                state.cache[target] = response
                while len(state.cache) > self.cache_size:
                    state.cache.popitem(last=False)
        return response

    def _batch(self, body: bytes | None, content_length: int) -> Response:
        state = self._state
        engine = state.engine
        if content_length <= 0:
            raise RequestError("missing request body")
        if content_length > MAX_BATCH_BYTES:
            raise RequestError(f"batch body over {MAX_BATCH_BYTES} bytes")
        assert body is not None  # transports read bodies within the cap
        try:
            payload = json.loads(body)
        except json.JSONDecodeError as error:
            raise RequestError(f"bad JSON body: {error}") from None
        queries = (
            payload.get("queries") if isinstance(payload, dict) else payload
        )
        if not isinstance(queries, list):
            raise RequestError('expected {"queries": [...]} or a JSON list')
        # Validate the whole batch before answering any of it, so one
        # response names every malformed item — not just the first.
        pairs: list[tuple[IPv4Prefix, date]] = []
        errors: list[tuple[int, str, str]] = []
        for position, item in enumerate(queries):
            if isinstance(item, str):
                item = {"prefix": item}
            if not isinstance(item, dict):
                errors.append((position, repr(item), "bad query item"))
                continue
            try:
                pairs.append(
                    (
                        parse_prefix(item.get("prefix")),
                        parse_day(item, default=engine.default_day),
                    )
                )
            except RequestError as error:
                errors.append((position, repr(item), str(error)))
        if errors:
            raise BatchParseError(errors)
        results = engine.lookup_many(pairs)
        return _data_response(
            200, {"results": [status.to_dict() for status in results]}
        )

    def _healthz(self) -> Response:
        # Registry/snapshot state only — no engine, no lookup path.
        # Deliberately *not* enveloped: /healthz is the operational
        # monitoring surface, outside the versioned /v1 contract.
        state = self._state
        draining = self.draining.is_set()
        payload = {
            "status": "draining" if draining else "ok",
            "counters": dict(self.instrumentation.counters),
        }
        payload.update(state.snapshot)
        if self.ingestor is not None:
            payload["ingest"] = self.ingestor.status()
        return _json_response(503 if draining else 200, payload)

    def _metrics(self) -> Response:
        if self.draining.is_set():
            return _json_response(
                503, {"code": "query.draining", "error": "draining"}
            )
        return Response(
            200, PROMETHEUS_CONTENT_TYPE, self.registry.expose().encode()
        )

    def _admin_reload(self) -> Response:
        try:
            snapshot = self.reloader()
        except ReloadError as error:
            return _json_response(error.http_status, error_payload(error))
        return _data_response(200, {"status": "reloaded", **snapshot})

    # -- incremental mode ---------------------------------------------------

    def _watch(self, query: str) -> Response:
        """``GET /v1/watch``: events after ``since``, long-poll or SSE.

        Both modes answer a finite body (the transports are
        write-one-response); streaming clients reconnect with
        ``since=<last seq>`` — the SSE body carries a ``retry`` hint
        and per-event ``id`` lines so ``EventSource`` does exactly
        that on its own.
        """
        ingestor = self.ingestor
        args = {k: v[-1] for k, v in parse_qs(query).items()}
        try:
            since = int(args.get("since", "0"))
        except ValueError:
            raise RequestError(
                f"bad since {args.get('since')!r}: expected an integer"
            ) from None
        try:
            timeout = float(args.get("timeout", "0"))
        except ValueError:
            raise RequestError(
                f"bad timeout {args.get('timeout')!r}: expected seconds"
            ) from None
        timeout = min(max(timeout, 0.0), WATCH_TIMEOUT_CAP)
        mode = args.get("mode", "json")
        if mode not in ("json", "sse"):
            raise RequestError(f"bad mode {mode!r}: expected json or sse")
        events = ingestor.wait_events(since, timeout)
        if mode == "sse":
            chunks = ["retry: 2000\n\n"]
            for event in events:
                data = json.dumps(event.to_dict(), sort_keys=True)
                chunks.append(
                    f"id: {event.seq}\nevent: {event.kind}\n"
                    f"data: {data}\n\n"
                )
            return Response(
                200, SSE_CONTENT_TYPE, "".join(chunks).encode("utf-8")
            )
        return _data_response(
            200,
            {
                "events": [event.to_dict() for event in events],
                "last_seq": ingestor.events.last_seq,
                "as_of": ingestor.as_of.isoformat(),
            },
        )

    def _ingest(self, body: bytes | None) -> Response:
        """``POST /v1/ingest``: apply the next day (or days) of deltas.

        Body is optional: ``{}`` advances one day, ``{"day": "<iso>"}``
        advances through that day, ``{"days": N}`` through N days.
        State conflicts (window exhausted, target out of range) answer
        409 with the stable ``ingest.failed`` code; an apply that dies
        mid-flight answers 500 and the previous day keeps serving.
        """
        from ..ingest.apply import IngestError

        ingestor = self.ingestor
        to_day = None
        if body:
            try:
                payload = json.loads(body)
            except json.JSONDecodeError as error:
                raise RequestError(f"bad JSON body: {error}") from None
            if not isinstance(payload, dict):
                raise RequestError("expected a JSON object body")
            if "day" in payload and "days" in payload:
                raise RequestError('pass "day" or "days", not both')
            if "day" in payload:
                try:
                    to_day = parse_date(str(payload["day"]))
                except ValueError as error:
                    raise BadDayError(str(error)) from None
            elif "days" in payload:
                days = payload["days"]
                if not isinstance(days, int) or days < 1:
                    raise RequestError(
                        f"bad days {days!r}: expected a positive integer"
                    )
                to_day = ingestor.as_of + timedelta(days=days)
        try:
            results = ingestor.advance(to_day=to_day)
        except IngestError as error:
            return _json_response(409, error_payload(error))
        except Exception as error:
            self.instrumentation.incr("serve_server_errors")
            return _json_response(
                500,
                {
                    "api": API_VERSION,
                    "error": {
                        "code": "ingest.failed",
                        "message": f"{type(error).__name__}: {error}",
                    },
                },
            )
        return _data_response(
            200,
            {
                "results": [result.to_dict() for result in results],
                "ingest": ingestor.status(),
            },
        )
