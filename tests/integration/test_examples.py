"""Smoke tests: every example script runs cleanly end to end."""

import subprocess
import sys
from pathlib import Path


EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, *args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=600,
    )


class TestExamples:
    def test_quickstart(self):
        result = run_example("quickstart.py")
        assert result.returncode == 0, result.stderr
        assert "Withdrawal within 30 days" in result.stdout
        assert "RPKI signing rates" in result.stdout

    def test_hijack_forensics(self):
        result = run_example("hijack_forensics.py")
        assert result.returncode == 0, result.stderr
        assert "origin history of 132.255.0.0/22" in result.stdout
        assert "valid" in result.stdout
        assert "6 sibling prefixes (paper: 6)" in result.stdout

    def test_blocklist_monitor(self):
        result = run_example("blocklist_monitor.py")
        assert result.returncode == 0, result.stderr
        assert "new DROP listings" in result.stdout
        assert "AS0 audit" in result.stdout

    def test_policy_whatif(self):
        result = run_example("policy_whatif.py")
        assert result.returncode == 0, result.stderr
        assert "AS0 deployment ladder" in result.stdout
        assert "maxLength audit" in result.stdout

    def test_serial_hijacker_hunt(self):
        result = run_example("serial_hijacker_hunt.py")
        assert result.returncode == 0, result.stderr
        assert "score origins against the DROP list" in result.stdout
        assert "alarms" in result.stdout

    def test_full_paper_reproduction(self):
        result = run_example("full_paper_reproduction.py")
        assert result.returncode == 0, result.stderr
        assert "scoreboard" in result.stdout
        # Every numeric metric should be in tolerance at tiny scale.
        scoreboard = [
            line for line in result.stdout.splitlines()
            if line.startswith("scoreboard")
        ][0]
        matched, total = scoreboard.split(":")[1].split()[0].split("/")
        assert matched == total
