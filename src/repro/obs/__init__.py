"""Observability: one instrumentation API for the whole stack.

``repro.obs`` unifies what used to be three telemetry dialects — the
``--timings`` stage JSON, the serving daemon's ad-hoc counter dict, and
bespoke bench artifact writers — behind two primitives and one facade:

* :mod:`repro.obs.spans` — :class:`Span` / :class:`Tracer`: nested,
  monotonic-clock spans with attributes, forwarded across worker
  processes, exported as JSONL via ``--trace PATH`` / ``$REPRO_TRACE``;
* :mod:`repro.obs.metrics` — :class:`MetricsRegistry` with
  :class:`Counter` / :class:`Gauge` / :class:`Histogram` (fixed
  log-scale buckets) and Prometheus text exposition, served at
  ``GET /metrics`` by ``repro-drop serve``;
* :mod:`repro.obs.instrument` — :class:`Instrumentation`, the per-run
  facade the whole stack threads around: ``stage()`` produces spans,
  ``incr()`` produces registry metrics, and the ``--timings`` JSON is a
  view over the span buffer (schema unchanged, golden-checked);
* :mod:`repro.obs.profiling` — the ``--profile`` cProfile-per-stage
  helper.

Metric naming convention: ``repro_<subsystem>_<name>_<unit>`` (see
``docs/architecture.md``, "Observability").
"""

from .instrument import Instrumentation, StageRecord, world_sizes
from .metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .profiling import profiled
from .spans import TRACE_ENV, Span, Tracer, trace_path_from_env

__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "Instrumentation",
    "MetricsRegistry",
    "Span",
    "StageRecord",
    "TRACE_ENV",
    "Tracer",
    "profiled",
    "trace_path_from_env",
    "world_sizes",
]
