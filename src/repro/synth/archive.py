"""Persist a whole world to disk and load it back.

The world serializes into the same shapes the real study downloads:

* ``bgp/``          — peers + route-interval JSONL (MRT-equivalent);
* ``drop/``         — daily Firehol-style DROP snapshots;
* ``sbl.jsonl``     — the SBL record store;
* ``irr.jsonl``     — the RADb journal (flat-file snapshots derivable);
* ``roas.jsonl``    — the ROA archive journal (CSV snapshots derivable);
* ``delegated/``    — per-RIR delegated stats files for the window end;
* ``overrides.json``— the manual Appendix-A judgements;
* ``config.json``   — seed + window, for provenance.

:func:`load_world` reconstructs a :class:`~repro.synth.world.World` whose
analyses produce identical results to the in-memory original (asserted by
the round-trip integration tests).  Ground truth is intentionally *not*
serialized: a loaded world is measurement-only, like the real archives.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..bgp.mrt import read_archive as read_bgp
from ..bgp.mrt import write_archive as write_bgp
from ..drop.categories import Category
from ..drop.droplist import DropArchive
from ..drop.sbl import SblDatabase
from ..irr.radb import IrrDatabase
from ..net.timeline import DateWindow, parse_date
from ..rirstats.registry import ResourceRegistry
from ..rirstats.rirs import ALL_RIRS
from ..rpki.archive import RoaArchive
from .config import ScenarioConfig
from .world import GroundTruth, World

__all__ = ["load_world", "save_world"]


def save_world(world: World, directory: Path, *, drop_step_days: int = 7) -> None:
    """Write every archive under ``directory``.

    ``drop_step_days`` controls DROP snapshot density (daily files for a
    three-year window are ~1000 small files; weekly is the default for
    tests, and episode dates coarsen accordingly on reload).
    """
    directory.mkdir(parents=True, exist_ok=True)
    write_bgp(directory / "bgp", world.peers, world.bgp)
    world.drop.write_snapshots(
        directory / "drop", step_days=drop_step_days
    )
    world.sbl.dump(directory / "sbl.jsonl")
    world.irr.write_journal(directory / "irr.jsonl")
    world.roas.write_journal(directory / "roas.jsonl")
    delegated = directory / "delegated"
    delegated.mkdir(exist_ok=True)
    for rir in ALL_RIRS:
        path = delegated / f"delegated-{rir.lower()}-latest"
        path.write_text(
            world.resources.snapshot_delegated(world.window.end, rir)
        )
    # The derived snapshot only captures end-state; keep the full registry
    # journal too so lifetimes reload exactly.
    _write_registry_journal(world.resources, directory / "registry.jsonl")
    (directory / "overrides.json").write_text(
        json.dumps(
            {
                sbl_id: sorted(c.value for c in categories)
                for sbl_id, categories in world.manual_overrides.items()
            },
            indent=0,
        )
    )
    (directory / "config.json").write_text(
        json.dumps(
            {
                "seed": world.config.seed,
                "window_start": world.window.start.isoformat(),
                "window_end": world.window.end.isoformat(),
            }
        )
    )


def load_world(directory: Path) -> World:
    """Reload a world saved by :func:`save_world` (without ground truth)."""
    meta = json.loads((directory / "config.json").read_text())
    window = DateWindow(
        parse_date(meta["window_start"]), parse_date(meta["window_end"])
    )
    peers, bgp = read_bgp(directory / "bgp", data_end=window.end)
    drop = DropArchive.read_snapshots(directory / "drop", window)
    sbl = SblDatabase.load(directory / "sbl.jsonl")
    irr = IrrDatabase.read_journal(directory / "irr.jsonl")
    roas = RoaArchive.read_journal(directory / "roas.jsonl")
    resources = _read_registry_journal(directory / "registry.jsonl")
    overrides = {
        sbl_id: frozenset(Category.from_label(l) for l in labels)
        for sbl_id, labels in json.loads(
            (directory / "overrides.json").read_text()
        ).items()
    }
    return World(
        config=ScenarioConfig(seed=meta["seed"], window=window),
        window=window,
        peers=peers,
        bgp=bgp,
        resources=resources,
        irr=irr,
        roas=roas,
        drop=drop,
        sbl=sbl,
        manual_overrides=overrides,
        truth=GroundTruth(),
    )


def _write_registry_journal(
    resources: ResourceRegistry, path: Path
) -> None:
    with open(path, "w") as out:
        for rir in ALL_RIRS:
            for interval in resources.managed_space(rir).intervals():
                json.dump(
                    {
                        "kind": "delegation",
                        "rir": rir,
                        "start": interval.start,
                        "end": interval.end,
                    },
                    out,
                    separators=(",", ":"),
                )
                out.write("\n")
        for allocation in resources.allocations():
            json.dump(
                {
                    "kind": "allocation",
                    "rir": allocation.rir,
                    "start": allocation.addresses.start,
                    "end": allocation.addresses.end,
                    "holder": allocation.holder,
                    "from": allocation.start.isoformat(),
                    "until": (
                        None
                        if allocation.end is None
                        else allocation.end.isoformat()
                    ),
                    "status": allocation.status,
                    "legacy": allocation.legacy,
                    "country": allocation.country,
                },
                out,
                separators=(",", ":"),
            )
            out.write("\n")


def _read_registry_journal(path: Path) -> ResourceRegistry:
    from datetime import date

    from ..net.prefix import AddressRange
    from ..rirstats.registry import Allocation

    resources = ResourceRegistry()
    with open(path) as source:
        for line in source:
            line = line.strip()
            if not line:
                continue
            raw = json.loads(line)
            if raw["kind"] == "delegation":
                resources.delegate_to_rir(
                    raw["rir"], AddressRange(raw["start"], raw["end"])
                )
            else:
                resources.add(
                    Allocation(
                        addresses=AddressRange(raw["start"], raw["end"]),
                        rir=raw["rir"],
                        holder=raw["holder"],
                        start=date.fromisoformat(raw["from"]),
                        end=(
                            None
                            if raw["until"] is None
                            else date.fromisoformat(raw["until"])
                        ),
                        status=raw["status"],
                        legacy=raw["legacy"],
                        country=raw["country"],
                    )
                )
    return resources
