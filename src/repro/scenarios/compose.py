"""Composing scenarios into worlds: playbooks plus overlay direction.

:func:`build_scenario_world` is the DSL's counterpart of
:func:`~repro.synth.builder.build_world`: it builds the scenario's base
world by running :data:`~repro.scenarios.playbooks.PAPER_PLAYBOOKS`
through the generic pipeline, then lets a :class:`ScenarioDirector`
layer the scenario's attack and defense overlays on top.

Overlay randomness lives in its own seed domain
(:data:`_OVERLAY_STREAM`), spawned from the base seed but disjoint from
every stream the base build consumes — so a scenario with no overlays
is byte-identical to the legacy world, and adding overlays never
perturbs the base population (both pinned by the golden test).

The director records everything it injects into a
:class:`ScenarioTruth` (stored on ``world.truth.scenario``): which
peers deploy each defense, and for every attack instance the victim,
the attack announcement, its expected RPKI validity, and the listing
day.  The truth document serializes to JSON, so scenario cache entries
carry it as a sidecar and cache hits stay evaluable.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import date, timedelta

import numpy as np

from ..bgp.messages import ASPath
from ..bgp.ribs import PartialObservation, RouteInterval
from ..drop.droplist import DropEpisode
from ..drop.sbl import SblRecord
from ..net.prefix import IPv4Prefix
from .playbooks import PAPER_PLAYBOOKS, apply_playbooks
from .spec import (
    As0Misconfig,
    AttackSpec,
    DropSubscription,
    MaxLengthAbuse,
    PrefixHijack,
    RoaDowngrade,
    RouteServerFiltering,
    RovDeployment,
    Scenario,
    SubPrefixHijack,
)

__all__ = [
    "SCENARIO_VERSION",
    "AttackTruth",
    "ScenarioDirector",
    "ScenarioTruth",
    "build_base_world",
    "build_scenario_world",
    "fork_scenario_world",
    "snapshot_base_state",
]

#: Version of the overlay algorithm.  Bump whenever a director change
#: alters the produced world or truth for an unchanged scenario — the
#: scenario cache keys on it alongside the generator version.
SCENARIO_VERSION = 1

#: Entropy domain tag separating overlay streams from every consumer
#: of the base seed (the builder spawns its nine streams from the bare
#: seed; background shards use 0xB6).
_OVERLAY_STREAM = 0xD5

#: Margins keeping attack days (and their listing aftermath) inside
#: the observation window.
_ATTACK_LEAD_DAYS = 90
_ATTACK_TAIL_DAYS = 45


@dataclass(frozen=True)
class AttackTruth:
    """What the director injected for one attack instance."""

    family: str
    index: int
    region: str
    victim_prefix: IPv4Prefix
    victim_asn: int
    attack_prefix: IPv4Prefix
    #: Origin AS of the attack announcement (the victim's ASN when the
    #: origin is forged, the victim's own route for ``as0-misconfig``).
    attack_origin: int
    #: The AS actually mounting the attack; None for ``as0-misconfig``
    #: (self-inflicted).
    attacker_asn: int | None
    attack_day: date
    #: The day the attack prefix lands on DROP; None when never listed.
    listed_day: date | None
    #: RFC 6811 state of the attack announcement on the attack day.
    expected_validity: str
    #: Peers expected to reject the announcement (ROV + route server).
    blocked_peer_count: int

    def to_dict(self) -> dict:
        return {
            "family": self.family,
            "index": self.index,
            "region": self.region,
            "victim_prefix": str(self.victim_prefix),
            "victim_asn": self.victim_asn,
            "attack_prefix": str(self.attack_prefix),
            "attack_origin": self.attack_origin,
            "attacker_asn": self.attacker_asn,
            "attack_day": self.attack_day.isoformat(),
            "listed_day": (
                self.listed_day.isoformat() if self.listed_day else None
            ),
            "expected_validity": self.expected_validity,
            "blocked_peer_count": self.blocked_peer_count,
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "AttackTruth":
        return cls(
            family=doc["family"],
            index=doc["index"],
            region=doc["region"],
            victim_prefix=IPv4Prefix.parse(doc["victim_prefix"]),
            victim_asn=doc["victim_asn"],
            attack_prefix=IPv4Prefix.parse(doc["attack_prefix"]),
            attack_origin=doc["attack_origin"],
            attacker_asn=doc["attacker_asn"],
            attack_day=date.fromisoformat(doc["attack_day"]),
            listed_day=(
                date.fromisoformat(doc["listed_day"])
                if doc["listed_day"]
                else None
            ),
            expected_validity=doc["expected_validity"],
            blocked_peer_count=doc["blocked_peer_count"],
        )


@dataclass(frozen=True)
class ScenarioTruth:
    """Director intent for one composed scenario (JSON-serializable)."""

    scenario_hash: str
    full_table_peers: int
    rov_peer_ids: tuple[int, ...]
    route_server_peer_ids: tuple[int, ...]
    drop_subscriber_ids: tuple[int, ...]
    attacks: tuple[AttackTruth, ...]

    @property
    def realized_rov_rate(self) -> float:
        """Fraction of full-table peers actually running ROV."""
        return len(self.rov_peer_ids) / max(1, self.full_table_peers)

    @property
    def realized_route_server_rate(self) -> float:
        return len(self.route_server_peer_ids) / max(
            1, self.full_table_peers
        )

    @property
    def realized_drop_rate(self) -> float:
        return len(self.drop_subscriber_ids) / max(1, self.full_table_peers)

    def to_dict(self) -> dict:
        return {
            "scenario_hash": self.scenario_hash,
            "full_table_peers": self.full_table_peers,
            "rov_peer_ids": list(self.rov_peer_ids),
            "route_server_peer_ids": list(self.route_server_peer_ids),
            "drop_subscriber_ids": list(self.drop_subscriber_ids),
            "attacks": [attack.to_dict() for attack in self.attacks],
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "ScenarioTruth":
        return cls(
            scenario_hash=doc["scenario_hash"],
            full_table_peers=doc["full_table_peers"],
            rov_peer_ids=tuple(doc["rov_peer_ids"]),
            route_server_peer_ids=tuple(doc["route_server_peer_ids"]),
            drop_subscriber_ids=tuple(doc["drop_subscriber_ids"]),
            attacks=tuple(
                AttackTruth.from_dict(a) for a in doc["attacks"]
            ),
        )


class ScenarioDirector:
    """Applies a scenario's attack/defense overlays to a built base.

    Runs after every base stage, against the still-open builder: it
    carves fresh victim space, mints fresh ASNs from the builder's
    cursor, and writes announcements, ROAs, SBL records, and DROP
    episodes through the same substrate APIs the playbooks use — so
    analyses cannot tell overlay data from base data.
    """

    def __init__(self, builder, scenario: Scenario) -> None:
        self.b = builder
        self.scenario = scenario
        seeds = np.random.SeedSequence(
            entropy=(builder.cfg.seed, _OVERLAY_STREAM)
        ).spawn(2)
        self.rng_defense = np.random.default_rng(seeds[0])
        self.rng_attack = np.random.default_rng(seeds[1])
        self._regions = list(builder.cfg.regions)
        self._defenses = {d.kind: d for d in scenario.defenses}
        self.rov_ids: frozenset[int] = frozenset()
        self.rs_ids: frozenset[int] = frozenset()
        self.sub_ids: frozenset[int] = frozenset()

    # -- defense deployment ----------------------------------------------

    def _quota_pick(
        self, pool: list[int], rate: float, total: int
    ) -> frozenset[int]:
        """``round(total * rate)`` ids from ``pool`` (quota, not
        Bernoulli — realized deployment rates stay exact, mirroring the
        playbooks' ``_quota_flags`` discipline)."""
        quota = min(len(pool), round(total * rate))
        if quota <= 0:
            return frozenset()
        chosen = self.rng_defense.choice(
            np.array(pool), size=quota, replace=False
        )
        return frozenset(int(x) for x in chosen)

    def _deploy_defenses(self) -> None:
        full = sorted(self.b.peers.full_table_peer_ids())
        total = len(full)
        rov = self._defenses.get(RovDeployment.kind)
        if rov is not None:
            self.rov_ids = self._quota_pick(full, rov.rate, total)
        rs = self._defenses.get(RouteServerFiltering.kind)
        if rs is not None:
            # Route servers protect peers not already running ROV
            # themselves (a disjoint draw keeps both realized rates
            # exact and the combined blocked set additive).
            remaining = [p for p in full if p not in self.rov_ids]
            self.rs_ids = self._quota_pick(remaining, rs.rate, total)
        sub = self._defenses.get(DropSubscription.kind)
        if sub is not None:
            # The base world's three filtering peers already subscribe;
            # the overlay adds subscribers beyond them.
            eligible = [
                p for p in full if p not in self.b._filtering_ids
            ]
            self.sub_ids = self._quota_pick(eligible, sub.rate, total)

    # -- attack instances ---------------------------------------------------

    def _listing_delay(self) -> int:
        sub = self._defenses.get(DropSubscription.kind)
        if isinstance(sub, DropSubscription):
            return sub.listing_delay_days
        return 7

    def _attack_day(self) -> date:
        window = self.b.cfg.window
        return self.b.uniform_day(
            self.rng_attack,
            window.start + timedelta(days=_ATTACK_LEAD_DAYS),
            window.end - timedelta(days=_ATTACK_TAIL_DAYS),
        )

    def _new_victim(
        self, region: str, length: int
    ) -> tuple[IPv4Prefix, int]:
        """Carve, delegate, and allocate a fresh victim prefix."""
        b = self.b
        prefix = b.carver.carve(length)
        b.resources.delegate_to_rir(region, prefix)
        alloc_day = b.uniform_day(
            self.rng_attack, date(2006, 1, 1), date(2016, 12, 31)
        )
        b.resources.allocate(
            prefix,
            region,
            alloc_day,
            holder=f"scenario-victim-{prefix.network >> 8}",
        )
        victim_asn = b.next_asn()
        b.topology.attach_edge_network(victim_asn)
        return prefix, victim_asn

    def _announce_attack(
        self,
        prefix: IPv4Prefix,
        path: ASPath,
        start: date,
        listed_day: date | None,
        blocked: frozenset[int],
    ) -> None:
        """The attack route: blocked peers never see it; subscribers
        (plus the base filtering peers) stop seeing it at listing."""
        b = self.b
        observers = frozenset(b._all_observers - blocked)
        subscribers = (self.sub_ids | b._filtering_ids) - blocked
        partials: tuple[PartialObservation, ...] = ()
        if listed_day is not None and subscribers:
            if start >= listed_day:
                observers = observers - subscribers
            else:
                partials = tuple(
                    PartialObservation(
                        peer_id=pid,
                        start=start,
                        end=listed_day - timedelta(days=1),
                    )
                    for pid in sorted(subscribers)
                )
        b.bgp.add(
            RouteInterval(
                prefix=prefix,
                path=path,
                start=start,
                end=None,
                observers=observers,
                partial_observers=partials,
            )
        )

    def _list_on_drop(
        self, prefix: IPv4Prefix, listed_day: date, text: str
    ) -> None:
        b = self.b
        sbl_id = b.next_sbl_id()
        b.sbl.add(
            SblRecord(
                sbl_id=sbl_id, prefix=prefix, text=text, created=listed_day
            )
        )
        b.drop.add(
            DropEpisode(
                prefix=prefix, added=listed_day, removed=None, sbl_id=sbl_id
            )
        )

    def _run_attack(
        self, spec: AttackSpec, index: int
    ) -> AttackTruth:
        b = self.b
        rng = self.rng_attack
        window = b.cfg.window
        region = self._regions[index % len(self._regions)]
        blocked_rov = self.rov_ids | self.rs_ids
        attack_day = self._attack_day()
        listed_day: date | None = window.clamp(
            attack_day + timedelta(days=self._listing_delay())
        )
        length = int(rng.integers(20, 23))
        victim_prefix, victim_asn = self._new_victim(region, length)
        roa_age = int(rng.integers(200, 700))
        transit = 62_070 + int(rng.integers(20))

        if isinstance(spec, As0Misconfig):
            # The operator's own space, routed for years; on the attack
            # day they publish an AS0 ROA over it (under their RIR's
            # production TAL, like §6.2.1), turning their legitimate
            # route invalid for every ROV adopter.
            b.sign(
                victim_prefix,
                0,
                attack_day,
                trust_anchor=region,
                max_length=32,
            )
            legit_path = b.topology.path_from_core(victim_asn)
            b.announce(
                victim_prefix,
                legit_path,
                b.cfg.bgp_history_start,
                attack_day - timedelta(days=1),
            )
            self._announce_attack(
                victim_prefix, legit_path, attack_day, None, blocked_rov
            )
            return AttackTruth(
                family=spec.family,
                index=index,
                region=region,
                victim_prefix=victim_prefix,
                victim_asn=victim_asn,
                attack_prefix=victim_prefix,
                attack_origin=victim_asn,
                attacker_asn=None,
                attack_day=attack_day,
                listed_day=None,
                expected_validity="invalid",
                blocked_peer_count=len(blocked_rov),
            )

        # Every other family: a victim announcing its space normally...
        b.announce(
            victim_prefix,
            b.topology.path_from_core(victim_asn),
            b.cfg.bgp_history_start,
            None,
        )
        roa_removed: date | None = None
        max_length: int | None = None
        attack_prefix = victim_prefix
        attacker_asn = b.next_asn()
        attack_origin = attacker_asn
        if isinstance(spec, PrefixHijack):
            expected = "invalid"
        elif isinstance(spec, SubPrefixHijack):
            sub_length = min(28, length + spec.extra_length)
            attack_prefix = next(iter(victim_prefix.subnets(sub_length)))
            expected = "invalid"
        elif isinstance(spec, RoaDowngrade):
            # Stalloris: the ROA fell out of the repository before the
            # attack; the hijack validates NOT_FOUND, so ROV lets it
            # through — the defense's blind spot, measured.
            roa_removed = attack_day - timedelta(days=spec.stale_days)
            expected = "not-found"
        elif isinstance(spec, MaxLengthAbuse):
            max_length = min(32, max(spec.max_length, length + 2))
            attack_prefix = next(iter(victim_prefix.subnets(max_length)))
            # Forged origin: the announcement names the victim's ASN,
            # so the loose maxLength ROA authorizes it.
            attack_origin = victim_asn
            expected = "valid"
        else:  # pragma: no cover - registry and director kept in sync
            raise AssertionError(f"unhandled attack family: {spec!r}")
        b.sign(
            victim_prefix,
            victim_asn,
            attack_day - timedelta(days=roa_age),
            trust_anchor=region,
            max_length=max_length,
            removed=roa_removed,
        )
        blocked = blocked_rov if expected == "invalid" else frozenset()
        self._announce_attack(
            attack_prefix,
            ASPath.of(transit, attack_origin),
            attack_day,
            listed_day,
            blocked,
        )
        self._list_on_drop(
            attack_prefix,
            listed_day,
            f"Hijacked netblock announced via AS{transit} "
            f"({spec.family})",
        )
        return AttackTruth(
            family=spec.family,
            index=index,
            region=region,
            victim_prefix=victim_prefix,
            victim_asn=victim_asn,
            attack_prefix=attack_prefix,
            attack_origin=attack_origin,
            attacker_asn=attacker_asn,
            attack_day=attack_day,
            listed_day=listed_day,
            expected_validity=expected,
            blocked_peer_count=len(blocked),
        )

    # -- orchestration -----------------------------------------------------

    def apply(self) -> ScenarioTruth:
        """Deploy defenses, run every attack instance, return truth."""
        self._deploy_defenses()
        attacks: list[AttackTruth] = []
        for spec in self.scenario.attacks:
            for index in range(spec.count):
                attacks.append(self._run_attack(spec, len(attacks)))
        return ScenarioTruth(
            scenario_hash=self.scenario.content_hash(),
            full_table_peers=len(self.b.peers.full_table_peer_ids()),
            rov_peer_ids=tuple(sorted(self.rov_ids)),
            route_server_peer_ids=tuple(sorted(self.rs_ids)),
            drop_subscriber_ids=tuple(sorted(self.sub_ids)),
            attacks=tuple(attacks),
        )


def build_scenario_world(
    scenario: Scenario,
    *,
    jobs: int = 1,
    instrumentation=None,
):
    """Build the world a scenario describes (base + overlays).

    The base runs through the generic playbook pipeline — the DSL path
    the golden test pins byte-identical to the legacy
    ``build_world`` — then the director applies the overlays.  Returns
    a :class:`~repro.synth.world.World` whose ``truth.scenario`` holds
    the :class:`ScenarioTruth`.
    """
    # Imported here, not at module load: repro.synth.builder imports
    # this package's playbooks, so a top-level import would be a cycle.
    from ..synth.builder import WorldBuilder

    builder = WorldBuilder(
        scenario.base.to_config(), jobs=jobs, instrumentation=instrumentation
    )
    world = builder.build(
        scenario_stages=(
            (
                "playbooks",
                lambda: apply_playbooks(builder, PAPER_PLAYBOOKS),
            ),
        )
    )
    director = ScenarioDirector(builder, scenario)
    with builder.instrumentation.stage("scenario-overlays", group="build"):
        world.truth.scenario = director.apply()
    return world


# ---------------------------------------------------------------------------
# base snapshots + copy-on-write forks
# ---------------------------------------------------------------------------
#
# Every scenario sharing one ``WorldScale`` builds the *same* post-playbook
# base world: the director draws exclusively from the 0xD5 overlay streams
# (plus the builder's topology stream, whose post-build state the snapshot
# captures), so overlays applied to a restored base are byte-identical to a
# from-scratch ``build_scenario_world`` — pinned by the fork-vs-scratch
# golden test across every attack family and defense.


def snapshot_base_state(builder) -> dict:
    """The builder state a director needs beyond the world's archives.

    JSON-serializable, so base cache entries persist it as a sidecar:
    the address-space carver cursor, the ASN/SBL id cursors, the RIR
    free-pool layout, and the topology RNG state as advanced by the
    base build (the one base stream the director also consumes, via
    ``attach_edge_network`` / ``path_from_core``).
    """
    return {
        "carver_cursor": builder.carver._cursor,
        "asn_cursor": builder._asn_cursor,
        "sbl_cursor": builder._sbl_cursor,
        "pool_blocks": {
            rir: [block.start, block.end]
            for rir, block in builder._pool_blocks.items()
        },
        "pool_top_cursor": dict(builder._pool_top_cursor),
        "topology_rng_state": builder.topology._rng.bit_generator.state,
    }


def build_base_world(base, *, jobs: int = 1, instrumentation=None):
    """Build the post-playbook base world one ``WorldScale`` describes.

    Returns ``(world, state)``: the finished base (no overlays) plus
    the :func:`snapshot_base_state` dict that lets
    :func:`fork_scenario_world` restore a builder around any fork of
    it.  The build is exactly the base portion of
    :func:`build_scenario_world`, so the pair is shareable across every
    scenario with the same base.
    """
    from ..synth.builder import WorldBuilder

    builder = WorldBuilder(
        base.to_config(), jobs=jobs, instrumentation=instrumentation
    )
    world = builder.build(
        scenario_stages=(
            (
                "playbooks",
                lambda: apply_playbooks(builder, PAPER_PLAYBOOKS),
            ),
        )
    )
    return world, snapshot_base_state(builder)


def _restore_builder(builder, world, state: dict) -> None:
    """Point a fresh builder at a forked world + snapshot state.

    The builder's stores are replaced by the fork's, its cursors and
    pool layout restored from the snapshot, its peer-derived id sets
    rederived from the (shared) peer registry, and its topology RNG
    fast-forwarded to the post-build state — after which a director
    behaves exactly as if the builder had just finished the base build.
    """
    from ..net.prefix import AddressRange

    builder.peers = world.peers
    builder.bgp = world.bgp
    builder.resources = world.resources
    builder.irr = world.irr
    builder.roas = world.roas
    builder.drop = world.drop
    builder.sbl = world.sbl
    builder.manual_overrides = world.manual_overrides
    builder.truth = world.truth
    builder.carver._cursor = int(state["carver_cursor"])
    builder._asn_cursor = int(state["asn_cursor"])
    builder._sbl_cursor = int(state["sbl_cursor"])
    builder._pool_blocks = {
        rir: AddressRange(int(start), int(end))
        for rir, (start, end) in state["pool_blocks"].items()
    }
    builder._pool_top_cursor = {
        rir: int(cursor)
        for rir, cursor in state["pool_top_cursor"].items()
    }
    builder._filtering_ids = frozenset(
        peer.peer_id for peer in world.peers.peers() if peer.filters_drop
    )
    builder._full_table_ids = world.peers.full_table_peer_ids()
    builder._all_observers = world.peers.peer_ids()
    builder.topology._rng.bit_generator.state = state["topology_rng_state"]


def fork_scenario_world(
    scenario: Scenario,
    base_world,
    base_state: dict,
    *,
    instrumentation=None,
):
    """Apply a scenario's overlays to a fork of a shared base world.

    ``base_world`` / ``base_state`` come from :func:`build_base_world`
    (or a base cache entry); the base is never mutated, so one loaded
    base serves any number of cells.  Cost is O(overlay): the fork
    clones only the director-touched tables and the fresh builder
    regenerates just the transit core (70 nodes).  Fault site
    ``base.fork`` fails the forking cell without touching the base.
    """
    from ..runtime.faults import fault_point
    from ..synth.builder import WorldBuilder

    fault_point("base.fork", instrumentation=instrumentation)
    world = base_world.fork()
    world.config = scenario.base.to_config()
    builder = WorldBuilder(world.config, instrumentation=instrumentation)
    _restore_builder(builder, world, base_state)
    director = ScenarioDirector(builder, scenario)
    with builder.instrumentation.stage("scenario-overlays", group="build"):
        world.truth.scenario = director.apply()
    return world
