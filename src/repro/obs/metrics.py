"""Metrics: counters, gauges, histograms, and Prometheus exposition.

The other half of the observability layer: where spans answer "where
did *this run* spend its time", metrics answer "what has *this process*
done so far" — cache hits, fault trips, requests served, latency
distributions — in a form a scraper understands.

Zero-dependency by design: a :class:`MetricsRegistry` holds named
metrics (created get-or-create, shared freely across threads), and
:meth:`MetricsRegistry.expose` renders the standard Prometheus text
format (version 0.0.4), which is what ``GET /metrics`` on
``repro-drop serve`` returns.

Naming follows the convention documented in ``docs/architecture.md``:
``repro_<subsystem>_<name>_<unit>`` — e.g.
``repro_cache_hits_total``, ``repro_server_request_seconds`` — and the
registry enforces the ``repro_`` prefix so dialects cannot regrow.
Histograms use fixed log-scale buckets (half-decade steps from 1 µs to
100 s by default), so latency series are comparable across subsystems
without per-site tuning.
"""

from __future__ import annotations

import math
import re
import threading
from typing import Iterator, Mapping

__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
]

#: Metric and label names the exposition format (and this registry) accept.
_NAME_RE = re.compile(r"^repro_[a-z][a-z0-9_]*$")
_LABEL_RE = re.compile(r"^[a-z][a-z0-9_]*$")

#: Fixed log-scale histogram bounds: half-decade steps, 1 µs .. 100 s.
DEFAULT_BUCKETS: tuple[float, ...] = tuple(
    round(10.0 ** (exponent / 2), 12) for exponent in range(-12, 5)
)


def _escape(value: str) -> str:
    """Escape a label value per the exposition format."""
    return (
        value.replace("\\", "\\\\").replace("\n", "\\n").replace('"', '\\"')
    )


def _format_value(value: float) -> str:
    """Render a sample value: integers without a trailing ``.0``."""
    if value == math.inf:
        return "+Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _labels_key(
    label_names: tuple[str, ...], labels: Mapping[str, str]
) -> tuple[str, ...]:
    if set(labels) != set(label_names):
        raise ValueError(
            f"expected labels {sorted(label_names)}, got {sorted(labels)}"
        )
    return tuple(str(labels[name]) for name in label_names)


def _render_labels(
    label_names: tuple[str, ...],
    key: tuple[str, ...],
    extra: tuple[tuple[str, str], ...] = (),
) -> str:
    pairs = list(zip(label_names, key)) + list(extra)
    if not pairs:
        return ""
    body = ",".join(f'{name}="{_escape(value)}"' for name, value in pairs)
    return "{" + body + "}"


class _Metric:
    """Shared plumbing: name/help/labels validation and child lookup."""

    kind = "untyped"

    def __init__(
        self, name: str, help: str, label_names: tuple[str, ...]
    ) -> None:
        if not _NAME_RE.match(name):
            raise ValueError(
                f"metric name {name!r} does not match the "
                "repro_<subsystem>_<name>_<unit> convention"
            )
        for label in label_names:
            if not _LABEL_RE.match(label):
                raise ValueError(f"bad label name {label!r}")
        self.name = name
        self.help = help
        self.label_names = tuple(label_names)
        self._lock = threading.Lock()

    def _key(self, labels: Mapping[str, str]) -> tuple[str, ...]:
        return _labels_key(self.label_names, labels)


class Counter(_Metric):
    """A monotonically increasing count (events, errors, bytes)."""

    kind = "counter"

    def __init__(self, name, help="", label_names=()):
        super().__init__(name, help, tuple(label_names))
        self._values: dict[tuple[str, ...], float] = {}

    def inc(self, amount: float = 1, **labels: str) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up; got {amount}")
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0) + amount

    def value(self, **labels: str) -> float:
        return self._values.get(self._key(labels), 0)

    def samples(self) -> Iterator[str]:
        with self._lock:
            items = sorted(self._values.items())
        for key, value in items:
            labels = _render_labels(self.label_names, key)
            yield f"{self.name}{labels} {_format_value(value)}"


class Gauge(_Metric):
    """A value that goes up and down (sizes, in-flight counts, flags)."""

    kind = "gauge"

    def __init__(self, name, help="", label_names=()):
        super().__init__(name, help, tuple(label_names))
        self._values: dict[tuple[str, ...], float] = {}

    def set(self, value: float, **labels: str) -> None:
        with self._lock:
            self._values[self._key(labels)] = float(value)

    def inc(self, amount: float = 1, **labels: str) -> None:
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0) + amount

    def dec(self, amount: float = 1, **labels: str) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: str) -> float:
        return self._values.get(self._key(labels), 0)

    def samples(self) -> Iterator[str]:
        with self._lock:
            items = sorted(self._values.items())
        for key, value in items:
            labels = _render_labels(self.label_names, key)
            yield f"{self.name}{labels} {_format_value(value)}"


class Histogram(_Metric):
    """A distribution over fixed log-scale buckets (latencies, sizes).

    Cumulative bucket counts plus ``_sum``/``_count``, exactly as the
    Prometheus text format specifies, so ``histogram_quantile`` works
    on the scraped series unchanged.
    """

    kind = "histogram"

    def __init__(
        self,
        name,
        help="",
        label_names=(),
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ):
        super().__init__(name, help, tuple(label_names))
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.bounds = bounds
        #: per-label-set: ([per-bucket counts..., overflow], sum, count)
        self._series: dict[tuple[str, ...], list] = {}

    def observe(self, value: float, **labels: str) -> None:
        key = self._key(labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = [[0] * (len(self.bounds) + 1), 0.0, 0]
                self._series[key] = series
            counts, _, _ = series
            for position, bound in enumerate(self.bounds):
                if value <= bound:
                    counts[position] += 1
                    break
            else:
                counts[-1] += 1
            series[1] += value
            series[2] += 1

    def count(self, **labels: str) -> int:
        series = self._series.get(self._key(labels))
        return 0 if series is None else series[2]

    def sum(self, **labels: str) -> float:
        series = self._series.get(self._key(labels))
        return 0.0 if series is None else series[1]

    def samples(self) -> Iterator[str]:
        with self._lock:
            items = sorted(
                (key, [list(series[0]), series[1], series[2]])
                for key, series in self._series.items()
            )
        for key, (counts, total, count) in items:
            cumulative = 0
            for bound, bucket in zip(self.bounds, counts):
                cumulative += bucket
                labels = _render_labels(
                    self.label_names, key, (("le", _format_value(bound)),)
                )
                yield f"{self.name}_bucket{labels} {cumulative}"
            labels = _render_labels(
                self.label_names, key, (("le", "+Inf"),)
            )
            yield f"{self.name}_bucket{labels} {count}"
            plain = _render_labels(self.label_names, key)
            yield f"{self.name}_sum{plain} {_format_value(total)}"
            yield f"{self.name}_count{plain} {count}"


class MetricsRegistry:
    """A named set of metrics with get-or-create access and exposition.

    One registry per run (the CLI threads it everywhere through
    :class:`~repro.obs.instrument.Instrumentation`); the serving daemon
    exposes its registry at ``GET /metrics``.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, _Metric] = {}

    def _get_or_create(self, cls, name, help, label_names, **kwargs):
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls) or existing.label_names != tuple(
                    label_names
                ):
                    raise ValueError(
                        f"metric {name!r} already registered as a "
                        f"{existing.kind} with labels {existing.label_names}"
                    )
                return existing
            metric = cls(name, help=help, label_names=label_names, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name, help="", labels=()) -> Counter:
        return self._get_or_create(Counter, name, help, tuple(labels))

    def gauge(self, name, help="", labels=()) -> Gauge:
        return self._get_or_create(Gauge, name, help, tuple(labels))

    def histogram(
        self, name, help="", labels=(), buckets=DEFAULT_BUCKETS
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, help, tuple(labels), buckets=buckets
        )

    def get(self, name: str):
        """The registered metric named ``name``, or None."""
        return self._metrics.get(name)

    def __iter__(self) -> Iterator[_Metric]:
        with self._lock:
            ordered = sorted(self._metrics.items())
        return iter(metric for _, metric in ordered)

    def expose(self) -> str:
        """The whole registry in Prometheus text format (0.0.4)."""
        lines: list[str] = []
        for metric in self:
            if metric.help:
                lines.append(f"# HELP {metric.name} {metric.help}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            lines.extend(metric.samples())
        return "\n".join(lines) + "\n"
