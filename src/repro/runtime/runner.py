"""Parallel experiment runner.

Fans the :data:`~repro.reporting.experiments.EXPERIMENTS` registry out
over a :class:`~concurrent.futures.ProcessPoolExecutor`.  The expensive
shared state (the world and its entry view) is established once: on
POSIX the workers fork it from the parent; under spawn/forkserver the
initializer reloads the world from the cache entry (or rebuilds it from
the config), so results are identical either way.

Guarantees:

* **deterministic ordering** — reports come back in the order the
  experiment ids were requested, regardless of completion order;
* **error isolation** — one failing experiment becomes an
  :class:`ExperimentFailure` in the outcome instead of killing the run;
* **byte-identical output** — a parallel run renders exactly what the
  serial run renders (asserted by the golden regression tests).

``--jobs N`` on the CLI and the ``REPRO_JOBS`` environment variable
select the worker count; ``jobs <= 1`` runs serially in-process.
"""

from __future__ import annotations

import os
import traceback
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from time import perf_counter

from ..analysis import load_entries
from ..analysis.common import DropEntryView
from ..reporting import EXPERIMENTS, ExperimentReport, run_experiment
from ..synth import ScenarioConfig, World, build_world, load_world
from .instrument import Instrumentation

__all__ = [
    "JOBS_ENV",
    "ExperimentFailure",
    "RunOutcome",
    "default_jobs",
    "run_experiments",
]

JOBS_ENV = "REPRO_JOBS"


def default_jobs() -> int:
    """The worker count from ``$REPRO_JOBS`` (default 1 = serial)."""
    raw = os.environ.get(JOBS_ENV, "")
    try:
        return max(1, int(raw))
    except ValueError:
        return 1


@dataclass(frozen=True, slots=True)
class ExperimentFailure:
    """One experiment that raised instead of reporting."""

    exp_id: str
    error: str


@dataclass(frozen=True, slots=True)
class RunOutcome:
    """Every requested experiment, resolved to a report or a failure."""

    reports: tuple[ExperimentReport, ...]
    failures: tuple[ExperimentFailure, ...]

    @property
    def ok(self) -> bool:
        """True when every experiment produced a report."""
        return not self.failures


#: Worker-process state: ``(world, entries)``.  Set in the parent before
#: the pool is created so forked workers inherit it without reloading.
_WORKER_STATE: tuple[World, list[DropEntryView]] | None = None


def _init_worker(
    directory: str | None, config: ScenarioConfig | None
) -> None:
    global _WORKER_STATE
    if _WORKER_STATE is not None:  # forked: inherited from the parent
        return
    if directory is not None:
        world = load_world(Path(directory))
        if config is not None:
            world.config = config
    elif config is not None:
        world = build_world(config)
    else:  # pragma: no cover - guarded by run_experiments
        raise RuntimeError("worker has neither a world directory nor a config")
    _WORKER_STATE = (world, load_entries(world))


def _run_one(exp_id: str):
    assert _WORKER_STATE is not None
    world, entries = _WORKER_STATE
    started = perf_counter()
    try:
        report = run_experiment(world, exp_id, entries)
        return exp_id, report, perf_counter() - started, None
    except Exception:
        return exp_id, None, perf_counter() - started, traceback.format_exc()


def run_experiments(
    world: World,
    exp_ids: list[str],
    *,
    jobs: int = 1,
    directory: Path | None = None,
    entries: list[DropEntryView] | None = None,
    instrumentation: Instrumentation | None = None,
) -> RunOutcome:
    """Run ``exp_ids`` against ``world``, serially or in parallel.

    ``directory`` (a cache entry or an archives directory holding this
    world) lets spawned workers load the world when fork inheritance is
    unavailable.  Per-experiment wall times land in ``instrumentation``
    under the ``"experiment"`` group.
    """
    global _WORKER_STATE
    instr = instrumentation or Instrumentation()
    exp_ids = list(exp_ids)
    unknown = [e for e in exp_ids if e not in EXPERIMENTS]
    if unknown:
        raise KeyError(f"unknown experiment(s): {', '.join(unknown)}")
    if entries is None:
        with instr.stage("load-entries", group="run"):
            entries = load_entries(world)

    results: dict[str, tuple]
    if jobs <= 1 or len(exp_ids) <= 1:
        _WORKER_STATE = (world, entries)
        try:
            results = {e: _run_one(e) for e in exp_ids}
        finally:
            _WORKER_STATE = None
    else:
        _WORKER_STATE = (world, entries)
        try:
            with ProcessPoolExecutor(
                max_workers=min(jobs, len(exp_ids)),
                initializer=_init_worker,
                initargs=(
                    str(directory) if directory is not None else None,
                    world.config,
                ),
            ) as pool:
                futures = {e: pool.submit(_run_one, e) for e in exp_ids}
                results = {}
                for exp_id in exp_ids:
                    try:
                        results[exp_id] = futures[exp_id].result()
                    except Exception as error:
                        # The worker died outright (e.g. a broken pool);
                        # isolate it like an in-experiment failure.
                        results[exp_id] = (
                            exp_id, None, 0.0, f"{type(error).__name__}: {error}"
                        )
        finally:
            _WORKER_STATE = None

    reports: list[ExperimentReport] = []
    failures: list[ExperimentFailure] = []
    for exp_id in exp_ids:
        _, report, seconds, error = results[exp_id]
        instr.record(exp_id, seconds, group="experiment")
        if error is not None:
            failures.append(ExperimentFailure(exp_id, error))
        else:
            reports.append(report)
    return RunOutcome(tuple(reports), tuple(failures))
