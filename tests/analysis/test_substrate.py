"""The analysis substrate: identity with the direct paths, persistence.

The substrate exists purely as a fast path — every answer it serves
must equal what the direct store-walking code computes.  These tests
pin that identity (batched Figure 5 grid vs per-day walks, event-table
visibility vs raw BGP store, ``run_all`` with vs without the substrate)
and exercise the persistence discipline copied from the query index:
header verification, torn-file eviction, injected-fault recovery.
"""

import json
from datetime import timedelta

import pytest

from repro.analysis import DropEntryView, load_entries
from repro.analysis.roa_status import analyze_roa_status, default_sample_days
from repro.analysis.substrate import (
    SUBSTRATE_FILENAME,
    AnalysisSubstrate,
    SubstrateLoadError,
    compute_roa_status,
    load_substrate_file,
    save_substrate_file,
)
from repro.bgp.visibility import (
    fraction_observing,
    visibility_profile,
    withdrawn_within,
)
from repro.reporting.experiments import EXPERIMENTS, run_all
from repro.runtime import Instrumentation, WorldCache, injected


@pytest.fixture(scope="module")
def stored(tmp_path_factory):
    from repro.synth import ScenarioConfig

    cache = WorldCache(tmp_path_factory.mktemp("substrate-cache"))
    return cache.fetch(ScenarioConfig.tiny())


@pytest.fixture(scope="module")
def world(stored):
    return stored.world


@pytest.fixture(scope="module")
def roa_status(world):
    return compute_roa_status(world)


class TestBatchedIdentity:
    def test_matches_direct_walk(self, world, roa_status):
        """Acceptance: the batched day grid == the per-day store walks."""
        assert roa_status == analyze_roa_status(world)

    def test_matches_direct_walk_on_custom_days(self, world):
        days = default_sample_days(world)[::3]
        assert compute_roa_status(world, days) == analyze_roa_status(
            world, days
        )


class TestVisibilityIdentity:
    """Both serving paths — event tables and raw-store fallback — agree.

    ``with_index=True`` pre-loads the query index so the helpers answer
    from the interned event tables; ``False`` leaves the substrate
    index-free, exercising the raw-store path report runs use.
    """

    @pytest.fixture(params=[True, False], ids=["event-tables", "raw-store"])
    def substrate(self, request, world):
        substrate = AnalysisSubstrate(world)
        if request.param:
            substrate.query_index()
        return substrate

    def test_fraction_observing(self, substrate, world):
        day = world.window.end
        for prefix in world.drop.unique_prefixes()[::5]:
            assert substrate.fraction_observing(
                prefix, day
            ) == fraction_observing(world.bgp, world.peers, prefix, day)

    def test_visibility_profile_and_withdrawal(self, substrate, world):
        for entry in load_entries(world)[::7]:
            assert substrate.visibility_profile(
                entry.prefix, entry.listed
            ) == visibility_profile(
                world.bgp, world.peers, entry.prefix, entry.listed
            )
            assert substrate.withdrawn_within(
                entry.prefix, entry.listed
            ) == withdrawn_within(world.bgp, entry.prefix, entry.listed)

    def test_announced_on(self, substrate, world):
        day = world.window.start + timedelta(days=world.window.days // 2)
        for prefix in list(world.bgp.prefixes())[::31]:
            assert substrate.announced_on(prefix, day) == \
                world.bgp.is_announced(prefix, day, include_covering=False)

    def test_warm_leaves_index_lazy(self, world):
        substrate = AnalysisSubstrate(world)
        substrate.warm()
        assert substrate._roa_status is not None
        assert substrate._index is None


class TestRunAllIdentity:
    def test_with_and_without_substrate(self, world):
        """Acceptance: run_all output identical with/without substrate."""
        entries = load_entries(world)
        with_substrate = run_all(world, entries=entries)
        without = [
            EXPERIMENTS[exp_id](world, entries, None)
            for exp_id in EXPERIMENTS
        ]
        assert with_substrate == without

    def test_with_and_without_persisted_cache(self, world, stored, tmp_path):
        """... and identical again when the substrate comes from disk."""
        entries = load_entries(world)
        cold = AnalysisSubstrate(world, directory=tmp_path, key=stored.key)
        cold_reports = run_all(world, entries=entries, substrate=cold)
        assert (tmp_path / SUBSTRATE_FILENAME).exists()
        warm = AnalysisSubstrate(world, directory=tmp_path, key=stored.key)
        assert run_all(
            world, entries=entries, substrate=warm
        ) == cold_reports


class TestPersistence:
    def test_round_trip_is_equal(self, roa_status, tmp_path):
        instr = Instrumentation()
        path = save_substrate_file(
            roa_status, tmp_path, key="abc123", instrumentation=instr
        )
        assert path == tmp_path / SUBSTRATE_FILENAME
        loaded = load_substrate_file(
            tmp_path, expected_key="abc123", instrumentation=instr
        )
        assert loaded == roa_status
        assert instr.counters["substrate_stores"] == 1
        assert instr.counters["substrate_loads"] == 1

    def test_no_staging_files_left_behind(self, roa_status, tmp_path):
        from repro.store.substrate import STORE_SUBSTRATE_FILENAME

        save_substrate_file(roa_status, tmp_path)
        assert sorted(p.name for p in tmp_path.iterdir()) == sorted(
            [STORE_SUBSTRATE_FILENAME, SUBSTRATE_FILENAME]
        )

    def _tamper(self, directory, **fields):
        path = directory / SUBSTRATE_FILENAME
        raw = json.loads(path.read_text())
        raw.update(fields)
        path.write_text(json.dumps(raw))

    def test_wrong_format_rejected(self, roa_status, tmp_path):
        save_substrate_file(roa_status, tmp_path)
        self._tamper(tmp_path, format=999)
        with pytest.raises(SubstrateLoadError, match="format"):
            load_substrate_file(tmp_path)

    def test_wrong_generator_rejected(self, roa_status, tmp_path):
        save_substrate_file(roa_status, tmp_path)
        self._tamper(tmp_path, generator="somebody-else")
        with pytest.raises(SubstrateLoadError, match="generator"):
            load_substrate_file(tmp_path)

    def test_foreign_key_rejected(self, roa_status, tmp_path):
        save_substrate_file(roa_status, tmp_path, key="abc123")
        with pytest.raises(SubstrateLoadError, match="key"):
            load_substrate_file(tmp_path, expected_key="deadbeef")

    def test_empty_expected_key_skips_check(self, roa_status, tmp_path):
        save_substrate_file(roa_status, tmp_path, key="abc123")
        assert load_substrate_file(tmp_path) == roa_status

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(OSError):
            load_substrate_file(tmp_path)


class TestEvictionAndRecovery:
    def test_torn_file_is_evicted_and_rebuilt(
        self, world, roa_status, tmp_path
    ):
        from repro.store.substrate import STORE_SUBSTRATE_FILENAME

        save_substrate_file(roa_status, tmp_path)
        # Tear both persisted artifacts: the binary store is preferred
        # at load, so a healthy ``.bin`` would mask a torn JSON file.
        for name in (STORE_SUBSTRATE_FILENAME, SUBSTRATE_FILENAME):
            path = tmp_path / name
            path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
        instr = Instrumentation()
        substrate = AnalysisSubstrate(
            world, directory=tmp_path, instrumentation=instr
        )
        assert substrate.roa_status() == roa_status
        assert instr.counters["store_evictions"] == 1
        assert instr.counters["substrate_evictions"] == 1
        assert instr.counters["substrate_builds"] == 1
        # ... and the healthy replacement was re-persisted.
        assert instr.counters["substrate_stores"] == 1
        assert load_substrate_file(tmp_path) == roa_status

    def test_stale_generator_is_evicted_and_rebuilt(
        self, world, roa_status, tmp_path
    ):
        from repro.store.substrate import STORE_SUBSTRATE_FILENAME

        save_substrate_file(roa_status, tmp_path)
        (tmp_path / STORE_SUBSTRATE_FILENAME).unlink()
        path = tmp_path / SUBSTRATE_FILENAME
        raw = json.loads(path.read_text())
        raw["generator"] = "v0-prehistoric"
        path.write_text(json.dumps(raw))
        instr = Instrumentation()
        substrate = AnalysisSubstrate(
            world, directory=tmp_path, instrumentation=instr
        )
        assert substrate.roa_status() == roa_status
        assert instr.counters["substrate_evictions"] == 1
        assert instr.counters["substrate_builds"] == 1

    def test_load_fault_is_evicted_and_rebuilt(
        self, world, roa_status, tmp_path
    ):
        """Both load sites faulted at once are survived silently."""
        save_substrate_file(roa_status, tmp_path)
        instr = Instrumentation()
        with injected("truncate@substrate.load,truncate@store.load"):
            substrate = AnalysisSubstrate(
                world, directory=tmp_path, instrumentation=instr
            )
            assert substrate.roa_status() == roa_status
        assert instr.counters["store_evictions"] == 1
        assert instr.counters["substrate_evictions"] == 1
        assert instr.counters["substrate_builds"] == 1

    def test_save_fault_degrades_to_unpersisted(self, roa_status, tmp_path):
        instr = Instrumentation()
        with injected("io-error@substrate.save"):
            with pytest.warns(RuntimeWarning, match="substrate store failed"):
                assert save_substrate_file(
                    roa_status, tmp_path, instrumentation=instr
                ) is None
        assert instr.counters["substrate_store_errors"] == 1
        assert not (tmp_path / SUBSTRATE_FILENAME).exists()

    def test_no_directory_builds_in_memory(self, world):
        instr = Instrumentation()
        substrate = AnalysisSubstrate(world, instrumentation=instr)
        substrate.roa_status()
        assert instr.counters["substrate_builds"] == 1
        assert "substrate_stores" not in instr.counters

    def test_memoized_after_first_build(self, world):
        instr = Instrumentation()
        substrate = AnalysisSubstrate(world, instrumentation=instr)
        first = substrate.roa_status()
        assert substrate.roa_status() is first
        assert instr.counters["substrate_builds"] == 1


class TestEntryShape:
    def test_entries_are_views(self, world):
        entries = load_entries(world)
        assert entries and isinstance(entries[0], DropEntryView)
