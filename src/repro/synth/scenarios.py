"""Legacy home of the paper's scenario content (now a thin shim).

The generation code moved to :mod:`repro.scenarios.playbooks`, where
the same stages are organized as composable DSL playbooks.  This module
re-exports the legacy entry points (and the paper's cast of constants)
so existing callers keep working; the scenario golden test pins that
the DSL path produces byte-identical worlds.
"""

from __future__ import annotations

from ..scenarios.playbooks import (  # noqa: F401
    CASE_DROP_DAY,
    CASE_PREFIX,
    HIJACK_SECOND,
    HIJACK_TRANSIT,
    HISTORIC_ORIGIN_2018,
    HISTORIC_PAIR,
    HISTORIC_PAIR_2,
    OPERATOR_AS0_PREFIX,
    OWNER_ASN,
    OWNER_TRANSIT,
    build_case_study,
    build_drop_population,
)

__all__ = [
    "CASE_DROP_DAY",
    "CASE_PREFIX",
    "HIJACK_SECOND",
    "HIJACK_TRANSIT",
    "HISTORIC_ORIGIN_2018",
    "HISTORIC_PAIR",
    "HISTORIC_PAIR_2",
    "OPERATOR_AS0_PREFIX",
    "OWNER_ASN",
    "OWNER_TRANSIT",
    "build_case_study",
    "build_drop_population",
]
