"""Unit tests for repro.rirstats.registry."""

from datetime import date

import pytest

from repro.net.prefix import IPv4Prefix
from repro.net.timeline import DateWindow
from repro.rirstats.registry import Allocation, ResourceRegistry

P16 = IPv4Prefix.parse("103.10.0.0/16")
P20 = IPv4Prefix.parse("103.10.0.0/20")
OUTSIDE = IPv4Prefix.parse("8.8.8.0/24")


@pytest.fixture
def registry():
    reg = ResourceRegistry()
    reg.delegate_to_rir("APNIC", "103.0.0.0/8")
    reg.delegate_to_rir("ARIN", "8.0.0.0/8")
    reg.allocate(P16, "APNIC", date(2015, 1, 1), holder="examplenet",
                 country="AU")
    reg.allocate("103.20.0.0/16", "APNIC", date(2019, 1, 1),
                 holder="spamco")
    reg.allocate("8.8.0.0/16", "ARIN", date(2000, 1, 1), holder="bigco",
                 legacy=True)
    return reg


class TestAllocationLifetime:
    def test_active_on(self):
        a = Allocation(P16.to_range(), "APNIC", "x", date(2020, 1, 1),
                       date(2021, 1, 1))
        assert a.active_on(date(2020, 6, 1))
        assert not a.active_on(date(2021, 1, 1))
        assert not a.active_on(date(2019, 12, 31))

    def test_end_before_start_rejected(self):
        with pytest.raises(ValueError):
            Allocation(P16.to_range(), "APNIC", "x", date(2020, 1, 1),
                       date(2019, 1, 1))


class TestStatusQueries:
    def test_allocated_prefix(self, registry):
        status = registry.status_of(P20, date(2020, 1, 1))
        assert status.is_allocated
        assert status.rir == "APNIC"
        assert status.holder == "examplenet"
        assert status.since == date(2015, 1, 1)

    def test_before_allocation_available(self, registry):
        status = registry.status_of(P20, date(2010, 1, 1))
        assert status.status == "available"
        assert status.rir == "APNIC"
        assert status.is_unallocated

    def test_unknown_outside_all_pools(self, registry):
        status = registry.status_of(
            IPv4Prefix.parse("203.0.113.0/24"), date(2020, 1, 1)
        )
        assert status.status == "unknown"
        assert status.is_unallocated

    def test_legacy_flag(self, registry):
        assert registry.status_of(OUTSIDE, date(2020, 1, 1)).legacy

    def test_is_unallocated(self, registry):
        assert registry.is_unallocated(
            IPv4Prefix.parse("103.99.0.0/16"), date(2020, 1, 1)
        )
        assert not registry.is_unallocated(P20, date(2020, 1, 1))

    def test_managing_rir(self, registry):
        assert registry.managing_rir(P16) == "APNIC"
        assert registry.managing_rir(OUTSIDE) == "ARIN"
        assert registry.managing_rir(
            IPv4Prefix.parse("203.0.113.0/24")
        ) is None


class TestSpaceAccounting:
    def test_allocated_space(self, registry):
        space = registry.allocated_space(date(2020, 1, 1))
        assert space.contains(P16)
        assert space.contains("8.8.0.0/16")

    def test_allocated_space_by_rir(self, registry):
        apnic = registry.allocated_space(date(2020, 1, 1), "APNIC")
        assert apnic.contains(P16)
        assert not apnic.contains("8.8.0.0/16")

    def test_free_pool_shrinks_with_allocation(self, registry):
        before = registry.free_pool("APNIC", date(2014, 1, 1))
        after = registry.free_pool("APNIC", date(2020, 1, 1))
        assert before.num_addresses - after.num_addresses == 2 * 2**16

    def test_holders_of_space(self, registry):
        holders = registry.holders_of_space(date(2020, 1, 1))
        assert holders["examplenet"].contains(P16)
        assert "spamco" in holders


class TestDeallocation:
    def test_deallocate_closes_allocation(self, registry):
        closed = registry.deallocate(P16, date(2021, 6, 1))
        assert len(closed) == 1
        assert closed[0].end == date(2021, 6, 1)
        assert registry.is_unallocated(P20, date(2021, 7, 1))
        assert not registry.is_unallocated(P20, date(2021, 5, 1))

    def test_deallocate_nothing_active_raises(self, registry):
        with pytest.raises(ValueError):
            registry.deallocate("103.99.0.0/16", date(2020, 1, 1))

    def test_deallocations_in_window(self, registry):
        registry.deallocate(P16, date(2021, 6, 1))
        window = DateWindow(date(2021, 1, 1), date(2021, 12, 31))
        ended = registry.deallocations_in(window)
        assert len(ended) == 1
        assert ended[0].holder == "examplenet"

    def test_deallocated_by(self, registry):
        registry.deallocate(P16, date(2021, 6, 1))
        found = registry.deallocated_by(P20, date(2022, 1, 1))
        assert found is not None
        assert registry.deallocated_by(P20, date(2021, 1, 1)) is None
        # `after` bound: deallocation must be after the given day.
        assert registry.deallocated_by(
            P20, date(2022, 1, 1), after=date(2021, 7, 1)
        ) is None

    def test_reallocation_after_deallocation(self, registry):
        registry.deallocate(P16, date(2021, 6, 1))
        registry.allocate(P16, "APNIC", date(2022, 1, 1), holder="newco")
        status = registry.status_of(P20, date(2022, 2, 1))
        assert status.holder == "newco"


class TestDelegatedSnapshots:
    def test_snapshot_contains_free_pool(self, registry):
        text = registry.snapshot_delegated(date(2020, 1, 1), "APNIC")
        assert "available" in text
        assert "103.10.0.0" in text

    def test_round_trip_through_snapshots(self, registry):
        registry.deallocate(P16, date(2021, 6, 1))
        days = [date(2020, 1, 1), date(2021, 6, 1), date(2022, 1, 1)]
        snapshots = []
        for day in days:
            for rir in ("APNIC", "ARIN"):
                snapshots.append((day, registry.snapshot_delegated(day, rir)))
        rebuilt = ResourceRegistry.from_delegated_snapshots(snapshots)
        # examplenet's allocation is closed on the snapshot day it vanished.
        ended = [a for a in rebuilt.allocations() if a.end is not None]
        assert len(ended) == 1
        assert ended[0].holder == "examplenet"
        assert ended[0].end == date(2021, 6, 1)
        # Original allocation dates survive via the in-file date field.
        assert ended[0].start == date(2015, 1, 1)
        # Still-active allocations survive too.
        holders = {a.holder for a in rebuilt.allocations()}
        assert holders == {"examplenet", "spamco", "bigco"}
