"""Figure 6: unallocated space on DROP vs RIR AS0 policy timeline."""

from repro.analysis import analyze_unallocated
from repro.rpki.as0 import rir_as0_policy_start


def bench_fig6_unallocated_timeline(benchmark, world, entries):
    result = benchmark(analyze_unallocated, world, entries)
    # Shape: 40 unallocated prefixes clustered on LACNIC and AFRINIC;
    # listings continue after the AS0 policies went live.
    assert result.total == 40
    assert result.count_for("LACNIC") == max(
        result.count_for(r) for r in ("AFRINIC", "APNIC", "ARIN",
                                      "LACNIC", "RIPE")
    )
    assert result.count_for("AFRINIC") >= 10
    assert result.after_policy_count > 0
    lacnic_start = rir_as0_policy_start("LACNIC")
    after_lacnic = [
        l for l in result.listings
        if l.region == "LACNIC" and l.listed >= lacnic_start
    ]
    assert all(l.after_region_as0 for l in after_lacnic)
