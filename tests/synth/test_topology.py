"""Tests for the AS-level topology substrate."""

import numpy as np
import pytest

from repro.synth.topology import AsTopology


@pytest.fixture
def topology():
    top = AsTopology.generate(np.random.default_rng(42))
    for asn in range(70_000, 70_040):
        top.attach_edge_network(asn)
    return top


class TestStructure:
    def test_tier1_clique_peers(self, topology):
        for a in topology.tier1:
            for b in topology.tier1:
                if a < b:
                    assert topology.graph[a][b]["rel"] == "p2p"

    def test_regionals_multihomed_to_tier1(self, topology):
        for asn in topology.regional:
            providers = topology.providers_of(asn)
            assert 2 <= len(providers) <= 3
            assert all(p in topology.tier1 for p in providers)

    def test_edge_networks_under_regionals(self, topology):
        providers = topology.providers_of(70_000)
        assert 1 <= len(providers) <= 2
        assert all(p in topology.regional for p in providers)

    def test_double_attach_rejected(self, topology):
        with pytest.raises(ValueError):
            topology.attach_edge_network(70_000)

    def test_contains(self, topology):
        assert 70_000 in topology
        assert 99_999 not in topology


class TestPaths:
    def test_path_ends_at_origin(self, topology):
        for asn in range(70_000, 70_020):
            path = topology.path_from_core(asn)
            assert path.origin == asn

    def test_path_starts_in_core(self, topology):
        for asn in range(70_000, 70_020):
            path = topology.path_from_core(asn)
            assert path.first_hop in topology.tier1

    def test_paths_are_valley_free(self, topology):
        for asn in range(70_000, 70_040):
            path = topology.path_from_core(asn)
            assert topology.is_valley_free(path), str(path)

    def test_unknown_origin_gets_synthetic_path(self, topology):
        path = topology.path_from_core(88_888)
        assert path.origin == 88_888
        assert len(path) == 3
        assert path.first_hop in topology.tier1

    def test_path_lengths_realistic(self, topology):
        lengths = {
            len(topology.path_from_core(asn))
            for asn in range(70_000, 70_040)
        }
        # Edge networks sit 3-4 hops from the core vantage.
        assert lengths <= {3, 4}


class TestValleyFreeChecker:
    def test_valley_rejected(self, topology):
        # Build a path that descends into an edge network then climbs
        # back out: customer as transit = a valley.
        edge = 70_000
        regionals = topology.providers_of(edge)
        if len(regionals) < 2:
            topology2 = AsTopology.generate(np.random.default_rng(1))
            regionals = []
            edge = 70_001
        from repro.bgp.messages import ASPath

        if len(regionals) >= 2:
            valley = ASPath.of(regionals[0], edge, regionals[1])
            assert not topology.is_valley_free(valley)

    def test_unknown_asn_rejected(self, topology):
        from repro.bgp.messages import ASPath

        assert not topology.is_valley_free(ASPath.of(1, 2, 3))

    def test_determinism(self):
        a = AsTopology.generate(np.random.default_rng(7))
        b = AsTopology.generate(np.random.default_rng(7))
        assert sorted(a.graph.edges()) == sorted(b.graph.edges())
