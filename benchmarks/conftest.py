"""Shared fixtures for the benchmark harness.

Benchmarks run against a session-scoped synthetic world.  The scale is
selected with ``REPRO_BENCH_SCALE`` (``tiny`` default, ``small``, or
``paper`` for the full 195.6K-prefix population used in EXPERIMENTS.md).
Every benchmark asserts the *shape* of the paper's result alongside the
timing, so a `--benchmark-only` run doubles as a reproduction check.
"""

import os

import pytest

from repro.analysis import load_entries
from repro.synth import ScenarioConfig, build_world

_SCALES = {
    "tiny": ScenarioConfig.tiny,
    "small": ScenarioConfig.small,
    "paper": ScenarioConfig.paper,
}


@pytest.fixture(scope="session")
def world():
    scale = os.environ.get("REPRO_BENCH_SCALE", "tiny")
    return build_world(_SCALES[scale]())


@pytest.fixture(scope="session")
def entries(world):
    return load_entries(world)
