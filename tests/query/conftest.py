"""Shared query-layer fixtures: one tiny world, one index, one engine.

The world is fetched through its own :class:`~repro.runtime.WorldCache`
(not the session's env cache) so index persistence tests own their cache
entry directory without racing the CLI tests.

Also home to the raw asyncio HTTP client the serving tests drive both
daemons with: :class:`AioClient` speaks enough HTTP/1.1 over a stream
pair to exercise keep-alive and pipelining, and :func:`fetch` wraps it
for one-shot requests.  The tests deliberately avoid ``urllib`` here —
byte-for-byte contract parity means asserting on the exact body bytes
and headers, with the identical request bytes sent to both servers.
"""

import asyncio
from typing import NamedTuple

import pytest

from repro.query import QueryEngine, build_index
from repro.runtime import WorldCache
from repro.synth import ScenarioConfig


class Reply(NamedTuple):
    """One parsed HTTP response: status, lowercase headers, body bytes."""

    status: int
    headers: dict
    body: bytes


def request_bytes(method: str, target: str, body: bytes | None = None) -> bytes:
    """The raw request both servers are sent (identical bytes)."""
    head = f"{method} {target} HTTP/1.1\r\nHost: test\r\n"
    if body is not None or method == "POST":
        head += f"Content-Length: {len(body or b'')}\r\n"
    return (head + "\r\n").encode("latin-1") + (body or b"")


async def _read_reply(reader: asyncio.StreamReader) -> Reply:
    head = await reader.readuntil(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    status = int(lines[0].split(" ")[1])
    headers: dict = {}
    for line in lines[1:]:
        name, sep, value = line.partition(":")
        if sep:
            headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length") or 0)
    body = await reader.readexactly(length) if length else b""
    return Reply(status, headers, body)


class AioClient:
    """A raw keep-alive HTTP/1.1 client over one asyncio connection."""

    def __init__(self, reader, writer) -> None:
        self.reader = reader
        self.writer = writer

    @classmethod
    async def open(cls, address) -> "AioClient":
        host, port = address
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    async def request(
        self, method: str, target: str, body: bytes | None = None
    ) -> Reply:
        self.writer.write(request_bytes(method, target, body))
        await self.writer.drain()
        return await _read_reply(self.reader)

    async def pipeline(self, requests) -> list:
        """Write every request before reading any response (HTTP
        pipelining); returns the replies in request order."""
        for method, target, body in requests:
            self.writer.write(request_bytes(method, target, body))
        await self.writer.drain()
        return [await _read_reply(self.reader) for _ in requests]

    async def close(self) -> None:
        self.writer.close()
        try:
            await self.writer.wait_closed()
        except (ConnectionError, OSError):
            pass


def fetch(address, method: str, target: str, body: bytes | None = None) -> Reply:
    """One request over a fresh connection, from synchronous test code."""

    async def go() -> Reply:
        client = await AioClient.open(address)
        try:
            return await client.request(method, target, body)
        finally:
            await client.close()

    return asyncio.run(go())


@pytest.fixture(scope="package")
def config():
    return ScenarioConfig.tiny()


@pytest.fixture(scope="package")
def stored(tmp_path_factory, config):
    """The cached world plus its entry directory and content key."""
    cache = WorldCache(tmp_path_factory.mktemp("query-cache"))
    return cache.fetch(config)


@pytest.fixture(scope="package")
def world(stored):
    return stored.world


@pytest.fixture(scope="package")
def index(world, stored):
    return build_index(world, key=stored.key)


@pytest.fixture(scope="package")
def engine(index):
    return QueryEngine(index)
