"""Unit tests for the scenario DSL spec layer.

The DSL's contract is canonical serialization: equal scenarios hash
equal, JSON round-trips reproduce the hash, display names stay out of
identity, and malformed payloads are rejected up front with the
``scenarios.spec`` error code.
"""

import json

import pytest

from repro.scenarios import (
    ATTACK_FAMILIES,
    DEFENSE_KINDS,
    As0Misconfig,
    DropSubscription,
    MaxLengthAbuse,
    PrefixHijack,
    RoaDowngrade,
    RouteServerFiltering,
    RovDeployment,
    Scenario,
    ScenarioSpecError,
    SubPrefixHijack,
    WorldScale,
)


def _scenario(**overrides):
    base = dict(
        name="unit",
        base=WorldScale(scale="tiny", seed=9),
        attacks=(PrefixHijack(count=2),),
        defenses=(RovDeployment(rate=0.5),),
    )
    base.update(overrides)
    return Scenario(**base)


class TestRegistries:
    def test_all_five_families_registered(self):
        assert set(ATTACK_FAMILIES) == {
            "prefix-hijack",
            "subprefix-hijack",
            "roa-downgrade",
            "maxlength-abuse",
            "as0-misconfig",
        }

    def test_all_three_defense_kinds_registered(self):
        assert set(DEFENSE_KINDS) == {
            "rov",
            "route-server",
            "drop-subscription",
        }

    def test_registry_classes_roundtrip_family_names(self):
        for family, cls in ATTACK_FAMILIES.items():
            assert cls.family == family
        for kind, cls in DEFENSE_KINDS.items():
            assert cls.kind == kind


class TestValidation:
    def test_unknown_scale_rejected(self):
        with pytest.raises(ScenarioSpecError):
            WorldScale(scale="galactic")

    def test_rate_out_of_range_rejected(self):
        with pytest.raises(ScenarioSpecError):
            RovDeployment(rate=1.5)
        with pytest.raises(ScenarioSpecError):
            DropSubscription(rate=-0.1)

    def test_attack_count_must_be_positive(self):
        with pytest.raises(ScenarioSpecError):
            PrefixHijack(count=0)

    def test_stale_days_must_be_positive(self):
        with pytest.raises(ScenarioSpecError):
            RoaDowngrade(stale_days=0)

    def test_maxlength_bounds(self):
        with pytest.raises(ScenarioSpecError):
            MaxLengthAbuse(max_length=33)

    def test_duplicate_defense_kinds_rejected(self):
        with pytest.raises(ScenarioSpecError):
            _scenario(
                defenses=(
                    RovDeployment(rate=0.2),
                    RovDeployment(rate=0.4),
                )
            )

    def test_empty_name_rejected(self):
        with pytest.raises(ScenarioSpecError):
            _scenario(name="")

    def test_error_code_is_stable(self):
        with pytest.raises(ScenarioSpecError) as excinfo:
            RovDeployment(rate=2.0)
        assert excinfo.value.code == "scenarios.spec"


class TestCanonicalization:
    def test_name_excluded_from_identity(self):
        a = _scenario(name="alpha")
        b = _scenario(name="beta")
        assert a.content_hash() == b.content_hash()
        assert "name" not in a.canonical_dict()

    def test_different_overlays_hash_differently(self):
        a = _scenario(attacks=(PrefixHijack(count=2),))
        b = _scenario(attacks=(SubPrefixHijack(count=2),))
        c = _scenario(defenses=(RovDeployment(rate=0.6),))
        assert len({s.content_hash() for s in (a, b, c)}) == 3

    def test_hash_covers_attack_parameters(self):
        a = _scenario(attacks=(RoaDowngrade(count=2, stale_days=10),))
        b = _scenario(attacks=(RoaDowngrade(count=2, stale_days=20),))
        assert a.content_hash() != b.content_hash()

    def test_canonical_json_is_deterministic(self):
        a = _scenario()
        assert (
            json.dumps(a.canonical_dict(), sort_keys=True)
            == json.dumps(_scenario().canonical_dict(), sort_keys=True)
        )


class TestRoundTrip:
    def test_json_roundtrip_preserves_identity(self):
        scenario = _scenario(
            attacks=(
                PrefixHijack(count=3),
                RoaDowngrade(count=2, stale_days=15),
                As0Misconfig(count=1),
            ),
            defenses=(
                RovDeployment(rate=0.3),
                RouteServerFiltering(rate=0.1),
                DropSubscription(rate=0.5, listing_delay_days=3),
            ),
        )
        restored = Scenario.from_json(scenario.to_json())
        assert restored == scenario
        assert restored.content_hash() == scenario.content_hash()

    def test_unknown_family_rejected(self):
        doc = json.loads(_scenario().to_json())
        doc["attacks"][0]["family"] = "quantum-hijack"
        with pytest.raises(ScenarioSpecError):
            Scenario.from_dict(doc)

    def test_unknown_top_level_key_rejected(self):
        doc = json.loads(_scenario().to_json())
        doc["surprise"] = 1
        with pytest.raises(ScenarioSpecError):
            Scenario.from_dict(doc)

    def test_unknown_attack_parameter_rejected(self):
        doc = json.loads(_scenario().to_json())
        doc["attacks"][0]["warp_factor"] = 9
        with pytest.raises(ScenarioSpecError):
            Scenario.from_dict(doc)

    def test_paper_preset_has_no_overlays(self):
        paper = Scenario.paper(scale="tiny", seed=4)
        assert paper.attacks == ()
        assert paper.defenses == ()
        assert paper.base == WorldScale(scale="tiny", seed=4)
