"""Unit tests for repro.bgp.stream and repro.bgp.mrt."""

import io
from datetime import date

import pytest

from repro.bgp.collector import PeerRegistry
from repro.bgp.messages import ASPath, ElementType
from repro.bgp.mrt import (
    dump_peers,
    dump_store,
    load_peers,
    load_store,
    read_archive,
    rib_snapshot_lines,
    write_archive,
)
from repro.bgp.ribs import PartialObservation, RouteInterval, RouteIntervalStore
from repro.bgp.stream import BGPStream
from repro.net.prefix import IPv4Prefix

P24 = IPv4Prefix.parse("192.0.2.0/24")
P25 = IPv4Prefix.parse("192.0.2.0/25")
OTHER = IPv4Prefix.parse("198.51.100.0/24")


@pytest.fixture
def world():
    registry = PeerRegistry()
    registry.add_peer(174, "route-views2")
    registry.add_peer(3356, "route-views2")
    registry.add_peer(2914, "route-views3", filters_drop=True)
    store = RouteIntervalStore(data_end=date(2022, 3, 30))
    store.add(
        RouteInterval(
            prefix=P24,
            path=ASPath.of(174, 64500),
            start=date(2020, 1, 10),
            end=date(2020, 2, 10),
            observers=frozenset({0, 1}),
            partial_observers=(
                PartialObservation(2, date(2020, 1, 10), date(2020, 1, 20)),
            ),
        )
    )
    store.add(
        RouteInterval(
            prefix=P25,
            path=ASPath.of(3356, 64501),
            start=date(2020, 3, 1),
            end=None,
            observers=frozenset({0, 1, 2}),
        )
    )
    store.add(
        RouteInterval(
            prefix=OTHER,
            path=ASPath.of(2914, 64502),
            start=date(2019, 1, 1),
            end=date(2019, 6, 1),
            observers=frozenset({0}),
        )
    )
    return registry, store


class TestBGPStream:
    def test_window_filtering(self, world):
        registry, store = world
        stream = BGPStream(
            store, registry,
            from_day=date(2020, 1, 1), until_day=date(2020, 12, 31),
        )
        elems = list(stream)
        # OTHER (2019) excluded entirely.
        assert all(e.prefix != OTHER for e in elems)

    def test_announce_withdraw_pairing(self, world):
        registry, store = world
        stream = BGPStream(
            store, registry,
            from_day=date(2020, 1, 1), until_day=date(2020, 12, 31),
            prefix=P24, match="exact",
        )
        elems = list(stream)
        announcements = [e for e in elems if e.elem_type == ElementType.ANNOUNCEMENT]
        withdrawals = [e for e in elems if e.elem_type == ElementType.WITHDRAWAL]
        # Peers 0,1 + partial peer 2 announce; all three eventually withdraw.
        assert len(announcements) == 3
        assert len(withdrawals) == 3
        # Partial observer's withdrawal is the day after its carve-out end.
        partial_w = [w for w in withdrawals if w.peer_id == 2]
        assert partial_w[0].day == date(2020, 1, 21)

    def test_elements_ordered_by_day(self, world):
        registry, store = world
        stream = BGPStream(
            store, registry,
            from_day=date(2019, 1, 1), until_day=date(2022, 3, 30),
        )
        days = [e.day for e in stream]
        assert days == sorted(days)

    def test_match_more(self, world):
        registry, store = world
        stream = BGPStream(
            store, registry,
            from_day=date(2019, 1, 1), until_day=date(2022, 3, 30),
            prefix=P24, match="more",
        )
        prefixes = {e.prefix for e in stream}
        assert prefixes == {P24, P25}

    def test_match_less(self, world):
        registry, store = world
        stream = BGPStream(
            store, registry,
            from_day=date(2019, 1, 1), until_day=date(2022, 3, 30),
            prefix=P25, match="less",
        )
        prefixes = {e.prefix for e in stream}
        assert prefixes == {P24, P25}

    def test_match_any_no_duplicates(self, world):
        registry, store = world
        stream = BGPStream(
            store, registry,
            from_day=date(2019, 1, 1), until_day=date(2022, 3, 30),
            prefix=P24, match="any",
        )
        elems = list(stream)
        keys = [(e.elem_type, e.day, str(e.prefix), e.peer_id) for e in elems]
        assert len(keys) == len(set(keys))

    def test_collector_filter(self, world):
        registry, store = world
        stream = BGPStream(
            store, registry,
            from_day=date(2019, 1, 1), until_day=date(2022, 3, 30),
            collectors={"route-views3"},
        )
        assert {e.collector for e in stream} == {"route-views3"}

    def test_open_interval_no_withdrawal(self, world):
        registry, store = world
        stream = BGPStream(
            store, registry,
            from_day=date(2020, 3, 1), until_day=date(2022, 3, 30),
            prefix=P25, match="exact",
        )
        types = {e.elem_type for e in stream}
        assert types == {ElementType.ANNOUNCEMENT}

    def test_rib_elements(self, world):
        registry, store = world
        stream = BGPStream(
            store, registry,
            from_day=date(2020, 1, 1), until_day=date(2020, 12, 31),
        )
        rib = list(stream.rib_elements(date(2020, 1, 15)))
        # P24 seen by peers 0,1 and partial peer 2 on that day.
        assert len(rib) == 3
        assert all(e.elem_type == ElementType.RIB for e in rib)

    def test_rib_elements_outside_window(self, world):
        registry, store = world
        stream = BGPStream(
            store, registry,
            from_day=date(2020, 1, 1), until_day=date(2020, 12, 31),
        )
        with pytest.raises(ValueError):
            list(stream.rib_elements(date(2021, 6, 1)))

    def test_bad_window(self, world):
        registry, store = world
        with pytest.raises(ValueError):
            BGPStream(
                store, registry,
                from_day=date(2021, 1, 1), until_day=date(2020, 1, 1),
            )


class TestMrtRoundTrip:
    def test_peers_round_trip(self, world):
        registry, _ = world
        buffer = io.StringIO()
        count = dump_peers(registry, buffer)
        assert count == 3
        buffer.seek(0)
        loaded = load_peers(buffer)
        assert len(loaded) == 3
        assert loaded.peer(2).filters_drop
        assert loaded.peer(0).asn == 174

    def test_store_round_trip(self, world):
        _, store = world
        buffer = io.StringIO()
        count = dump_store(store, buffer)
        assert count == 3
        buffer.seek(0)
        loaded = load_store(buffer, data_end=date(2022, 3, 30))
        assert len(loaded) == 3
        original = sorted(
            (str(i.prefix), i.start, i.end, str(i.path),
             tuple(sorted(i.observers)), i.partial_observers)
            for i in store.all_intervals()
        )
        round_tripped = sorted(
            (str(i.prefix), i.start, i.end, str(i.path),
             tuple(sorted(i.observers)), i.partial_observers)
            for i in loaded.all_intervals()
        )
        assert original == round_tripped

    def test_archive_round_trip(self, world, tmp_path):
        registry, store = world
        write_archive(tmp_path / "bgp", registry, store)
        loaded_registry, loaded_store = read_archive(
            tmp_path / "bgp", data_end=date(2022, 3, 30)
        )
        assert len(loaded_registry) == len(registry)
        assert len(loaded_store) == len(store)

    def test_rib_snapshot_lines(self, world):
        registry, store = world
        lines = list(rib_snapshot_lines(store, registry, date(2020, 1, 15)))
        assert len(lines) == 3
        assert all(line.startswith("TABLE_DUMP2|2020-01-15|B|") for line in lines)
        assert any("192.0.2.0/24|174 64500" in line for line in lines)
