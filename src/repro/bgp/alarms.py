"""Origin-change hijack alarms (the paper's defense class 2).

§1 lists four classes of defense against address abuse: blocklists,
route-hijack detection, registry validation (IRR/RPKI), and path
authentication.  This module implements the second class in the style of
PHAS [26] / ARTEMIS [47]: a monitor that knows a set of *protected*
prefixes and their legitimate origins, watches the route stream, and
raises alarms for

* ``MOAS``      — a second origin appears alongside the legitimate one;
* ``ORIGIN``    — the prefix is announced by an unexpected origin while
  the owner is silent (includes forged-transit cases RPKI cannot catch
  when the attacker forges the *owner's* origin — those are flagged as
  ``PATH`` when the path's upstream changes);
* ``SUBPREFIX`` — a more-specific of a protected prefix appears;
* ``PATH``      — the origin matches but the adjacent upstream AS is one
  never seen before (the Fig. 4 signature: same origin AS263692, new
  transit AS50509).

The case-study integration test shows these alarms catching the
RPKI-valid hijack that origin validation misses.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import date
from enum import Enum
from typing import Iterable, Iterator

from ..net.prefix import IPv4Prefix
from ..net.radix import RadixTree
from .ribs import RouteInterval, RouteIntervalStore

__all__ = ["Alarm", "AlarmKind", "HijackMonitor", "ProtectedPrefix"]


class AlarmKind(Enum):
    """What tripped the monitor."""

    MOAS = "moas"
    ORIGIN = "origin"
    SUBPREFIX = "subprefix"
    PATH = "path"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True, slots=True)
class ProtectedPrefix:
    """One prefix under monitoring, with its legitimate configuration."""

    prefix: IPv4Prefix
    origins: frozenset[int]
    #: Upstream ASes expected adjacent to the origin; empty = learn from
    #: history before ``baseline_until``.
    upstreams: frozenset[int] = frozenset()


@dataclass(frozen=True, slots=True)
class Alarm:
    """One detection event."""

    kind: AlarmKind
    protected: IPv4Prefix
    observed: IPv4Prefix
    day: date
    origin: int
    detail: str

    def __str__(self) -> str:
        return (
            f"[{self.kind}] {self.day} {self.observed} "
            f"origin AS{self.origin}: {self.detail}"
        )


class HijackMonitor:
    """PHAS/ARTEMIS-style monitor over a route interval store."""

    def __init__(
        self,
        protected: Iterable[ProtectedPrefix],
        *,
        baseline_until: date | None = None,
    ) -> None:
        self._tree: RadixTree[ProtectedPrefix] = RadixTree()
        for item in protected:
            self._tree.insert(item.prefix, item)
        self.baseline_until = baseline_until

    def __len__(self) -> int:
        return len(self._tree)

    def protected_for(self, prefix: IPv4Prefix) -> ProtectedPrefix | None:
        """The most specific protected prefix covering ``prefix``."""
        best = self._tree.lookup_best(prefix)
        return best[1] if best else None

    # -- scanning ------------------------------------------------------------

    def scan(self, store: RouteIntervalStore) -> Iterator[Alarm]:
        """Replay all route intervals and yield alarms in start order.

        With ``baseline_until`` set, intervals starting at or before that
        day train the expected-upstream baseline instead of alerting.
        """
        learned_upstreams: dict[IPv4Prefix, set[int]] = {}
        intervals = sorted(
            store.all_intervals(), key=lambda i: (i.start, i.prefix)
        )
        for interval in intervals:
            config = self.protected_for(interval.prefix)
            if config is None:
                continue
            in_baseline = (
                self.baseline_until is not None
                and interval.start <= self.baseline_until
            )
            if in_baseline and interval.origin in config.origins:
                upstream = interval.path.neighbour_of_origin()
                if upstream is not None:
                    learned_upstreams.setdefault(
                        config.prefix, set()
                    ).add(upstream)
                continue
            yield from self._check(
                interval, config, store, learned_upstreams
            )

    def _check(
        self,
        interval: RouteInterval,
        config: ProtectedPrefix,
        store: RouteIntervalStore,
        learned_upstreams: dict[IPv4Prefix, set[int]],
    ) -> Iterator[Alarm]:
        origin_legit = interval.origin in config.origins
        is_subprefix = interval.prefix != config.prefix
        if not origin_legit:
            owner_active = any(
                i.active_on(interval.start)
                and i.origin in config.origins
                for i in store.intervals_exact(config.prefix)
                if i is not interval
            )
            kind = AlarmKind.MOAS if owner_active else AlarmKind.ORIGIN
            detail = (
                f"unexpected origin (owner "
                f"{'also announcing' if owner_active else 'silent'})"
            )
            yield Alarm(
                kind=kind,
                protected=config.prefix,
                observed=interval.prefix,
                day=interval.start,
                origin=interval.origin,
                detail=detail,
            )
            return
        if is_subprefix:
            yield Alarm(
                kind=AlarmKind.SUBPREFIX,
                protected=config.prefix,
                observed=interval.prefix,
                day=interval.start,
                origin=interval.origin,
                detail=f"more-specific of protected {config.prefix}",
            )
            return
        expected = set(config.upstreams)
        expected |= learned_upstreams.get(config.prefix, set())
        upstream = interval.path.neighbour_of_origin()
        if expected and upstream is not None and upstream not in expected:
            yield Alarm(
                kind=AlarmKind.PATH,
                protected=config.prefix,
                observed=interval.prefix,
                day=interval.start,
                origin=interval.origin,
                detail=(
                    f"origin matches but upstream AS{upstream} never "
                    f"seen before (expected "
                    f"{sorted(f'AS{a}' for a in expected)})"
                ),
            )
