"""Figure 2 (right) and §6.2.2: peers filtering routes.

Two filtering questions appear in the paper:

* **DROP filtering** — three RouteViews full-table peers whose tables are
  missing DROP-listed prefixes that everyone else carries.  We recover
  them by computing per-peer observation rates over (listed prefix, day)
  samples and flagging the outliers.
* **AS0-TAL filtering** — §6.2.2 checks whether any full-table peer
  filters with the APNIC/LACNIC AS0 trust anchors; the test is that each
  peer's table still contains the ≈30 routed prefixes those TALs would
  reject.  Finding every peer carrying them is evidence nobody filters.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import date, timedelta

from ..bgp.visibility import (
    PeerObservationRate,
    peer_observation_rates,
    suspect_filtering_peers,
)
from ..net.prefix import IPv4Prefix
from ..rpki.tal import APNIC_AS0_TAL, LACNIC_AS0_TAL, TalSet
from ..rpki.validation import RouteValidity, validate_route
from ..synth.world import World
from .common import DropEntryView, load_entries

__all__ = [
    "As0FilteringResult",
    "DropFilteringResult",
    "detect_as0_filtering",
    "detect_drop_filtering",
]


@dataclass(frozen=True, slots=True)
class DropFilteringResult:
    """Per-peer observation rates over DROP prefixes and the outliers."""

    rates: tuple[PeerObservationRate, ...]
    suspects: tuple[PeerObservationRate, ...]

    @property
    def suspect_peer_ids(self) -> frozenset[int]:
        """Peer ids inferred to filter the DROP list."""
        return frozenset(s.peer_id for s in self.suspects)


def detect_drop_filtering(
    world: World,
    entries: list[DropEntryView] | None = None,
    *,
    sample_offsets: tuple[int, ...] = (3, 10, 20),
) -> DropFilteringResult:
    """Find peers whose tables are missing listed-but-routed prefixes.

    Samples each prefix a few days after listing (while most of the
    global table still carries it) and compares per-peer observation
    rates.
    """
    if entries is None:
        entries = load_entries(world)
    samples = [
        (entry.prefix, entry.listed + timedelta(days=offset))
        for entry in entries
        for offset in sample_offsets
    ]
    rates = peer_observation_rates(world.bgp, world.peers, samples)
    suspects = suspect_filtering_peers(rates)
    return DropFilteringResult(
        rates=tuple(rates), suspects=tuple(suspects)
    )


@dataclass(frozen=True, slots=True)
class As0FilteringResult:
    """§6.2.2's AS0-TAL check on one day's tables."""

    day: date
    filterable_prefixes: tuple[IPv4Prefix, ...]
    #: peer id → how many of the filterable prefixes its table contains.
    per_peer_carried: dict[int, int]

    @property
    def peers_filtering(self) -> frozenset[int]:
        """Full-table peers carrying (almost) none of the prefixes."""
        threshold = max(1, len(self.filterable_prefixes) // 10)
        return frozenset(
            pid
            for pid, carried in self.per_peer_carried.items()
            if carried < threshold
        )

    @property
    def mean_carried(self) -> float:
        """Average filterable prefixes per full-table peer (paper: ≈30)."""
        if not self.per_peer_carried:
            return 0.0
        return sum(self.per_peer_carried.values()) / len(
            self.per_peer_carried
        )


def detect_as0_filtering(world: World, day: date | None = None) -> As0FilteringResult:
    """Check whether any peer filters with the RIR AS0 trust anchors.

    Finds every prefix announced on ``day`` that would be RPKI-invalid
    under a TAL set including the APNIC/LACNIC AS0 anchors but is
    NOT invalid under the default TALs, then counts how many of those
    routes each full-table peer carries.
    """
    if day is None:
        day = world.window.end
    as0_tals = TalSet.of([APNIC_AS0_TAL, LACNIC_AS0_TAL])
    default_tals = TalSet.default()
    filterable: list[IPv4Prefix] = []
    for prefix in world.bgp.announced_prefixes_on(day):
        origins = world.bgp.origins_on(prefix, day)
        if not origins:
            continue
        covering = [r.roa for r in world.roas.covering(prefix, day)]
        for origin in origins:
            under_as0 = validate_route(prefix, origin, covering, as0_tals)
            under_default = validate_route(
                prefix, origin, covering, default_tals
            )
            if (
                under_as0 is RouteValidity.INVALID
                and under_default is not RouteValidity.INVALID
            ):
                filterable.append(prefix)
                break
    per_peer: dict[int, int] = {}
    for peer_id in sorted(world.peers.full_table_peer_ids()):
        carried = sum(
            1
            for prefix in filterable
            if peer_id in world.bgp.peers_observing(prefix, day)
        )
        per_peer[peer_id] = carried
    return As0FilteringResult(
        day=day,
        filterable_prefixes=tuple(filterable),
        per_peer_carried=per_peer,
    )
