"""End-to-end reproduction checks against the paper's published numbers.

These run the full measurement pipeline over a tiny-scale world (all rates
identical to paper scale; only the never-on-DROP population is shrunk) and
assert each result lands near the published value.  Tolerances reflect
which quantities are quota-exact versus subject to joint-assignment noise.
"""

import pytest

from repro.analysis import (
    analyze_deallocation,
    analyze_irr,
    analyze_roa_status,
    analyze_rpki_effectiveness,
    analyze_rpki_uptake,
    analyze_unallocated,
    analyze_visibility,
    classify_drop,
    detect_as0_filtering,
    detect_drop_filtering,
    load_entries,
)
from repro.drop.categories import Category
from repro.synth import ScenarioConfig, build_world


@pytest.fixture(scope="module")
def world():
    return build_world(ScenarioConfig.tiny())


@pytest.fixture(scope="module")
def entries(world):
    return load_entries(world)


class TestSection3Classification:
    """§3.1 / Figure 1."""

    def test_712_prefixes_526_with_records(self, world, entries):
        result = classify_drop(world, entries)
        assert result.total_prefixes == 712
        assert result.with_record == 526

    def test_category_bars(self, world, entries):
        result = classify_drop(world, entries)
        assert result.bar(Category.HIJACKED).total_prefixes == 179
        assert result.bar(Category.SNOWSHOE).total_prefixes == 230
        assert result.bar(Category.KNOWN_SPAM).total_prefixes == 40
        assert result.bar(Category.MALICIOUS_HOSTING).total_prefixes == 52
        assert result.bar(Category.UNALLOCATED).total_prefixes == 40
        assert result.bar(Category.NO_RECORD).total_prefixes == 186

    def test_incidents_45_prefixes_half_the_space(self, world, entries):
        result = classify_drop(world, entries)
        assert result.incident_prefixes == 45
        # Paper: 48.8% of DROP address space.
        assert result.incident_space_share == pytest.approx(0.488, abs=0.05)

    def test_snowshoe_small_space(self, world, entries):
        result = classify_drop(world, entries)
        # Paper: ~1/3 of prefixes but only 8.5% of space.
        assert result.bar(Category.SNOWSHOE).total_prefixes >= 0.3 * 712 * 0.9
        assert result.space_share(Category.SNOWSHOE) == pytest.approx(
            0.085, abs=0.03
        )

    def test_appendix_a_keyword_stats(self, world, entries):
        result = classify_drop(world, entries)
        # Paper: 90% one keyword, 2.7% two, 7.3% none.
        assert result.keyword_stats["one"] == pytest.approx(0.90, abs=0.03)
        assert result.keyword_stats["two_or_more"] == pytest.approx(
            0.027, abs=0.015
        )
        assert result.keyword_stats["none"] == pytest.approx(0.073, abs=0.02)

    def test_overlap_is_small(self, world, entries):
        result = classify_drop(world, entries)
        assert result.overlap_prefixes == pytest.approx(15, abs=3)


class TestSection41Visibility:
    """§4.1 / Figure 2 (left)."""

    def test_overall_withdrawal_rate(self, world, entries):
        result = analyze_visibility(world, entries)
        # Paper: 19% withdrawn within 30 days.
        assert result.withdrawal_rate == pytest.approx(0.19, abs=0.04)

    def test_hijacked_withdrawal_rate(self, world, entries):
        result = analyze_visibility(world, entries)
        # Paper: 70.7%.
        assert result.category_rate(Category.HIJACKED) == pytest.approx(
            0.707, abs=0.06
        )

    def test_unallocated_withdrawal_rate(self, world, entries):
        result = analyze_visibility(world, entries)
        # Paper: 54.8%.
        assert result.category_rate(Category.UNALLOCATED) == pytest.approx(
            0.548, abs=0.06
        )

    def test_other_categories_rarely_withdrawn(self, world, entries):
        result = analyze_visibility(world, entries)
        assert result.category_rate(Category.MALICIOUS_HOSTING) < 0.2

    def test_cdf_offsets_monotone_in_withdrawals(self, world, entries):
        result = analyze_visibility(world, entries)
        # More prefixes are gone at +30 than at +2 days.
        gone_2 = sum(1 for x in result.cdf(2) if x == 0.0)
        gone_30 = sum(1 for x in result.cdf(30) if x == 0.0)
        assert gone_30 > gone_2

    def test_day_before_listing_mostly_visible(self, world, entries):
        result = analyze_visibility(world, entries)
        visible = [x for x in result.cdf(-1) if x > 0.5]
        assert len(visible) > 0.7 * len(result.profiles)


class TestSection41Filtering:
    """§4.1 / Figure 2 (right): three DROP-filtering peers."""

    def test_exactly_three_suspects(self, world, entries):
        result = detect_drop_filtering(world, entries)
        assert len(result.suspects) == 3

    def test_suspects_match_ground_truth(self, world, entries):
        result = detect_drop_filtering(world, entries)
        assert result.suspect_peer_ids == world.truth.filtering_peer_ids

    def test_normal_peers_near_full_observation(self, world, entries):
        result = detect_drop_filtering(world, entries)
        suspects = result.suspect_peer_ids
        normal = [r for r in result.rates if r.peer_id not in suspects]
        assert all(r.rate > 0.95 for r in normal)


class TestSection41Deallocation:
    """§4.1: deallocation after listing."""

    def test_mh_deallocation_rate(self, world, entries):
        result = analyze_deallocation(world, entries)
        # Paper: 17.4% of malicious hosting prefixes.
        assert result.category_rate(
            Category.MALICIOUS_HOSTING
        ) == pytest.approx(0.174, abs=0.05)

    def test_removed_deallocation_rate(self, world, entries):
        result = analyze_deallocation(world, entries)
        # Paper: 8.8% of removed prefixes.
        assert result.removed_deallocation_rate == pytest.approx(
            0.088, abs=0.03
        )

    def test_half_within_week(self, world, entries):
        result = analyze_deallocation(world, entries)
        # Paper: half of those removed within a week of deallocation.
        assert result.within_week_share == pytest.approx(0.5, abs=0.25)


class TestSection42Table1:
    """§4.2 / Table 1."""

    def test_removed_rate_overall(self, world, entries):
        table = analyze_rpki_uptake(world, entries)
        # Paper: 42.5% of 186.
        assert table.overall.removed_total == pytest.approx(186, abs=5)
        assert table.overall.removed_rate == pytest.approx(0.425, abs=0.05)

    def test_present_rate_overall(self, world, entries):
        table = analyze_rpki_uptake(world, entries)
        assert table.overall.present_total == pytest.approx(420, abs=10)
        # Paper prints 13.8% but its own per-region rows aggregate to
        # ~10.8%; we assert consistency with the rows.
        assert table.overall.present_rate == pytest.approx(0.11, abs=0.04)

    def test_removed_exceeds_never_exceeds_present(self, world, entries):
        table = analyze_rpki_uptake(world, entries)
        assert (
            table.overall.removed_rate
            > table.overall.never_rate
            > table.overall.present_rate
        )

    def test_per_region_removed_rates(self, world, entries):
        table = analyze_rpki_uptake(world, entries)
        paper = {
            "AFRINIC": 0.143,
            "APNIC": 0.444,
            "ARIN": 0.25,
            "LACNIC": 0.351,
            "RIPE": 0.542,
        }
        for region, expected in paper.items():
            assert table.row(region).removed_rate == pytest.approx(
                expected, abs=0.08
            ), region

    def test_signed_asn_relation(self, world, entries):
        table = analyze_rpki_uptake(world, entries)
        # Paper: 82.3% different ASN, 6.3% same ASN.
        assert table.different_asn_rate == pytest.approx(0.823, abs=0.08)
        assert table.same_asn_rate == pytest.approx(0.063, abs=0.06)


class TestSection5Irr:
    """§5 / Figure 3."""

    def test_object_rate_and_space(self, world, entries):
        result = analyze_irr(world, entries)
        # Paper: 226 prefixes (31.7%) covering 68.8% of space.
        assert result.with_route_object == pytest.approx(226, abs=5)
        assert result.object_rate == pytest.approx(0.317, abs=0.02)
        assert result.space_share == pytest.approx(0.688, abs=0.07)

    def test_creation_and_removal_timing(self, world, entries):
        result = analyze_irr(world, entries)
        # Paper: 32% created in the prior month; 43% removed a month after.
        assert result.created_recently_rate == pytest.approx(0.32, abs=0.05)
        assert result.removed_after_rate == pytest.approx(0.43, abs=0.05)

    def test_hijacker_asn_matches(self, world, entries):
        result = analyze_irr(world, entries)
        # Paper: 57 of 130 labeled hijacks; 13 distinct hijacking ASNs.
        assert result.asn_labeled_hijacks == pytest.approx(130, abs=6)
        assert result.hijacker_asn_matches == 57
        assert result.distinct_hijacker_asns == 13

    def test_org_id_clustering(self, world, entries):
        result = analyze_irr(world, entries)
        # Paper: 3 ORG-IDs cover 49 of the 57; the top one made 15.
        assert result.top_org_cluster_size == pytest.approx(49, abs=2)
        assert max(result.org_id_counts.values()) >= 15

    def test_fig3_timing_cdf(self, world, entries):
        result = analyze_irr(world, entries)
        quick = [
            t
            for t in result.timings
            if t.days_to_bgp is not None and 0 <= t.days_to_bgp <= 7
        ]
        # Paper: all but 2 of the 57 announced within a week of the record.
        assert len(quick) >= len(result.timings) - 2
        assert result.late_records == 2

    def test_preexisting_and_unallocated(self, world, entries):
        result = analyze_irr(world, entries)
        # Paper: only 5 had existing IRR entries; 1 unallocated in IRR.
        assert result.preexisting_entries == 5
        assert len(result.unallocated_in_irr) == 1


class TestSection61Rpki:
    """§6.1 / Figure 4."""

    def test_three_presigned_hijacks(self, world, entries):
        result = analyze_rpki_effectiveness(world, entries)
        assert result.presigned_count == 3

    def test_two_roa_follows_origin(self, world, entries):
        result = analyze_rpki_effectiveness(world, entries)
        assert result.roa_follows_origin_count == 2

    def test_case_study_reconstruction(self, world, entries):
        result = analyze_rpki_effectiveness(world, entries)
        assert len(result.rpki_valid_hijacks) == 1
        hijack = result.rpki_valid_hijacks[0]
        assert str(hijack.prefix) == "132.255.0.0/22"
        assert hijack.owner_asn == 263692
        assert hijack.hijack_transit == 50509
        # Paper: six sibling prefixes, three added to DROP.
        assert len(hijack.siblings) == 6
        assert len(hijack.siblings_on_drop) == 3


class TestSection62As0:
    """§6.2 / Figures 5-7."""

    def test_fig5_series_endpoints(self, world):
        result = analyze_roa_status(world)
        # Paper: signed 49.1 -> 70.4 /8s; unrouted signed 1.6 -> 6.7;
        # unsigned unrouted 29.2 -> 30.0; % routed 97.1 -> 90.5.
        assert result.first.signed == pytest.approx(49.1, abs=2.5)
        assert result.final.signed == pytest.approx(70.4, abs=3.0)
        assert result.first.signed_unrouted == pytest.approx(1.6, abs=0.5)
        assert result.final.signed_unrouted == pytest.approx(6.7, abs=0.7)
        assert result.first.allocated_unrouted_unsigned == pytest.approx(
            29.2, abs=1.5
        )
        assert result.final.allocated_unrouted_unsigned == pytest.approx(
            30.0, abs=1.5
        )
        assert result.first.percent_routed == pytest.approx(97.1, abs=1.0)
        assert result.final.percent_routed == pytest.approx(90.5, abs=1.0)

    def test_percent_routed_declines(self, world):
        result = analyze_roa_status(world)
        assert result.final.percent_routed < result.first.percent_routed

    def test_top3_holders_share(self, world):
        result = analyze_roa_status(world)
        # Paper: Amazon + Prudential + Alibaba hold 70.1%.
        assert result.top_holder_share(3) == pytest.approx(0.701, abs=0.05)

    def test_arin_unsigned_share(self, world):
        result = analyze_roa_status(world)
        # Paper: ARIN manages 60.8% of the unsigned unrouted space.
        assert result.rir_unsigned_share("ARIN") == pytest.approx(
            0.608, abs=0.05
        )

    def test_fig6_unallocated_timeline(self, world, entries):
        result = analyze_unallocated(world, entries)
        # Paper: 40 unallocated prefixes; LACNIC 19, AFRINIC 12.
        assert result.total == 40
        assert result.count_for("LACNIC") == 19
        assert result.count_for("AFRINIC") == 12
        # Hijacks of unallocated space continued after the AS0 policies.
        assert result.after_policy_count > 0

    def test_fig7_free_pools(self, world, entries):
        result = analyze_unallocated(world, entries)
        for rir, profile in world.config.regions.items():
            series = result.free_pools[rir]
            start, end = series[0][1], series[-1][1]
            assert start == pytest.approx(profile.free_pool_start, rel=0.2)
            assert end == pytest.approx(profile.free_pool_end, rel=0.25)
            assert end <= start

    def test_afrinic_arin_largest_pools(self, world, entries):
        result = analyze_unallocated(world, entries)
        finals = {
            rir: series[-1][1]
            for rir, series in result.free_pools.items()
        }
        ranked = sorted(finals, key=finals.get, reverse=True)
        assert set(ranked[:2]) == {"AFRINIC", "ARIN"}

    def test_as0_tal_filtering_unused(self, world):
        result = detect_as0_filtering(world)
        # Paper: every peer reported ~30 prefixes the AS0 TALs would drop.
        assert len(result.filterable_prefixes) == pytest.approx(30, abs=5)
        assert result.mean_carried == pytest.approx(30, abs=5)
        assert result.peers_filtering == frozenset()

    def test_operator_as0_story(self, world, entries):
        prefix = world.truth.operator_as0_prefix
        entry = next(e for e in entries if e.prefix == prefix)
        assert entry.removed
        covering = world.roas.covering(prefix, world.window.end)
        assert any(r.roa.is_as0 for r in covering)
