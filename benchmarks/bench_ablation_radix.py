"""Ablation: radix-trie prefix matching vs the linear scan it replaces.

DESIGN.md calls out the Patricia trie as a core design choice: every
cross-dataset join is a covered/covering query.  This bench measures the
same workload (longest-prefix match over the world's ROA table for every
DROP prefix) both ways.
"""

from repro.net.radix import RadixTree


def _roa_prefixes(world):
    return [record.roa.prefix for record in world.roas.records()]


def _probes(world):
    return world.drop.unique_prefixes()


def bench_radix_covering_lookup(benchmark, world, entries):
    table = RadixTree()
    for prefix in _roa_prefixes(world):
        table.insert(prefix, True)
    probes = _probes(world)

    def run():
        return sum(1 for p in probes if table.lookup_best(p) is not None)

    covered = benchmark(run)
    assert covered > 0


def bench_linear_covering_lookup(benchmark, world, entries):
    roa_prefixes = _roa_prefixes(world)
    probes = _probes(world)

    def run():
        covered = 0
        for probe in probes:
            if any(roa.contains(probe) for roa in roa_prefixes):
                covered += 1
        return covered

    covered = benchmark(run)
    assert covered > 0


def bench_radix_vs_linear_agree(world, entries):
    """Non-timed sanity check: both strategies find the same prefixes."""
    table = RadixTree()
    for prefix in _roa_prefixes(world):
        table.insert(prefix, True)
    roa_prefixes = _roa_prefixes(world)
    for probe in _probes(world):
        linear = any(roa.contains(probe) for roa in roa_prefixes)
        assert (table.lookup_best(probe) is not None) == linear
