"""Tests for the extension analyses: counterfactuals and maxLength audit."""

import pytest

from repro.analysis import (
    as0_counterfactual,
    audit_maxlength,
    load_entries,
    rov_counterfactual,
)
from repro.rpki.validation import RouteValidity
from repro.synth import ScenarioConfig, build_world


@pytest.fixture(scope="module")
def world():
    return build_world(ScenarioConfig.tiny())


@pytest.fixture(scope="module")
def entries(world):
    return load_entries(world)


class TestRovCounterfactual:
    def test_rov_stops_nothing_as_deployed(self, world, entries):
        result = rov_counterfactual(world, entries)
        # Attackers target unsigned space: nothing is INVALID today.
        assert result.stopped_as_deployed < 0.02

    def test_most_announcements_not_found(self, world, entries):
        result = rov_counterfactual(world, entries)
        not_found = result.as_deployed[RouteValidity.NOT_FOUND]
        assert not_found > 0.9 * result.evaluated

    def test_presigned_hijacks_validate(self, world, entries):
        result = rov_counterfactual(world, entries)
        # The RPKI-valid hijack (and attacker-controlled ROAs) are VALID.
        assert result.as_deployed[RouteValidity.VALID] >= 1

    def test_universal_signing_stops_most(self, world, entries):
        result = rov_counterfactual(world, entries)
        assert result.stopped_if_all_signed > 0.9

    def test_forged_origin_residue(self, world, entries):
        result = rov_counterfactual(world, entries)
        # Forged-origin announcements stay VALID even if everyone signs —
        # the residue only path validation (BGPsec/ASPA) removes.
        assert result.forged_origin_escapes >= 1
        assert (
            result.forged_origin_escapes
            == result.if_all_signed[RouteValidity.VALID]
        )

    def test_outcome_counts_sum(self, world, entries):
        result = rov_counterfactual(world, entries)
        assert sum(result.as_deployed.values()) == result.evaluated
        assert sum(result.if_all_signed.values()) == result.evaluated


class TestAs0Counterfactual:
    def test_universal_as0_blocks_everything(self, world, entries):
        result = as0_counterfactual(world, entries)
        assert result.unallocated_listings == 40
        assert result.universal_share == 1.0

    def test_published_coverage_partial(self, world, entries):
        result = as0_counterfactual(world, entries)
        # Only APNIC/LACNIC listings after their policy dates are covered
        # by published AS0 ROAs: more than none, far less than all.
        assert 0 < result.covered_as_published < 40
        assert result.tals_trusted_share < 0.5

    def test_operator_ladder_monotone(self, world, entries):
        result = as0_counterfactual(world, entries)
        ladder = result.operator_ladder
        assert len(ladder) >= 3
        assert all(a <= b for a, b in zip(ladder, ladder[1:]))
        # Paper: the top three holders cover ~70%.
        assert ladder[2] == pytest.approx(0.701, abs=0.06)


class TestMaxLengthAudit:
    def test_usage_and_vulnerability(self, world):
        audit = audit_maxlength(world)
        assert audit.using_maxlength > 0
        assert audit.usage_rate < 0.25
        # Gilad et al.: 84% of maxLength-using ROAs vulnerable.
        assert audit.vulnerable_rate == pytest.approx(0.84, abs=0.1)

    def test_examples_are_authorized_but_unannounced(self, world):
        audit = audit_maxlength(world)
        for item in audit.vulnerable[:10]:
            roa = item.roa
            target = item.example_target
            assert roa.covers(target)
            assert target.length <= roa.effective_max_length
            assert roa.authorizes(target, roa.asn)
            origins = world.bgp.origins_on(target, audit.day)
            assert roa.asn not in origins

    def test_as0_roas_never_vulnerable(self, world):
        audit = audit_maxlength(world)
        assert all(not v.roa.is_as0 for v in audit.vulnerable)

    def test_defended_roas_not_flagged(self, world):
        # ROAs whose owners announce at maxLength must not be flagged.
        audit = audit_maxlength(world)
        flagged = {v.roa for v in audit.vulnerable}
        for record in world.roas.records():
            roa = record.roa
            if (
                not record.active_on(audit.day)
                or roa.is_as0
                or not roa.uses_max_length
                or roa in flagged
            ):
                continue
            # Not flagged: every authorized sub-level must be announced.
            for sub in roa.prefix.subnets(roa.prefix.length + 1):
                assert any(
                    i.active_on(audit.day) and i.origin == roa.asn
                    for i in world.bgp.intervals_exact(sub)
                ), (roa, sub)
