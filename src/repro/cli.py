"""Command-line interface: build worlds, run experiments, export reports.

Installed as ``repro-drop``::

    repro-drop build --scale tiny --out ./archives
    repro-drop report --exp tab1 --exp fig5
    repro-drop report --all --jobs 4 --timings
    repro-drop markdown > EXPERIMENTS-run.md
    repro-drop query 192.0.2.0/24 --on 2021-06-01
    repro-drop query --stdin --format table < prefixes.txt
    repro-drop serve --port 8765
    repro-drop serve --async --workers 4 --port 8765
    repro-drop serve --as-of 2019-06-05 --state-dir ./ingest-state
    repro-drop ingest --as-of 2019-06-05 --days 30
    repro-drop sweep --rov-rates 0,0.5,0.9 --jobs 4 --out report.json
    repro-drop sweep --spec grid.json --format table

``report``/``markdown``/``query``/``serve`` accept either ``--scale``
(build a fresh world) or ``--archives DIR`` (load one previously
written by ``build``).
Generated worlds are cached content-addressed under
``~/.cache/repro-drop`` (``$REPRO_CACHE_DIR``), so repeat runs skip the
build; ``--no-cache`` bypasses and ``--refresh-cache`` rebuilds the
entry.  ``--jobs N`` (or ``$REPRO_JOBS``) fans the experiments out over
worker processes (``0`` = one per CPU); output is byte-identical to a
serial run.

``--trace PATH`` (or ``$REPRO_TRACE``) writes the run's span tree as
JSONL when the command finishes; ``--profile`` prints per-stage
cProfile hot spots (top cumulative callers) to stderr.

Exit status follows :class:`ExitCode`: 0 (``OK``) clean, 1
(``FAILURE``) when an experiment produced no report, 2 (``USAGE``) for
bad invocations, 3 (``DEGRADED``) when every report was produced but
only by recovering from an infrastructure fault — dead worker, corrupt
or unwritable cache entry — detailed on stderr.  ``sweep`` extends the
policy per cell: every cell failed is 1, *some* cells failed is 3 with
each cell's failure kind on stderr, all cells ok falls back to the
degraded-counter check.
"""

from __future__ import annotations

import argparse
import enum
import json
import sys
from pathlib import Path
from time import perf_counter

from .obs import profiled, trace_path_from_env

from .net.prefix import IPv4Prefix, PrefixError
from .net.timeline import DateWindow, parse_date
from .query import (
    AsyncQueryServer,
    BatchParseError,
    QueryEngine,
    QueryServer,
    load_persisted_index,
    parse_query_batch,
)
from .reporting import (
    EXPERIMENTS,
    render_markdown,
    render_text,
)
from .runtime import (
    Instrumentation,
    RunOutcome,
    WorldCache,
    default_jobs,
    resolve_jobs,
    run_experiments,
    world_cache_key,
    world_sizes,
)
from .sweep import (
    SweepSpec,
    SweepSpecError,
    render_sweep_table,
    run_sweep,
)
from .synth import ScenarioConfig, World, build_world, load_world, save_world

__all__ = ["EXIT_DEGRADED", "ExitCode", "main"]


class ExitCode(enum.IntEnum):
    """The CLI's exit status policy (documented in the README).

    ``DEGRADED`` marks a run whose every experiment succeeded, but only
    by recovering from an infrastructure fault (dead worker, corrupt or
    unwritable cache entry).  Results are complete and correct; the
    machine they ran on deserves a look.
    """

    OK = 0
    FAILURE = 1
    USAGE = 2
    DEGRADED = 3


#: Deprecated alias for :attr:`ExitCode.DEGRADED` (kept for one release).
EXIT_DEGRADED = ExitCode.DEGRADED

#: Nonzero values of any of these mark a run as degraded.
_DEGRADED_COUNTERS = (
    "worker_lost_experiments",
    "world_cache_store_errors",
    "world_cache_evictions",
    "world_cache_lock_takeovers",
)

_SCALES = {
    "tiny": ScenarioConfig.tiny,
    "small": ScenarioConfig.small,
    "paper": ScenarioConfig.paper,
}


def _workers_arg(value: str) -> int:
    """``--workers``: a positive int (async serving worker loops)."""
    try:
        workers = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"invalid int value: {value!r}"
        ) from None
    if workers < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {workers}")
    return workers


def _jobs_arg(value: str) -> int:
    """``--jobs``: a non-negative int, where 0 means one worker per CPU."""
    try:
        jobs = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"invalid int value: {value!r}"
        ) from None
    if jobs < 0:
        raise argparse.ArgumentTypeError(
            f"must be >= 0 (0 = one worker per CPU), got {jobs}"
        )
    return jobs


def _add_world_source(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scale",
        choices=sorted(_SCALES),
        default="tiny",
        help="synthetic world scale (default: tiny)",
    )
    parser.add_argument(
        "--seed", type=int, default=2022, help="generator seed"
    )
    parser.add_argument(
        "--archives",
        type=Path,
        default=None,
        help="load a world from a directory written by 'build' "
        "instead of generating one",
    )
    parser.add_argument(
        "--jobs",
        type=_jobs_arg,
        default=None,
        help="worker processes for the world build and the experiments; "
        "0 = one per CPU (default: $REPRO_JOBS or 1)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="always rebuild the world; skip the on-disk cache entirely",
    )
    parser.add_argument(
        "--refresh-cache",
        action="store_true",
        help="rebuild the world and overwrite its cache entry",
    )
    parser.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        help="world cache root (default: $REPRO_CACHE_DIR or "
        "~/.cache/repro-drop)",
    )
    parser.add_argument(
        "--timings",
        action="store_true",
        help="emit stage/experiment timings JSON (report: stdout after "
        "the reports; markdown: stderr)",
    )
    parser.add_argument(
        "--timings-out",
        type=Path,
        default=None,
        help="also write the timings JSON to FILE",
    )
    parser.add_argument(
        "--trace",
        type=Path,
        default=None,
        metavar="PATH",
        help="append the run's span tree as JSONL to PATH when the "
        "command finishes (default: $REPRO_TRACE, if set)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="cProfile each major stage and print the top cumulative "
        "callers to stderr",
    )


def _add_ingest_state(parser: argparse.ArgumentParser) -> None:
    """The incremental-mode flags shared by ``serve`` and ``ingest``."""
    parser.add_argument(
        "--as-of", default=None, metavar="DATE",
        help="start incremental mode from this as-of day "
        "(default: the world window's start)",
    )
    parser.add_argument(
        "--state-dir", type=Path, default=None, metavar="DIR",
        help="persist the delta journal here so restarts replay "
        "applied days instead of losing them",
    )
    parser.add_argument(
        "--webhook", default=None, metavar="URL",
        help="POST watch events to URL as they are published "
        "(serve only; fire-and-forget)",
    )


def _resolve_jobs_arg(args: argparse.Namespace) -> int:
    """The effective worker count: ``--jobs``, else ``$REPRO_JOBS``."""
    if args.jobs is not None:
        return resolve_jobs(args.jobs)  # argparse already rejected < 0
    try:
        return default_jobs()
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        raise SystemExit(2) from None


def _resolve_world(
    args: argparse.Namespace, instr: Instrumentation, *, jobs: int = 1
) -> tuple[World, Path | None]:
    """The world to measure, plus a directory workers can reload it from."""
    if args.archives is not None:
        with instr.stage("archive-load", group="cache"):
            world = load_world(args.archives)
        instr.annotate("world_cache", {"status": "archives"})
        instr.annotate("world_sizes", world_sizes(world))
        return world, args.archives
    config = _SCALES[args.scale](seed=args.seed)
    if args.no_cache:
        world = build_world(config, jobs=jobs, instrumentation=instr)
        instr.annotate("world_cache", {"status": "bypass"})
        instr.annotate("world_sizes", world_sizes(world))
        return world, None
    cache = WorldCache(args.cache_dir)
    outcome = cache.fetch(
        config, instrumentation=instr, refresh=args.refresh_cache, jobs=jobs
    )
    instr.annotate(
        "world_cache",
        {
            "status": outcome.status,
            "key": outcome.key,
            "directory": str(outcome.directory),
        },
    )
    return outcome.world, outcome.directory


def _run_selected(
    args: argparse.Namespace, wanted: list[str]
) -> tuple[RunOutcome, Instrumentation]:
    instr = Instrumentation()
    started = perf_counter()
    jobs = _resolve_jobs_arg(args)
    with profiled(args.profile, "world-resolve"):
        world, directory = _resolve_world(args, instr, jobs=jobs)
    instr.annotate("jobs", jobs)
    instr.annotate("experiment_ids", wanted)
    with profiled(args.profile, "experiments"):
        outcome = run_experiments(
            world,
            wanted,
            jobs=jobs,
            directory=directory,
            instrumentation=instr,
        )
    instr.annotate("wall_seconds", round(perf_counter() - started, 6))
    return outcome, instr


def _emit_timings(
    args: argparse.Namespace, instr: Instrumentation, stream
) -> None:
    if not (args.timings or args.timings_out):
        return
    payload = instr.to_json()
    if args.timings_out is not None:
        args.timings_out.write_text(payload + "\n")
    if args.timings:
        print(payload, file=stream)


def _export_trace(args: argparse.Namespace, instr: Instrumentation) -> None:
    """Write the run's spans as JSONL to ``--trace`` or ``$REPRO_TRACE``."""
    path = args.trace if args.trace is not None else trace_path_from_env()
    if path is not None:
        instr.tracer.write_jsonl(path)


def _finish(outcome: RunOutcome, instr: Instrumentation) -> int:
    """Report failures and degradation; the command's exit status.

    0 = clean, 1 = at least one experiment has no report,
    :data:`EXIT_DEGRADED` = every report present but the run recovered
    from an infrastructure fault along the way.
    """
    for failure in outcome.failures:
        label = (
            "worker lost" if failure.kind == "worker-lost" else "failed"
        )
        print(
            f"experiment {failure.exp_id} {label}:\n{failure.error}",
            file=sys.stderr,
        )
    degraded = {
        name: instr.counters[name]
        for name in _DEGRADED_COUNTERS
        if instr.counters.get(name)
    }
    if degraded:
        details = ", ".join(f"{k}={v}" for k, v in degraded.items())
        print(f"degraded run: {details}", file=sys.stderr)
        for message in instr.warnings:
            print(f"  - {message}", file=sys.stderr)
    if not outcome.ok:
        return ExitCode.FAILURE
    return ExitCode.DEGRADED if degraded else ExitCode.OK


def _cmd_build(args: argparse.Namespace) -> int:
    world = build_world(
        _SCALES[args.scale](seed=args.seed), jobs=_resolve_jobs_arg(args)
    )
    save_world(world, args.out, drop_step_days=args.drop_step_days)
    print(
        f"wrote {args.out}: {len(world.drop.unique_prefixes())} DROP "
        f"prefixes, {len(world.bgp)} route intervals, "
        f"{len(world.roas)} ROAs, {len(world.irr)} IRR objects"
    )
    return 0


def _cmd_list(_args: argparse.Namespace) -> int:
    for exp_id in EXPERIMENTS:
        print(exp_id)
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    wanted = list(EXPERIMENTS) if args.all else args.exp
    if not wanted:
        print("nothing to run: pass --exp ID (repeatable) or --all",
              file=sys.stderr)
        return ExitCode.USAGE
    unknown = [e for e in wanted if e not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}",
              file=sys.stderr)
        return ExitCode.USAGE
    outcome, instr = _run_selected(args, wanted)
    for report in outcome.reports:
        print(render_text(report))
        print()
    status = _finish(outcome, instr)
    _emit_timings(args, instr, sys.stdout)
    _export_trace(args, instr)
    return status


def _index_location(
    args: argparse.Namespace,
) -> tuple[Path | None, str]:
    """Where a persisted index for this invocation would live, plus the
    expected world key — both computable without loading any archive."""
    if args.archives is not None:
        meta_path = args.archives / "config.json"
        if not meta_path.exists():
            return None, ""
        meta = json.loads(meta_path.read_text())
        config = ScenarioConfig(
            seed=meta["seed"],
            window=DateWindow(
                parse_date(meta["window_start"]),
                parse_date(meta["window_end"]),
            ),
        )
        return args.archives, world_cache_key(config)
    if args.no_cache or args.refresh_cache:
        return None, ""
    config = _SCALES[args.scale](seed=args.seed)
    cache = WorldCache(args.cache_dir)
    return cache.directory_for(config), world_cache_key(config)


def _query_engine(
    args: argparse.Namespace, instr: Instrumentation
) -> QueryEngine:
    """The engine for this invocation's world.

    Fast path: a valid persisted index answers every query, so when one
    exists the world (and its multi-second archive load) is skipped
    entirely — this is what makes daemon restarts cheap.  A torn or
    stale index is evicted here and rebuilt below from the world.
    """
    directory, key = _index_location(args)
    if directory is not None:
        index = load_persisted_index(
            directory, expected_key=key, instrumentation=instr
        )
        if index is not None:
            instr.annotate(
                "query_index",
                {"status": "hit", "directory": str(directory)},
            )
            return QueryEngine(index, instrumentation=instr)
    world, directory = _resolve_world(
        args, instr, jobs=_resolve_jobs_arg(args)
    )
    instr.annotate("query_index", {"status": "build"})
    return QueryEngine.for_world(
        world,
        directory=directory,
        key=world_cache_key(world.config),
        instrumentation=instr,
    )


def _status_table(statuses) -> str:
    """Aligned text table for ``query --format table``."""
    header = (
        "prefix", "on", "drop", "sbl", "irr", "rpki", "bgp", "peers"
    )
    rows = [header]
    for status in statuses:
        rows.append(
            (
                str(status.prefix),
                status.on.isoformat(),
                "listed" if status.drop_listed else "-",
                status.drop_sbl_id or "-",
                (
                    "exact"
                    if status.irr_exact
                    else "covered" if status.irr_registered else "-"
                ),
                (
                    status.rpki_validity
                    or ("covered" if status.roa_covered else "-")
                ),
                (
                    "announced"
                    if status.announced
                    else "covered" if status.covered_by_route else "-"
                ),
                f"{status.visible_peers}/{status.total_peers}",
            )
        )
    widths = [max(len(row[i]) for row in rows) for i in range(len(header))]
    return "\n".join(
        "  ".join(cell.ljust(width) for cell, width in zip(row, widths)).rstrip()
        for row in rows
    )


def _cmd_query(args: argparse.Namespace) -> int:
    instr = Instrumentation()
    try:
        default_day = parse_date(args.on) if args.on else None
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return ExitCode.USAGE
    # Positional prefixes are validated as one batch too: a command
    # line with three typos reports all three, not just the first.
    prefix_errors: list[tuple[int, str, str]] = []
    prefixes: list[IPv4Prefix] = []
    for position, text in enumerate(args.prefixes):
        try:
            prefixes.append(IPv4Prefix.parse(text))
        except PrefixError as error:
            prefix_errors.append((position, text, str(error)))
    if prefix_errors:
        print(f"error: {BatchParseError(prefix_errors)}", file=sys.stderr)
        return ExitCode.USAGE
    if not prefixes and not args.stdin:
        print(
            "nothing to query: pass PREFIX arguments or --stdin",
            file=sys.stderr,
        )
        return ExitCode.USAGE
    with profiled(args.profile, "query-engine"):
        engine = _query_engine(args, instr)
    resolved_day = default_day if default_day is not None else engine.default_day
    queries = [(prefix, resolved_day) for prefix in prefixes]
    if args.stdin:
        lines = [
            line.strip()
            for line in sys.stdin
            if line.strip() and not line.strip().startswith("#")
        ]
        try:
            queries.extend(
                parse_query_batch(lines, default_day=resolved_day)
            )
        except BatchParseError as error:
            print(f"error: {error}", file=sys.stderr)
            return ExitCode.USAGE
    with profiled(args.profile, "lookups"):
        statuses = engine.lookup_many(queries)
    if args.format == "table":
        print(_status_table(statuses))
    else:
        for status in statuses:
            print(json.dumps(status.to_dict(), sort_keys=True))
    _emit_timings(args, instr, sys.stderr)
    _export_trace(args, instr)
    return ExitCode.OK


def _build_ingestor(args: argparse.Namespace, instr: Instrumentation):
    """The incremental-mode :class:`~repro.ingest.Ingestor`, or a usage
    error message.  Incremental mode always loads the world (the as-of
    view must be rebuilt from the archives; the persisted full-knowledge
    index cannot answer for an earlier day)."""
    from .ingest import Ingestor

    try:
        as_of = parse_date(args.as_of) if args.as_of else None
    except ValueError as error:
        return None, f"bad --as-of: {error}"
    world, _directory = _resolve_world(
        args, instr, jobs=_resolve_jobs_arg(args)
    )
    window = world.window
    start_day = as_of if as_of is not None else window.start
    if not window.start <= start_day <= window.end:
        return None, (
            f"--as-of {start_day} outside the world window "
            f"[{window.start}, {window.end}]"
        )
    return (
        Ingestor(
            world,
            key=world_cache_key(world.config),
            start_day=start_day,
            state_dir=args.state_dir,
            instrumentation=instr,
            webhook_url=args.webhook,
        ),
        None,
    )


def _cmd_serve(args: argparse.Namespace) -> int:
    instr = Instrumentation()
    ingestor = None
    incremental = (
        args.as_of is not None
        or args.state_dir is not None
        or args.webhook is not None
    )
    if incremental:
        with profiled(args.profile, "ingest-base"):
            ingestor, problem = _build_ingestor(args, instr)
        if ingestor is None:
            print(f"error: {problem}", file=sys.stderr)
            return ExitCode.USAGE
        engine = ingestor.engine
    else:
        with profiled(args.profile, "query-engine"):
            engine = _query_engine(args, instr)
    try:
        if args.use_async:
            # Hot reload re-resolves the world source exactly like a
            # fresh `serve` would (picking up changed archives or a
            # refreshed cache entry), reusing the daemon's
            # instrumentation so the counters and the registry stay
            # unified across swaps.
            # Hot reload and incremental ingest both swap the engine;
            # running both would let a reload silently discard applied
            # deltas, so incremental mode disables the reload factory.
            server = AsyncQueryServer(
                engine,
                args.host,
                args.port,
                workers=args.workers,
                reload_factory=(
                    None
                    if ingestor is not None
                    else lambda: _query_engine(args, instr)
                ),
                ingestor=ingestor,
            )
            server.start()
            mode = f"async, {args.workers} workers"
            if ingestor is None:
                mode += ", SIGHUP//v1/admin/reload"
        else:
            server = QueryServer(
                engine, args.host, args.port, ingestor=ingestor
            )
            mode = "threaded"
    except OSError as error:
        print(f"error: cannot bind {args.host}:{args.port}: {error}",
              file=sys.stderr)
        return ExitCode.FAILURE
    server.install_signal_handlers()
    host, port = server.server_address[:2]
    sizes = engine.index.sizes()
    endpoints = "/v1/status, /v1/batch, /healthz, /metrics"
    extra = ""
    if ingestor is not None:
        endpoints += ", /v1/watch, /v1/ingest"
        extra = f"; incremental as of {ingestor.as_of}"
    print(
        f"serving http://{host}:{port} "
        f"({endpoints}; {mode}{extra}); "
        f"{sizes['drop_prefixes']} DROP / {sizes['roa_prefixes']} ROA / "
        f"{sizes['irr_prefixes']} IRR / {sizes['route_prefixes']} BGP "
        f"prefixes indexed",
        file=sys.stderr,
    )
    server.serve_until_shutdown()
    served = {
        name: count
        for name, count in sorted(instr.counters.items())
        if name.startswith("serve_") and name.endswith("_requests")
    }
    summary = ", ".join(f"{k.removeprefix('serve_').removesuffix('_requests')}="
                        f"{v}" for k, v in served.items()) or "no requests"
    print(f"drained cleanly ({summary})", file=sys.stderr)
    _emit_timings(args, instr, sys.stderr)
    _export_trace(args, instr)
    return ExitCode.OK


def _cmd_ingest(args: argparse.Namespace) -> int:
    """Advance a world's incremental state from the command line.

    The offline twin of ``POST /v1/ingest``: builds (or recovers, via
    ``--state-dir``) the as-of state, applies daily deltas through the
    requested day, and prints one line per applied day.
    """
    from datetime import timedelta

    from .ingest import IngestError

    instr = Instrumentation()
    if args.to is not None and args.days is not None:
        print("error: pass --to or --days, not both", file=sys.stderr)
        return ExitCode.USAGE
    try:
        to_day = parse_date(args.to) if args.to else None
    except ValueError as error:
        print(f"error: bad --to: {error}", file=sys.stderr)
        return ExitCode.USAGE
    with profiled(args.profile, "ingest-base"):
        ingestor, problem = _build_ingestor(args, instr)
    if ingestor is None:
        print(f"error: {problem}", file=sys.stderr)
        return ExitCode.USAGE
    if args.days is not None:
        to_day = ingestor.as_of + timedelta(days=args.days)
    try:
        with profiled(args.profile, "ingest-advance"):
            results = ingestor.advance(to_day=to_day)
    except IngestError as error:
        print(f"error: {error}", file=sys.stderr)
        return ExitCode.FAILURE
    for result in results:
        if args.format == "json":
            print(json.dumps(result.to_dict(), sort_keys=True))
        else:
            print(
                f"{result.day}: applied {result.applied} delta events, "
                f"{result.events} watch events"
            )
    status = ingestor.status()
    print(
        f"ingested through {status['as_of']} "
        f"({status['days_applied']} days since {status['base_day']}, "
        f"window ends {status['window_end']})",
        file=sys.stderr,
    )
    _emit_timings(args, instr, sys.stderr)
    _export_trace(args, instr)
    return ExitCode.OK


def _rates_arg(value: str) -> tuple[float, ...]:
    """A comma-separated list of rates in [0, 1] (e.g. ``0,0.5,0.9``)."""
    try:
        rates = tuple(float(piece) for piece in value.split(","))
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"invalid rate list: {value!r} (want e.g. 0,0.5,0.9)"
        ) from None
    for rate in rates:
        if not 0.0 <= rate <= 1.0:
            raise argparse.ArgumentTypeError(
                f"rate {rate:g} not in [0, 1]"
            )
    return rates


def _sweep_spec(args: argparse.Namespace) -> SweepSpec:
    """The sweep to run: ``--spec FILE`` wins, else the axis flags."""
    if args.spec is not None:
        return SweepSpec.from_json(args.spec.read_text())
    overrides = {
        "name": args.name,
        "scale": args.scale,
        "seed": args.seed,
        "families": tuple(args.family) if args.family else None,
        "attack_count": args.attack_count,
        "rov_rates": args.rov_rates,
        "drop_rates": args.drop_rates,
        "route_server_rates": args.rs_rates,
        "listing_delay_days": args.listing_delay,
        "sample": args.sample,
        "sample_seed": args.sample_seed,
    }
    return SweepSpec(
        **{key: value for key, value in overrides.items() if value is not None}
    )


def _finish_sweep(outcome, instr: Instrumentation) -> int:
    """Per-cell exit policy: 1 all failed, 3 some failed (kinds on
    stderr), else the shared degraded-counter check."""
    for cell in outcome.failed:
        print(
            f"cell {cell.name} failed ({cell.kind}): {cell.error}",
            file=sys.stderr,
        )
    degraded = {
        name: instr.counters[name]
        for name in _DEGRADED_COUNTERS
        if instr.counters.get(name)
    }
    if degraded:
        details = ", ".join(f"{k}={v}" for k, v in degraded.items())
        print(f"degraded run: {details}", file=sys.stderr)
        for message in instr.warnings:
            print(f"  - {message}", file=sys.stderr)
    if outcome.failed:
        if len(outcome.failed) == len(outcome.cells):
            print("sweep failed: every cell failed", file=sys.stderr)
            return ExitCode.FAILURE
        print(
            f"sweep degraded: {len(outcome.failed)}/{len(outcome.cells)} "
            f"cells failed",
            file=sys.stderr,
        )
        return ExitCode.DEGRADED
    return ExitCode.DEGRADED if degraded else ExitCode.OK


def _cmd_sweep(args: argparse.Namespace) -> int:
    instr = Instrumentation()
    started = perf_counter()
    try:
        spec = _sweep_spec(args)
    except (SweepSpecError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return ExitCode.USAGE
    jobs = _resolve_jobs_arg(args)
    instr.annotate("jobs", jobs)
    instr.annotate("sweep_spec", spec.canonical_dict())
    try:
        with profiled(args.profile, "sweep"):
            outcome = run_sweep(
                spec,
                jobs=jobs,
                cache_root=args.cache_dir,
                refresh=args.refresh_cache,
                instrumentation=instr,
            )
    except Exception as error:
        # Planning or collection died (e.g. an injected fault at
        # sweep.plan / sweep.collect): no per-cell story to tell.
        print(f"error: sweep failed: {error}", file=sys.stderr)
        return ExitCode.FAILURE
    instr.annotate("wall_seconds", round(perf_counter() - started, 6))
    payload = json.dumps(outcome.report, indent=2, sort_keys=True)
    if args.out is not None:
        args.out.write_text(payload + "\n")
    if args.format == "table":
        print(render_sweep_table(outcome.report))
    else:
        print(payload)
    status = _finish_sweep(outcome, instr)
    _emit_timings(args, instr, sys.stderr)
    _export_trace(args, instr)
    return status


def _cmd_markdown(args: argparse.Namespace) -> int:
    outcome, instr = _run_selected(args, list(EXPERIMENTS))
    print(render_markdown(list(outcome.reports)))
    status = _finish(outcome, instr)
    _emit_timings(args, instr, sys.stderr)
    _export_trace(args, instr)
    return status


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-drop",
        description="Reproduce 'Stop, DROP, and ROA' (IMC 2022).",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    build_cmd = commands.add_parser(
        "build", help="generate a world and write its archives to disk"
    )
    build_cmd.add_argument("--scale", choices=sorted(_SCALES),
                           default="tiny")
    build_cmd.add_argument("--seed", type=int, default=2022)
    build_cmd.add_argument("--out", type=Path, required=True)
    build_cmd.add_argument(
        "--drop-step-days", type=int, default=7,
        help="DROP snapshot interval in days (default: weekly)",
    )
    build_cmd.add_argument(
        "--jobs", type=_jobs_arg, default=None,
        help="world-build worker processes; 0 = one per CPU "
        "(default: $REPRO_JOBS or 1)",
    )
    build_cmd.set_defaults(func=_cmd_build)

    list_cmd = commands.add_parser(
        "list", help="list registered experiment ids"
    )
    list_cmd.set_defaults(func=_cmd_list)

    report_cmd = commands.add_parser(
        "report", help="run experiments and print paper-vs-measured"
    )
    _add_world_source(report_cmd)
    report_cmd.add_argument(
        "--exp", action="append", default=[],
        help="experiment id (repeatable; see 'list')",
    )
    report_cmd.add_argument(
        "--all", action="store_true", help="run every experiment"
    )
    report_cmd.set_defaults(func=_cmd_report)

    markdown_cmd = commands.add_parser(
        "markdown", help="print all experiments as a Markdown report"
    )
    _add_world_source(markdown_cmd)
    markdown_cmd.set_defaults(func=_cmd_markdown)

    query_cmd = commands.add_parser(
        "query",
        help="point-in-time prefix status (DROP/IRR/RPKI/BGP) lookups",
    )
    _add_world_source(query_cmd)
    query_cmd.add_argument(
        "prefixes", nargs="*", metavar="PREFIX",
        help="CIDR prefix to look up (repeatable)",
    )
    query_cmd.add_argument(
        "--on", default=None, metavar="DATE",
        help="point-in-time date, YYYY-MM-DD (default: window end)",
    )
    query_cmd.add_argument(
        "--stdin", action="store_true",
        help="also read 'PREFIX [DATE]' query lines from stdin",
    )
    query_cmd.add_argument(
        "--format", choices=("json", "table"), default="json",
        help="output format (default: json, one object per line)",
    )
    query_cmd.set_defaults(func=_cmd_query)

    serve_cmd = commands.add_parser(
        "serve",
        help="HTTP daemon for point-in-time lookups "
        "(/v1/status, /v1/batch, /healthz, /metrics; --as-of adds "
        "/v1/watch and /v1/ingest)",
    )
    _add_world_source(serve_cmd)
    serve_cmd.add_argument("--host", default="127.0.0.1")
    serve_cmd.add_argument("--port", type=int, default=8765)
    serve_cmd.add_argument(
        "--async", dest="use_async", action="store_true",
        help="asyncio multi-worker tier: SO_REUSEPORT workers, "
        "keep-alive + pipelining, SIGHUP//v1/admin/reload hot reload",
    )
    serve_cmd.add_argument(
        "--workers", type=_workers_arg, default=2,
        help="async worker event loops (default: 2; ignored without "
        "--async)",
    )
    _add_ingest_state(serve_cmd)
    serve_cmd.set_defaults(func=_cmd_serve)

    ingest_cmd = commands.add_parser(
        "ingest",
        help="advance a world's incremental state day by day "
        "(the offline twin of POST /v1/ingest)",
    )
    _add_world_source(ingest_cmd)
    _add_ingest_state(ingest_cmd)
    ingest_cmd.add_argument(
        "--days", type=int, default=None, metavar="N",
        help="apply N daily deltas (default: 1)",
    )
    ingest_cmd.add_argument(
        "--to", default=None, metavar="DATE",
        help="apply daily deltas through DATE (YYYY-MM-DD)",
    )
    ingest_cmd.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="per-day output format (default: text)",
    )
    ingest_cmd.set_defaults(func=_cmd_ingest)

    sweep_cmd = commands.add_parser(
        "sweep",
        help="fan a grid of attack/defense scenarios across workers "
        "and emit defense-effectiveness curves",
    )
    sweep_cmd.add_argument(
        "--spec", type=Path, default=None, metavar="FILE",
        help="sweep spec JSON (wins over the axis flags below)",
    )
    sweep_cmd.add_argument(
        "--name", default=None, help="sweep name (default: sweep)"
    )
    sweep_cmd.add_argument(
        "--scale", choices=sorted(_SCALES), default=None,
        help="world scale per cell (default: tiny)",
    )
    sweep_cmd.add_argument(
        "--seed", type=int, default=None, help="generator seed per cell"
    )
    sweep_cmd.add_argument(
        "--family", action="append", default=None, metavar="FAMILY",
        help="attack family (repeatable; default: prefix-hijack, "
        "subprefix-hijack, roa-downgrade; also: maxlength-abuse, "
        "as0-misconfig)",
    )
    sweep_cmd.add_argument(
        "--attack-count", type=int, default=None, metavar="N",
        help="attack instances per cell (default: 4)",
    )
    sweep_cmd.add_argument(
        "--rov-rates", type=_rates_arg, default=None, metavar="R,R,...",
        help="ROV deployment rates to sweep (default: 0,0.5)",
    )
    sweep_cmd.add_argument(
        "--drop-rates", type=_rates_arg, default=None, metavar="R,R,...",
        help="DROP subscription rates to sweep (default: 0)",
    )
    sweep_cmd.add_argument(
        "--rs-rates", type=_rates_arg, default=None, metavar="R,R,...",
        help="route-server filtering rates to sweep (default: 0)",
    )
    sweep_cmd.add_argument(
        "--listing-delay", type=int, default=None, metavar="DAYS",
        help="days from attack to DROP listing (default: 7)",
    )
    sweep_cmd.add_argument(
        "--sample", type=int, default=None, metavar="N",
        help="run a seeded random N-cell sample of the grid",
    )
    sweep_cmd.add_argument(
        "--sample-seed", type=int, default=None,
        help="seed for --sample (default: 0)",
    )
    sweep_cmd.add_argument(
        "--jobs", type=_jobs_arg, default=None,
        help="worker processes for the cells; 0 = one per CPU "
        "(default: $REPRO_JOBS or 1)",
    )
    sweep_cmd.add_argument(
        "--cache-dir", type=Path, default=None,
        help="world cache root (default: $REPRO_CACHE_DIR or "
        "~/.cache/repro-drop)",
    )
    sweep_cmd.add_argument(
        "--refresh-cache", action="store_true",
        help="rebuild every cell and overwrite its cache entry",
    )
    sweep_cmd.add_argument(
        "--out", type=Path, default=None, metavar="FILE",
        help="also write the report JSON to FILE",
    )
    sweep_cmd.add_argument(
        "--format", choices=("table", "json"), default="table",
        help="stdout format (default: table)",
    )
    sweep_cmd.add_argument(
        "--timings", action="store_true",
        help="emit stage timings JSON to stderr",
    )
    sweep_cmd.add_argument(
        "--timings-out", type=Path, default=None,
        help="also write the timings JSON to FILE",
    )
    sweep_cmd.add_argument(
        "--trace", type=Path, default=None, metavar="PATH",
        help="append the run's span tree as JSONL to PATH "
        "(default: $REPRO_TRACE, if set)",
    )
    sweep_cmd.add_argument(
        "--profile", action="store_true",
        help="cProfile the sweep and print hot spots to stderr",
    )
    sweep_cmd.set_defaults(func=_cmd_sweep)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
