"""Synthetic world generation (the paper's archives, simulated)."""

from .archive import load_world, save_world
from .builder import SpaceCarver, WorldBuilder, build_world
from .config import RegionProfile, ScenarioConfig
from .topology import AsTopology
from .world import CaseStudyTruth, DropTruth, GroundTruth, World

__all__ = [
    "AsTopology",
    "CaseStudyTruth",
    "DropTruth",
    "GroundTruth",
    "RegionProfile",
    "ScenarioConfig",
    "SpaceCarver",
    "World",
    "WorldBuilder",
    "build_world",
    "load_world",
    "save_world",
]
