"""Binary world-store costs: open latency and per-worker memory.

Two entry points share the measurement code, mirroring
``bench_world_build.py``:

* pytest-benchmark functions (``bench_store_index_load``,
  ``bench_store_index_lookups``) picked up with the rest of the bench
  suite, and
* a standalone mode — ``python benchmarks/bench_store.py --scale paper
  --out BENCH_store.json --check`` — recording this PR's acceptance
  numbers as a JSON artifact: query-index and substrate open latency
  (JSON parse-and-rebuild vs binary mmap, best of N), per-worker
  incremental private RSS across four forked workers exercising the
  engine (materialized object graph vs zero-copy views over shared
  file-backed pages), and a byte-identity check of the query output
  between the two paths.  ``--smoke`` shrinks everything for CI;
  ``--check`` enforces the paper-scale gates: binary index open ≥10×
  faster, per-worker RSS ≥5× smaller, outputs byte-identical.
"""

import argparse
import gc
import json
import os
import sys
from pathlib import Path
from time import perf_counter

from repro.analysis.substrate import (
    AnalysisSubstrate,
    load_substrate_file,
)
from repro.query import QueryEngine, load_index, save_index
from repro.runtime import WorldCache
from repro.store.index import load_store_index
from repro.store.substrate import load_store_substrate
from repro.synth import ScenarioConfig

_SCALES = {
    "tiny": ScenarioConfig.tiny,
    "small": ScenarioConfig.small,
    "paper": ScenarioConfig.paper,
}

#: Binary index open must beat the JSON parse-and-rebuild by this much.
LOAD_SPEEDUP_TARGET = 10.0

#: Forked workers on the mmap view must dirty this much less private RSS.
RSS_REDUCTION_TARGET = 5.0

#: Forked worker fan-out for the RSS measurement.
WORKERS = 4


# ---------------------------------------------------------------------------
# pytest-benchmark entry points
# ---------------------------------------------------------------------------


def bench_store_index_load(benchmark, world, tmp_path_factory):
    from repro.query import build_index

    directory = tmp_path_factory.mktemp("store-bench")
    index = build_index(world)
    save_index(index, directory)
    view = benchmark(load_store_index, directory, expected_key="")
    assert view.sizes() == index.sizes()


def bench_store_index_lookups(benchmark, world, tmp_path_factory):
    from repro.query import build_index

    directory = tmp_path_factory.mktemp("store-bench-lookups")
    index = build_index(world)
    save_index(index, directory)
    view = load_store_index(directory, expected_key="")
    engine = QueryEngine(view)
    prefixes = _sample_prefixes(view)
    day = view.window.end

    def run():
        return [engine.lookup(p, day) for p in prefixes]

    results = benchmark(run)
    assert len(results) == len(prefixes)


# ---------------------------------------------------------------------------
# standalone artifact mode
# ---------------------------------------------------------------------------


def _sample_prefixes(index, stride: int = 1):
    prefixes = [p for i, p in enumerate(index.drop) if i % (7 * stride) == 0]
    prefixes += [
        p for i, p in enumerate(index.routes) if i % (41 * stride) == 0
    ]
    prefixes += [p for i, p in enumerate(index.roa) if i % (19 * stride) == 0]
    return prefixes


def _best_seconds(fn, *, repeat: int = 5) -> float:
    best = float("inf")
    for _ in range(repeat):
        started = perf_counter()
        fn()
        best = min(best, perf_counter() - started)
    return best


def _private_rss_bytes() -> int:
    """This process's private (unshared) resident bytes, from ``/proc``.

    ``Private_Clean + Private_Dirty`` out of ``smaps_rollup`` is the
    honest per-worker currency: right after ``fork`` every inherited
    page is *shared* with the parent, and a page only turns private
    when the worker copy-on-write-dirties it (refcounts and GC walks
    over the materialized JSON index) — while the binary store's mmap
    pages are file-backed and stay shared however often they are read.
    (Plain ``RssAnon`` cannot see this: the inherited pages already
    count toward it at fork, and a CoW copy does not change the count.)
    """
    total = 0
    for line in Path("/proc/self/smaps_rollup").read_text().splitlines():
        if line.startswith(("Private_Clean:", "Private_Dirty:")):
            total += int(line.split()[1]) * 1024
    return total


def _exercise(index, rounds: int = 2) -> int:
    """What a warm serving worker does: engine lookups plus a GC pass.

    The explicit ``gc.collect()`` is part of the workload on purpose:
    any long-running CPython worker runs collections, and a collection
    walks (and so copy-on-write-dirties) every inherited object — the
    exact cost the zero-copy store avoids.
    """
    engine = QueryEngine(index)
    total = 0
    for _ in range(rounds):
        for prefix in _sample_prefixes(index):
            for day in (index.window.start, index.window.end):
                total += len(engine.lookup(prefix, day).to_dict())
        gc.collect()
    return total


def _fork_worker_rss_delta(index) -> int:
    """Fork one worker, exercise ``index`` in it, return its private-RSS delta."""
    read_fd, write_fd = os.pipe()
    pid = os.fork()
    if pid == 0:  # worker
        status = 1
        try:
            os.close(read_fd)
            gc.collect()
            before = _private_rss_bytes()
            _exercise(index)
            delta = _private_rss_bytes() - before
            os.write(write_fd, str(delta).encode())
            status = 0
        finally:
            os._exit(status)
    os.close(write_fd)
    with os.fdopen(read_fd, "rb") as reply:
        data = reply.read()
    _, exit_status = os.waitpid(pid, 0)
    if exit_status != 0 or not data:
        raise RuntimeError(f"RSS worker failed (status {exit_status})")
    return int(data)


def _mean_worker_rss(index, workers: int = WORKERS) -> int:
    deltas = [_fork_worker_rss_delta(index) for _ in range(workers)]
    return sum(deltas) // len(deltas)


def _engine_outputs(index) -> str:
    engine = QueryEngine(index)
    rows = []
    for prefix in _sample_prefixes(index):
        for day in (index.window.start, index.window.end):
            rows.append(
                json.dumps(engine.lookup(prefix, day).to_dict(),
                           sort_keys=True)
            )
    return "\n".join(rows)


def store_columns(directory: Path, key: str) -> dict:
    """The load-time and RSS-per-worker columns, for both artifacts.

    Shared with ``bench_world_build.py`` so ``BENCH_world.json`` carries
    the same columns as ``BENCH_store.json``.  Call with no world (or
    other large object graph) live in the parent: the forked workers'
    GC pass dirties every inherited object, which would inflate both
    paths' deltas and compress the ratio.
    """
    json_seconds = _best_seconds(
        lambda: load_index(directory, expected_key=key)
    )
    store_seconds = _best_seconds(
        lambda: load_store_index(directory, expected_key=key)
    )
    gc.collect()
    json_index = load_index(directory, expected_key=key)
    rss_json = _mean_worker_rss(json_index)
    del json_index
    gc.collect()
    store_view = load_store_index(directory, expected_key=key)
    rss_store = _mean_worker_rss(store_view)
    del store_view
    return {
        "index_load_json_seconds": round(json_seconds, 4),
        "index_load_store_seconds": round(store_seconds, 4),
        "worker_rss_json_bytes": rss_json,
        "worker_rss_store_bytes": rss_store,
    }


def run(scale: str, *, out: Path | None) -> dict:
    config = _SCALES[scale]()
    outcome = WorldCache().fetch(config)
    directory, key = outcome.directory, outcome.key

    # Ensure both formats are persisted in the cache entry: save_index
    # writes the JSON artifact and its binary sibling; warming the
    # substrate persists analysis-substrate.{json,bin}.
    from repro.query import build_index

    index = build_index(outcome.world, key=key)
    save_index(index, directory)
    AnalysisSubstrate(outcome.world, directory=directory, key=key).warm()
    del index
    outcome = None  # drop the world before the memory phase
    gc.collect()

    # -- byte identity: the two paths answer identically -----------------
    json_index = load_index(directory, expected_key=key)
    store_view = load_store_index(directory, expected_key=key)
    outputs_identical = _engine_outputs(json_index) == _engine_outputs(
        store_view
    )
    del json_index, store_view
    gc.collect()

    # -- open latency + per-worker memory (shared with bench_world) ------
    columns = store_columns(directory, key)
    json_substrate_seconds = _best_seconds(
        lambda: load_substrate_file(directory, expected_key=key)
    )
    store_substrate_seconds = _best_seconds(
        lambda: load_store_substrate(directory, expected_key=key)
    )
    index_speedup = (
        columns["index_load_json_seconds"]
        / (columns["index_load_store_seconds"] or 0.0001)
    )
    substrate_speedup = json_substrate_seconds / store_substrate_seconds
    rss_json = columns["worker_rss_json_bytes"]
    rss_store = columns["worker_rss_store_bytes"]
    # At tiny scale both deltas can round to zero pages; report None
    # rather than an Infinity that is not valid JSON.
    rss_reduction = rss_json / rss_store if rss_store else None

    payload = {
        "scale": scale,
        "workers": WORKERS,
        **columns,
        "index_load_speedup": round(index_speedup, 1),
        "substrate_load_json_seconds": round(json_substrate_seconds, 4),
        "substrate_load_store_seconds": round(store_substrate_seconds, 4),
        "substrate_load_speedup": round(substrate_speedup, 1),
        "worker_rss_reduction": (
            None if rss_reduction is None else round(rss_reduction, 1)
        ),
        "query_outputs_identical": outputs_identical,
        "meets_targets": {
            "index_load_speedup_10x": index_speedup >= LOAD_SPEEDUP_TARGET,
            "worker_rss_reduction_5x": (
                rss_reduction is not None
                and rss_reduction >= RSS_REDUCTION_TARGET
            ),
            "query_outputs_identical": outputs_identical,
        },
    }
    if out is not None:
        out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return payload


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=sorted(_SCALES), default="tiny")
    parser.add_argument("--smoke", action="store_true",
                        help="CI mode: force the tiny scale")
    parser.add_argument("--out", type=Path, default=None,
                        help="write the JSON artifact to FILE")
    parser.add_argument("--check", action="store_true",
                        help="exit 1 unless byte identity holds (and, at "
                             "paper scale, the 10x load / 5x RSS targets)")
    args = parser.parse_args(argv)
    scale = "tiny" if args.smoke else args.scale
    payload = run(scale, out=args.out)
    print(json.dumps(payload, indent=2, sort_keys=True))
    targets = dict(payload["meets_targets"])
    if scale != "paper":
        # The 10x/5x headlines are paper-scale promises: a tiny index
        # opens in microseconds either way and fixed costs dominate.
        targets.pop("index_load_speedup_10x")
        targets.pop("worker_rss_reduction_5x")
    if args.check and not all(targets.values()):
        print("world store targets missed", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
