"""Advance the query index and analysis substrate by one day's delta.

:func:`apply_delta` is the incremental counterpart of a full
:func:`~repro.query.index.build_index` +
:func:`~repro.analysis.substrate.compute_roa_status` rebuild: given the
as-of-day-(D-1) state and day D's :class:`~repro.ingest.delta
.DeltaBatch`, it produces the as-of-day-D state — copy-on-write over
the touched tries, the same discipline as ``World.fork()``.  The
previous index is never mutated: touched tries are O(1)
:meth:`~repro.net.radix.RadixTree.fork` snapshots that path-copy only
the nodes a write descends through, untouched subtrees and every
shared bucket list stay the old index's, and every modified bucket is
replaced wholesale — so readers holding the old index (in-flight
requests during a ``ServerCore`` state swap) keep a coherent view
forever.

The identity rule — K sequential ``apply_delta`` calls land on exactly
the outputs of one cold :func:`~repro.ingest.asof.build_index_as_of` /
:func:`~repro.ingest.asof.compute_roa_status_as_of` of the final day —
is pinned by the golden tests in ``tests/ingest/``.  Identity is
defined over *outputs* (query responses, report payloads), all of which
are set- or sorted-tuple-valued: the incremental path may intern new
observer sets at the end of the table and append new entries at the end
of a bucket, where a cold build might number and order them
differently, without any observable difference.

A fired ``ingest.apply`` fault (or any mid-apply failure) raises before
the substrate is touched, so the caller's previous state keeps serving
— eviction, not poisoning, matching the ``base.*`` precedent.
"""

from __future__ import annotations

from dataclasses import replace
from datetime import date
from typing import Callable, TypeVar

from ..analysis.roa_status import (
    RoaStatusPoint,
    RoaStatusResult,
    default_sample_days,
)
from ..analysis.substrate import AnalysisSubstrate
from ..errors import ReproError
from ..net.prefix import IPv4Prefix
from ..net.prefixset import PrefixSet
from ..net.radix import PrefixTrie
from ..obs import Instrumentation
from ..query.index import DropEntry, QueryIndex, RoaEntry, RouteEntry
from ..net.asn import AS0
from ..rirstats.rirs import ALL_RIRS
from ..rpki.tal import TalSet
from ..runtime.faults import fault_point
from .delta import DeltaBatch

__all__ = ["IngestError", "apply_delta"]

E = TypeVar("E")


class IngestError(ReproError, RuntimeError):
    """A delta that cannot be applied to the current state.

    Raised when a batch references an entry the index does not hold
    open (a removal without its listing, a withdrawal without its
    route) — the sign of a day applied twice, skipped, or out of
    order.  The previous state is left fully intact.
    """

    code = "ingest.failed"


def _close_entry(
    trie: PrefixTrie,
    prefix: IPv4Prefix,
    match: Callable[[E], bool],
    close: Callable[[E], E],
    what: str,
) -> None:
    """Replace the first matching open entry in ``prefix``'s bucket.

    The bucket list is rebuilt, never mutated — the old index may share
    it.
    """
    bucket = trie.get(prefix)
    if bucket is not None:
        for position, entry in enumerate(bucket):
            if match(entry):
                fresh = list(bucket)
                fresh[position] = close(entry)
                trie.insert(prefix, fresh)
                return
    raise IngestError(f"no open {what} entry for {prefix} to close")


def _append_entry(trie: PrefixTrie, prefix: IPv4Prefix, entry) -> None:
    """Append to ``prefix``'s bucket copy-on-write."""
    bucket = trie.get(prefix)
    if bucket is None:
        trie.insert(prefix, [entry])
    else:
        trie.insert(prefix, [*bucket, entry])


def apply_delta(
    index: QueryIndex,
    substrate: AnalysisSubstrate | None,
    batch: DeltaBatch,
    *,
    instrumentation: Instrumentation | None = None,
) -> QueryIndex:
    """One day's batch applied to the as-of state; returns the new index.

    ``substrate`` (optional) is advanced in place: its memoized query
    index is swapped to the new one, and — when a memoized Figure 5
    result is present, i.e. the caller seeded it with
    :func:`~repro.ingest.asof.compute_roa_status_as_of` — the result
    gains the batch day's sample point whenever that day sits on the
    Figure 5 grid, with the end-state breakdowns recomputed there.
    The substrate is never persisted from here: incremental state is
    partial knowledge and must not overwrite the full-knowledge
    artifacts in the world's cache entry.
    """
    instr = instrumentation or Instrumentation()
    day = batch.day
    with instr.stage("ingest-apply", group="ingest"):
        fault_point("ingest.apply", instrumentation=instr)
        fresh = QueryIndex(
            window=index.window,
            total_peers=index.total_peers,
            key=index.key,
            generator=index.generator,
        )
        # IRR is a journaled registry — fully known up front, never
        # touched by deltas — so the trie is shared outright.
        fresh.irr = index.irr

        touched_drop = bool(batch.drop_added or batch.drop_removed)
        fresh.drop = index.drop.fork() if touched_drop else index.drop
        for prefix, added, sbl_id in batch.drop_removed:
            _close_entry(
                fresh.drop,
                prefix,
                lambda e, a=added, s=sbl_id: (
                    e.added == a and e.removed is None and e.sbl_id == s
                ),
                lambda e: replace(e, removed=day),
                "DROP",
            )
        for prefix, sbl_id in batch.drop_added:
            _append_entry(fresh.drop, prefix, DropEntry(day, None, sbl_id))

        touched_roa = bool(batch.roa_added or batch.roa_removed)
        fresh.roa = index.roa.fork() if touched_roa else index.roa
        for prefix, asn, max_length, anchor, created in batch.roa_removed:
            _close_entry(
                fresh.roa,
                prefix,
                lambda e, a=asn, m=max_length, t=anchor, c=created: (
                    e.asn == a
                    and e.max_length == m
                    and e.trust_anchor == t
                    and e.created == c
                    and e.removed is None
                ),
                lambda e: replace(e, removed=day),
                "ROA",
            )
        for prefix, asn, max_length, anchor in batch.roa_added:
            _append_entry(
                fresh.roa,
                prefix,
                RoaEntry(asn, max_length, anchor, day, None),
            )

        touched_routes = bool(
            batch.route_started
            or batch.route_ended
            or batch.partial_started
            or batch.partial_ended
        )
        fresh.routes = index.routes.fork() if touched_routes else index.routes
        fresh.observer_sets = (
            list(index.observer_sets)
            if batch.route_started
            else index.observer_sets
        )
        for prefix, origin, start in batch.route_ended:
            _close_entry(
                fresh.routes,
                prefix,
                lambda e, o=origin, s=start: (
                    e.origin == o and e.start == s and e.end is None
                ),
                lambda e: replace(e, end=day),
                "route",
            )
        # Partial matchers deliberately ignore ``end``: a carve-out can
        # start or stop on the very day its route episode closes.
        for prefix, origin, start, peer_id, end in batch.partial_started:
            _close_entry(
                fresh.routes,
                prefix,
                lambda e, o=origin, s=start: e.origin == o and e.start == s,
                lambda e, p=peer_id, pe=end: replace(
                    e, partials=(*e.partials, (p, day, pe))
                ),
                "route (partial start)",
            )
        for prefix, origin, start, peer_id, p_start in batch.partial_ended:
            def _close_partial(e, p=peer_id, ps=p_start):
                partials = list(e.partials)
                for i, (pid, start_, end_) in enumerate(partials):
                    if pid == p and start_ == ps and end_ is None:
                        partials[i] = (pid, start_, day)
                        return replace(e, partials=tuple(partials))
                raise IngestError(
                    f"no open partial for peer {p} on the matched route"
                )

            _close_entry(
                fresh.routes,
                prefix,
                lambda e, o=origin, s=start: e.origin == o and e.start == s,
                _close_partial,
                "route (partial end)",
            )
        if batch.route_started:
            interned = {
                observers: ref
                for ref, observers in enumerate(fresh.observer_sets)
            }
            for started in batch.route_started:
                observers = frozenset(started.observers)
                ref = interned.get(observers)
                if ref is None:
                    ref = len(fresh.observer_sets)
                    interned[observers] = ref
                    fresh.observer_sets.append(observers)
                _append_entry(
                    fresh.routes,
                    started.prefix,
                    RouteEntry(
                        origin=started.origin,
                        start=day,
                        end=started.end,
                        observers_ref=ref,
                        partials=started.partials,
                    ),
                )

        status: RoaStatusResult | None = None
        if substrate is not None and substrate._roa_status is not None:
            status = _advance_roa_status(
                substrate._roa_status, fresh, substrate.world, day
            )
        # Publish last: a failure anywhere above leaves the substrate
        # exactly as it was.
        if substrate is not None:
            substrate._index = fresh
            if status is not None:
                substrate._roa_status = status
    instr.incr("ingest_applied_days")
    instr.incr("ingest_events", len(batch))
    return fresh


# ---------------------------------------------------------------------------
# Figure 5 advance (sample days served from the new index)
# ---------------------------------------------------------------------------


def _signed_from_index(
    index: QueryIndex, day: date, tals: TalSet
) -> tuple[PrefixSet, PrefixSet]:
    """(all ROA-covered space, non-AS0 covered space) from the ROA trie."""
    all_spans = []
    non_as0 = []
    for prefix, bucket in index.roa.items():
        span = (prefix.first, prefix.last + 1)
        for entry in bucket:
            if not entry.active_on(day):
                continue
            if not tals.trusts(entry.trust_anchor):
                continue
            all_spans.append(span)
            if entry.asn != AS0:
                non_as0.append(span)
    return (
        PrefixSet.from_intervals(all_spans),
        PrefixSet.from_intervals(non_as0),
    )


def _routed_from_index(index: QueryIndex, day: date) -> PrefixSet:
    """Announced address space on ``day``, from the route trie."""
    spans = []
    for prefix, bucket in index.routes.items():
        if any(entry.active_on(day) for entry in bucket):
            spans.append((prefix.first, prefix.last + 1))
    return PrefixSet.from_intervals(spans)


def _advance_roa_status(
    result: RoaStatusResult,
    index: QueryIndex,
    world,
    day: date,
) -> RoaStatusResult | None:
    """The Figure 5 result after ``day``, or None when off-grid.

    Replicates :func:`~repro.analysis.roa_status.analyze_roa_status`'s
    set algebra exactly, with the per-day spaces served from the *new*
    index (whose active-on-``day`` view equals full knowledge — only
    later days are clamped) and the fully-known RIR registry.  The
    window end can coincide with a month start, in which case the grid
    holds the day twice and so must the series.
    """
    occurrences = sum(1 for d in default_sample_days(world) if d == day)
    if not occurrences:
        return None
    tals = TalSet.default()
    signed_all, signed_non_as0 = _signed_from_index(index, day, tals)
    allocated = world.resources.allocated_space(day)
    routed = _routed_from_index(index, day)
    signed = signed_all & allocated
    signed_routed = signed & routed
    signed_unrouted = (signed_non_as0 & allocated) - routed
    unsigned_unrouted = (allocated - routed) - signed_all
    point = RoaStatusPoint(
        day=day,
        signed=signed.slash8_equivalents,
        signed_routed=signed_routed.slash8_equivalents,
        signed_unrouted=signed_unrouted.slash8_equivalents,
        allocated_unrouted_unsigned=unsigned_unrouted.slash8_equivalents,
    )
    by_holder: dict[str, float] = {}
    for holder, space in world.resources.holders_of_space(day).items():
        overlap = space & signed_unrouted
        if overlap:
            by_holder[holder] = overlap.slash8_equivalents
    by_rir: dict[str, float] = {}
    for rir in ALL_RIRS:
        overlap = world.resources.allocated_space(day, rir) & unsigned_unrouted
        if overlap:
            by_rir[rir] = overlap.slash8_equivalents
    return RoaStatusResult(
        points=result.points + (point,) * occurrences,
        unrouted_signed_by_holder=by_holder,
        unrouted_unsigned_by_rir=by_rir,
    )
