"""AS0 policy modeling (§2.3.1 / §6.2).

Two distinct AS0 mechanisms exist:

* **Operator AS0** — a resource holder signs its own unrouted prefix with
  an AS0 ROA under its RIR's production TAL.  Validators drop any
  announcement of it by default.
* **RIR AS0** — APNIC (2020-09-02) and LACNIC (2021-06-23) publish AS0
  ROAs for *unallocated* space under separate, non-default TALs, which both
  RIRs recommend using for alerting only.

This module carries the policy timeline constants and the coverage
queries used by Figures 5–7 and §6.2.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import date

from ..net.prefix import IPv4Prefix
from .archive import RoaArchive
from .tal import APNIC_AS0_TAL, LACNIC_AS0_TAL, TalSet

__all__ = [
    "AS0_POLICY_EVENTS",
    "As0PolicyEvent",
    "as0_covered",
    "rir_as0_tal",
    "rir_as0_policy_start",
]


@dataclass(frozen=True, slots=True)
class As0PolicyEvent:
    """One RIR's AS0 policy milestone (Figure 6's vertical markers)."""

    rir: str
    proposed: date | None
    implemented: date | None
    tal: str | None

    @property
    def outcome(self) -> str:
        """A label for reporting: implemented / proposed / none."""
        if self.implemented is not None:
            return "implemented"
        if self.proposed is not None:
            return "proposed"
        return "none"


#: The AS0 policy timeline from §2.3.1.
AS0_POLICY_EVENTS: tuple[As0PolicyEvent, ...] = (
    As0PolicyEvent(
        rir="APNIC",
        proposed=date(2019, 9, 1),  # prop-132 discussion, 2019
        implemented=date(2020, 9, 2),
        tal=APNIC_AS0_TAL,
    ),
    As0PolicyEvent(
        rir="LACNIC",
        proposed=date(2019, 12, 1),  # LAC-2019-12
        implemented=date(2021, 6, 23),
        tal=LACNIC_AS0_TAL,
    ),
    As0PolicyEvent(
        rir="RIPE",
        proposed=date(2019, 10, 22),  # 2019-08, later withdrawn
        implemented=None,
        tal=None,
    ),
    As0PolicyEvent(
        rir="AFRINIC",
        proposed=date(2019, 11, 1),  # 2019-gen-006, not implemented
        implemented=None,
        tal=None,
    ),
    As0PolicyEvent(
        rir="ARIN",
        proposed=None,
        implemented=None,
        tal=None,
    ),
)


def rir_as0_policy_start(rir: str) -> date | None:
    """The day an RIR's AS0 policy went live, if it ever did."""
    for event in AS0_POLICY_EVENTS:
        if event.rir == rir:
            return event.implemented
    raise ValueError(f"unknown RIR {rir!r}")


def rir_as0_tal(rir: str) -> str | None:
    """The AS0 trust anchor an RIR publishes under, if any."""
    for event in AS0_POLICY_EVENTS:
        if event.rir == rir:
            return event.tal
    raise ValueError(f"unknown RIR {rir!r}")


def as0_covered(
    archive: RoaArchive,
    prefix: IPv4Prefix,
    day: date,
    tals: TalSet | None = None,
) -> bool:
    """True if an AS0 ROA under a trusted TAL covers ``prefix`` on ``day``.

    With the default TAL set this captures *operator* AS0 only; pass
    :meth:`TalSet.with_as0` to include the RIR AS0 TALs.
    """
    tals = tals or TalSet.default()
    return any(
        record.roa.is_as0
        for record in archive.covering(prefix, day, tals)
    )
