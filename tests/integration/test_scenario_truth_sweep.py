"""Truth-consistency sweep for the DSL attack/defense families, 5 seeds.

Composes every new scenario family with all three defenses over five
seeds and cross-checks the built world against the director's
:class:`~repro.scenarios.compose.ScenarioTruth` — the same discipline
as ``test_truth_sweep.py`` for the base generator:

* hijacked prefixes actually appear hijacked (an attack-origin route
  interval is active on the attack day);
* every attack's RFC 6811 state matches the family's intent
  (``invalid`` for the hijacks, ``not-found`` for the stale-ROA
  downgrade, ``valid`` for the maxLength abuse);
* realized defense deployment equals the requested rate exactly
  (quota draws, not Bernoulli);
* ROV/route-server peers miss exactly the invalid announcements, DROP
  subscribers stop carrying listed prefixes after the listing day.
"""

import pytest

from repro.rpki.validation import RouteValidity, validate_route
from repro.scenarios import (
    As0Misconfig,
    DropSubscription,
    MaxLengthAbuse,
    PrefixHijack,
    RoaDowngrade,
    RouteServerFiltering,
    RovDeployment,
    Scenario,
    SubPrefixHijack,
    WorldScale,
    build_scenario_world,
    evaluate_scenario,
)

SEEDS = (3, 7, 42, 1234, 987654)

ROV_RATE = 0.4
RS_RATE = 0.2
DROP_RATE = 0.5

EXPECTED_VALIDITY = {
    "prefix-hijack": RouteValidity.INVALID,
    "subprefix-hijack": RouteValidity.INVALID,
    "roa-downgrade": RouteValidity.NOT_FOUND,
    "maxlength-abuse": RouteValidity.VALID,
    "as0-misconfig": RouteValidity.INVALID,
}


@pytest.fixture(scope="module", params=SEEDS, ids=lambda s: f"seed{s}")
def composed(request):
    scenario = Scenario(
        name="truth-sweep",
        base=WorldScale(scale="tiny", seed=request.param),
        attacks=(
            PrefixHijack(count=3),
            SubPrefixHijack(count=3),
            RoaDowngrade(count=3),
            MaxLengthAbuse(count=3),
            As0Misconfig(count=3),
        ),
        defenses=(
            RovDeployment(rate=ROV_RATE),
            RouteServerFiltering(rate=RS_RATE),
            DropSubscription(rate=DROP_RATE, listing_delay_days=7),
        ),
    )
    world = build_scenario_world(scenario)
    return world, world.truth.scenario


def _attack_intervals(world, attack):
    return [
        iv
        for iv in world.bgp.intervals_exact(attack.attack_prefix)
        if iv.origin == attack.attack_origin
        and iv.active_on(attack.attack_day)
    ]


class TestAttackIntent:
    def test_every_family_ran(self, composed):
        _world, truth = composed
        families = {a.family for a in truth.attacks}
        assert families == set(EXPECTED_VALIDITY)
        assert len(truth.attacks) == 15

    def test_hijacks_actually_appear_hijacked(self, composed):
        world, truth = composed
        for attack in truth.attacks:
            intervals = _attack_intervals(world, attack)
            assert intervals, (
                f"{attack.family}#{attack.index}: no attack-origin route "
                f"for {attack.attack_prefix} on {attack.attack_day}"
            )

    def test_rpki_validity_matches_family_intent(self, composed):
        world, truth = composed
        for attack in truth.attacks:
            covering = world.roas.covering(
                attack.attack_prefix, day=attack.attack_day
            )
            validity = validate_route(
                attack.attack_prefix,
                attack.attack_origin,
                [record.roa for record in covering],
            )
            assert validity is EXPECTED_VALIDITY[attack.family], (
                f"{attack.family}#{attack.index}: {validity}"
            )
            assert str(validity) == attack.expected_validity

    def test_listed_families_land_on_drop(self, composed):
        world, truth = composed
        for attack in truth.attacks:
            if attack.family == "as0-misconfig":
                assert attack.listed_day is None
                continue
            assert attack.listed_day is not None
            assert attack.attack_prefix in world.drop.listed_on(
                attack.listed_day
            )

    def test_victims_are_distinct_fresh_prefixes(self, composed):
        world, truth = composed
        victims = [a.victim_prefix for a in truth.attacks]
        assert len(victims) == len(set(victims))
        assert not (set(victims) & set(world.truth.drop))


class TestDefenseRealization:
    def test_realized_rates_match_request_exactly(self, composed):
        _world, truth = composed
        total = truth.full_table_peers
        assert len(truth.rov_peer_ids) == round(ROV_RATE * total)
        assert len(truth.route_server_peer_ids) == round(RS_RATE * total)
        assert len(truth.drop_subscriber_ids) == round(DROP_RATE * total)

    def test_defense_peer_sets_are_disjoint_full_table_peers(
        self, composed
    ):
        world, truth = composed
        full = world.peers.full_table_peer_ids()
        rov = set(truth.rov_peer_ids)
        rs = set(truth.route_server_peer_ids)
        assert rov <= full and rs <= full
        assert not (rov & rs)
        assert set(truth.drop_subscriber_ids) <= full

    def test_rov_peers_miss_exactly_the_invalid_attacks(self, composed):
        world, truth = composed
        blocked = set(truth.rov_peer_ids) | set(
            truth.route_server_peer_ids
        )
        for attack in truth.attacks:
            observers = set()
            for interval in _attack_intervals(world, attack):
                observers |= interval.observers_on(attack.attack_day)
            if attack.expected_validity == "invalid":
                assert not (observers & blocked), (
                    f"{attack.family}#{attack.index}: ROV peer carried "
                    f"an invalid route"
                )
                assert attack.blocked_peer_count == len(blocked)
            else:
                # ROV cannot help: every filtering peer still carries it.
                assert blocked <= observers
                assert attack.blocked_peer_count == 0

    def test_subscribers_drop_listed_prefixes_after_listing(
        self, composed
    ):
        world, truth = composed
        subscribers = set(truth.drop_subscriber_ids)
        assert subscribers, "drop rate 0.5 must draw subscribers"
        for attack in truth.attacks:
            if attack.listed_day is None:
                continue
            observers = set()
            for interval in world.bgp.intervals_exact(
                attack.attack_prefix
            ):
                if interval.origin == attack.attack_origin and (
                    interval.active_on(attack.listed_day)
                ):
                    observers |= interval.observers_on(attack.listed_day)
            assert not (observers & subscribers), (
                f"{attack.family}#{attack.index}: subscriber still "
                f"carries the prefix on its listing day"
            )


class TestEvaluation:
    def test_metrics_reflect_the_blocked_fractions(self, composed):
        world, truth = composed
        metrics = evaluate_scenario(world, truth)
        total = truth.full_table_peers
        blocked_fraction = (
            len(set(truth.rov_peer_ids) | set(truth.route_server_peer_ids))
            / total
        )
        families = metrics["families"]
        for family in ("prefix-hijack", "subprefix-hijack"):
            assert families[family]["blocked"] == pytest.approx(
                blocked_fraction, abs=1e-6
            )
        for family in ("roa-downgrade", "maxlength-abuse"):
            assert families[family]["blocked"] == pytest.approx(
                0.0, abs=1e-6
            )
            # ...but DROP listing still bites after the listing delay.
            assert (
                families[family]["post_listing_visibility"]
                < families[family]["visibility"]
            )
        assert metrics["defenses"]["rov_rate"] == pytest.approx(
            len(truth.rov_peer_ids) / total
        )

    def test_truth_roundtrips_through_json(self, composed):
        import json

        from repro.scenarios import ScenarioTruth

        _world, truth = composed
        restored = ScenarioTruth.from_dict(
            json.loads(json.dumps(truth.to_dict()))
        )
        assert restored == truth
