"""MRT-like archive serialization for the BGP substrate.

Real RouteViews archives are binary MRT; the analyses only consume the
decoded fields, so this module defines an equivalent line-oriented JSONL
archive format that round-trips the peer registry and the route interval
store losslessly:

* ``peers.jsonl`` — one object per peer;
* ``intervals.jsonl`` — one object per route interval, with observer peer
  ids and partial-observation carve-outs.

It also exports a textual ``TABLE_DUMP2``-flavoured RIB snapshot for a
single day, which is handy for eyeballing the simulated world and is used
by the round-trip integration tests.
"""

from __future__ import annotations

import json
from datetime import date
from pathlib import Path
from typing import Iterator, TextIO

from ..net.prefix import IPv4Prefix
from .collector import PeerRegistry
from .messages import ASPath
from .ribs import PartialObservation, RouteInterval, RouteIntervalStore

__all__ = [
    "dump_peers",
    "dump_store",
    "load_peers",
    "load_store",
    "write_archive",
    "read_archive",
    "rib_snapshot_lines",
]


def _date_out(day: date | None) -> str | None:
    return None if day is None else day.isoformat()


def _date_in(text: str | None) -> date | None:
    return None if text is None else date.fromisoformat(text)


# -- peers -------------------------------------------------------------------

def dump_peers(registry: PeerRegistry, out: TextIO) -> int:
    """Write one JSON line per peer; returns the number written."""
    count = 0
    for peer in registry.peers():
        json.dump(
            {
                "peer_id": peer.peer_id,
                "asn": peer.asn,
                "collector": peer.collector,
                "full_table": peer.full_table,
                "filters_drop": peer.filters_drop,
            },
            out,
            separators=(",", ":"),
        )
        out.write("\n")
        count += 1
    return count


def load_peers(source: TextIO) -> PeerRegistry:
    """Rebuild a peer registry from :func:`dump_peers` output.

    Peer ids are reassigned in file order; files written by
    :func:`dump_peers` are already in id order, so ids round-trip.
    """
    registry = PeerRegistry()
    for line in source:
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        peer = registry.add_peer(
            record["asn"],
            record["collector"],
            full_table=record["full_table"],
            filters_drop=record["filters_drop"],
        )
        if peer.peer_id != record["peer_id"]:
            raise ValueError(
                f"peer id mismatch: file says {record['peer_id']}, "
                f"registry assigned {peer.peer_id}"
            )
    return registry


# -- intervals ---------------------------------------------------------------

def dump_store(store: RouteIntervalStore, out: TextIO) -> int:
    """Write one JSON line per route interval; returns the count."""
    count = 0
    for interval in store.all_intervals():
        json.dump(
            {
                "prefix": str(interval.prefix),
                "path": str(interval.path),
                "start": _date_out(interval.start),
                "end": _date_out(interval.end),
                "observers": sorted(interval.observers),
                "partial": [
                    {
                        "peer_id": p.peer_id,
                        "start": _date_out(p.start),
                        "end": _date_out(p.end),
                    }
                    for p in interval.partial_observers
                ],
            },
            out,
            separators=(",", ":"),
        )
        out.write("\n")
        count += 1
    return count


def load_store(
    source: TextIO, data_end: date | None = None
) -> RouteIntervalStore:
    """Rebuild a route interval store from :func:`dump_store` output."""
    store = RouteIntervalStore(data_end=data_end)
    for line in source:
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        start = _date_in(record["start"])
        assert start is not None
        store.add(
            RouteInterval(
                prefix=IPv4Prefix.parse(record["prefix"]),
                path=ASPath.parse(record["path"]),
                start=start,
                end=_date_in(record["end"]),
                observers=frozenset(record["observers"]),
                partial_observers=tuple(
                    PartialObservation(
                        peer_id=p["peer_id"],
                        start=_date_in(p["start"]),  # type: ignore[arg-type]
                        end=_date_in(p["end"]),
                    )
                    for p in record["partial"]
                ),
            )
        )
    return store


# -- directory-level archive ------------------------------------------------

def write_archive(
    directory: Path, registry: PeerRegistry, store: RouteIntervalStore
) -> None:
    """Write ``peers.jsonl`` and ``intervals.jsonl`` under ``directory``."""
    directory.mkdir(parents=True, exist_ok=True)
    with open(directory / "peers.jsonl", "w") as out:
        dump_peers(registry, out)
    with open(directory / "intervals.jsonl", "w") as out:
        dump_store(store, out)


def read_archive(
    directory: Path, data_end: date | None = None
) -> tuple[PeerRegistry, RouteIntervalStore]:
    """Read an archive written by :func:`write_archive`."""
    with open(directory / "peers.jsonl") as source:
        registry = load_peers(source)
    with open(directory / "intervals.jsonl") as source:
        store = load_store(source, data_end=data_end)
    return registry, store


# -- human-readable snapshot --------------------------------------------------

def rib_snapshot_lines(
    store: RouteIntervalStore, registry: PeerRegistry, day: date
) -> Iterator[str]:
    """TABLE_DUMP2-flavoured text lines for one day's global table.

    Format: ``TABLE_DUMP2|<day>|B|<peer_asn>|<prefix>|<as_path>``, one line
    per (route, observing peer), sorted by prefix then peer.
    """
    for interval in store.all_intervals():
        if not interval.active_on(day):
            continue
        for peer_id in sorted(interval.observers_on(day)):
            peer = registry.peer(peer_id)
            yield (
                f"TABLE_DUMP2|{day.isoformat()}|B|{peer.asn}|"
                f"{interval.prefix}|{interval.path}"
            )
