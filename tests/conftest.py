"""Suite-wide fixtures.

Every test runs against an isolated world cache under pytest's base
temporary directory — never the operator's ``~/.cache/repro-drop`` — so
the suite is hermetic while CLI tests within one session still share
cache hits with each other.
"""

import pytest


@pytest.fixture(autouse=True)
def _isolated_world_cache(tmp_path_factory, monkeypatch):
    root = tmp_path_factory.getbasetemp() / "world-cache"
    monkeypatch.setenv("REPRO_CACHE_DIR", str(root))


@pytest.fixture(autouse=True)
def _no_ambient_faults(monkeypatch):
    """Never inherit $REPRO_FAULTS from the invoking shell."""
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    monkeypatch.delenv("REPRO_FAULT_SEED", raising=False)
