"""BGP substrate: collectors, peers, route intervals, streams, visibility."""

from .alarms import Alarm, AlarmKind, HijackMonitor, ProtectedPrefix
from .collector import (
    ROUTEVIEWS_COLLECTOR_NAMES,
    Collector,
    Peer,
    PeerRegistry,
)
from .messages import ASPath, BgpElement, ElementType
from .mrt import read_archive, write_archive
from .ribs import PartialObservation, RouteInterval, RouteIntervalStore
from .stream import BGPStream
from .visibility import (
    DEFAULT_OFFSETS,
    PeerObservationRate,
    VisibilityProfile,
    fraction_observing,
    peer_observation_rates,
    suspect_filtering_peers,
    visibility_profile,
    withdrawn_within,
)

__all__ = [
    "ASPath",
    "Alarm",
    "AlarmKind",
    "HijackMonitor",
    "ProtectedPrefix",
    "BGPStream",
    "BgpElement",
    "Collector",
    "DEFAULT_OFFSETS",
    "ElementType",
    "PartialObservation",
    "Peer",
    "PeerObservationRate",
    "PeerRegistry",
    "ROUTEVIEWS_COLLECTOR_NAMES",
    "RouteInterval",
    "RouteIntervalStore",
    "VisibilityProfile",
    "fraction_observing",
    "peer_observation_rates",
    "read_archive",
    "suspect_filtering_peers",
    "visibility_profile",
    "withdrawn_within",
    "write_archive",
]
