"""The unified error surface: one base class, stable codes, re-exports."""

import pytest

import repro
from repro.errors import CacheCorruptionError, ReproError


@pytest.mark.parametrize(
    ("name", "code"),
    [
        ("ReproError", "repro.error"),
        ("CacheCorruptionError", "runtime.cache-corrupt"),
        ("BatchParseError", "query.batch-parse"),
        ("IndexLoadError", "query.index-stale"),
        ("SubstrateLoadError", "analysis.substrate-stale"),
        ("FaultSpecError", "runtime.fault-spec"),
        ("RequestError", "query.bad-request"),
        ("BadPrefixError", "query.bad-prefix"),
        ("BadDayError", "query.bad-day"),
        ("NotFoundError", "query.not-found"),
        ("ReloadError", "query.reload-failed"),
    ],
)
def test_stable_codes_and_repro_reexports(name, code):
    cls = getattr(repro, name)
    assert issubclass(cls, ReproError)
    assert cls.code == code


def test_unknown_attribute_raises():
    with pytest.raises(AttributeError):
        repro.NoSuchError


def test_catching_the_base_class_catches_them_all():
    from repro.query.engine import BatchParseError

    with pytest.raises(ReproError) as excinfo:
        raise BatchParseError([(0, "x", "bad")])
    assert excinfo.value.code == "query.batch-parse"
    # The concrete classes stay ValueErrors too, so pre-redesign
    # callers that caught ValueError keep working.
    assert isinstance(excinfo.value, ValueError)


def test_cache_corruption_error_from_corrupt_entry(tmp_path):
    from repro.runtime import WorldCache
    from repro.synth import ScenarioConfig

    cache = WorldCache(tmp_path)
    outcome = cache.fetch(ScenarioConfig.tiny())
    (outcome.directory / "roas.jsonl").write_text("torn{")
    with pytest.raises(CacheCorruptionError) as excinfo:
        cache.load_entry(outcome.directory)
    assert excinfo.value.code == "runtime.cache-corrupt"
    assert outcome.key in str(excinfo.value)
    # fetch() recovers: evict and rebuild, counted as an eviction.
    from repro.runtime import Instrumentation

    instr = Instrumentation()
    again = cache.fetch(ScenarioConfig.tiny(), instrumentation=instr)
    assert again.status == "miss"
    assert instr.counters["world_cache_evictions"] == 1
