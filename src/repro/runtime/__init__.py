"""Runtime: world cache, parallel experiment dispatch, instrumentation.

The subsystem that makes reproduction runs fast without changing a
single measured byte:

* :mod:`repro.runtime.cache` — a content-addressed on-disk world cache
  keyed by config hash + generator version;
* :mod:`repro.runtime.runner` — the parallel experiment runner with
  deterministic ordering and per-experiment error isolation;
* :mod:`repro.runtime.instrument` — stage timers / counters behind
  ``repro-drop report --timings``.
"""

from .cache import (
    CACHE_DIR_ENV,
    CacheOutcome,
    WorldCache,
    default_cache_root,
    world_cache_key,
)
from .instrument import Instrumentation, StageRecord, world_sizes
from .runner import (
    JOBS_ENV,
    ExperimentFailure,
    RunOutcome,
    default_jobs,
    run_experiments,
)

__all__ = [
    "CACHE_DIR_ENV",
    "CacheOutcome",
    "ExperimentFailure",
    "Instrumentation",
    "JOBS_ENV",
    "RunOutcome",
    "StageRecord",
    "WorldCache",
    "default_cache_root",
    "default_jobs",
    "run_experiments",
    "world_cache_key",
    "world_sizes",
]
