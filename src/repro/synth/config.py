"""Scenario configuration for the synthetic world.

Every quantity the paper reports is a parameter here, calibrated to the
published numbers (see the field comments for the paper anchor).  The
default :meth:`ScenarioConfig.paper` scale reproduces the study's counts;
:meth:`ScenarioConfig.small` and :meth:`ScenarioConfig.tiny` shrink the
populations proportionally for fast tests while keeping every *rate*
identical, so shape results still hold.

All randomness in world generation flows from a single seed through
per-subsystem ``numpy`` generators, making any config bit-reproducible.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field, replace
from datetime import date

from ..net.timeline import STUDY_END, STUDY_START, DateWindow

__all__ = ["RegionProfile", "ScenarioConfig"]


@dataclass(frozen=True)
class RegionProfile:
    """Per-RIR populations and rates (Table 1 and Figures 6–7)."""

    #: Routed prefixes with no ROA at study start, never on DROP (Table 1
    #: "Never on DROP" denominators: 3901 / 42.2K / 65.2K / 15.1K / 68.2K).
    background_prefixes: int
    #: Fraction of those signed during the study (Table 1 column 1).
    base_signing_rate: float
    #: Signing rate for DROP prefixes Spamhaus removed (Table 1 column 2).
    removed_signing_rate: float
    #: Signing rate for DROP prefixes never removed (Table 1 column 3).
    present_signing_rate: float
    #: DROP prefixes (no ROA at listing) removed from DROP in this region.
    drop_removed: int
    #: DROP prefixes (no ROA at listing) still listed at window end.
    drop_present: int
    #: Unallocated prefixes appearing on DROP in this region (Figure 6:
    #: LACNIC 19, AFRINIC 12, 9 elsewhere).
    unallocated_drop_prefixes: int
    #: Free pool at study start, in addresses (Figure 7: AFRINIC and ARIN
    #: largest).
    free_pool_start: int
    #: Free pool at study end, in addresses.
    free_pool_end: int


def _paper_regions() -> dict[str, RegionProfile]:
    return {
        "AFRINIC": RegionProfile(
            background_prefixes=3901,
            base_signing_rate=0.118,
            removed_signing_rate=0.143,
            present_signing_rate=0.0,
            drop_removed=7,
            drop_present=12,
            unallocated_drop_prefixes=12,
            free_pool_start=6_800_000,
            free_pool_end=4_100_000,
        ),
        "APNIC": RegionProfile(
            background_prefixes=42_200,
            base_signing_rate=0.263,
            removed_signing_rate=0.444,
            present_signing_rate=0.216,
            drop_removed=18,
            drop_present=39,
            unallocated_drop_prefixes=4,
            free_pool_start=1_300_000,
            free_pool_end=900_000,
        ),
        "ARIN": RegionProfile(
            background_prefixes=65_200,
            base_signing_rate=0.085,
            removed_signing_rate=0.25,
            present_signing_rate=0.006,
            drop_removed=40,
            drop_present=178,
            unallocated_drop_prefixes=3,
            free_pool_start=3_800_000,
            free_pool_end=3_400_000,
        ),
        "LACNIC": RegionProfile(
            background_prefixes=15_100,
            base_signing_rate=0.255,
            removed_signing_rate=0.351,
            present_signing_rate=0.0,
            drop_removed=37,
            drop_present=10,
            unallocated_drop_prefixes=19,
            free_pool_start=1_100_000,
            free_pool_end=700_000,
        ),
        "RIPE": RegionProfile(
            background_prefixes=68_200,
            base_signing_rate=0.33,
            removed_signing_rate=0.542,
            present_signing_rate=0.198,
            drop_removed=84,
            drop_present=181,
            unallocated_drop_prefixes=2,
            free_pool_start=1_500_000,
            free_pool_end=1_000_000,
        ),
    }


@dataclass(frozen=True)
class ScenarioConfig:
    """Everything the world builder needs, in one reproducible record."""

    seed: int = 2022
    window: DateWindow = field(
        default_factory=lambda: DateWindow(STUDY_START, STUDY_END)
    )
    #: BGP history reaches back before the DROP window (Fig 4 needs
    #: origins from 2018 and "no origination for 15 yrs").
    bgp_history_start: date = date(2017, 1, 1)

    # -- observation platform (§3, §4.1) ---------------------------------
    #: RouteViews-scale fleet: 36 collectors.
    collectors: int = 36
    #: Full-table peers across the fleet.
    full_table_peers: int = 90
    #: Partial-feed peers (not used in Fig 2 denominators).
    partial_peers: int = 30
    #: Peers that filter DROP-listed prefixes (the paper found three).
    drop_filtering_peers: int = 3

    # -- DROP population (§3.1, Fig 1) -------------------------------------
    #: 712 unique prefixes appeared on DROP; 186 had no SBL record.
    no_record_prefixes: int = 186
    #: Category counts among the 526 with records (Fig 1; §6.1 gives 179
    #: hijacked; §6.2.2 gives 40 unallocated = sum of region values).
    hijacked_prefixes: int = 179
    snowshoe_prefixes: int = 230
    known_spam_prefixes: int = 40
    malicious_hosting_prefixes: int = 52
    #: Snowshoe prefixes carrying a second label (§3.1: 15).
    snowshoe_overlap: int = 15
    #: Hijacked prefixes whose SBL record names the hijacking ASN (130).
    hijacks_with_asn: int = 130
    #: AFRINIC-incident prefixes (45, excluded from analyses; 48.8% of
    #: DROP address space).
    afrinic_incident_prefixes: int = 45

    # -- §4.1 behaviour rates ----------------------------------------------
    #: Withdrawal within 30 days of listing, by category.
    withdrawal_rate_hijacked: float = 0.707
    withdrawal_rate_unallocated: float = 0.548
    withdrawal_rate_other: float = 0.05
    #: Malicious-hosting prefixes allocated at listing and deallocated by
    #: window end (17.4%).
    mh_deallocation_rate: float = 0.174
    #: Removed prefixes deallocated (8.8%); half removed within a week of
    #: the deallocation.
    removed_deallocation_rate: float = 0.088

    # -- §5 IRR behaviour -----------------------------------------------------
    #: DROP prefixes with a route object (exact or more-specific) in the
    #: 7 days before listing: 226 of 712 (31.7%), 68.8% of space.
    irr_object_prefixes: int = 226
    #: Of those, created within the month before listing (32%).
    irr_created_before_listing_rate: float = 0.32
    #: Of those, removed within a month after listing (43%).
    irr_removed_after_listing_rate: float = 0.43
    #: Hijacked-with-ASN prefixes whose route object names the hijacker
    #: ASN (57 of 130); 49 of the 57 share three ORG-IDs; 13 distinct
    #: hijacking ASNs appear.
    irr_hijacker_objects: int = 57
    irr_hijacker_org_cluster: int = 49
    irr_hijacker_org_count: int = 3
    irr_hijacker_asn_count: int = 13
    #: Route objects created by the most prolific ORG-ID (15), announced
    #: via AS50509 with defunct origin ASes.
    irr_prolific_org_objects: int = 15
    #: Hijacker route objects whose prefix was announced in BGP more than
    #: a year before the IRR record (2 of 57); the rest announce within a
    #: week after registration (Fig 3).
    irr_late_records: int = 2
    #: Prefixes with a pre-existing legitimate IRR entry among the 57 (5).
    irr_preexisting_entries: int = 5

    # -- §6 RPKI behaviour ------------------------------------------------------
    #: Hijacked prefixes RPKI-signed before listing (3 of 179), including
    #: the 132.255.0.0/22 case study.
    presigned_hijacks: int = 3
    #: Non-hijack DROP prefixes that already had a (non-AS0) ROA when
    #: listed; with the 3 presigned hijacks and 45 incidents they account
    #: for the gap between 712 listed and the 650 ROA-free of Table 1.
    presigned_other: int = 18
    #: Removed-and-signed prefixes signed with a different ASN than the
    #: listing-time origin (82.3%); same ASN 6.3%.
    signed_different_asn_rate: float = 0.823
    signed_same_asn_rate: float = 0.063

    # -- Figure 5 space series (in /8 equivalents) --------------------------------
    signed_space_start: float = 49.1
    signed_space_end: float = 70.4
    unrouted_signed_start: float = 1.6
    unrouted_signed_end: float = 6.7
    unrouted_unsigned_start: float = 29.2
    unrouted_unsigned_end: float = 30.0
    #: ARIN's share of allocated-unrouted-unsigned space at window end
    #: (60.8% = 18.25 of 30.0 /8s).
    arin_unrouted_share: float = 0.608
    #: The three large unrouted-signed holders (70.1% of the 6.7 /8s).
    amazon_unrouted_slash8: float = 3.1
    prudential_unrouted_slash8: float = 1.0
    alibaba_unrouted_slash8: float = 0.64
    #: Amazon's ROA-creation event day (the labeled jump in Figure 5).
    amazon_roa_event: date = date(2020, 12, 1)

    #: Fraction of newly-created ROAs using a maxLength longer than the
    #: prefix (the practice Gilad et al. [15] flag; an Internet Draft now
    #: recommends against it — §2.3).
    maxlength_usage_rate: float = 0.12

    # -- §6.2 AS0 ------------------------------------------------------------------
    #: Routed prefixes each full-table peer would have filtered with the
    #: RIR AS0 TALs on 2022-03-30 (≈30).
    as0_filterable_prefixes: int = 30

    # -- per-region profiles ---------------------------------------------------------
    regions: dict[str, RegionProfile] = field(default_factory=_paper_regions)

    # -- derived ------------------------------------------------------------------------

    @property
    def total_drop_prefixes(self) -> int:
        """Unique DROP prefixes implied by the category counts."""
        labeled = (
            self.hijacked_prefixes
            + self.snowshoe_prefixes
            + self.known_spam_prefixes
            + self.malicious_hosting_prefixes
            + self.total_unallocated
            - self.snowshoe_overlap
        )
        return labeled + self.no_record_prefixes

    @property
    def total_unallocated(self) -> int:
        """Unallocated DROP prefixes summed over regions (paper: 40)."""
        return sum(
            profile.unallocated_drop_prefixes
            for profile in self.regions.values()
        )

    @property
    def total_background(self) -> int:
        """Never-on-DROP population (paper: 195.6K)."""
        return sum(p.background_prefixes for p in self.regions.values())

    # -- content addressing ------------------------------------------------------------

    def canonical_dict(self) -> dict:
        """A stable, JSON-able view of every generator input.

        Dates flatten to ISO strings and mappings keep deterministic key
        order, so two configs with equal parameters always canonicalize
        to the same document — the basis of the world-cache key.
        """

        def flatten(value):
            if isinstance(value, date):
                return value.isoformat()
            if isinstance(value, dict):
                return {k: flatten(value[k]) for k in sorted(value)}
            if isinstance(value, (list, tuple)):
                return [flatten(v) for v in value]
            return value

        return flatten(asdict(self))

    def content_hash(self) -> str:
        """SHA-256 of the canonical config document (hex digest)."""
        payload = json.dumps(
            self.canonical_dict(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    # -- presets -----------------------------------------------------------------------

    @classmethod
    def paper(cls, seed: int = 2022) -> "ScenarioConfig":
        """Full paper-scale world (~196K background prefixes)."""
        return cls(seed=seed)

    @classmethod
    def small(cls, seed: int = 2022) -> "ScenarioConfig":
        """~10x smaller background population; all rates identical."""
        return cls(seed=seed)._scaled(0.1)

    @classmethod
    def tiny(cls, seed: int = 2022) -> "ScenarioConfig":
        """~100x smaller background population, for unit tests."""
        return cls(seed=seed)._scaled(0.01)

    def _scaled(self, factor: float) -> "ScenarioConfig":
        regions = {
            name: replace(
                profile,
                background_prefixes=max(
                    20, int(profile.background_prefixes * factor)
                ),
            )
            for name, profile in self.regions.items()
        }
        return replace(self, regions=regions)
