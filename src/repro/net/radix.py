"""A binary (path-compressed) radix trie keyed by IPv4 prefixes.

Every cross-dataset join in the reproduction — "which ROA covers this DROP
prefix", "is this announced prefix inside allocated space", "find the route
objects that are more-specifics of this prefix" — is a covered/covering
query over a large prefix-keyed table.  ``RadixTree`` provides:

* exact lookup (:meth:`get`, :meth:`__contains__`);
* longest-prefix match (:meth:`lookup_best`) and all covering entries in
  root-to-leaf order (:meth:`lookup_covering`);
* subtree enumeration of all covered entries (:meth:`lookup_covered`);
* deletion and iteration in address order;
* O(1) copy-on-write snapshots (:meth:`fork`) for the incremental
  ingest path, which advances a world-scale trie by a few dozen entries
  a day and cannot afford an O(n) :meth:`clone` per day.

The implementation is a classic path-compressed binary trie: each node tests
one bit position; leaf/internal nodes that carry a value store the
``(prefix, value)`` pair.  An ablation benchmark
(``benchmarks/bench_ablation_radix.py``) compares these queries against the
linear scans they replace.

Copy-on-write uses generation stamps: every node records the generation
of the tree that created it, and :meth:`fork` retires both trees'
generations, so any later ``insert``/``delete`` on either side finds
the shared nodes foreign and path-copies them before mutating.  Reads
never copy.
"""

from __future__ import annotations

from itertools import count
from typing import Generic, Iterator, TypeVar

from .prefix import IPV4_BITS, IPv4Prefix

__all__ = ["PrefixTrie", "RadixTree"]

V = TypeVar("V")

#: Tree generations, globally unique so a node's stamp identifies its
#: owning tree across arbitrary fork chains.
_GENERATIONS = count(1)


class _Node(Generic[V]):
    __slots__ = ("network", "length", "prefix", "value", "left", "right", "gen")

    def __init__(self, network: int, length: int, gen: int = 0) -> None:
        self.network = network
        self.length = length
        self.prefix: IPv4Prefix | None = None  # set when this node holds an entry
        self.value: V | None = None
        self.left: "_Node[V] | None" = None
        self.right: "_Node[V] | None" = None
        self.gen = gen

    def covers(self, network: int, length: int) -> bool:
        if self.length > length:
            return False
        return _prefix_bits(network, self.length) == self.network


def _copy_node(node: "_Node[V]", copy_value, gen: int) -> "_Node[V]":
    copied: "_Node[V]" = _Node(node.network, node.length, gen)
    copied.prefix = node.prefix
    if node.prefix is not None:
        copied.value = (
            node.value if copy_value is None else copy_value(node.value)
        )
    return copied


def _prefix_bits(network: int, length: int) -> int:
    """The top ``length`` bits of ``network``, as a network address."""
    if length == 0:
        return 0
    mask = (0xFFFFFFFF << (IPV4_BITS - length)) & 0xFFFFFFFF
    return network & mask


def _bit(network: int, position: int) -> int:
    """Bit ``position`` of the address (0 = most significant)."""
    return (network >> (IPV4_BITS - 1 - position)) & 1


def _common_prefix_length(a: int, b: int, limit: int) -> int:
    """Length of the longest common prefix of two addresses, capped."""
    diff = a ^ b
    if diff == 0:
        return limit
    leading = IPV4_BITS - diff.bit_length()
    return min(leading, limit)


class RadixTree(Generic[V]):
    """A map from :class:`IPv4Prefix` to values with trie queries."""

    __slots__ = ("_root", "_size", "_gen")

    def __init__(self) -> None:
        self._root: _Node[V] | None = None
        self._size = 0
        self._gen = next(_GENERATIONS)

    # -- size / iteration --------------------------------------------------

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def __iter__(self) -> Iterator[IPv4Prefix]:
        for prefix, _ in self.items():
            yield prefix

    def items(self) -> Iterator[tuple[IPv4Prefix, V]]:
        """All entries in address order (pre-order walk)."""
        yield from self._walk(self._root)

    def clone(self, copy_value=None) -> "RadixTree[V]":
        """A structural copy of the tree in O(n), no re-insertion.

        Node shapes, entry order, and therefore :meth:`items` iteration
        order are preserved exactly — which is what makes a cloned
        store serialize byte-identically to its original.  With
        ``copy_value`` given, every stored value passes through it
        (``list.copy`` for bucket tries); otherwise values are shared.
        """
        cloned: "RadixTree[V]" = RadixTree()
        cloned._size = self._size
        if self._root is None:
            return cloned
        # Iterative copy: world-scale tries are deep enough to trouble
        # the recursion limit.
        cloned._root = _copy_node(self._root, copy_value, cloned._gen)
        stack = [(self._root, cloned._root)]
        while stack:
            source, target = stack.pop()
            if source.left is not None:
                target.left = _copy_node(source.left, copy_value, cloned._gen)
                stack.append((source.left, target.left))
            if source.right is not None:
                target.right = _copy_node(
                    source.right, copy_value, cloned._gen
                )
                stack.append((source.right, target.right))
        return cloned

    def fork(self) -> "RadixTree[V]":
        """An O(1) snapshot sharing every node, copy-on-write both ways.

        The fork and the original each claim a fresh generation, so a
        later :meth:`insert` or :meth:`delete` on *either* tree
        path-copies the shared nodes it touches and leaves the other
        tree's view untouched — at one short path of node copies per
        write instead of :meth:`clone`'s O(n).  Values are always
        shared, like ``clone()`` without ``copy_value``: the bucket
        discipline is to replace a stored value, never mutate it.
        """
        forked: "RadixTree[V]" = RadixTree()
        forked._root = self._root
        forked._size = self._size
        # Retire this tree's generation too: its own future writes must
        # path-copy rather than mutate what the fork can still see.
        self._gen = next(_GENERATIONS)
        return forked

    def _owned(
        self,
        node: _Node[V],
        parent: _Node[V] | None,
        went_right: bool,
    ) -> _Node[V]:
        """``node``, exclusively this tree's — path-copied if shared.

        The copy is linked in place of the original under ``parent``
        (or as the root), sharing both children and the value; callers
        own ``parent`` already, descending root-down.
        """
        if node.gen == self._gen:
            return node
        copied: _Node[V] = _Node(node.network, node.length, self._gen)
        copied.prefix = node.prefix
        copied.value = node.value
        copied.left = node.left
        copied.right = node.right
        if parent is None:
            self._root = copied
        elif went_right:
            parent.right = copied
        else:
            parent.left = copied
        return copied

    def _walk(self, node: _Node[V] | None) -> Iterator[tuple[IPv4Prefix, V]]:
        if node is None:
            return
        if node.prefix is not None:
            yield node.prefix, node.value  # type: ignore[misc]
        yield from self._walk(node.left)
        yield from self._walk(node.right)

    # -- insertion -----------------------------------------------------------

    def insert(self, prefix: IPv4Prefix, value: V) -> None:
        """Insert or replace the entry for ``prefix``."""
        network, length = prefix.network, prefix.length
        if self._root is None:
            self._root = self._make_entry(network, length, prefix, value)
            return
        node = self._root
        parent: _Node[V] | None = None
        went_right = False
        while True:
            node = self._owned(node, parent, went_right)
            common = _common_prefix_length(
                node.network, network, min(node.length, length)
            )
            if common < node.length:
                # Split the edge above `node` at depth `common`.
                self._split(parent, went_right, node, network, length, prefix,
                            value, common)
                return
            if node.length == length:
                if node.prefix is None:
                    self._size += 1
                node.prefix = prefix
                node.value = value
                return
            # node.length < length: descend by the next bit of the key.
            branch_right = bool(_bit(network, node.length))
            child = node.right if branch_right else node.left
            if child is None:
                entry = self._make_entry(network, length, prefix, value)
                if branch_right:
                    node.right = entry
                else:
                    node.left = entry
                return
            parent, went_right, node = node, branch_right, child

    def _make_entry(
        self, network: int, length: int, prefix: IPv4Prefix, value: V
    ) -> _Node[V]:
        node: _Node[V] = _Node(network, length, self._gen)
        node.prefix = prefix
        node.value = value
        self._size += 1
        return node

    def _split(
        self,
        parent: _Node[V] | None,
        went_right: bool,
        node: _Node[V],
        network: int,
        length: int,
        prefix: IPv4Prefix,
        value: V,
        common: int,
    ) -> None:
        joint: _Node[V] = _Node(_prefix_bits(network, common), common, self._gen)
        if common == length:
            # The new prefix sits exactly at the joint.
            joint.prefix = prefix
            joint.value = value
            self._size += 1
            if _bit(node.network, common):
                joint.right = node
            else:
                joint.left = node
        else:
            entry = self._make_entry(network, length, prefix, value)
            if _bit(network, common):
                joint.right, joint.left = entry, node
            else:
                joint.left, joint.right = entry, node
        if parent is None:
            self._root = joint
        elif went_right:
            parent.right = joint
        else:
            parent.left = joint

    # -- exact lookup -----------------------------------------------------

    def _find_node(self, prefix: IPv4Prefix) -> _Node[V] | None:
        node = self._root
        while node is not None and node.length <= prefix.length:
            if not node.covers(prefix.network, prefix.length):
                return None
            if node.length == prefix.length:
                return node if node.prefix is not None else None
            node = node.right if _bit(prefix.network, node.length) else node.left
        return None

    def get(self, prefix: IPv4Prefix, default: V | None = None) -> V | None:
        """The value stored at exactly ``prefix``, or ``default``."""
        node = self._find_node(prefix)
        return default if node is None else node.value

    def __contains__(self, prefix: IPv4Prefix) -> bool:
        return self._find_node(prefix) is not None

    def __getitem__(self, prefix: IPv4Prefix) -> V:
        node = self._find_node(prefix)
        if node is None:
            raise KeyError(prefix)
        return node.value  # type: ignore[return-value]

    def __setitem__(self, prefix: IPv4Prefix, value: V) -> None:
        self.insert(prefix, value)

    # -- covering / covered queries ------------------------------------------

    def lookup_covering(self, prefix: IPv4Prefix) -> list[tuple[IPv4Prefix, V]]:
        """All entries that cover ``prefix`` (equal or less specific).

        Returned least-specific first, so the last element is the
        longest-prefix match.
        """
        found: list[tuple[IPv4Prefix, V]] = []
        node = self._root
        while node is not None and node.length <= prefix.length:
            if not node.covers(prefix.network, prefix.length):
                break
            if node.prefix is not None:
                found.append((node.prefix, node.value))  # type: ignore[arg-type]
            if node.length == prefix.length:
                break
            node = node.right if _bit(prefix.network, node.length) else node.left
        return found

    def lookup_best(self, prefix: IPv4Prefix) -> tuple[IPv4Prefix, V] | None:
        """The longest-prefix match for ``prefix``, or ``None``."""
        covering = self.lookup_covering(prefix)
        return covering[-1] if covering else None

    def lookup_covered(self, prefix: IPv4Prefix) -> list[tuple[IPv4Prefix, V]]:
        """All entries equal to or more specific than ``prefix``."""
        # Descend to the node region for `prefix`, then walk its subtree.
        node = self._root
        while node is not None and node.length < prefix.length:
            if not node.covers(prefix.network, prefix.length):
                return []
            node = node.right if _bit(prefix.network, node.length) else node.left
        if node is None or not prefix.contains(
            IPv4Prefix(node.network, node.length)
        ):
            return []
        return list(self._walk(node))

    def covers_address(self, address: int) -> bool:
        """True if any entry covers the given integer address."""
        return self.lookup_best(IPv4Prefix(address, IPV4_BITS)) is not None

    # -- deletion -----------------------------------------------------------

    def delete(self, prefix: IPv4Prefix) -> V:
        """Remove and return the entry at exactly ``prefix``.

        Raises ``KeyError`` if absent.  Structural nodes left without an
        entry and fewer than two children are spliced out immediately, so
        a delete-heavy workload (churning route tables) cannot accumulate
        dead interior nodes: the trie's node count stays proportional to
        its entry count (pinned by the node-count regression test).
        """
        stack: list[_Node[V]] = []
        node = self._root
        parent: _Node[V] | None = None
        went_right = False
        while node is not None and node.length < prefix.length:
            if not node.covers(prefix.network, prefix.length):
                node = None
                break
            node = self._owned(node, parent, went_right)
            stack.append(node)
            went_right = bool(_bit(prefix.network, node.length))
            parent = node
            node = node.right if went_right else node.left
        if (
            node is None
            or node.length != prefix.length
            or node.prefix is None
            or not node.covers(prefix.network, prefix.length)
        ):
            raise KeyError(prefix)
        node = self._owned(node, parent, went_right)
        value = node.value
        node.prefix = None
        node.value = None
        self._size -= 1
        # Splice out the chain of now-useless nodes: an entry-less node
        # with one child is a needless indirection (path compression says
        # the child can hang off the parent directly); with zero children
        # it is garbage.  Removing a leaf can strand its parent the same
        # way, so walk back up until a node still earns its place.
        while node.prefix is None and (node.left is None or node.right is None):
            child = node.left if node.left is not None else node.right
            parent = stack.pop() if stack else None
            if parent is None:
                self._root = child
                break
            if parent.right is node:
                parent.right = child
            else:
                parent.left = child
            if child is not None:
                break  # parent kept its child count: structure above is fine
            node = parent
        return value  # type: ignore[return-value]


#: The name the query layer uses for the same structure: a prefix-keyed
#: trie answering longest-prefix-match (:meth:`RadixTree.lookup_best`) and
#: subtree (:meth:`RadixTree.lookup_covered`) queries.
PrefixTrie = RadixTree
