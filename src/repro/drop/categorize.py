"""The Appendix-A semi-automated SBL categorizer.

The paper classifies each SBL record by keyword search:

* ``hijack`` or ``stolen``            → Hijacked (HJ)
* ``snowshoe``                        → Snowshoe spam (SS)
* ``known spam operation``            → Known spam operation (KS)
* ``hosting`` *in a malicious context* → Malicious hosting (MH)
* ``unallocated`` or ``bogon``        → Unallocated (UA)

"Hosting" is only counted when used in relation to malicious activity
(spam hosting, bulletproof hosting, botnet hosting, ...) — the paper
verified this manually; we implement the same judgement as a context check
plus a manual-override table, keeping the semi-automated character.
Records matching no keyword are classified manually (the paper: 7.3% of
records); two prefixes could not be labeled at all.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterable, Mapping

from ..net.prefix import IPv4Prefix
from .categories import Category
from .sbl import SblRecord

__all__ = [
    "Categorizer",
    "ClassificationResult",
    "KEYWORD_RULES",
]

#: (rule name, category, regexes that must ALL appear) — §A's search terms.
#: 'hijack'+'stolen' in the paper's shorthand means either term indicates
#: a hijack record; likewise 'unallocated'+'bogon'.
KEYWORD_RULES: tuple[tuple[str, Category, str], ...] = (
    ("hijack", Category.HIJACKED, r"\bhijack\w*"),
    ("stolen", Category.HIJACKED, r"\bstolen\b"),
    ("snowshoe", Category.SNOWSHOE, r"\bsnowshoe\b"),
    ("known spam operation", Category.KNOWN_SPAM,
     r"\bknown spam operation\w*|\bregister of known spam operations\b"),
    ("unallocated", Category.UNALLOCATED, r"\bunallocated\b"),
    ("bogon", Category.UNALLOCATED, r"\bbogon\w*"),
)

_HOSTING = re.compile(r"\bhosting\b", re.IGNORECASE)

#: Words that mark "hosting" as malicious-context (spam hosting,
#: bulletproof hosting, botnet hosting, spammer hosting, ...).
_MALICIOUS_CONTEXT = re.compile(
    r"\b(spam\w*|bulletproof|botnet\w*|malware|phish\w*|abuse\w*|"
    r"criminal\w*|fraud\w*|cybercrime\w*)\b",
    re.IGNORECASE,
)


@dataclass(frozen=True, slots=True)
class ClassificationResult:
    """The outcome of classifying one SBL record."""

    prefix: IPv4Prefix
    categories: frozenset[Category]
    keywords: tuple[str, ...]
    manual: bool = False

    @property
    def keyword_count(self) -> int:
        """Number of distinct §A keyword *rules* that matched."""
        return len(self.keywords)

    @property
    def unlabeled(self) -> bool:
        """True when no category could be assigned at all."""
        return not self.categories


class Categorizer:
    """Semi-automated SBL record classifier (Appendix A).

    ``manual_overrides`` maps SBL id → categories, standing in for the
    human pass over records with no (or ambiguous) keywords; overrides are
    applied *only* when the automated keywords find nothing, matching the
    paper's procedure.
    """

    def __init__(
        self,
        manual_overrides: Mapping[str, Iterable[Category]] | None = None,
    ) -> None:
        self._compiled = [
            (name, category, re.compile(pattern, re.IGNORECASE))
            for name, category, pattern in KEYWORD_RULES
        ]
        self._manual = {
            sbl_id: frozenset(categories)
            for sbl_id, categories in (manual_overrides or {}).items()
        }

    # -- single-record classification -------------------------------------

    def classify_text(
        self, prefix: IPv4Prefix, text: str, sbl_id: str | None = None
    ) -> ClassificationResult:
        """Classify one record's freeform text."""
        categories: set[Category] = set()
        keywords: list[str] = []
        for name, category, pattern in self._compiled:
            if pattern.search(text):
                categories.add(category)
                keywords.append(name)
        if self._hosting_is_malicious(text):
            categories.add(Category.MALICIOUS_HOSTING)
            keywords.append("hosting")
        if not categories and sbl_id is not None:
            manual = self._manual.get(sbl_id)
            if manual:
                return ClassificationResult(
                    prefix=prefix,
                    categories=manual,
                    keywords=(),
                    manual=True,
                )
        return ClassificationResult(
            prefix=prefix,
            categories=frozenset(categories),
            keywords=tuple(keywords),
            manual=False,
        )

    def classify_record(self, record: SblRecord) -> ClassificationResult:
        """Classify an SBL record."""
        return self.classify_text(record.prefix, record.text, record.sbl_id)

    def classify_missing(self, prefix: IPv4Prefix) -> ClassificationResult:
        """The NR classification for a prefix whose record is gone."""
        return ClassificationResult(
            prefix=prefix,
            categories=frozenset({Category.NO_RECORD}),
            keywords=(),
            manual=False,
        )

    # -- corpus statistics --------------------------------------------------

    def keyword_statistics(
        self, results: Iterable[ClassificationResult]
    ) -> dict[str, float]:
        """The paper's §A keyword-count breakdown over a corpus.

        Returns fractions of records with exactly one keyword, two or more
        keywords, and none (manually inferred); NR results are excluded
        because they have no record text.
        """
        counted = [
            r for r in results if Category.NO_RECORD not in r.categories
        ]
        total = len(counted)
        if total == 0:
            return {"one": 0.0, "two_or_more": 0.0, "none": 0.0}
        ones = sum(1 for r in counted if r.keyword_count == 1)
        multi = sum(1 for r in counted if r.keyword_count >= 2)
        none = sum(1 for r in counted if r.keyword_count == 0)
        return {
            "one": ones / total,
            "two_or_more": multi / total,
            "none": none / total,
        }

    @staticmethod
    def _hosting_is_malicious(text: str) -> bool:
        """The manual 'hosting context' judgement, as a heuristic.

        True when 'hosting' appears as a standalone word alongside
        malicious-context vocabulary.  Mentions inside e-mail addresses or
        company names (``billing@ahostinginc.com``, ``networxhosting``) do
        not match the standalone-word pattern, mirroring the paper's
        examples of *non*-malicious usage (Table 2, records 2 and 3).
        """
        if not _HOSTING.search(text):
            return False
        return bool(_MALICIOUS_CONTEXT.search(text))
