#!/usr/bin/env python3
"""Quickstart: build a synthetic study world and reproduce two results.

Builds the world at test scale (~2K background prefixes; use
``ScenarioConfig.paper()`` for the full 195.6K-prefix study), then runs
two of the paper's headline analyses through the public API:

* Figure 2's withdrawal finding: listing a prefix on DROP correlates
  with the route disappearing, especially for hijacked space;
* Table 1's uptake finding: prefixes removed from DROP sign RPKI at
  roughly twice the background rate.

Run:  python examples/quickstart.py
"""

from repro.analysis import analyze_visibility, load_entries
from repro.drop.categories import Category
from repro.reporting import render_text, run_experiment
from repro.synth import ScenarioConfig, build_world


def main() -> None:
    print("building synthetic world (tiny scale)...")
    world = build_world(ScenarioConfig.tiny())
    print(
        f"  {len(world.drop.unique_prefixes())} DROP prefixes, "
        f"{len(world.bgp)} BGP route intervals, "
        f"{len(world.roas)} ROAs, {len(world.irr)} IRR objects\n"
    )

    entries = load_entries(world)

    # Direct API use: the Figure 2 withdrawal statistic.
    visibility = analyze_visibility(world, entries)
    print("Withdrawal within 30 days of DROP listing:")
    print(f"  overall:     {visibility.withdrawal_rate:6.1%} (paper: 19%)")
    print(
        f"  hijacked:    "
        f"{visibility.category_rate(Category.HIJACKED):6.1%} (paper: 70.7%)"
    )
    print(
        f"  unallocated: "
        f"{visibility.category_rate(Category.UNALLOCATED):6.1%}"
        " (paper: 54.8%)\n"
    )

    # Registry use: any table/figure by its experiment id.
    print(render_text(run_experiment(world, "tab1", entries)))


if __name__ == "__main__":
    main()
