"""The transport-independent serving core shared by both daemons.

``repro-drop serve`` exists twice: the threaded stdlib daemon
(:class:`~repro.query.server.QueryServer`) and the asyncio multi-worker
tier (:class:`~repro.query.aserver.AsyncQueryServer`).  Their wire
contract — every endpoint, every success body, every error payload —
must be byte-identical, so the request handling lives here exactly
once: a :class:`ServerCore` owns the engine reference, the health
snapshot, the metrics wiring, the drain flag, and a bounded response
cache, and maps one parsed request onto one :class:`Response`.  The two
servers are thin transports: they read bytes off a socket, call
:meth:`ServerCore.handle`, and write the response back.

Client errors are :class:`ReproError` subclasses with stable codes
(``query.bad-prefix``, ``query.bad-day``, ``query.bad-request``,
``query.not-found``), and every error body has the same shape::

    {"code": "<subsystem>.<condition>", "error": "<human message>"}

The engine reference swaps atomically: requests grab one immutable
``(engine, snapshot, cache)`` state tuple at dispatch, so a hot reload
(:meth:`ServerCore.set_engine`) can never produce a torn answer — an
in-flight request finishes entirely on the state it started with.  The
response cache rides inside the state tuple for the same reason: a slow
request racing a reload can only populate the *old* state's cache,
which the swap orphans wholesale.
"""

from __future__ import annotations

import json
import threading
from collections import OrderedDict
from datetime import date
from time import perf_counter
from typing import Callable, NamedTuple
from urllib.parse import parse_qs, urlsplit

from ..errors import ReproError
from ..net.prefix import IPv4Prefix, PrefixError
from ..net.timeline import parse_date
from .engine import BatchParseError, QueryEngine

__all__ = [
    "BAD_REQUEST_BODY",
    "MAX_BATCH_BYTES",
    "PROMETHEUS_CONTENT_TYPE",
    "BadDayError",
    "BadPrefixError",
    "NotFoundError",
    "ReloadError",
    "RequestError",
    "Response",
    "ServerCore",
    "error_payload",
    "parse_content_length",
    "parse_day",
    "parse_prefix",
]

#: Largest accepted ``/v1/batch`` request body, in bytes.
MAX_BATCH_BYTES = 8 << 20

#: The exposition content type ``GET /metrics`` answers with.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Default capacity of the per-engine response cache (entries).  The
#: index is immutable, so a ``/v1/status`` answer for one raw request
#: target never changes until a reload swaps the engine (which swaps
#: the cache with it).
DEFAULT_CACHE_SIZE = 65536


class RequestError(ReproError, ValueError):
    """A malformed request: reported with :attr:`http_status` and a
    stable ``.code`` in the JSON error body."""

    code = "query.bad-request"
    http_status = 400


class BadPrefixError(RequestError):
    """A missing or unparseable ``prefix`` argument."""

    code = "query.bad-prefix"


class BadDayError(RequestError):
    """An ``on`` argument that is not a valid calendar date."""

    code = "query.bad-day"


class NotFoundError(RequestError):
    """A request for a path/method pair no endpoint answers."""

    code = "query.not-found"
    http_status = 404


class ReloadError(ReproError, RuntimeError):
    """A hot reload that failed; the old index keeps serving."""

    code = "query.reload-failed"
    http_status = 500


#: The one 400 body both transports answer when the request itself is
#: not parseable HTTP (so there is no endpoint to blame): same
#: ``{"code", "error"}`` shape as every other error payload, with the
#: stable ``query.bad-request`` code.
BAD_REQUEST_BODY = (
    b'{"code": "query.bad-request", "error": "malformed HTTP request"}'
)


def error_payload(error: ReproError) -> dict:
    """The uniform JSON error body: stable code plus human message."""
    return {"code": error.code, "error": str(error)}


def parse_content_length(raw: str | None) -> int:
    """A ``Content-Length`` header value as a byte count.

    RFC 9110 says ``1*DIGIT``, so only ASCII digits pass: a negative,
    signed, or non-numeric value raises :class:`ValueError` and the
    transport answers :data:`BAD_REQUEST_BODY` — ``int()`` alone would
    let ``"-5"`` through as a negative length, which the threaded
    transport then handed to ``rfile.read`` paths expecting a size.
    An absent or empty header means no body (0).
    """
    if not raw:
        return 0
    if not raw.isascii() or not raw.isdigit():
        raise ValueError(f"bad Content-Length {raw!r}")
    return int(raw)


def parse_day(args: dict, *, default: date) -> date:
    """The ``on`` argument as a date (``default`` when absent)."""
    raw = args.get("on")
    if raw is None:
        return default
    try:
        return parse_date(str(raw))
    except ValueError as error:
        raise BadDayError(str(error)) from None


def parse_prefix(raw: object) -> IPv4Prefix:
    """The ``prefix`` argument, required and parseable."""
    if not isinstance(raw, str) or not raw:
        raise BadPrefixError("missing prefix")
    try:
        return IPv4Prefix.parse(raw)
    except PrefixError as error:
        raise BadPrefixError(str(error)) from None


class Response(NamedTuple):
    """One finished HTTP response, transport-agnostic."""

    status: int
    content_type: str
    body: bytes


def _json_response(status: int, payload: dict) -> Response:
    body = json.dumps(payload, sort_keys=True).encode("utf-8")
    return Response(status, "application/json", body)


class _State(NamedTuple):
    """What one request dispatch sees, swapped atomically on reload."""

    engine: QueryEngine
    snapshot: dict
    cache: "OrderedDict[str, Response]"


def _snapshot(engine: QueryEngine) -> dict:
    """The engine-free ``/healthz`` facts: window bounds, store sizes."""
    index = engine.index
    return {
        "window": [
            index.window.start.isoformat(),
            index.window.end.isoformat(),
        ],
        "index": index.sizes(),
    }


class ServerCore:
    """Engine, snapshot, metrics, drain state, and request dispatch.

    One core serves every transport thread (and every asyncio worker
    loop) of one daemon.  ``reloader`` — when the daemon supports hot
    reload — is a callable returning the fresh health snapshot; it
    backs ``POST /v1/admin/reload`` (404 when absent, so the threaded
    daemon's surface is unchanged).  ``cache_size=0`` disables the
    response cache.
    """

    def __init__(
        self,
        engine: QueryEngine,
        *,
        verbose: bool = False,
        reloader: Callable[[], dict] | None = None,
        cache_size: int = 0,
    ) -> None:
        self.instrumentation = engine.instrumentation
        self.registry = self.instrumentation.registry
        self.verbose = verbose
        self.reloader = reloader
        self.cache_size = cache_size
        self.draining = threading.Event()
        self._cache_lock = threading.Lock()
        self._state = _State(engine, _snapshot(engine), OrderedDict())
        self._index_entries = self.registry.gauge(
            "repro_server_index_entries",
            help="Entries in the served query index, by store.",
            labels=("store",),
        )
        self._publish_snapshot(self._state.snapshot)
        self.draining_gauge = self.registry.gauge(
            "repro_server_draining",
            help="1 while the server is draining after SIGTERM/SIGINT.",
        )
        self.draining_gauge.set(0)
        self.request_seconds = self.registry.histogram(
            "repro_server_request_seconds",
            help="Request handling latency, by endpoint.",
            labels=("endpoint",),
        )

    # -- engine state ------------------------------------------------------

    @property
    def engine(self) -> QueryEngine:
        return self._state.engine

    @property
    def health_snapshot(self) -> dict:
        return self._state.snapshot

    def set_engine(
        self, engine: QueryEngine, *, refresh_snapshot: bool = True
    ) -> dict:
        """Atomically swap the served engine (the hot-reload primitive).

        In-flight requests finish on the state they grabbed at dispatch;
        new requests see the new engine, snapshot, and an empty response
        cache.  Returns the published snapshot.
        """
        old = self._state
        snapshot = _snapshot(engine) if refresh_snapshot else old.snapshot
        self._state = _State(engine, snapshot, OrderedDict())
        if refresh_snapshot:
            self._publish_snapshot(snapshot)
        return snapshot

    def _publish_snapshot(self, snapshot: dict) -> None:
        for store, count in snapshot["index"].items():
            self._index_entries.set(count, store=store)

    def start_drain(self) -> bool:
        """Flip to draining (healthz 503); True on the first call only."""
        if self.draining.is_set():
            return False
        self.draining.set()
        self.draining_gauge.set(1)
        self.instrumentation.incr("serve_drains")
        return True

    # -- dispatch ----------------------------------------------------------

    def handle(
        self,
        method: str,
        target: str,
        body: bytes | None,
        content_length: int,
    ) -> Response:
        """One request, one response.

        ``target`` is the raw request target (path plus query string);
        ``body`` is the request body when the transport read one (POSTs
        within :data:`MAX_BATCH_BYTES` only), ``content_length`` the
        declared length either way — the size-limit errors are raised
        here so both transports report them identically.
        """
        url = urlsplit(target)
        if method == "GET":
            if url.path == "/v1/status":
                return self._timed(
                    "status", lambda: self._status(url.query, target)
                )
            if url.path == "/healthz":
                return self._timed("healthz", self._healthz)
            if url.path == "/metrics":
                return self._timed("metrics", self._metrics)
        elif method == "POST":
            if url.path == "/v1/batch":
                return self._timed(
                    "batch", lambda: self._batch(body, content_length)
                )
            if url.path == "/v1/admin/reload" and self.reloader is not None:
                return self._timed("reload", self._admin_reload)
        self.instrumentation.incr("serve_client_errors")
        return _json_response(
            404, error_payload(NotFoundError(f"unknown path {url.path}"))
        )

    def _timed(self, endpoint: str, handler) -> Response:
        instr = self.instrumentation
        started = perf_counter()
        try:
            return handler()
        except (RequestError, BatchParseError) as error:
            instr.incr("serve_client_errors")
            return _json_response(
                getattr(error, "http_status", 400), error_payload(error)
            )
        except Exception as error:  # pragma: no cover - defensive
            instr.incr("serve_server_errors")
            return _json_response(
                500,
                {
                    "code": "query.internal",
                    "error": f"{type(error).__name__}: {error}",
                },
            )
        finally:
            elapsed = perf_counter() - started
            self.request_seconds.observe(elapsed, endpoint=endpoint)
            instr.incr(f"serve_{endpoint}_requests")
            instr.incr(f"serve_{endpoint}_us_total", int(elapsed * 1e6))

    # -- endpoints ---------------------------------------------------------

    def _status(self, query: str, target: str) -> Response:
        state = self._state
        if self.cache_size:
            with self._cache_lock:
                cached = state.cache.get(target)
                if cached is not None:
                    state.cache.move_to_end(target)
                    return cached
        args = {k: v[-1] for k, v in parse_qs(query).items()}
        prefix = parse_prefix(args.get("prefix"))
        day = parse_day(args, default=state.engine.default_day)
        response = _json_response(
            200, state.engine.lookup(prefix, day).to_dict()
        )
        if self.cache_size:
            with self._cache_lock:
                state.cache[target] = response
                while len(state.cache) > self.cache_size:
                    state.cache.popitem(last=False)
        return response

    def _batch(self, body: bytes | None, content_length: int) -> Response:
        state = self._state
        engine = state.engine
        if content_length <= 0:
            raise RequestError("missing request body")
        if content_length > MAX_BATCH_BYTES:
            raise RequestError(f"batch body over {MAX_BATCH_BYTES} bytes")
        assert body is not None  # transports read bodies within the cap
        try:
            payload = json.loads(body)
        except json.JSONDecodeError as error:
            raise RequestError(f"bad JSON body: {error}") from None
        queries = (
            payload.get("queries") if isinstance(payload, dict) else payload
        )
        if not isinstance(queries, list):
            raise RequestError('expected {"queries": [...]} or a JSON list')
        # Validate the whole batch before answering any of it, so one
        # response names every malformed item — not just the first.
        pairs: list[tuple[IPv4Prefix, date]] = []
        errors: list[tuple[int, str, str]] = []
        for position, item in enumerate(queries):
            if isinstance(item, str):
                item = {"prefix": item}
            if not isinstance(item, dict):
                errors.append((position, repr(item), "bad query item"))
                continue
            try:
                pairs.append(
                    (
                        parse_prefix(item.get("prefix")),
                        parse_day(item, default=engine.default_day),
                    )
                )
            except RequestError as error:
                errors.append((position, repr(item), str(error)))
        if errors:
            raise BatchParseError(errors)
        results = engine.lookup_many(pairs)
        return _json_response(
            200, {"results": [status.to_dict() for status in results]}
        )

    def _healthz(self) -> Response:
        # Registry/snapshot state only — no engine, no lookup path.
        state = self._state
        draining = self.draining.is_set()
        payload = {
            "status": "draining" if draining else "ok",
            "counters": dict(self.instrumentation.counters),
        }
        payload.update(state.snapshot)
        return _json_response(503 if draining else 200, payload)

    def _metrics(self) -> Response:
        if self.draining.is_set():
            return _json_response(
                503, {"code": "query.draining", "error": "draining"}
            )
        return Response(
            200, PROMETHEUS_CONTENT_TYPE, self.registry.expose().encode()
        )

    def _admin_reload(self) -> Response:
        try:
            snapshot = self.reloader()
        except ReloadError as error:
            return _json_response(error.http_status, error_payload(error))
        return _json_response(200, {"status": "reloaded", **snapshot})
