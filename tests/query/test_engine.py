"""Engine answers are cross-checked against the world's own stores.

Every assertion here recomputes the expected answer directly from the
archives (DropArchive, IrrDatabase, RoaArchive, RouteIntervalStore) —
the same stores every batch analysis reads — so the query layer can
never drift from the experiment pipeline without a failure here.
"""

from datetime import timedelta

import pytest

from repro.net.prefix import IPv4Prefix
from repro.query import BatchParseError, parse_query_batch, parse_query_line
from repro.rpki.tal import TalSet
from repro.rpki.validation import RouteValidity, validate_route

TALS = TalSet.default()


def _sample(trie, stride=17):
    return [prefix for i, (prefix, _) in enumerate(trie.items())
            if i % stride == 0]


@pytest.fixture(scope="module")
def sample_days(world):
    window = world.window
    return [
        window.start,
        window.start + timedelta(days=window.days // 2),
        window.end,
    ]


@pytest.fixture(scope="module")
def sample_prefixes(index):
    picked = []
    for trie in (index.drop, index.irr, index.roa, index.routes):
        picked.extend(_sample(trie))
    # A few prefixes with no entry anywhere (documentation ranges).
    picked.extend(IPv4Prefix.parse(p) for p in
                  ["198.51.100.0/24", "203.0.113.128/25", "192.0.2.1/32"])
    return picked


class TestLookupAgainstWorld:
    def test_drop_matches_archive(self, engine, world, sample_prefixes,
                                  sample_days):
        for prefix in sample_prefixes:
            covering = [q for q in world.drop.unique_prefixes()
                        if q.contains(prefix)]
            for day in sample_days:
                status = engine.lookup(prefix, day)
                expected = any(
                    episode.listed_on(day)
                    for q in covering
                    for episode in world.drop.episodes_for(q)
                )
                assert status.drop_listed == expected, (prefix, day)
                if status.drop_listed:
                    # The reported listing is the most specific active one.
                    active = [q for q in covering
                              if any(e.listed_on(day)
                                     for e in world.drop.episodes_for(q))]
                    assert status.drop_entry == max(
                        active, key=lambda q: q.length
                    )
                else:
                    assert status.drop_entry is None
                    assert status.drop_sbl_id is None
                    assert status.drop_since is None

    def test_irr_matches_database(self, engine, world, sample_prefixes,
                                  sample_days):
        for prefix in sample_prefixes:
            for day in sample_days:
                status = engine.lookup(prefix, day)
                expected = {r.route.origin
                            for r in world.irr.covering(prefix)
                            if r.active_on(day)}
                assert status.irr_origins == tuple(sorted(expected))
                assert status.irr_registered == bool(expected)
                assert status.irr_exact == any(
                    r.active_on(day) for r in world.irr.exact(prefix)
                )

    def test_rpki_matches_archive(self, engine, world, sample_prefixes,
                                  sample_days):
        for prefix in sample_prefixes:
            for day in sample_days:
                status = engine.lookup(prefix, day)
                records = world.roas.covering(prefix, day, TALS)
                assert status.roa_covered == world.roas.has_roa(
                    prefix, day, TALS
                )
                assert status.roa_asns == tuple(
                    sorted({r.roa.asn for r in records})
                )

    def test_bgp_matches_interval_store(self, engine, world, sample_prefixes,
                                        sample_days):
        full_table = world.peers.full_table_peer_ids()
        for prefix in sample_prefixes:
            for day in sample_days:
                status = engine.lookup(prefix, day)
                origins = world.bgp.origins_on(prefix, day)
                assert status.origins == tuple(sorted(origins))
                assert status.announced == bool(origins)
                assert status.covered_by_route == any(
                    iv.active_on(day)
                    for iv in world.bgp.intervals_covering(prefix)
                )
                observers = world.bgp.peers_observing(prefix, day)
                assert status.visible_peers == len(observers & full_table)
                assert status.total_peers == len(full_table)

    def test_validity_matches_rfc6811(self, engine, world, sample_prefixes,
                                      sample_days):
        for prefix in sample_prefixes:
            for day in sample_days:
                status = engine.lookup(prefix, day)
                origins = world.bgp.origins_on(prefix, day)
                if not origins:
                    assert status.rpki_validity is None
                    continue
                roas = [r.roa for r in world.roas.covering(prefix, day, TALS)]
                states = {validate_route(prefix, origin, roas, TALS)
                          for origin in origins}
                if RouteValidity.VALID in states:
                    expected = RouteValidity.VALID
                elif RouteValidity.INVALID in states:
                    expected = RouteValidity.INVALID
                else:
                    expected = RouteValidity.NOT_FOUND
                assert status.rpki_validity == str(expected), (prefix, day)


class TestLookupApi:
    def test_default_day_is_window_end(self, engine, world):
        prefix = next(iter(world.bgp.prefixes()))
        assert engine.default_day == world.window.end
        assert engine.lookup(prefix) == engine.lookup(
            prefix, world.window.end
        )

    def test_lookup_many_preserves_order(self, engine, world, sample_days):
        prefixes = list(world.drop.unique_prefixes())[:5]
        queries = [(p, d) for p in prefixes for d in sample_days]
        statuses = engine.lookup_many(queries)
        assert [(s.prefix, s.on) for s in statuses] == queries
        assert statuses == [engine.lookup(p, d) for p, d in queries]

    def test_lookup_counters(self, index):
        from repro.query import QueryEngine
        from repro.runtime import Instrumentation

        instr = Instrumentation()
        engine = QueryEngine(index, instrumentation=instr)
        prefix = next(iter(index.routes))
        engine.lookup_many([(prefix, None), (prefix, index.window.start)])
        assert instr.counters["query_lookups"] == 2
        assert instr.counters["query_batches"] == 1

    def test_to_dict_wire_shape(self, engine, world):
        prefix = world.drop.unique_prefixes()[0]
        wire = engine.lookup(prefix).to_dict()
        assert set(wire) == {"prefix", "on", "drop", "irr", "rpki", "bgp"}
        assert wire["prefix"] == str(prefix)
        assert set(wire["drop"]) == {"listed", "entry", "sbl_id", "since"}
        assert set(wire["bgp"]) == {"announced", "covered_by_route",
                                    "origins", "visible_peers",
                                    "total_peers"}


class TestParseQueryLine:
    def test_prefix_only_uses_default(self, world):
        default = world.window.end
        prefix, day = parse_query_line("10.0.0.0/8", default_day=default)
        assert (str(prefix), day) == ("10.0.0.0/8", default)

    def test_prefix_and_date(self, world):
        prefix, day = parse_query_line(
            " 10.0.0.0/8   2020-01-02 ", default_day=world.window.end
        )
        assert (str(prefix), day.isoformat()) == ("10.0.0.0/8", "2020-01-02")

    @pytest.mark.parametrize("line", ["", "a b c", "10.0.0.0/8 x y"])
    def test_bad_shapes_rejected(self, line, world):
        with pytest.raises(ValueError):
            parse_query_line(line, default_day=world.window.end)


class TestBatchParse:
    def test_all_errors_reported_with_positions(self, world):
        lines = [
            "10.0.0.0/8",          # fine
            "999.1.2.3/8",         # bad address
            "10.0.0.0/8 2020-99-01",  # bad date
            "10.0.0.0/8",          # fine
            "a b c",               # bad shape
        ]
        with pytest.raises(BatchParseError) as excinfo:
            parse_query_batch(lines, default_day=world.window.end)
        error = excinfo.value
        assert [position for position, _, _ in error.errors] == [1, 2, 4]
        assert [text for _, text, _ in error.errors] == [
            lines[1], lines[2], lines[4]
        ]
        # One consolidated message naming every offender.
        assert "3 bad queries" in str(error)
        assert "[1]" in str(error) and "[4]" in str(error)

    def test_single_error_is_singular(self, world):
        with pytest.raises(BatchParseError) as excinfo:
            parse_query_batch(["nope"], default_day=world.window.end)
        assert "1 bad query:" in str(excinfo.value)

    def test_is_a_value_error(self, world):
        with pytest.raises(ValueError):
            parse_query_batch(["nope"], default_day=world.window.end)

    def test_clean_batch_matches_line_parser(self, world):
        default = world.window.end
        lines = ["10.0.0.0/8", "192.0.2.0/24 2020-01-02"]
        assert parse_query_batch(lines, default_day=default) == [
            parse_query_line(line, default_day=default) for line in lines
        ]

    def test_lookup_many_accepts_strings(self, engine, index):
        prefix = next(iter(index.routes))
        day = index.window.start
        mixed = [str(prefix), f"{prefix} {day.isoformat()}", (prefix, day)]
        statuses = engine.lookup_many(mixed)
        assert statuses[0] == engine.lookup(prefix, index.window.end)
        assert statuses[1] == engine.lookup(prefix, day)
        assert statuses[2] == statuses[1]

    def test_lookup_many_collects_string_errors(self, engine, index):
        prefix = next(iter(index.routes))
        with pytest.raises(BatchParseError) as excinfo:
            engine.lookup_many([str(prefix), "bogus", "also bad x"])
        assert [position for position, _, _ in excinfo.value.errors] == [1, 2]
