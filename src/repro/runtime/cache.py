"""Content-addressed world cache.

Building a synthetic world is deterministic in its
:class:`~repro.synth.config.ScenarioConfig`, so worlds are cached on
disk keyed by a stable hash of the config plus the generator version.
Entries persist through the ordinary :func:`~repro.synth.archive.save_world`
/ :func:`~repro.synth.archive.load_world` round-trip (daily DROP
snapshots, so episode dates reload exactly and analyses stay
byte-identical with a fresh build).

Layout: ``<root>/worlds/<key>/`` for legacy config-keyed worlds,
``<root>/bases/<key>/`` for shared post-playbook base snapshots (the
world every scenario with the same :class:`WorldScale` forks from;
entries carry a ``base-state.json`` sidecar holding the builder
cursors and topology RNG state a fork needs), and
``<root>/scenarios/<key>/`` for composed scenarios — *light* entries
holding only the spec and truth sidecars (plus any persisted query
index), because a scenario world re-forks from its base snapshot in
milliseconds and is byte-identical to a from-scratch build.  ``root``
defaults to
``~/.cache/repro-drop`` (``$REPRO_CACHE_DIR`` overrides; honors
``$XDG_CACHE_HOME``).  Writes are crash-safe: a per-entry lock file
(``<key>.lock``, single writer, stale locks taken over after
``$REPRO_CACHE_LOCK_TIMEOUT`` seconds) guards an atomic
stage-then-rename, and loads are corruption-tolerant: any failure to
reload an entry evicts it and falls back to a rebuild.  A cache that
cannot be written (disk full, permissions) degrades to uncached runs
with a warning and a counter — never an error, never a silent skip.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import tempfile
import time
import warnings
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path

from ..errors import CacheCorruptionError
from ..synth import ScenarioConfig, World, build_world, load_world, save_world
from ..synth.builder import GENERATOR_VERSION
from .faults import corrupt_file, fault_point
from ..obs import Instrumentation, world_sizes

__all__ = [
    "CACHE_DIR_ENV",
    "LOCK_TIMEOUT_ENV",
    "BaseCacheOutcome",
    "CacheOutcome",
    "ScenarioCacheOutcome",
    "WorldCache",
    "base_cache_key",
    "default_cache_root",
    "scenario_cache_key",
    "world_cache_key",
]

CACHE_DIR_ENV = "REPRO_CACHE_DIR"
LOCK_TIMEOUT_ENV = "REPRO_CACHE_LOCK_TIMEOUT"

#: Version of the on-disk cache layout itself (key derivation, snapshot
#: density, which entry kinds carry world archives).  Bump to orphan
#: every existing entry.  2: scenario entries became light (sidecars
#: only; the world re-forks from the base snapshot on a hit).
_CACHE_FORMAT = 2

#: A lock older than this is presumed abandoned (writer died between
#: acquiring and releasing) and is taken over.
_DEFAULT_LOCK_TIMEOUT = 300.0


def default_cache_root() -> Path:
    """The cache root: ``$REPRO_CACHE_DIR`` or ``~/.cache/repro-drop``."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env).expanduser()
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg).expanduser() if xdg else Path.home() / ".cache"
    return base / "repro-drop"


def _lock_timeout() -> float:
    raw = os.environ.get(LOCK_TIMEOUT_ENV, "")
    try:
        return float(raw) if raw else _DEFAULT_LOCK_TIMEOUT
    except ValueError:
        return _DEFAULT_LOCK_TIMEOUT


def world_cache_key(config: ScenarioConfig) -> str:
    """The content address of the world ``config`` would build.

    Any config field, the generator version, or the cache format
    changing yields a fresh key, so stale entries are never reused.
    """
    payload = json.dumps(
        {
            "cache_format": _CACHE_FORMAT,
            "generator": GENERATOR_VERSION,
            "config": config.canonical_dict(),
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def scenario_cache_key(scenario) -> str:
    """The content address of the world a DSL scenario would build.

    Like :func:`world_cache_key`, but over the scenario's canonical
    dict (base scale + attacks + defenses; the display name is
    excluded, so renamed sweeps share cells) plus the overlay algorithm
    version.
    """
    from ..scenarios.compose import SCENARIO_VERSION

    payload = json.dumps(
        {
            "cache_format": _CACHE_FORMAT,
            "generator": GENERATOR_VERSION,
            "scenario_version": SCENARIO_VERSION,
            "scenario": scenario.canonical_dict(),
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def base_cache_key(base) -> str:
    """The content address of the base world a :class:`WorldScale` builds.

    The post-playbook base depends on the scale config, the generator,
    *and* the playbook/overlay algorithm version (playbooks are part of
    the scenario layer), so all three pin the key.
    """
    from ..scenarios.compose import SCENARIO_VERSION

    payload = json.dumps(
        {
            "cache_format": _CACHE_FORMAT,
            "generator": GENERATOR_VERSION,
            "scenario_version": SCENARIO_VERSION,
            "base": {"scale": base.scale, "seed": base.seed},
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


#: Per-process LRU of loaded base snapshots, keyed (cache root, key).
#: Bases are strictly read-only (cells fork before mutating), so one
#: loaded copy serves every cell a worker runs; two slots cover the
#: realistic case of a sweep straddling two scales.
_BASE_LRU: OrderedDict[tuple[str, str], tuple[World, dict]] = OrderedDict()
_BASE_LRU_CAPACITY = 2


def _remember_base(lru_key: tuple[str, str], world: World, state: dict) -> None:
    _BASE_LRU[lru_key] = (world, state)
    _BASE_LRU.move_to_end(lru_key)
    while len(_BASE_LRU) > _BASE_LRU_CAPACITY:
        _BASE_LRU.popitem(last=False)


@dataclass(frozen=True, slots=True)
class CacheOutcome:
    """A fetched world plus how the cache resolved it."""

    world: World
    #: ``"hit"`` (loaded from disk), ``"miss"`` (built and stored), or
    #: ``"refresh"`` (rebuild forced by the caller).
    status: str
    key: str
    directory: Path


@dataclass(frozen=True, slots=True)
class BaseCacheOutcome:
    """A fetched base snapshot plus the builder state forks need.

    The ``world`` is shared and must be treated read-only — callers
    fork it (:func:`~repro.scenarios.compose.fork_scenario_world`)
    before applying overlays.  ``state`` is the JSON-able
    :func:`~repro.scenarios.compose.snapshot_base_state` dict.
    """

    world: World
    state: dict
    status: str
    key: str
    directory: Path


@dataclass(frozen=True, slots=True)
class ScenarioCacheOutcome:
    """A fetched scenario world plus its director truth.

    Unlike plain world entries, scenario entries persist the
    :class:`~repro.scenarios.compose.ScenarioTruth` as a sidecar — a
    cache hit stays fully evaluable
    (:func:`~repro.scenarios.metrics.evaluate_scenario` needs the
    truth), which is what makes sweep resume build zero worlds.
    """

    world: World
    truth: object
    status: str
    key: str
    directory: Path


class WorldCache:
    """Fetches worlds by config, building and storing on miss."""

    def __init__(self, root: Path | None = None) -> None:
        self.root = Path(root) if root is not None else default_cache_root()

    def directory_for(self, config: ScenarioConfig) -> Path:
        """Where the entry for ``config`` lives (existing or not)."""
        return self.root / "worlds" / world_cache_key(config)

    def fetch(
        self,
        config: ScenarioConfig,
        *,
        instrumentation: Instrumentation | None = None,
        refresh: bool = False,
        jobs: int = 1,
    ) -> CacheOutcome:
        """The world for ``config``: cached if possible, else built.

        ``jobs`` fans a cache-miss build out over worker processes; the
        built world is byte-identical either way, so the cache key never
        depends on it.

        A loaded world carries the caller's full ``config`` (the archive
        round-trip keeps only seed + window), so analyses that read
        generator parameters behave identically on either path.  Ground
        truth is not cached — cache hits are measurement-only worlds,
        exactly like loading real archives.
        """
        instr = instrumentation or Instrumentation()
        key = world_cache_key(config)
        directory = self.root / "worlds" / key
        if not refresh and directory.exists():
            try:
                world = self.load_entry(directory, instrumentation=instr)
            except CacheCorruptionError:
                # Truncated or corrupt entry (interrupted writer, disk
                # fault): evict and rebuild below.
                shutil.rmtree(directory, ignore_errors=True)
                instr.incr("world_cache_evictions")
            else:
                world.config = config
                instr.incr("world_cache_hits")
                instr.annotate("world_sizes", world_sizes(world))
                return CacheOutcome(world, "hit", key, directory)
        instr.incr("world_cache_misses")
        world = build_world(config, jobs=jobs, instrumentation=instr)
        instr.annotate("world_sizes", world_sizes(world))
        self._store(world, directory, instr)
        return CacheOutcome(
            world, "refresh" if refresh else "miss", key, directory
        )

    def fetch_base(
        self,
        base,
        *,
        instrumentation: Instrumentation | None = None,
        refresh: bool = False,
        jobs: int = 1,
    ) -> BaseCacheOutcome:
        """The shared post-playbook base world for a :class:`WorldScale`.

        Resolution order: per-process LRU, then the
        ``<root>/bases/<key>/`` disk entry (world archive +
        ``base-state.json`` sidecar, evict-and-rebuild on any load
        failure), then a fresh
        :func:`~repro.scenarios.compose.build_base_world`.  Stores use
        the ``base.save`` / ``base.store`` fault sites but otherwise
        the exact lock/staging/degraded discipline of :meth:`fetch`.
        The returned world is shared — callers must fork, never mutate.
        """
        from ..scenarios.compose import SCENARIO_VERSION, build_base_world

        instr = instrumentation or Instrumentation()
        key = base_cache_key(base)
        directory = self.root / "bases" / key
        lru_key = (str(self.root), key)
        if not refresh:
            cached = _BASE_LRU.get(lru_key)
            if cached is not None:
                _BASE_LRU.move_to_end(lru_key)
                world, state = cached
                instr.incr("base_cache_hits")
                return BaseCacheOutcome(world, state, "hit", key, directory)
            if directory.exists():
                try:
                    world = self.load_entry(
                        directory, instrumentation=instr, site="base.load"
                    )
                    state = self._load_base_state(directory, base)
                except CacheCorruptionError:
                    # Torn or foreign base entry: evict it here so the
                    # rebuild below publishes a clean one — dependent
                    # scenario cells are never poisoned.
                    shutil.rmtree(directory, ignore_errors=True)
                    instr.incr("base_cache_evictions")
                else:
                    world.config = base.to_config()
                    instr.incr("base_cache_hits")
                    instr.annotate("world_sizes", world_sizes(world))
                    _remember_base(lru_key, world, state)
                    return BaseCacheOutcome(
                        world, state, "hit", key, directory
                    )
        instr.incr("base_cache_misses")
        world, state = build_base_world(
            base, jobs=jobs, instrumentation=instr
        )
        instr.annotate("world_sizes", world_sizes(world))
        self._store(
            world,
            directory,
            instr,
            meta={
                "key": key,
                "generator": GENERATOR_VERSION,
                "scenario_version": SCENARIO_VERSION,
                "base": {"scale": base.scale, "seed": base.seed},
            },
            sidecars={
                "base-state.json": json.dumps(
                    state, indent=2, sort_keys=True
                ),
            },
            save_site="base.save",
            corrupt_site="base.store",
        )
        _remember_base(lru_key, world, state)
        return BaseCacheOutcome(
            world, state, "refresh" if refresh else "miss", key, directory
        )

    @staticmethod
    def _load_base_state(directory: Path, base) -> dict:
        """The ``base-state.json`` sidecar of one base entry, checked.

        Raises :class:`CacheCorruptionError` when the sidecar is
        missing/torn, structurally wrong, or the entry's metadata names
        a different scale (a key collision or foreign entry).
        """
        try:
            state = json.loads((directory / "base-state.json").read_text())
            meta = json.loads((directory / "cache-key.json").read_text())
        except Exception as error:
            raise CacheCorruptionError(
                f"base entry {directory.name} sidecars cannot be "
                f"loaded: {error}"
            ) from error
        required = {
            "carver_cursor",
            "asn_cursor",
            "sbl_cursor",
            "pool_blocks",
            "pool_top_cursor",
            "topology_rng_state",
        }
        missing = required - set(state)
        if missing:
            raise CacheCorruptionError(
                f"base entry {directory.name} state sidecar is missing "
                f"fields: {', '.join(sorted(missing))}"
            )
        stored = meta.get("base")
        expected = {"scale": base.scale, "seed": base.seed}
        if stored != expected:
            raise CacheCorruptionError(
                f"base entry {directory.name} stores a different scale "
                f"(stored {stored!r}, expected {expected!r})"
            )
        return state

    def fetch_scenario(
        self,
        scenario,
        *,
        instrumentation: Instrumentation | None = None,
        refresh: bool = False,
        jobs: int = 1,
    ) -> ScenarioCacheOutcome:
        """The world for a DSL ``scenario``: cached if possible.

        Entries live under ``<root>/scenarios/<key>/`` and are *light*:
        no world archive, just ``scenario.json`` (the full spec,
        hash-checked on load so a foreign or torn entry evicts) and
        ``scenario-truth.json`` (the director truth, reattached to
        ``world.truth.scenario`` on a hit).  Both hits and misses get
        their world by forking the shared base snapshot
        (:meth:`fetch_base` — cached across every cell with the same
        scale) and applying only this scenario's overlays — which is
        byte-identical to a scratch
        :func:`~repro.scenarios.compose.build_scenario_world`
        (golden-pinned) at a fraction of the cost, so persisting the
        archive again per scenario would buy nothing.  Same
        single-writer lock, staging, and degraded-store discipline as
        :meth:`fetch`.  ``refresh`` re-applies overlays but
        intentionally does not refresh the base.
        """
        from ..scenarios.compose import ScenarioTruth, fork_scenario_world

        instr = instrumentation or Instrumentation()
        key = scenario_cache_key(scenario)
        directory = self.root / "scenarios" / key
        if not refresh and directory.exists():
            try:
                truth = self._load_scenario_truth(
                    directory, scenario, ScenarioTruth
                )
            except CacheCorruptionError:
                shutil.rmtree(directory, ignore_errors=True)
                instr.incr("world_cache_evictions")
            else:
                base_outcome = self.fetch_base(
                    scenario.base, instrumentation=instr, jobs=jobs
                )
                world = fork_scenario_world(
                    scenario,
                    base_outcome.world,
                    base_outcome.state,
                    instrumentation=instr,
                )
                world.truth.scenario = truth
                instr.incr("scenario_cache_hits")
                instr.annotate("world_sizes", world_sizes(world))
                return ScenarioCacheOutcome(
                    world, truth, "hit", key, directory
                )
        instr.incr("scenario_cache_misses")
        base_outcome = self.fetch_base(
            scenario.base, instrumentation=instr, jobs=jobs
        )
        world = fork_scenario_world(
            scenario,
            base_outcome.world,
            base_outcome.state,
            instrumentation=instr,
        )
        truth = world.truth.scenario
        instr.annotate("world_sizes", world_sizes(world))
        self._store(
            world,
            directory,
            instr,
            meta={
                "key": key,
                "generator": GENERATOR_VERSION,
                "scenario_hash": scenario.content_hash(),
                "light": True,
            },
            sidecars={
                "scenario.json": scenario.to_json(),
                "scenario-truth.json": json.dumps(
                    truth.to_dict(), indent=2, sort_keys=True
                ),
            },
            archive=False,
            corrupt_target="scenario-truth.json",
        )
        return ScenarioCacheOutcome(
            world, truth, "refresh" if refresh else "miss", key, directory
        )

    @staticmethod
    def _load_scenario_truth(directory: Path, scenario, truth_cls):
        """The truth sidecar of one scenario entry, spec-checked.

        Raises :class:`CacheCorruptionError` when either sidecar is
        missing/torn or the stored spec hash disagrees with the
        requested scenario (a key collision or foreign entry).
        """
        try:
            stored = json.loads((directory / "scenario.json").read_text())
            truth_doc = json.loads(
                (directory / "scenario-truth.json").read_text()
            )
            truth = truth_cls.from_dict(truth_doc)
        except Exception as error:
            raise CacheCorruptionError(
                f"scenario entry {directory.name} sidecars cannot be "
                f"loaded: {error}"
            ) from error
        expected = scenario.content_hash()
        stored_hash = type(scenario).from_dict(stored).content_hash()
        if stored_hash != expected or truth.scenario_hash != expected:
            raise CacheCorruptionError(
                f"scenario entry {directory.name} stores a different "
                f"scenario (stored {stored_hash[:12]}, "
                f"expected {expected[:12]})"
            )
        return truth

    def load_entry(
        self,
        directory: Path,
        *,
        instrumentation: Instrumentation | None = None,
        site: str = "cache.load",
    ) -> World:
        """Load one cache entry, or raise :class:`CacheCorruptionError`.

        Any reload failure — torn file, missing archive, injected fault
        at the ``site`` fault site (``cache.load`` for world/scenario
        entries, ``base.load`` for base snapshots) — surfaces as a
        :class:`~repro.errors.CacheCorruptionError` (code
        ``runtime.cache-corrupt``) naming the entry; :meth:`fetch`
        catches it to evict and rebuild.
        """
        instr = instrumentation or Instrumentation()
        try:
            with instr.stage("cache-load", group="cache"):
                fault_point(site, instrumentation=instr)
                return load_world(directory)
        except Exception as error:
            raise CacheCorruptionError(
                f"cache entry {directory.name} cannot be loaded: {error}"
            ) from error

    # -- storing -----------------------------------------------------------

    def _store(
        self,
        world: World,
        directory: Path,
        instr: Instrumentation,
        *,
        meta: dict | None = None,
        sidecars: dict[str, str] | None = None,
        save_site: str = "cache.save",
        corrupt_site: str = "cache.store",
        corrupt_target: str = "roas.jsonl",
        archive: bool = True,
    ) -> None:
        """Persist ``world`` as the entry at ``directory`` (crash-safe).

        Single writer per entry: the ``<key>.lock`` sibling must be
        acquired first; a concurrent fresh lock means another process is
        already storing the identical entry, so this store is skipped.
        Save failures (disk full, permissions) degrade to an uncached
        run with a counter and a warning; only the final ``os.rename``
        losing its race against a takeover winner is silently benign.

        ``meta`` overrides the ``cache-key.json`` payload and
        ``sidecars`` adds extra files to the staged entry (scenario and
        base entries use both) — they ride inside the same staging
        window, so the published entry is all-or-nothing either way.
        ``save_site`` / ``corrupt_site`` name the fault-injection sites
        (``base.save`` / ``base.store`` for base snapshots) and
        ``corrupt_target`` the staged file a ``truncate`` fault tears.
        ``archive=False`` stores a light entry — metadata and sidecars
        only, no world archive (scenario entries, whose worlds re-fork
        from the base snapshot instead of reloading).
        """
        directory.parent.mkdir(parents=True, exist_ok=True)
        lock = directory.parent / f"{directory.name}.lock"
        if not self._acquire_lock(lock, instr):
            instr.incr("world_cache_store_skipped")
            return
        staging: Path | None = None
        try:
            try:
                staging = Path(
                    tempfile.mkdtemp(
                        dir=directory.parent, prefix=f".{directory.name}-"
                    )
                )
                with instr.stage("cache-store", group="cache"):
                    fault_point(save_site, instrumentation=instr)
                    if archive:
                        # Daily snapshots so DROP episode dates reload
                        # exactly.
                        save_world(world, staging, drop_step_days=1)
                    if meta is None:
                        meta = {
                            "key": directory.name,
                            "generator": GENERATOR_VERSION,
                            "config": world.config.canonical_dict(),
                        }
                    (staging / "cache-key.json").write_text(
                        json.dumps(meta, indent=2, sort_keys=True)
                    )
                    for name, text in (sidecars or {}).items():
                        (staging / name).write_text(text)
                    # A truncate fault corrupts the staged entry *after*
                    # a successful save: the published entry is torn,
                    # exactly like a crash between write and fsync.
                    corrupt_file(
                        corrupt_site,
                        staging / corrupt_target,
                        instrumentation=instr,
                    )
            except OSError as error:
                # save_world failed mid-write: disk full, permissions,
                # injected IO error.  The run proceeds uncached — but
                # loudly, unlike the silent skip this replaces.
                instr.incr("world_cache_store_errors")
                message = (
                    f"world cache store failed ({error}); continuing uncached"
                )
                instr.warn(message)
                warnings.warn(message, RuntimeWarning, stacklevel=2)
                return
            if directory.exists():
                # refresh, or a concurrent writer won: replace our target.
                shutil.rmtree(directory, ignore_errors=True)
            try:
                fault_point("cache.rename", instrumentation=instr)
                os.rename(staging, directory)
            except OSError:
                # Lost the rename race; the winner's entry is equivalent.
                instr.incr("world_cache_rename_races")
        finally:
            if staging is not None and staging.exists():
                shutil.rmtree(staging, ignore_errors=True)
            self._release_lock(lock)

    def _acquire_lock(self, lock: Path, instr: Instrumentation) -> bool:
        """Try to become the single writer for one entry.

        Returns False when another writer holds a *fresh* lock (their
        store of the identical entry supersedes ours).  A lock older
        than the stale timeout is taken over: its writer died between
        acquire and release.
        """
        wait = instr.registry.histogram(
            "repro_cache_lock_wait_seconds",
            help="Time spent acquiring the per-entry writer lock.",
            labels=("outcome",),
        )
        started = time.perf_counter()
        for attempt in range(2):
            try:
                fd = os.open(lock, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                try:
                    age = time.time() - lock.stat().st_mtime
                except OSError:
                    continue  # holder released between open and stat: retry
                if age <= _lock_timeout():
                    instr.incr("world_cache_lock_contention")
                    wait.observe(
                        time.perf_counter() - started, outcome="yielded"
                    )
                    return False
                # Stale: the writer died. Take the lock over and retry
                # the exclusive create once.
                instr.incr("world_cache_lock_takeovers")
                instr.warn(
                    f"took over stale cache lock {lock.name} "
                    f"(age {age:.0f}s)"
                )
                lock.unlink(missing_ok=True)
            else:
                with os.fdopen(fd, "w") as handle:
                    json.dump(
                        {"pid": os.getpid(), "acquired": time.time()}, handle
                    )
                wait.observe(
                    time.perf_counter() - started, outcome="acquired"
                )
                return True
        wait.observe(time.perf_counter() - started, outcome="yielded")
        return False

    @staticmethod
    def _release_lock(lock: Path) -> None:
        lock.unlink(missing_ok=True)
